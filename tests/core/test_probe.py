"""Phase 4: exact co-partition probing."""

import numpy as np
import pytest

from repro.core.local_partition import refine
from repro.core.probe import join_shards, probe_partitions
from repro.core.relation import GpuShard


def shard(keys, ids=None):
    keys = np.asarray(keys, dtype=np.uint32)
    if ids is None:
        ids = np.arange(len(keys), dtype=np.uint32)
    return GpuShard(keys, np.asarray(ids, dtype=np.uint32))


def naive_join_count(r_keys, s_keys):
    from collections import Counter

    s_counts = Counter(s_keys)
    return sum(s_counts[k] for k in r_keys)


class TestJoinShards:
    def test_empty_sides(self):
        assert join_shards(shard([]), shard([1, 2])) == 0
        assert join_shards(shard([1]), shard([])) == 0

    def test_unique_keys(self):
        assert join_shards(shard([1, 2, 3]), shard([2, 3, 4])) == 2

    def test_duplicates_multiply(self):
        assert join_shards(shard([5, 5]), shard([5, 5, 5])) == 6

    def test_count_matches_naive_on_random_data(self):
        rng = np.random.default_rng(11)
        r_keys = rng.integers(0, 50, 500)
        s_keys = rng.integers(0, 50, 700)
        expected = naive_join_count(r_keys.tolist(), s_keys.tolist())
        assert join_shards(shard(r_keys), shard(s_keys)) == expected

    def test_materialized_pairs_are_correct(self):
        r = shard([1, 2, 2], ids=[10, 20, 21])
        s = shard([2, 1, 2], ids=[32, 31, 33])
        r_ids, s_ids = join_shards(r, s, materialize=True)
        pairs = sorted(zip(r_ids.tolist(), s_ids.tolist()))
        assert pairs == [
            (10, 31), (20, 32), (20, 33), (21, 32), (21, 33),
        ]

    def test_materialized_empty(self):
        r_ids, s_ids = join_shards(shard([1]), shard([2]), materialize=True)
        assert len(r_ids) == 0 and len(s_ids) == 0


class TestProbePartitions:
    def test_matches_direct_join(self):
        rng = np.random.default_rng(3)
        r = shard(rng.integers(0, 1000, 3000, dtype=np.uint32))
        s = shard(rng.integers(0, 1000, 3000, dtype=np.uint32))
        expected = join_shards(r, s)
        r_parts = refine(r, global_bits=4, passes=1, fanout=16)
        s_parts = refine(s, global_bits=4, passes=1, fanout=16)
        result = probe_partitions(r_parts, s_parts)
        assert result.matches == expected
        assert result.buckets_probed > 0

    def test_materialized_probe(self):
        r = shard([7, 8, 9], ids=[1, 2, 3])
        s = shard([9, 7], ids=[4, 5])
        r_parts = refine(r, global_bits=2, passes=0, fanout=4)
        s_parts = refine(s, global_bits=2, passes=0, fanout=4)
        result = probe_partitions(r_parts, s_parts, materialize=True)
        pairs = sorted(zip(result.r_ids.tolist(), result.s_ids.tolist()))
        assert pairs == [(1, 5), (3, 4)]

    def test_mismatched_depths_rejected(self):
        r_parts = refine(shard([1, 2]), global_bits=2, passes=0, fanout=4)
        s_parts = refine(shard([1, 2]), global_bits=2, passes=1, fanout=4)
        with pytest.raises(ValueError):
            probe_partitions(r_parts, s_parts)
