"""Vectorized probe vs the bucketed reference loop: exact identity.

``probe_partitions`` replaces the Python loop over co-partition buckets
with one whole-shard sorted pass; ``probe_partitions_bucketed`` is kept
as its semantic specification.  These tests fuzz both over skewed
shards and hold them to identical output — match counts,
``buckets_probed``, per-bucket histogram observations, and the
materialized ``(r_id, s_id)`` row order — for both probe kernels.
"""

import numpy as np
import pytest

from repro.core.local_partition import refine
from repro.core.probe import (
    PROBE_METHODS,
    probe_partitions,
    probe_partitions_bucketed,
)
from repro.core.relation import GpuShard
from repro.obs import Observer


def _shard(rng, size, key_space, start_id=0):
    keys = rng.integers(0, key_space, size=size, dtype=np.uint32)
    ids = np.arange(start_id, start_id + size, dtype=np.uint32)
    return GpuShard(keys, ids)


def _partitions(rng, size, key_space, passes=2, fanout=4, start_id=0):
    return refine(
        _shard(rng, size, key_space, start_id), global_bits=3, passes=passes, fanout=fanout
    )


def _histogram_state(observer):
    hist = observer.metrics.histogram("probe.matches_per_copartition")
    return (hist.count, hist.total, hist.vmin, hist.vmax, list(hist.samples))


@pytest.mark.parametrize("method", sorted(PROBE_METHODS))
@pytest.mark.parametrize("seed", range(8))
def test_vectorized_matches_bucketed_reference(method, seed):
    rng = np.random.default_rng(seed)
    # Small key spaces force heavy duplication (the hard case for
    # duplicate expansion); varied sizes cover empty/shared buckets.
    key_space = int(rng.choice([8, 64, 1024, 1 << 20]))
    r_parts = _partitions(rng, int(rng.integers(0, 800)), key_space)
    s_parts = _partitions(rng, int(rng.integers(0, 800)), key_space, start_id=10_000)

    for materialize in (False, True):
        obs_fast, obs_ref = Observer(), Observer()
        fast = probe_partitions(
            r_parts, s_parts, materialize=materialize, method=method, observer=obs_fast
        )
        ref = probe_partitions_bucketed(
            r_parts, s_parts, materialize=materialize, method=method, observer=obs_ref
        )
        assert fast.matches == ref.matches
        assert fast.buckets_probed == ref.buckets_probed
        assert _histogram_state(obs_fast) == _histogram_state(obs_ref)
        if materialize:
            assert np.array_equal(fast.r_ids, ref.r_ids)
            assert np.array_equal(fast.s_ids, ref.s_ids)
        else:
            assert fast.r_ids is None and ref.r_ids is None


def test_probe_methods_agree():
    """Nested-loop and hash kernels are interchangeable (paper §3.2)."""
    rng = np.random.default_rng(99)
    r_parts = _partitions(rng, 500, 32)
    s_parts = _partitions(rng, 700, 32, start_id=10_000)
    nested = probe_partitions(r_parts, s_parts, materialize=True, method="nested-loop")
    hashed = probe_partitions_bucketed(r_parts, s_parts, materialize=True, method="hash")
    assert nested.matches == hashed.matches
    assert np.array_equal(nested.r_ids, hashed.r_ids)
    assert np.array_equal(nested.s_ids, hashed.s_ids)


def test_empty_sides():
    rng = np.random.default_rng(0)
    empty = _partitions(rng, 0, 64)
    full = _partitions(rng, 100, 64, start_id=10_000)
    for r_parts, s_parts in ((empty, full), (full, empty), (empty, empty)):
        fast = probe_partitions(r_parts, s_parts, materialize=True)
        ref = probe_partitions_bucketed(r_parts, s_parts, materialize=True)
        assert fast.matches == ref.matches == 0
        assert fast.buckets_probed == ref.buckets_probed == 0
        assert len(fast.r_ids) == 0 and len(fast.s_ids) == 0


def test_mismatched_depths_rejected():
    rng = np.random.default_rng(1)
    shallow = _partitions(rng, 50, 64, passes=1)
    deep = _partitions(rng, 50, 64, passes=3, start_id=10_000)
    with pytest.raises(ValueError):
        probe_partitions(shallow, deep)
    with pytest.raises(ValueError):
        probe_partitions_bucketed(shallow, deep)


def test_unknown_method_rejected():
    rng = np.random.default_rng(2)
    parts = _partitions(rng, 10, 64)
    with pytest.raises(ValueError):
        probe_partitions(parts, parts, method="gpu-magic")
    with pytest.raises(ValueError):
        probe_partitions_bucketed(parts, parts, method="gpu-magic")
