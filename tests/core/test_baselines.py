"""DPRJ, UMJ and single-GPU baselines: same answers, worse costs."""

import pytest

from repro.baselines import DPRJJoin, SingleGpuJoin, UMJJoin, gather_to_one_gpu
from repro.core import MGJoin

from helpers import make_workload


def test_all_algorithms_agree_on_matches(dgx1):
    workload = make_workload(num_gpus=4, real=2048)
    results = {
        algo.algorithm: algo.run(workload)
        for algo in (MGJoin(dgx1), DPRJJoin(dgx1), UMJJoin(dgx1))
    }
    counts = {name: run.matches_real for name, run in results.items()}
    assert len(set(counts.values())) == 1
    assert counts["mg-join"] == workload.r.num_tuples


def test_all_algorithms_agree_under_skew(dgx1):
    workload = make_workload(num_gpus=4, real=1024, key_zipf=0.8, seed=9)
    counts = {
        algo.algorithm: algo.run(workload).matches_real
        for algo in (MGJoin(dgx1), DPRJJoin(dgx1), UMJJoin(dgx1))
    }
    assert len(set(counts.values())) == 1


def test_dprj_has_no_compression(dgx1):
    workload = make_workload(num_gpus=4, real=2048, logical=1 << 20)
    run = DPRJJoin(dgx1).run(workload)
    assert run.compression_ratio == 1.0


def test_dprj_uses_direct_routes(dgx1):
    workload = make_workload(num_gpus=4, real=2048, logical=1 << 20)
    run = DPRJJoin(dgx1).run(workload)
    assert run.shuffle_report.average_hops == 1.0


def test_dprj_distribution_fully_exposed(dgx1):
    workload = make_workload(num_gpus=4, real=2048, logical=1 << 22)
    run = DPRJJoin(dgx1).run(workload)
    assert run.breakdown.distribution_exposed == pytest.approx(
        run.shuffle_report.elapsed
    )


def test_mgjoin_beats_dprj_at_paper_scale(dgx1):
    """Figure 11's headline at 8 GPUs, small real arrays."""
    workload = make_workload(num_gpus=8, real=4096, logical=512 * 1024 * 1024)
    mgj = MGJoin(dgx1).run(workload)
    dprj = DPRJJoin(dgx1).run(workload)
    assert mgj.throughput > 1.5 * dprj.throughput


def test_umj_slower_than_single_gpu_at_8(dgx1):
    """§5.3: UMJ on many GPUs is worse than UMJ on one."""
    eight = make_workload(num_gpus=8, real=2048, logical=512 * 1024 * 1024)
    one = make_workload(num_gpus=1, real=2048, logical=512 * 1024 * 1024)
    umj_eight = UMJJoin(dgx1).run(eight)
    umj_one = UMJJoin(dgx1).run(one)
    assert umj_eight.throughput < umj_one.throughput


def test_umj_has_no_routed_shuffle(dgx1):
    workload = make_workload(num_gpus=4, real=2048, logical=1 << 22)
    run = UMJJoin(dgx1).run(workload)
    assert run.shuffle_report.policy_name == "unified-memory"
    assert run.breakdown.distribution_exposed > 0


def test_gather_to_one_gpu_preserves_tuples(dgx1):
    workload = make_workload(num_gpus=4, real=512)
    gathered = gather_to_one_gpu(workload)
    assert gathered.gpu_ids == (0,)
    assert gathered.real_tuples == workload.real_tuples


def test_single_gpu_join_accepts_multi_gpu_workload(dgx1):
    workload = make_workload(num_gpus=4, real=512)
    run = SingleGpuJoin(dgx1).run(workload)
    assert run.num_gpus == 1
    assert run.matches_real == workload.r.num_tuples
