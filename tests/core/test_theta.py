"""Theta joins / cartesian products over the routed fabric."""

import numpy as np
import pytest

from repro.core.theta import ThetaJoin, less_than
from repro.routing import DirectPolicy

from helpers import make_workload


def test_cartesian_product_count(dgx1):
    workload = make_workload(num_gpus=4, real=256)
    result = ThetaJoin(dgx1).run(workload, predicate=None)
    assert result.matches_real == workload.r.num_tuples * workload.s.num_tuples


def test_less_than_matches_reference(dgx1):
    workload = make_workload(num_gpus=2, real=512)
    result = ThetaJoin(dgx1).run(workload, predicate=less_than)
    r_keys = workload.r.all_keys().astype(np.int64)
    s_keys = workload.s.all_keys().astype(np.int64)
    expected = int((r_keys[:, None] < s_keys[None, :]).sum())
    assert result.matches_real == expected


def test_band_predicate(dgx1):
    workload = make_workload(num_gpus=2, real=256)

    def band(build, probe):
        return np.abs(build.astype(np.int64) - probe.astype(np.int64)) <= 3

    result = ThetaJoin(dgx1).run(workload, predicate=band)
    r_keys = workload.r.all_keys().astype(np.int64)
    s_keys = workload.s.all_keys().astype(np.int64)
    expected = int((np.abs(r_keys[:, None] - s_keys[None, :]) <= 3).sum())
    assert result.matches_real == expected


def test_broadcast_time_counted(dgx1):
    workload = make_workload(num_gpus=4, real=1024, logical=1 << 20)
    result = ThetaJoin(dgx1).run(workload, predicate=None)
    assert result.broadcast_time > 0
    assert result.shuffle_report is not None
    # Each GPU's shard travels to all three peers.
    expected_payload = (
        workload.r.num_tuples * workload.logical_scale * 8 * 3
    )
    assert result.shuffle_report.payload_bytes == expected_payload


def test_single_gpu_has_no_broadcast(dgx1):
    workload = make_workload(num_gpus=1, real=256)
    result = ThetaJoin(dgx1).run(workload, predicate=None)
    assert result.broadcast_time == 0.0
    assert result.shuffle_report is None


def test_policy_affects_broadcast(dgx1):
    workload = make_workload(num_gpus=8, real=2048, logical=1 << 22)
    adaptive = ThetaJoin(dgx1).run(workload, predicate=None)
    direct = ThetaJoin(dgx1, policy=DirectPolicy()).run(workload, predicate=None)
    assert adaptive.broadcast_time < direct.broadcast_time
    assert adaptive.matches_real == direct.matches_real


def test_logical_match_scaling_is_quadratic(dgx1):
    workload = make_workload(num_gpus=2, real=128, logical=512)
    result = ThetaJoin(dgx1).run(workload, predicate=None)
    assert result.matches_logical == result.matches_real * 16


def test_compute_time_scales_with_pairs(dgx1):
    small = make_workload(num_gpus=2, real=128, logical=1 << 18)
    large = make_workload(num_gpus=2, real=128, logical=1 << 22)
    t_small = ThetaJoin(dgx1).run(small, None).compute_time
    t_large = ThetaJoin(dgx1).run(large, None).compute_time
    assert t_large > 50 * t_small
