"""Phase 3: recursive local partitioning."""

import numpy as np
import pytest

from repro.core.local_partition import (
    passes_needed,
    plan_local_passes,
    refine,
)
from repro.core.relation import GpuShard


def make_shard(count, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 20, count, dtype=np.uint32)
    return GpuShard(keys, np.arange(count, dtype=np.uint32))


class TestPassesNeeded:
    def test_already_small_needs_none(self):
        assert passes_needed(100, fanout=256, target_tuples=1000) == 0

    def test_one_pass(self):
        assert passes_needed(100_000, fanout=256, target_tuples=1000) == 1

    def test_two_passes(self):
        # ratio 65,000 needs two 256-way passes (256^2 = 65,536).
        assert passes_needed(6_500_000, fanout=256, target_tuples=100) == 2

    def test_three_passes(self):
        # ratio 100,000 exceeds 256^2, so a third pass is required.
        assert passes_needed(10_000_000, fanout=256, target_tuples=100) == 3

    def test_boundary_exact(self):
        assert passes_needed(256_000, fanout=256, target_tuples=1000) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            passes_needed(10, fanout=1, target_tuples=1)
        with pytest.raises(ValueError):
            passes_needed(10, fanout=2, target_tuples=0)


class TestRefine:
    def test_buckets_partition_the_shard(self):
        shard = make_shard(5000)
        parts = refine(shard, global_bits=4, passes=1, fanout=16)
        total = sum(len(parts.bucket(i)) for i in range(parts.num_buckets))
        assert total == len(shard)

    def test_bucket_members_share_low_bits(self):
        shard = make_shard(2000)
        parts = refine(shard, global_bits=4, passes=1, fanout=16)
        mask = (1 << parts.bucket_bits) - 1
        for index in range(parts.num_buckets):
            bucket = parts.bucket(index)
            assert len(set((bucket.keys & mask).tolist())) == 1

    def test_more_passes_means_smaller_buckets(self):
        shard = make_shard(50_000)
        coarse = refine(shard, global_bits=2, passes=0, fanout=16)
        fine = refine(shard, global_bits=2, passes=2, fanout=16)
        assert fine.max_bucket_tuples() < coarse.max_bucket_tuples()

    def test_bucket_bits_capped_at_key_width(self):
        shard = make_shard(100)
        parts = refine(shard, global_bits=30, passes=3, fanout=256)
        assert parts.bucket_bits == 32

    def test_non_power_of_two_fanout_rejected(self):
        with pytest.raises(ValueError):
            refine(make_shard(10), global_bits=2, passes=1, fanout=100)

    def test_ids_travel_with_keys(self):
        shard = make_shard(1000)
        parts = refine(shard, global_bits=4, passes=1, fanout=16)
        for index in range(parts.num_buckets):
            bucket = parts.bucket(index)
            assert np.array_equal(shard.keys[bucket.ids], bucket.keys)


class TestPlanLocalPasses:
    def test_uses_smaller_side(self):
        r = np.array([10_000_000])
        s = np.array([100])
        # The small side already fits: no pass needed.
        assert plan_local_passes(r, s, fanout=256, target_tuples=1000) == 0

    def test_worst_partition_drives_passes(self):
        r = np.array([100, 200_000])
        s = np.array([100, 200_000])
        # Worst min-side is 200,000: one 256-way pass reaches <= 1000.
        assert plan_local_passes(r, s, fanout=256, target_tuples=1000) == 1

    def test_empty_histograms(self):
        empty = np.array([], dtype=np.int64)
        assert plan_local_passes(empty, empty, 256, 1000) == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            plan_local_passes(np.array([1]), np.array([1, 2]), 256, 1000)
