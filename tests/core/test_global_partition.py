"""Phase 2b: flow planning and physical data redistribution."""

import numpy as np

from repro.core import build_histograms
from repro.core.assignment import assign_partitions, modulo_assignment
from repro.core.compression import CompressionModel
from repro.core.global_partition import execute_distribution, plan_flows
from repro.core.histogram import partition_of

from helpers import make_workload

RAW = CompressionModel(enabled=False, key_bits_elided=0, id_bytes_per_tuple=4.0)


def setup(num_gpus=4, real=2048, partitions=64, **kw):
    workload = make_workload(num_gpus=num_gpus, real=real, **kw)
    histograms = build_histograms(workload.r, workload.s, partitions)
    return workload, histograms


class TestPlanFlows:
    def test_modulo_moves_almost_everything(self, dgx1):
        workload, histograms = setup()
        assignment = modulo_assignment(histograms)
        flows = plan_flows(histograms, assignment, RAW, logical_scale=1)
        # Uniform keys + modulo: ~ (G-1)/G of all tuples move.
        expected = workload.real_tuples * 8 * 3 / 4
        assert abs(flows.total_bytes - expected) / expected < 0.05

    def test_optimized_assignment_moves_no_more_than_modulo(self, dgx1):
        _, histograms = setup()
        optimized = plan_flows(
            histograms, assign_partitions(histograms, dgx1), RAW, 1
        )
        modulo = plan_flows(histograms, modulo_assignment(histograms), RAW, 1)
        assert optimized.total_bytes <= modulo.total_bytes * 1.01

    def test_placement_skew_keeps_data_local_without_balance_term(self, dgx1):
        """With a pure move-cost objective, the optimizer keeps
        partitions where the data already sits under placement skew."""
        _, skew_hist = setup(placement_zipf=1.0)
        _, uniform_hist = setup(placement_zipf=0.0)
        skewed = plan_flows(
            skew_hist,
            assign_partitions(skew_hist, dgx1, process_cost_per_tuple=0.0),
            RAW, 1,
        )
        uniform = plan_flows(
            uniform_hist,
            assign_partitions(uniform_hist, dgx1, process_cost_per_tuple=0.0),
            RAW, 1,
        )
        assert skewed.total_bytes < uniform.total_bytes

    def test_balance_term_spreads_skewed_data(self, dgx1):
        """With the completion-time objective, a hot GPU sheds work."""
        import numpy as np

        workload, histograms = setup(placement_zipf=1.0)
        assignment = assign_partitions(histograms, dgx1)
        r, s = histograms.stacked()
        sizes = (r + s).sum(axis=0)
        load = np.zeros(4)
        for p, owners in enumerate(assignment.owners):
            for owner in owners:
                load[owner] += sizes[p] / len(owners)
        assert load.max() <= 1.3 * load.min()

    def test_logical_scale_multiplies_bytes(self, dgx1):
        _, histograms = setup()
        assignment = assign_partitions(histograms, dgx1)
        one = plan_flows(histograms, assignment, RAW, 1)
        thousand = plan_flows(histograms, assignment, RAW, 1000)
        assert thousand.total_bytes == 1000 * one.total_bytes

    def test_compression_shrinks_flows(self, dgx1):
        _, histograms = setup()
        assignment = assign_partitions(histograms, dgx1)
        compressed_model = CompressionModel(
            enabled=True, key_bits_elided=6, id_bytes_per_tuple=2.0
        )
        raw = plan_flows(histograms, assignment, RAW, 1)
        compressed = plan_flows(histograms, assignment, compressed_model, 1)
        assert compressed.total_bytes < raw.total_bytes


class TestExecuteDistribution:
    def test_no_tuple_lost_or_duplicated(self, dgx1):
        workload, histograms = setup()
        assignment = assign_partitions(histograms, dgx1)
        data = execute_distribution(
            workload.r, workload.s, histograms, assignment
        )
        total_r = sum(len(shard) for shard in data.r.values())
        total_s = sum(len(shard) for shard in data.s.values())
        assert total_r == workload.r.num_tuples
        assert total_s == workload.s.num_tuples

    def test_co_partitioning_holds(self, dgx1):
        """After distribution, matching keys are on the same GPU."""
        workload, histograms = setup(num_gpus=4, real=1024, partitions=64)
        assignment = assign_partitions(histograms, dgx1)
        data = execute_distribution(
            workload.r, workload.s, histograms, assignment
        )
        r_keys = {g: set(data.r[g].keys.tolist()) for g in (0, 1, 2, 3)}
        s_keys = {g: set(data.s[g].keys.tolist()) for g in (0, 1, 2, 3)}
        for key in workload.r.all_keys().tolist():
            holders_r = [g for g in r_keys if key in r_keys[g]]
            holders_s = [g for g in s_keys if key in s_keys[g]]
            assert set(holders_r) & set(holders_s) or not holders_s

    def test_partitions_land_on_their_owner(self, dgx1):
        workload, histograms = setup(num_gpus=2, real=512, partitions=16)
        assignment = assign_partitions(histograms, dgx1)
        data = execute_distribution(
            workload.r, workload.s, histograms, assignment
        )
        owner_map = assignment.single_owner_map()
        for gpu_pos, gpu_id in enumerate((0, 1)):
            pids = set(partition_of(data.r[gpu_id].keys, 16).tolist())
            for pid in pids:
                assert owner_map[pid] == gpu_pos

    def test_broadcast_replicates_moving_side(self, dgx1):
        """With a forced heavy hitter, the broadcast side is copied to
        every owner and the kept side stays disjoint."""
        import numpy as np

        from repro.core.histogram import HistogramSet
        from repro.core.relation import DistributedRelation, GpuShard

        # R huge on partition 0 on both GPUs; S tiny on both.
        def shard(keys):
            keys = np.asarray(keys, dtype=np.uint32)
            return GpuShard(keys, np.arange(len(keys), dtype=np.uint32))

        r = DistributedRelation(
            "R", {0: shard([0] * 100), 1: shard([0] * 100)}
        )
        s = DistributedRelation("S", {0: shard([0]), 1: shard([0])})
        histograms = HistogramSet(
            num_partitions=2,
            r={0: np.array([100, 0]), 1: np.array([100, 0])},
            s={0: np.array([1, 0]), 1: np.array([1, 0])},
        )
        assignment = assign_partitions(histograms, dgx1)
        assert assignment.num_broadcast == 1
        data = execute_distribution(r, s, histograms, assignment)
        # S (the broadcast side) is replicated: total grows.
        total_s = sum(len(shard) for shard in data.s.values())
        assert total_s == 4  # 2 tuples x 2 owners
        # R (kept side) is not duplicated.
        total_r = sum(len(shard) for shard in data.r.values())
        assert total_r == 200
