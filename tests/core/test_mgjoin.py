"""MG-Join end to end: correctness and cost-model structure."""

import pytest

from repro.core import MGJoin, MGJoinConfig
from repro.routing import DirectPolicy

from helpers import make_workload


def test_exact_result_uniform(dgx1):
    workload = make_workload(num_gpus=4, real=2048)
    result = MGJoin(dgx1).run(workload)
    # Sequential shuffled keys: every R tuple matches exactly one S tuple.
    assert result.matches_real == workload.r.num_tuples


def test_exact_result_single_gpu(dgx1):
    workload = make_workload(num_gpus=1, real=2048)
    result = MGJoin(dgx1).run(workload)
    assert result.matches_real == workload.r.num_tuples
    assert result.shuffle_report is None
    assert result.breakdown.distribution_exposed == 0.0


def test_exact_result_with_placement_skew(dgx1):
    workload = make_workload(num_gpus=4, real=2048, placement_zipf=1.0)
    result = MGJoin(dgx1).run(workload)
    assert result.matches_real == workload.r.num_tuples


def test_exact_result_with_key_skew(dgx1):
    """Heavy hitters (possibly broadcast partitions) still join exactly."""
    from collections import Counter

    workload = make_workload(num_gpus=4, real=1024, key_zipf=1.0, seed=5)
    r_counts = Counter(workload.r.all_keys().tolist())
    s_counts = Counter(workload.s.all_keys().tolist())
    expected = sum(r_counts[k] * s_counts[k] for k in r_counts)
    result = MGJoin(dgx1).run(workload)
    assert result.matches_real == expected


def test_matches_logical_scales(dgx1):
    workload = make_workload(num_gpus=2, real=1024, logical=4096)
    result = MGJoin(dgx1).run(workload)
    assert result.logical_scale == 4
    assert result.matches_logical == 4 * result.matches_real


def test_phase_breakdown_sums_to_total(dgx1):
    workload = make_workload(num_gpus=4, real=2048)
    result = MGJoin(dgx1).run(workload)
    breakdown = result.breakdown
    assert result.total_time == pytest.approx(
        breakdown.histogram
        + breakdown.partition_compute
        + breakdown.distribution_exposed
        + breakdown.probe
    )
    assert all(value >= 0 for value in breakdown.as_dict().values())


def test_throughput_definition(dgx1):
    workload = make_workload(num_gpus=2, real=1024, logical=1 << 20)
    result = MGJoin(dgx1).run(workload)
    assert result.throughput == pytest.approx(
        result.logical_tuples / result.total_time
    )


def test_compression_reduces_shuffle_bytes(dgx1):
    workload = make_workload(num_gpus=4, real=2048, logical=1 << 20)
    compressed = MGJoin(dgx1, MGJoinConfig(compression=True)).run(workload)
    raw = MGJoin(dgx1, MGJoinConfig(compression=False)).run(workload)
    assert compressed.compression_ratio > 1.2
    assert raw.compression_ratio == 1.0
    assert (
        compressed.shuffle_report.payload_bytes
        < raw.shuffle_report.payload_bytes
    )
    assert compressed.matches_real == raw.matches_real


def test_custom_policy_is_used(dgx1):
    workload = make_workload(num_gpus=4, real=2048, logical=1 << 20)
    direct = MGJoin(dgx1, policy=DirectPolicy()).run(workload)
    assert direct.shuffle_report.policy_name == "direct"
    assert direct.shuffle_report.average_hops == 1.0


def test_partition_count_override(dgx1):
    workload = make_workload(num_gpus=2, real=2048)
    result = MGJoin(dgx1, MGJoinConfig(num_partitions=64)).run(workload)
    assert result.matches_real == workload.r.num_tuples


def test_unknown_gpus_rejected(dgx1):
    workload = make_workload(num_gpus=4, real=512)
    workload.r.shards[99] = workload.r.shards.pop(3)
    workload.s.shards[99] = workload.s.shards.pop(3)
    with pytest.raises(ValueError):
        MGJoin(dgx1).run(workload)


def test_cycles_per_tuple_uses_aggregate_sm_cycles(dgx1):
    workload = make_workload(num_gpus=2, real=1024, logical=1 << 20)
    result = MGJoin(dgx1).run(workload)
    expected = (
        result.total_time * 1.53e9 * 80 * 2 / result.logical_tuples
    )
    assert result.cycles_per_tuple == pytest.approx(expected)


def test_works_on_dgx_station(station):
    workload = make_workload(num_gpus=4, real=1024)
    result = MGJoin(station).run(workload)
    assert result.matches_real == workload.r.num_tuples


def test_works_on_gpu_subsets(dgx1):
    from repro.workloads import WorkloadSpec, generate_workload

    spec = WorkloadSpec(
        gpu_ids=(0, 3, 4, 7), logical_tuples_per_gpu=1024,
        real_tuples_per_gpu=1024,
    )
    workload = generate_workload(spec)
    result = MGJoin(dgx1).run(workload)
    assert result.matches_real == workload.r.num_tuples


def test_materialize_returns_same_count(dgx1):
    workload = make_workload(num_gpus=2, real=512)
    counted = MGJoin(dgx1).run(workload)
    materialized = MGJoin(dgx1, MGJoinConfig(materialize=True)).run(workload)
    assert counted.matches_real == materialized.matches_real
