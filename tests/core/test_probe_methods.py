"""The two probe kernels (nested-loop vs hash) are interchangeable."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MGJoin, MGJoinConfig
from repro.core.probe import join_shards, join_shards_hash
from repro.core.relation import GpuShard

from helpers import make_workload


def shard(keys, ids=None):
    keys = np.asarray(keys, dtype=np.uint32)
    if ids is None:
        ids = np.arange(len(keys), dtype=np.uint32)
    return GpuShard(keys, np.asarray(ids, dtype=np.uint32))


def test_hash_join_empty():
    assert join_shards_hash(shard([]), shard([1])) == 0
    assert join_shards_hash(shard([1]), shard([])) == 0


def test_hash_join_counts():
    assert join_shards_hash(shard([1, 2, 2]), shard([2, 2, 3])) == 4


def test_hash_join_materialized_pairs():
    r = shard([5, 6], ids=[1, 2])
    s = shard([6, 5, 6], ids=[7, 8, 9])
    r_ids, s_ids = join_shards_hash(r, s, materialize=True)
    assert sorted(zip(r_ids.tolist(), s_ids.tolist())) == [
        (1, 8), (2, 7), (2, 9),
    ]


@given(
    st.lists(st.integers(0, 40), max_size=150),
    st.lists(st.integers(0, 40), max_size=150),
)
@settings(max_examples=60, deadline=None)
def test_kernels_always_agree(left, right):
    r, s = shard(left), shard(right)
    assert join_shards_hash(r, s) == join_shards(r, s)


@given(
    st.lists(st.integers(0, 25), max_size=80),
    st.lists(st.integers(0, 25), max_size=80),
)
@settings(max_examples=30, deadline=None)
def test_materialized_kernels_agree_as_sets(left, right):
    r, s = shard(left), shard(right)
    nested = join_shards(r, s, materialize=True)
    hashed = join_shards_hash(r, s, materialize=True)
    assert sorted(zip(*map(lambda a: a.tolist(), nested))) == sorted(
        zip(*map(lambda a: a.tolist(), hashed))
    )


def test_mgjoin_probe_method_config(dgx1):
    workload = make_workload(num_gpus=2, real=512)
    nested = MGJoin(dgx1, MGJoinConfig(probe_method="nested-loop")).run(workload)
    hashed = MGJoin(dgx1, MGJoinConfig(probe_method="hash")).run(workload)
    assert nested.matches_real == hashed.matches_real


def test_invalid_probe_method_rejected():
    with pytest.raises(ValueError):
        MGJoinConfig(probe_method="sort-merge")
