"""The traffic codec: exact round-trips and realistic ratios."""

import numpy as np
import pytest

from repro.core.compression import (
    CompressionModel,
    build_compression_model,
    compress_ids,
    decompress_ids,
    measure_id_compression,
)


def roundtrip(values, block_bytes=8192):
    array = np.asarray(values, dtype=np.uint32)
    return decompress_ids(compress_ids(array, block_bytes))


def test_roundtrip_empty():
    assert len(roundtrip([])) == 0


def test_roundtrip_single_value():
    assert roundtrip([42]).tolist() == [42]


def test_roundtrip_sequential():
    data = np.arange(10_000, dtype=np.uint32)
    assert np.array_equal(roundtrip(data), data)


def test_roundtrip_random():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2**32, 5000, dtype=np.uint32)
    assert np.array_equal(roundtrip(data), data)


def test_roundtrip_extremes():
    data = np.array([0, 2**32 - 1, 0, 2**32 - 1], dtype=np.uint32)
    assert np.array_equal(roundtrip(data), data)


def test_roundtrip_small_blocks():
    data = np.arange(1000, dtype=np.uint32) * 7
    assert np.array_equal(roundtrip(data, block_bytes=64), data)


def test_sequential_ids_compress_well():
    """Near-sequential ids (post-partition order) need few delta bits."""
    data = np.arange(100_000, dtype=np.uint32)
    bytes_per_id = measure_id_compression(data)
    assert bytes_per_id < 2.5  # vs 4 raw


def test_random_ids_do_not_compress():
    rng = np.random.default_rng(1)
    data = rng.integers(0, 2**32, 100_000, dtype=np.uint32)
    assert measure_id_compression(data) > 3.5


def test_tiny_block_bytes_rejected():
    with pytest.raises(ValueError):
        compress_ids(np.arange(10, dtype=np.uint32), block_bytes=4)


class TestCompressionModel:
    def test_disabled_model_is_identity(self):
        model = CompressionModel(
            enabled=False, key_bits_elided=12, id_bytes_per_tuple=2.0
        )
        assert model.bytes_per_tuple == 8.0
        assert model.ratio == 1.0

    def test_key_prefix_elision(self):
        """log2(4096) = 12 bits of the key ride in the partition id."""
        model = CompressionModel(
            enabled=True, key_bits_elided=12, id_bytes_per_tuple=4.0
        )
        assert model.key_bytes_per_tuple == pytest.approx(2.5)

    def test_paper_ratio_range(self):
        """§5.1: compression achieves 1.3x-2x on the paper's workload."""
        ids = np.arange(1 << 16, dtype=np.uint32)
        model = build_compression_model(True, 4096, ids)
        assert 1.3 <= model.ratio <= 2.2

    def test_flow_bytes_rounding(self):
        model = CompressionModel(
            enabled=True, key_bits_elided=8, id_bytes_per_tuple=1.5
        )
        assert model.flow_bytes(1000) == round(1000 * (3.0 + 1.5))
