"""Phase 1: histograms and Equation 1."""

import numpy as np
import pytest

from repro.core import build_histograms, max_partitions
from repro.core.histogram import partition_of
from repro.sim.compute import V100

from helpers import make_workload


def test_eq1_v100_yields_4096_partitions():
    """The paper's worked example: 4,096 partitions on a V100 (§3.2)."""
    assert max_partitions(V100) == 4096


def test_eq1_scales_with_shared_memory():
    bigger = V100.with_overrides(shared_memory_per_sm=64 * 1024)
    assert max_partitions(bigger) == 8192


def test_eq1_scales_inversely_with_thread_blocks():
    assert max_partitions(V100, thread_blocks_per_sm=4) == 2048


def test_eq1_rounds_down_to_power_of_two():
    odd = V100.with_overrides(shared_memory_per_sm=24 * 1024)
    partitions = max_partitions(odd)
    assert partitions & (partitions - 1) == 0
    assert partitions <= 24 * 1024 // 8


def test_eq1_rejects_bad_inputs():
    with pytest.raises(ValueError):
        max_partitions(V100, histogram_entry_bytes=0)
    tiny = V100.with_overrides(shared_memory_per_sm=1)
    with pytest.raises(ValueError):
        max_partitions(tiny, histogram_entry_bytes=4)


def test_partition_of_uses_low_bits():
    keys = np.array([0, 1, 255, 256, 257], dtype=np.uint32)
    assert partition_of(keys, 256).tolist() == [0, 1, 255, 0, 1]


def test_partition_of_requires_power_of_two():
    with pytest.raises(ValueError):
        partition_of(np.array([1], dtype=np.uint32), 100)


def test_histograms_count_every_tuple():
    workload = make_workload(num_gpus=4, real=2048)
    histograms = build_histograms(workload.r, workload.s, 256)
    r_total, s_total = histograms.totals()
    assert r_total.sum() == workload.r.num_tuples
    assert s_total.sum() == workload.s.num_tuples


def test_histograms_match_manual_count():
    workload = make_workload(num_gpus=2, real=1024)
    histograms = build_histograms(workload.r, workload.s, 64)
    shard = workload.r.shard(0)
    manual = np.bincount(
        (shard.keys & 63).astype(np.int64), minlength=64
    )
    assert np.array_equal(histograms.r[0], manual)


def test_stacked_shape():
    workload = make_workload(num_gpus=3, real=512)
    histograms = build_histograms(workload.r, workload.s, 128)
    r, s = histograms.stacked()
    assert r.shape == (3, 128)
    assert s.shape == (3, 128)


def test_sequential_keys_are_balanced():
    """Sequential-then-shuffled keys fill radix partitions evenly."""
    workload = make_workload(num_gpus=2, real=8192)
    histograms = build_histograms(workload.r, workload.s, 16)
    r_total, _ = histograms.totals()
    assert r_total.max() == r_total.min()  # keys 0..N-1 mod 16 exactly even


def test_heavy_hitter_key_concentrates():
    workload = make_workload(num_gpus=2, real=4096, key_zipf=1.2, seed=3)
    histograms = build_histograms(workload.r, workload.s, 64)
    r_total, _ = histograms.totals()
    assert r_total.max() > 4 * np.median(r_total)
