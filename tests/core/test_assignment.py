"""Phase 2a: migration / selective-broadcast partition assignment."""

import numpy as np
import pytest

from repro.core import build_histograms
from repro.core.assignment import (
    BROADCAST_R,
    BROADCAST_S,
    NO_BROADCAST,
    assign_partitions,
    modulo_assignment,
    pairwise_tuple_cost,
)
from repro.core.histogram import HistogramSet

from helpers import make_workload


def hist_from_counts(r_counts, s_counts):
    """Build a HistogramSet from (G, P) matrices."""
    r = np.asarray(r_counts, dtype=np.int64)
    s = np.asarray(s_counts, dtype=np.int64)
    return HistogramSet(
        num_partitions=r.shape[1],
        r={g: r[g] for g in range(r.shape[0])},
        s={g: s[g] for g in range(s.shape[0])},
    )


class TestPairwiseCost:
    def test_diagonal_zero(self, dgx1):
        cost = pairwise_tuple_cost(dgx1, tuple(range(8)))
        assert np.all(np.diag(cost) == 0)

    def test_double_link_cheaper_without_relays(self, dgx1):
        # Restricted to direct routes, the double link (50 GB/s) to
        # GPU 3 beats the single link (25 GB/s) to GPU 1.  (With
        # relays allowed, an all-double path exists for every pair.)
        cost = pairwise_tuple_cost(dgx1, tuple(range(8)), max_intermediates=0)
        assert cost[0][3] < cost[0][1]

    def test_staged_pairs_reachable_through_relays(self, dgx1):
        """Multi-hop candidate routes make even staged pairs cheap."""
        cost = pairwise_tuple_cost(dgx1, tuple(range(8)))
        # 0->5 has no NVLink, but 0->4->5 bottlenecks at 25 GB/s,
        # much better than the 16 GB/s staged path.
        assert cost[0][5] <= 8 / 25e9 * 1.01


class TestAssignment:
    def test_uniform_data_balances_load(self, dgx1):
        workload = make_workload(num_gpus=4, real=4096)
        histograms = build_histograms(workload.r, workload.s, 256)
        assignment = assign_partitions(histograms, dgx1)
        counts = np.zeros(4)
        r, s = histograms.stacked()
        sizes = (r + s).sum(axis=0)
        for p, owners in enumerate(assignment.owners):
            for owner in owners:
                counts[owner] += sizes[p] / len(owners)
        assert counts.max() <= 1.25 * counts.min()

    def test_data_already_in_place_stays(self, dgx1):
        """A partition living wholly on one GPU is owned by that GPU."""
        r = np.zeros((2, 4), dtype=np.int64)
        s = np.zeros((2, 4), dtype=np.int64)
        r[0, 1] = 1000
        s[0, 1] = 1000
        histograms = hist_from_counts(r, s)
        # Give the other GPU some other partition so totals balance.
        assignment = assign_partitions(histograms, dgx1)
        assert assignment.owners[1] == (0,)

    def test_heavy_hitter_triggers_selective_broadcast(self, dgx1):
        """Huge R partition spread everywhere + tiny S on two GPUs:
        broadcasting S beats migrating R (§3.2's skew handling)."""
        num_gpus = 4
        r = np.full((num_gpus, 2), 1_000_000, dtype=np.int64)
        s = np.zeros((num_gpus, 2), dtype=np.int64)
        s[0, 0] = 10
        s[1, 0] = 10
        s[0, 1] = 10
        s[1, 1] = 10
        histograms = hist_from_counts(r, s)
        assignment = assign_partitions(histograms, dgx1)
        assert assignment.broadcast_side[0] == BROADCAST_S
        # Owners are the R holders: every GPU.
        assert assignment.owners[0] == tuple(range(num_gpus))

    def test_broadcast_r_symmetric_case(self, dgx1):
        r = np.zeros((4, 1), dtype=np.int64)
        s = np.full((4, 1), 1_000_000, dtype=np.int64)
        r[2, 0] = 5
        r[3, 0] = 5
        histograms = hist_from_counts(r, s)
        assignment = assign_partitions(histograms, dgx1)
        assert assignment.broadcast_side[0] == BROADCAST_R


    def test_uniform_workload_has_no_broadcasts(self, dgx1):
        workload = make_workload(num_gpus=4, real=4096)
        histograms = build_histograms(workload.r, workload.s, 256)
        assignment = assign_partitions(histograms, dgx1)
        assert assignment.num_broadcast == 0

    def test_owner_gpus_maps_positions(self, dgx1):
        workload = make_workload(num_gpus=2, real=512)
        histograms = build_histograms(workload.r, workload.s, 16)
        assignment = assign_partitions(histograms, dgx1)
        for p in range(16):
            for gpu_id in assignment.owner_gpus(p):
                assert gpu_id in (0, 1)


class TestModuloAssignment:
    def test_round_robin_owners(self):
        r = np.ones((4, 8), dtype=np.int64)
        s = np.ones((4, 8), dtype=np.int64)
        assignment = modulo_assignment(hist_from_counts(r, s))
        assert [o[0] for o in assignment.owners] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert assignment.num_broadcast == 0

    def test_single_owner_map(self):
        r = np.ones((2, 4), dtype=np.int64)
        assignment = modulo_assignment(hist_from_counts(r, r))
        assert assignment.single_owner_map().tolist() == [0, 1, 0, 1]
