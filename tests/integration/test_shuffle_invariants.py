"""Property-based invariants of the shuffle simulator.

Whatever the flow matrix, policy or machine: every payload byte is
delivered exactly once, wire traffic is at least payload traffic, and
per-GPU deliveries match the flow matrix.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import AdaptiveArmPolicy, DirectPolicy, HopCountPolicy
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator
from repro.topology import dgx1_topology, dgx_station_topology

MB = 1024 * 1024

machines = st.sampled_from(["dgx1", "station"])
policies = st.sampled_from([DirectPolicy, HopCountPolicy, AdaptiveArmPolicy])

flow_entries = st.lists(
    st.tuples(
        st.integers(0, 3), st.integers(0, 3), st.integers(1, 24)
    ),
    min_size=1,
    max_size=10,
)


def _machine(name):
    return dgx1_topology() if name == "dgx1" else dgx_station_topology()


@given(machine_name=machines, policy_cls=policies, entries=flow_entries)
@settings(max_examples=30, deadline=None)
def test_conservation_and_accounting(machine_name, policy_cls, entries):
    machine = _machine(machine_name)
    flows = FlowMatrix()
    for src, dst, mb in entries:
        flows.add(src, dst, mb * MB)
    if flows.total_bytes == 0:
        return
    config = ShuffleConfig(injection_rate=None, consume_rate=None)
    report = ShuffleSimulator(machine, (0, 1, 2, 3), config).run(
        flows, policy_cls()
    )
    # Every payload byte delivered exactly once.
    assert report.delivered_bytes == flows.total_bytes
    # Wire traffic >= payload (headers + relays only add).
    assert report.wire_bytes >= flows.total_bytes
    # Per-GPU deliveries match the flow matrix's column sums.
    for gpu_id, delivered in report.per_gpu_delivered.items():
        expected = sum(
            nbytes for (_, dst), nbytes in flows.flows.items() if dst == gpu_id
        )
        assert delivered == expected
    # Time moved forward and throughput is finite.
    assert report.elapsed > 0
    assert report.throughput > 0


@given(per_flow_mb=st.integers(16, 96), num_gpus=st.sampled_from([4, 6, 8]))
@settings(max_examples=12, deadline=None)
def test_adaptive_never_loses_on_all_to_all(per_flow_mb, num_gpus):
    """On the paper's traffic pattern — an all-to-all shuffle with
    MG-Join's paced injection (packets appear as the partition kernel
    produces them, which is what lets congestion feedback steer later
    batches) — adaptive routing never loses to direct routing."""
    machine = dgx1_topology()
    gpu_ids = tuple(range(num_gpus))
    flows = FlowMatrix.all_to_all(gpu_ids, per_flow_mb * MB)
    sim = ShuffleSimulator(machine, gpu_ids)  # default: paced
    direct = sim.run(flows, DirectPolicy())
    adaptive = sim.run(flows, AdaptiveArmPolicy())
    assert adaptive.elapsed <= direct.elapsed * 1.02


streaming_flows = st.lists(
    st.tuples(
        st.integers(0, 3), st.integers(0, 3), st.integers(16, 64)
    ),
    min_size=1,
    max_size=10,
)


@given(entries=streaming_flows)
@settings(max_examples=15, deadline=None)
def test_adaptive_price_of_anarchy_is_bounded(entries):
    """On *arbitrary* (possibly adversarial, tiny, asymmetric) flow
    sets, greedy per-source routing can oscillate and lose to direct
    routing — the classic selfish-routing price of anarchy.  It stays
    bounded: never worse than ~2.5x, and the all-to-all property above
    shows the paper's workloads do not hit it."""
    machine = dgx1_topology()
    flows = FlowMatrix()
    for src, dst, mb in entries:
        flows.add(src, dst, mb * MB)
    if flows.total_bytes == 0:
        return
    config = ShuffleConfig(injection_rate=None, consume_rate=None)
    sim = ShuffleSimulator(machine, (0, 1, 2, 3), config)
    direct = sim.run(flows, DirectPolicy())
    adaptive = sim.run(flows, AdaptiveArmPolicy())
    assert adaptive.elapsed <= direct.elapsed * 2.5


@given(
    seed_bytes=st.integers(1, 64),
)
@settings(max_examples=10, deadline=None)
def test_simulation_is_deterministic(seed_bytes):
    machine = dgx1_topology()
    flows = FlowMatrix.all_to_all((0, 1, 4, 5), seed_bytes * MB)
    config = ShuffleConfig(injection_rate=None, consume_rate=None)
    first = ShuffleSimulator(machine, (0, 1, 4, 5), config).run(
        flows, AdaptiveArmPolicy()
    )
    second = ShuffleSimulator(machine, (0, 1, 4, 5), config).run(
        flows, AdaptiveArmPolicy()
    )
    assert first.elapsed == second.elapsed
    assert first.hop_count_total == second.hop_count_total
