"""Cross-algorithm, cross-configuration join equivalence.

Every join implementation in the repository — MG-Join under any routing
policy, DPRJ, UMJ, single-GPU — must produce the same match count as a
naive reference join, for any data distribution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DPRJJoin, UMJJoin
from repro.core import MGJoin, MGJoinConfig
from repro.core.relation import DistributedRelation, GpuShard, JoinWorkload
from repro.routing import (
    AdaptiveArmPolicy,
    BandwidthPolicy,
    CentralizedPolicy,
    DirectPolicy,
    HopCountPolicy,
    LatencyPolicy,
)
from repro.topology import dgx1_topology

from helpers import make_workload


def reference_matches(workload: JoinWorkload) -> int:
    from collections import Counter

    r = Counter(workload.r.all_keys().tolist())
    s = Counter(workload.s.all_keys().tolist())
    return sum(count * s[key] for key, count in r.items())


def workload_from_key_lists(r_lists, s_lists) -> JoinWorkload:
    def relation(name, lists):
        shards = {}
        for gpu_id, keys in enumerate(lists):
            array = np.array(keys, dtype=np.uint32)
            shards[gpu_id] = GpuShard(
                array, np.arange(len(array), dtype=np.uint32)
            )
        return DistributedRelation(name, shards)

    return JoinWorkload(
        r=relation("R", r_lists), s=relation("S", s_lists), logical_scale=1
    )


@pytest.mark.parametrize(
    "policy_cls",
    [
        AdaptiveArmPolicy,
        DirectPolicy,
        BandwidthPolicy,
        HopCountPolicy,
        LatencyPolicy,
        CentralizedPolicy,
    ],
)
def test_every_policy_gives_same_answer(dgx1, policy_cls):
    workload = make_workload(num_gpus=4, real=1024)
    run = MGJoin(dgx1, policy=policy_cls()).run(workload)
    assert run.matches_real == reference_matches(workload)


@pytest.mark.parametrize("num_gpus", [1, 2, 3, 5, 8])
def test_every_gpu_count_gives_same_answer(dgx1, num_gpus):
    workload = make_workload(num_gpus=num_gpus, real=512)
    run = MGJoin(dgx1).run(workload)
    assert run.matches_real == reference_matches(workload)


@pytest.mark.parametrize("partitions", [16, 256, 4096])
def test_every_partition_count_gives_same_answer(dgx1, partitions):
    workload = make_workload(num_gpus=4, real=512)
    config = MGJoinConfig(num_partitions=partitions)
    run = MGJoin(dgx1, config).run(workload)
    assert run.matches_real == reference_matches(workload)


key_lists = st.lists(
    st.lists(st.integers(0, 64), max_size=60), min_size=2, max_size=4
)


@given(r_lists=key_lists, s_lists=key_lists)
@settings(max_examples=25, deadline=None)
def test_mgjoin_matches_reference_on_arbitrary_data(r_lists, s_lists):
    """Hypothesis drives arbitrary shard contents through MG-Join."""
    size = min(len(r_lists), len(s_lists))
    workload = workload_from_key_lists(r_lists[:size], s_lists[:size])
    machine = dgx1_topology()
    run = MGJoin(machine, MGJoinConfig(num_partitions=64)).run(workload)
    assert run.matches_real == reference_matches(workload)


@given(r_lists=key_lists, s_lists=key_lists)
@settings(max_examples=15, deadline=None)
def test_baselines_match_reference_on_arbitrary_data(r_lists, s_lists):
    size = min(len(r_lists), len(s_lists))
    workload = workload_from_key_lists(r_lists[:size], s_lists[:size])
    machine = dgx1_topology()
    expected = reference_matches(workload)
    config = MGJoinConfig(num_partitions=64)
    assert DPRJJoin(machine, config).run(workload).matches_real == expected
    assert UMJJoin(machine, config).run(workload).matches_real == expected


def test_station_and_dgx1_agree(dgx1, station):
    workload = make_workload(num_gpus=4, real=1024)
    on_dgx1 = MGJoin(dgx1).run(workload)
    on_station = MGJoin(station).run(workload)
    assert on_dgx1.matches_real == on_station.matches_real


def test_empty_relations(dgx1):
    workload = workload_from_key_lists([[], []], [[], []])
    run = MGJoin(dgx1, MGJoinConfig(num_partitions=16)).run(workload)
    assert run.matches_real == 0


def test_disjoint_keys_no_matches(dgx1):
    workload = workload_from_key_lists(
        [[1, 2], [3, 4]], [[10, 11], [12, 13]]
    )
    run = MGJoin(dgx1, MGJoinConfig(num_partitions=16)).run(workload)
    assert run.matches_real == 0
