"""Collective operations over the routed fabric (§6's NCCL comparison)."""

import pytest

from repro.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    broadcast,
    ring_neighbors,
)
from repro.routing import AdaptiveArmPolicy, DirectPolicy

MB = 1024 * 1024


@pytest.fixture(scope="module")
def dgx1_module():
    from repro.topology import dgx1_topology

    return dgx1_topology()


class TestRing:
    def test_ring_covers_all_gpus(self):
        ring = ring_neighbors((0, 1, 2, 3))
        assert ring == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_ring_needs_two(self):
        with pytest.raises(ValueError):
            ring_neighbors((0,))


class TestAllGather:
    def test_round_count(self, dgx1_module):
        result = all_gather(
            dgx1_module, (0, 1, 2, 3), 8 * MB, DirectPolicy()
        )
        assert len(result.rounds) == 3  # G-1 rounds
        assert result.elapsed == pytest.approx(
            sum(r.elapsed for r in result.rounds)
        )

    def test_each_round_moves_ring_traffic(self, dgx1_module):
        result = all_gather(dgx1_module, (0, 1, 2, 3), 8 * MB, DirectPolicy())
        for report in result.rounds:
            assert report.payload_bytes == 4 * 8 * MB


class TestAllReduce:
    def test_round_count(self, dgx1_module):
        result = all_reduce(dgx1_module, (0, 1, 4, 5), 16 * MB, DirectPolicy())
        assert len(result.rounds) == 2 * 3

    def test_bandwidth_positive(self, dgx1_module):
        result = all_reduce(dgx1_module, (0, 1, 4, 5), 16 * MB, DirectPolicy())
        assert result.algorithm_bandwidth > 0


class TestBroadcast:
    def test_all_peers_receive(self, dgx1_module):
        result = broadcast(dgx1_module, (0, 1, 2, 3), 32 * MB, DirectPolicy())
        assert len(result.rounds) == 1
        delivered = result.rounds[0].per_gpu_delivered
        assert delivered[1] == delivered[2] == delivered[3] == 32 * MB

    def test_bad_root_rejected(self, dgx1_module):
        with pytest.raises(ValueError):
            broadcast(dgx1_module, (0, 1), MB, DirectPolicy(), root=7)

    def test_adaptive_beats_direct_broadcast_from_corner(self, dgx1_module):
        """Broadcasting from GPU 0 to the far quad crosses staged paths
        under direct routing; with idle GPUs allowed to relay, the
        adaptive policy routes the copies over NVLink instead."""
        from repro.sim import ShuffleConfig

        participants = (0, 5, 6, 7)
        config = ShuffleConfig(
            injection_rate=None, consume_rate=None, allow_external_relays=True
        )
        direct = broadcast(
            dgx1_module, participants, 64 * MB, DirectPolicy(), config=config
        )
        adaptive = broadcast(
            dgx1_module, participants, 64 * MB, AdaptiveArmPolicy(), config=config
        )
        assert adaptive.elapsed < direct.elapsed


class TestAllToAll:
    def test_matches_shuffle_semantics(self, dgx1_module):
        result = all_to_all(dgx1_module, (0, 1, 2, 3), 32 * MB, DirectPolicy())
        report = result.rounds[0]
        assert report.payload_bytes == 4 * 3 * (32 * MB // 4)

    def test_adaptive_wins_at_eight(self, dgx1_module):
        """The §6 claim: static (NCCL-style direct) schedules leave
        bandwidth on the table on the DGX-1; adaptive recovers it."""
        direct = all_to_all(
            dgx1_module, tuple(range(8)), 256 * MB, DirectPolicy()
        )
        adaptive = all_to_all(
            dgx1_module, tuple(range(8)), 256 * MB, AdaptiveArmPolicy()
        )
        assert adaptive.elapsed < 0.6 * direct.elapsed


def test_ring_all_gather_vs_adaptive_on_staged_ring(dgx1_module):
    """A ring over GPUs that are not NVLink-adjacent (0->5->2->7) is
    the worst case for static ring schedules; with external relays the
    adaptive policy fixes each hop independently."""
    from repro.sim import ShuffleConfig

    participants = (0, 5, 2, 7)
    config = ShuffleConfig(
        injection_rate=None, consume_rate=None, allow_external_relays=True
    )
    direct = all_gather(
        dgx1_module, participants, 64 * MB, DirectPolicy(), config=config
    )
    adaptive = all_gather(
        dgx1_module, participants, 64 * MB, AdaptiveArmPolicy(), config=config
    )
    assert adaptive.elapsed < direct.elapsed
