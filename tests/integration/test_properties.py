"""Property-based tests (hypothesis) over core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import compress_ids, decompress_ids
from repro.core.local_partition import passes_needed, refine
from repro.core.probe import join_shards
from repro.core.relation import GpuShard
from repro.sim import Engine
from repro.topology import RouteEnumerator, dgx1_topology
from repro.topology.routes import physical_links
from repro.workloads.zipf import zipf_partition_counts, zipf_weights

uint32s = st.integers(min_value=0, max_value=2**32 - 1)


@given(st.lists(uint32s, max_size=500), st.sampled_from([64, 512, 8192]))
@settings(max_examples=60, deadline=None)
def test_compression_roundtrip_is_identity(values, block_bytes):
    data = np.array(values, dtype=np.uint32)
    assert np.array_equal(decompress_ids(compress_ids(data, block_bytes)), data)


@given(st.lists(uint32s, min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_compressed_never_absurdly_large(values):
    """Worst case: full 32-bit deltas + per-block headers."""
    data = np.array(values, dtype=np.uint32)
    compressed = compress_ids(data, 8192)
    assert len(compressed) <= 4 * len(data) + 16 + 4


@given(
    st.lists(st.integers(0, 50), max_size=200),
    st.lists(st.integers(0, 50), max_size=200),
)
@settings(max_examples=60, deadline=None)
def test_join_count_matches_bag_semantics(left, right):
    from collections import Counter

    r = GpuShard(
        np.array(left, dtype=np.uint32),
        np.arange(len(left), dtype=np.uint32),
    )
    s = GpuShard(
        np.array(right, dtype=np.uint32),
        np.arange(len(right), dtype=np.uint32),
    )
    expected = sum(
        count * Counter(right)[key] for key, count in Counter(left).items()
    )
    assert join_shards(r, s) == expected


@given(
    st.lists(st.integers(0, 50), max_size=120),
    st.lists(st.integers(0, 50), max_size=120),
)
@settings(max_examples=40, deadline=None)
def test_materialized_pairs_all_match(left, right):
    r = GpuShard(np.array(left, dtype=np.uint32), np.arange(len(left), dtype=np.uint32))
    s = GpuShard(np.array(right, dtype=np.uint32), np.arange(len(right), dtype=np.uint32))
    r_ids, s_ids = join_shards(r, s, materialize=True)
    for r_id, s_id in zip(r_ids.tolist(), s_ids.tolist()):
        assert left[r_id] == right[s_id]


@given(st.lists(uint32s, max_size=400), st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_refine_partitions_cover_exactly(keys, passes):
    shard = GpuShard(
        np.array(keys, dtype=np.uint32), np.arange(len(keys), dtype=np.uint32)
    )
    parts = refine(shard, global_bits=4, passes=passes, fanout=16)
    seen = []
    for index in range(parts.num_buckets):
        seen.extend(parts.bucket(index).ids.tolist())
    assert sorted(seen) == sorted(range(len(keys)))


@given(
    st.integers(1, 10**9),
    st.sampled_from([2, 16, 256, 1024]),
    st.integers(1, 10**6),
)
@settings(max_examples=80, deadline=None)
def test_passes_needed_is_sufficient_and_minimal(size, fanout, target):
    passes = passes_needed(size, fanout, target)
    assert size / fanout**passes <= target
    if passes > 0:
        assert size / fanout ** (passes - 1) > target


@given(st.integers(1, 64), st.floats(0.0, 3.0))
@settings(max_examples=60, deadline=None)
def test_zipf_weights_are_a_distribution(count, z):
    weights = zipf_weights(count, z)
    assert abs(weights.sum() - 1.0) < 1e-9
    assert np.all(weights >= 0)
    assert np.all(np.diff(weights) <= 1e-12)


@given(st.integers(1, 16), st.integers(0, 10**6), st.floats(0.0, 2.0))
@settings(max_examples=60, deadline=None)
def test_zipf_partition_counts_conserve_total(parts, total, z):
    counts = zipf_partition_counts(parts, total, z)
    assert counts.sum() == total
    assert np.all(counts >= 0)


@given(
    st.integers(0, 7),
    st.integers(0, 7),
    st.integers(0, 3),
)
@settings(max_examples=100, deadline=None)
def test_enumerated_routes_are_wellformed(src, dst, cap):
    if src == dst:
        return
    machine = dgx1_topology()
    enumerator = RouteEnumerator(machine, max_intermediates=cap)
    routes = enumerator.routes(src, dst)
    assert routes[0].is_direct
    for route in routes:
        assert route.src == src and route.dst == dst
        assert len(route.intermediates) <= cap
        links = physical_links(machine, route)
        assert links[0].src.index == src
        assert links[-1].dst.index == dst
        for first, second in zip(links, links[1:]):
            assert first.dst == second.src


@given(st.lists(st.floats(0.0001, 10.0), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_engine_time_never_goes_backwards(delays):
    engine = Engine()
    observed = []

    def waiter():
        for delay in delays:
            yield engine.timeout(delay)
            observed.append(engine.now)

    engine.process(waiter())
    engine.run()
    assert observed == sorted(observed)
    assert engine.now == sum(delays) or abs(engine.now - sum(delays)) < 1e-9
