"""Small-scale checks of the paper's headline claims.

These run the real pipeline at reduced real sizes but paper-scale
logical sizes, asserting the qualitative results of §5 (the benchmark
suite regenerates the full figures).
"""

import pytest

from repro.baselines import DPRJJoin, UMJJoin
from repro.core import MGJoin
from repro.routing import AdaptiveArmPolicy, CentralizedPolicy, DirectPolicy
from repro.sim import FlowMatrix, ShuffleSimulator

from helpers import make_workload

REAL = 2048
PAPER = 512 * 1024 * 1024


@pytest.fixture(scope="module")
def dgx1_module():
    from repro.topology import dgx1_topology

    return dgx1_topology()


@pytest.fixture(scope="module")
def joins_at_8(dgx1_module):
    workload = make_workload(num_gpus=8, real=REAL, logical=PAPER)
    return {
        algo.algorithm: algo.run(workload)
        for algo in (
            MGJoin(dgx1_module), DPRJJoin(dgx1_module), UMJJoin(dgx1_module)
        )
    }


def test_mgjoin_beats_dprj_and_umj_at_8_gpus(joins_at_8):
    """§5.3: up to 2.5x over DPRJ and ~10x over UMJ."""
    assert joins_at_8["mg-join"].throughput > 1.8 * joins_at_8["dprj"].throughput
    assert joins_at_8["mg-join"].throughput > 5.0 * joins_at_8["umj"].throughput


def test_dprj_transfer_dominated_at_8_gpus(joins_at_8):
    """§1/§5.3: DPRJ spends ~66-72% of its time moving data."""
    assert joins_at_8["dprj"].breakdown.distribution_share > 0.45


def test_mgjoin_hides_communication(joins_at_8):
    """§5.3: MG-Join's exposed distribution stays under ~35%."""
    assert joins_at_8["mg-join"].breakdown.distribution_share < 0.35


def test_mgjoin_scales_nearly_linearly(dgx1_module):
    one = MGJoin(dgx1_module).run(make_workload(1, real=REAL, logical=PAPER))
    eight = MGJoin(dgx1_module).run(make_workload(8, real=REAL, logical=PAPER))
    speedup = eight.throughput / one.throughput
    assert speedup > 5.5  # paper: 7.2x


def test_dprj_scales_poorly(dgx1_module):
    one = DPRJJoin(dgx1_module).run(make_workload(1, real=REAL, logical=PAPER))
    eight = DPRJJoin(dgx1_module).run(make_workload(8, real=REAL, logical=PAPER))
    speedup = eight.throughput / one.throughput
    assert speedup < 4.5  # paper: 2.13x


def test_umj_8_gpus_slower_than_one(dgx1_module):
    one = UMJJoin(dgx1_module).run(make_workload(1, real=REAL, logical=PAPER))
    eight = UMJJoin(dgx1_module).run(make_workload(8, real=REAL, logical=PAPER))
    assert eight.throughput < one.throughput


def test_multihop_throughput_gain(dgx1_module):
    """Figure 6: multi-hop beats direct by ~2.35x at 8 GPUs."""
    gpu_ids = tuple(range(8))
    flows = FlowMatrix.all_to_all(gpu_ids, 256 * 1024 * 1024)
    sim = ShuffleSimulator(dgx1_module, gpu_ids)
    direct = sim.run(flows, DirectPolicy())
    multihop = sim.run(flows, AdaptiveArmPolicy())
    assert multihop.throughput > 2.0 * direct.throughput


def test_bisection_utilization_gap(dgx1_module):
    """Figure 8: MG-Join's utilization far above DPRJ's at 8 GPUs."""
    gpu_ids = tuple(range(8))
    flows = FlowMatrix.all_to_all(gpu_ids, 256 * 1024 * 1024)
    sim = ShuffleSimulator(dgx1_module, gpu_ids)
    direct = sim.run(flows, DirectPolicy())
    adaptive = sim.run(flows, AdaptiveArmPolicy())
    assert adaptive.bisection_utilization > 2 * direct.bisection_utilization
    assert direct.bisection_utilization < 0.45


def test_centralized_sync_overhead(dgx1_module):
    """Figure 10: exact state helps transfers a little; sync hurts a lot."""
    gpu_ids = tuple(range(8))
    flows = FlowMatrix.all_to_all(gpu_ids, 128 * 1024 * 1024)
    sim = ShuffleSimulator(dgx1_module, gpu_ids)
    adaptive = sim.run(flows, AdaptiveArmPolicy())
    no_sync = sim.run(flows, CentralizedPolicy(0.0))
    full = sim.run(flows, CentralizedPolicy())
    assert no_sync.elapsed < 1.1 * adaptive.elapsed  # transfer comparable
    assert full.elapsed > no_sync.elapsed  # sync costs real time


def test_compression_ratio_in_paper_range(joins_at_8):
    """§5.1: 1.3x - 2x compression (slightly higher here because the
    small real shards have narrow tuple ids, so deltas pack tighter)."""
    assert 1.3 <= joins_at_8["mg-join"].compression_ratio <= 2.3


def test_average_hops_in_paper_range(joins_at_8):
    """§4.2.2: packets average only a couple of hops."""
    report = joins_at_8["mg-join"].shuffle_report
    assert 1.0 <= report.average_hops <= 3.0
