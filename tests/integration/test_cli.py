"""The command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_size


class TestParseSize:
    def test_plain_integers(self):
        assert parse_size("1024") == 1024

    def test_suffixes(self):
        assert parse_size("64K") == 64 * 1024
        assert parse_size("512M") == 512 * 1024 * 1024
        assert parse_size("2G") == 2 * 1024**3
        assert parse_size("1g") == 1024**3

    def test_fractional(self):
        assert parse_size("0.5M") == 512 * 1024

    def test_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("abc")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("0")


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_topology_command(capsys):
    assert main(["topology", "--machine", "dgx1"]) == 0
    out = capsys.readouterr().out
    assert "dgx-1" in out
    assert "175.6 GB/s" in out
    assert "12" in out  # staged pairs


def test_topology_dgx2(capsys):
    assert main(["topology", "--machine", "dgx2"]) == 0
    out = capsys.readouterr().out
    assert "dgx-2" in out and "16" in out


def test_join_command(capsys):
    code = main([
        "join", "--gpus", "2", "--tuples-per-gpu", "1M",
        "--real-tuples", "4K", "--algorithm", "mg-join",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "mg-join" in out
    assert "throughput" in out


def test_join_command_umj(capsys):
    code = main([
        "join", "--gpus", "2", "--tuples-per-gpu", "64K",
        "--real-tuples", "4K", "--algorithm", "umj",
    ])
    assert code == 0
    assert "umj" in capsys.readouterr().out


def test_join_rejects_too_many_gpus():
    with pytest.raises(SystemExit):
        main(["join", "--gpus", "99"])


def test_shuffle_command(capsys):
    code = main([
        "shuffle", "--gpus", "4", "--bytes-per-flow", "8M",
        "--policy", "direct",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "direct" in out
    assert "busiest links" in out


def test_figure_command_unknown():
    with pytest.raises(SystemExit):
        main(["figure", "nope"])


def test_figure_command_fig04(capsys, tmp_path):
    code = main(["figure", "fig04", "--out", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "NVLink" in out
    assert (tmp_path / "figure_4.json").exists()


def test_tpch_command(capsys):
    code = main([
        "tpch", "--query", "q14", "--engine", "mg-join",
        "--scale-factor", "1", "--real-scale-factor", "0.01",
    ])
    assert code == 0
    assert "q14" in capsys.readouterr().out
