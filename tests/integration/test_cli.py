"""The command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_size


class TestParseSize:
    def test_plain_integers(self):
        assert parse_size("1024") == 1024

    def test_suffixes(self):
        assert parse_size("64K") == 64 * 1024
        assert parse_size("512M") == 512 * 1024 * 1024
        assert parse_size("2G") == 2 * 1024**3
        assert parse_size("1g") == 1024**3

    def test_fractional(self):
        assert parse_size("0.5M") == 512 * 1024

    def test_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("abc")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("0")


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_topology_command(capsys):
    assert main(["topology", "--machine", "dgx1"]) == 0
    out = capsys.readouterr().out
    assert "dgx-1" in out
    assert "175.6 GB/s" in out
    assert "12" in out  # staged pairs


def test_topology_dgx2(capsys):
    assert main(["topology", "--machine", "dgx2"]) == 0
    out = capsys.readouterr().out
    assert "dgx-2" in out and "16" in out


def test_join_command(capsys):
    code = main([
        "join", "--gpus", "2", "--tuples-per-gpu", "1M",
        "--real-tuples", "4K", "--algorithm", "mg-join",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "mg-join" in out
    assert "throughput" in out


def test_join_command_umj(capsys):
    code = main([
        "join", "--gpus", "2", "--tuples-per-gpu", "64K",
        "--real-tuples", "4K", "--algorithm", "umj",
    ])
    assert code == 0
    assert "umj" in capsys.readouterr().out


def test_join_rejects_too_many_gpus():
    with pytest.raises(SystemExit):
        main(["join", "--gpus", "99"])


def test_shuffle_command(capsys):
    code = main([
        "shuffle", "--gpus", "4", "--bytes-per-flow", "8M",
        "--policy", "direct",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "direct" in out
    assert "busiest links" in out
    assert "a->b" in out and "b->a" in out  # per-direction bisection


def test_trace_command_stamps_metadata(capsys, tmp_path):
    import json

    out_path = tmp_path / "trace.json"
    code = main([
        "trace", "--gpus", "4", "--bytes-per-flow", "8M",
        "--out", str(out_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "bisection" in out and "a->b" in out
    assert "p95=" in out  # histogram percentile lines in the summary
    trace = json.loads(out_path.read_text())
    run = trace["otherData"]["run"]
    assert run["topology"] == "dgx1"
    assert run["num_gpus"] == 4
    assert "repro_version" in run


def test_analyze_shuffle_command(capsys, tmp_path):
    code = main([
        "analyze", "--mode", "shuffle", "--gpus", "4",
        "--bytes-per-flow", "4M", "--hot-gpu", "0",
        "--out-dir", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "bottleneck attribution:" in out
    assert "ARM decision audit" in out
    assert "shade:" in out  # the heatmap legend
    for name in ("heatmap.csv", "heatmap.json", "bottlenecks.json", "regret.csv"):
        assert (tmp_path / name).exists()


def test_analyze_join_command(capsys):
    code = main([
        "analyze", "--mode", "join", "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "mg-join" in out
    assert "bottleneck attribution:" in out
    assert "ARM decision audit" in out


def test_perf_command_update_and_gate(capsys, tmp_path, monkeypatch):
    from repro.bench import regression

    # The canonical collection takes ~10 s; stub it for the CLI test
    # (the real collection is covered by benchmarks/bench_perf_gate.py).
    metrics = {"shuffle.throughput_gbps": 100.0, "arm.mean_regret_us": 10.0}
    monkeypatch.setattr(
        regression, "collect_perf_metrics", lambda **kwargs: dict(metrics)
    )
    baseline = tmp_path / "BENCH_test.json"
    assert main(["perf", "--update", "--baseline", str(baseline)]) == 0
    assert "baseline updated" in capsys.readouterr().out
    assert baseline.exists()
    assert main(["perf", "--baseline", str(baseline)]) == 0
    assert "PASS" in capsys.readouterr().out
    metrics["shuffle.throughput_gbps"] = 80.0  # -20%: must gate
    assert main(["perf", "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "REGRESSION" in out


def test_figure_command_unknown():
    with pytest.raises(SystemExit):
        main(["figure", "nope"])


def test_figure_command_fig04(capsys, tmp_path):
    code = main(["figure", "fig04", "--out", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "NVLink" in out
    assert (tmp_path / "figure_4.json").exists()


def test_tpch_command(capsys):
    code = main([
        "tpch", "--query", "q14", "--engine", "mg-join",
        "--scale-factor", "1", "--real-scale-factor", "0.01",
    ])
    assert code == 0
    assert "q14" in capsys.readouterr().out


def test_chaos_command_requires_scenario():
    with pytest.raises(SystemExit):
        main(["chaos"])


def test_chaos_command_preset(capsys, tmp_path):
    import json

    code = main([
        "chaos", "--preset", "gpu-straggler", "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--out-dir", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "chaos scenario : gpu-straggler" in out
    assert "retention" in out
    report = json.loads((tmp_path / "chaos_report.json").read_text())
    assert report["correct"] is True
    assert report["counters"]["faults_injected"] == 1
    trace = json.loads((tmp_path / "chaos_trace.json").read_text())
    names = {event["name"] for event in trace["traceEvents"]}
    assert "fault.inject" in names


def test_chaos_command_plan_file(capsys, tmp_path):
    import json

    plan = {
        "name": "cut-0-1",
        "events": [{"kind": "link-fail", "at": 1e-4, "src": 0, "dst": 1}],
    }
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan))
    code = main([
        "chaos", "--plan", str(path), "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "cut-0-1" in out


def test_chaos_command_min_retention_gate(capsys, tmp_path):
    code = main([
        "chaos", "--preset", "nvlink-cut", "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--min-retention", "2.0",  # impossible floor: must gate
    ])
    assert code == 1
    assert "FAIL" in capsys.readouterr().out


def test_analyze_join_with_chaos(capsys):
    code = main([
        "analyze", "--mode", "join", "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--chaos", "nvlink-cut",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault / recovery events" in out
    assert "fault.inject" in out


def test_analyze_shuffle_with_chaos(capsys):
    code = main([
        "analyze", "--mode", "shuffle", "--gpus", "4",
        "--bytes-per-flow", "4M", "--chaos", "link-flap",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault / recovery events" in out


def test_experiments_run_list_compare_report(capsys, tmp_path):
    import json

    store = str(tmp_path / "exp")
    # The acceptance sweep, shrunk to test-sized workloads.
    code = main([
        "experiments", "run",
        "--sweep", "topology=dgx1", "policy=adaptive,static", "scale=2",
        "--tuples-per-gpu", "64K", "--real-tuples", "1K",
        "--store", store, "--jobs", "1",
    ])
    assert code == 0
    # Progress is notice output: it rides the logger on stderr so stdout
    # stays clean for --progress jsonl / --stream - machine output.
    err = capsys.readouterr().err
    assert "sweep: 2 point(s)" in err
    assert "sweep done: 2 ok, 0 failed" in err

    # One self-describing record per point, with full metadata.
    ledger = tmp_path / "exp" / "ledger.jsonl"
    lines = [json.loads(l) for l in ledger.read_text().splitlines()]
    assert len(lines) == 2
    run_ids = [line["run_id"] for line in lines]
    for run_id in run_ids:
        record = json.loads(
            (tmp_path / "exp" / "runs" / f"{run_id}.json").read_text()
        )
        assert record["meta"]["run_id"] == run_id
        assert record["metrics"]["join.throughput_btps"] > 0
        assert record["phases"] and record["config"]["topology"] == "dgx1"

    assert main(["experiments", "list", "--store", store]) == 0
    out = capsys.readouterr().out
    assert all(run_id in out for run_id in run_ids)

    # Identical simulations: the direction-aware diff passes.
    assert main([
        "experiments", "compare", run_ids[0], run_ids[1], "--store", store,
    ]) == 0
    out = capsys.readouterr().out
    assert "perf gate" in out and "PASS" in out
    assert "baseline : " in out and "policy=adaptive" in out

    assert main([
        "experiments", "report", "--store", store,
        "--metric", "join.throughput_btps",
    ]) == 0
    out = capsys.readouterr().out
    assert "join.throughput_btps:" in out and "dgx1/" in out


def test_experiments_rerun_is_deterministic(capsys, tmp_path):
    import json

    store = str(tmp_path / "exp")
    argv = [
        "experiments", "run", "--sweep", "policy=adaptive", "scale=2",
        "--tuples-per-gpu", "64K", "--real-tuples", "1K",
        "--store", store, "--jobs", "1",
    ]
    assert main(argv) == 0 and main(argv) == 0
    capsys.readouterr()
    lines = [
        json.loads(l)
        for l in (tmp_path / "exp" / "ledger.jsonl").read_text().splitlines()
    ]
    # Same configuration, same run ID; the re-run bumps the revision.
    assert len(lines) == 2
    assert lines[0]["run_id"] == lines[1]["run_id"]
    assert [line["revision"] for line in lines] == [1, 2]


def test_experiments_compare_flags_regression(capsys, tmp_path):
    import json

    from repro.experiments import ResultsStore, RunRecord

    store = ResultsStore(tmp_path / "exp")
    def record(seed, throughput, probe):
        return RunRecord.build(
            "join",
            config={"seed": seed},
            metrics={"join.throughput_btps": throughput},
            directions={"join.throughput_btps": "higher"},
            phases={"probe": probe},
        )
    a = store.put(record(1, 10.0, 0.010))
    b = store.put(record(2, 5.0, 0.050))
    code = main([
        "experiments", "compare", a.run_id, b.run_id,
        "--store", str(tmp_path / "exp"),
        "--out", str(tmp_path / "report.txt"),
    ])
    assert code == 1  # direction-aware: throughput halved
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "regression attribution:" in out and "probe" in out
    assert "REGRESSION" in (tmp_path / "report.txt").read_text()
    # Unknown run IDs are a usage error, not a crash.
    assert main([
        "experiments", "compare", "join-000000000000", a.run_id,
        "--store", str(tmp_path / "exp"),
    ]) == 2


def test_experiments_ingest_and_perf_gate_through_store(
    capsys, tmp_path, monkeypatch
):
    from repro.bench import regression

    metrics = {"shuffle.throughput_gbps": 100.0, "arm.mean_regret_us": 10.0}
    monkeypatch.setattr(
        regression, "collect_perf_metrics", lambda **kwargs: dict(metrics)
    )
    store = str(tmp_path / "exp")
    baseline = tmp_path / "BENCH_test.json"
    assert main(["perf", "--update", "--baseline", str(baseline),
                 "--store", store]) == 0
    out = capsys.readouterr().out
    assert "baseline updated" in out and "ledger record" in out

    # The gate reads its baseline through the store.
    assert main(["perf", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "baseline via store: perf-" in out and "PASS" in out
    metrics["shuffle.throughput_gbps"] = 80.0  # -20%: must gate
    assert main(["perf", "--store", store]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # An empty store is a clean error, not a traceback.
    assert main(["perf", "--store", str(tmp_path / "empty")]) == 2


def test_chaos_command_writes_store_record(capsys, tmp_path):
    store = str(tmp_path / "exp")
    code = main([
        "chaos", "--preset", "gpu-straggler", "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--store", store,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ledger record" in out
    from repro.experiments import ResultsStore

    record = ResultsStore(store).latest(kind="chaos")
    assert record is not None
    assert record.config["scenario"] == "gpu-straggler"
    assert record.metrics["chaos.throughput_retention"] > 0
    assert record.telemetry["digest_match"] is True


def test_chaos_command_corruption_preset_verified(capsys, tmp_path):
    import json

    code = main([
        "chaos", "--preset", "payload-corrupt", "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--out-dir", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "verified integrity layer active" in out
    report = json.loads((tmp_path / "chaos_report.json").read_text())
    assert report["correct"] is True
    assert report["integrity"]["verified"] is True
    assert report["healthy_digest"] == report["faulted_digest"]


def corruption_plan_file(tmp_path):
    """Whole-run magnitude-1.0 corruption on every loaded 4-GPU link."""
    import json

    plan = {
        "name": "corrupt-everything",
        "events": [
            {"kind": "payload-corrupt", "at": 0.0, "duration": 10.0,
             "src": src, "dst": dst, "magnitude": 1.0}
            for src, dst in ((0, 3), (1, 2), (2, 3))
        ],
    }
    path = tmp_path / "corrupt.json"
    path.write_text(json.dumps(plan))
    return path


def test_chaos_command_exit_3_on_silent_corruption(capsys, tmp_path):
    import json

    path = corruption_plan_file(tmp_path)
    code = main([
        "chaos", "--plan", str(path), "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--no-verify", "--out-dir", str(tmp_path),
    ])
    assert code == 3
    out = capsys.readouterr().out
    assert "SILENT CORRUPTION" in out
    report = json.loads((tmp_path / "chaos_report.json").read_text())
    assert report["correct"] is False
    assert report["integrity"]["silent_corruption"] is True
    assert report["integrity"]["corrupt_delivered"] > 0


def test_chaos_command_verify_repairs_same_plan(capsys, tmp_path):
    path = corruption_plan_file(tmp_path)
    code = main([
        "chaos", "--plan", str(path), "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K", "--verify",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "correctness    : OK" in out


def test_chaos_command_exit_2_on_conflicting_plan(capsys, tmp_path):
    import json

    plan = {
        "name": "fail-twice",
        "events": [
            {"kind": "link-fail", "at": 1e-5, "src": 0, "dst": 3},
            {"kind": "link-fail", "at": 2e-5, "src": 0, "dst": 3},
        ],
    }
    path = tmp_path / "conflict.json"
    path.write_text(json.dumps(plan))
    code = main([
        "chaos", "--plan", str(path), "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "already removed by" in err


def test_chaos_command_checksum_alert_fires(capsys, tmp_path):
    import json

    path = corruption_plan_file(tmp_path)
    alerts = tmp_path / "alerts.jsonl"
    code = main([
        "chaos", "--plan", str(path), "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--verify", "--alerts", str(alerts),
    ])
    assert code == 0
    fired = [json.loads(line) for line in alerts.read_text().splitlines()]
    assert any(alert["rule"] == "checksum-failure" for alert in fired)


def test_chaos_fuzz_command(capsys, tmp_path):
    import json

    code = main([
        "chaos", "fuzz", "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--seed", "8", "--budget", "2", "--verify",
        "--out-dir", str(tmp_path), "--store", str(tmp_path / "store"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "verdict        : OK" in out
    report = json.loads((tmp_path / "fuzz_report.json").read_text())
    assert report["ok"] is True
    assert report["plans_run"] == 2
    from repro.experiments import ResultsStore

    record = ResultsStore(tmp_path / "store").latest(kind="chaos-fuzz")
    assert record is not None
    assert record.metrics["fuzz.failures"] == 0


def test_chaos_fuzz_is_deterministic(capsys, tmp_path):
    import json

    argv = [
        "chaos", "fuzz", "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--seed", "8", "--budget", "2", "--verify",
    ]
    assert main(argv + ["--out-dir", str(tmp_path / "a")]) == 0
    assert main(argv + ["--out-dir", str(tmp_path / "b")]) == 0
    capsys.readouterr()
    first = json.loads((tmp_path / "a" / "fuzz_report.json").read_text())
    second = json.loads((tmp_path / "b" / "fuzz_report.json").read_text())
    first.pop("run"), second.pop("run")  # wall-clock metadata differs
    assert first == second


def test_chaos_fuzz_writes_minimized_reproducer(capsys, tmp_path):
    import json

    from repro.faults import FaultPlan

    # With verification off, corruption plans are caught by the audit —
    # a guaranteed failure for the shrinker to minimize.
    code = main([
        "chaos", "fuzz", "--gpus", "4",
        "--tuples-per-gpu", "1M", "--real-tuples", "4K",
        "--seed", "8", "--budget", "1", "--no-verify",
        "--out-dir", str(tmp_path),
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "FAILURE" in out
    report = json.loads((tmp_path / "fuzz_report.json").read_text())
    assert report["ok"] is False
    (failure,) = report["failures"]
    reproducer = tmp_path / f"{failure['plan']['name']}.min.json"
    plan = FaultPlan.from_file(reproducer)  # loadable as a plan file
    assert len(plan.events) <= len(failure["plan"]["events"])


def test_serve_command_synthetic(capsys, tmp_path):
    import json

    report_path = tmp_path / "serve.json"
    code = main([
        "serve", "--synthetic", "3", "--gpus", "2", "--tuples", "1K",
        "--max-in-flight", "2", "--json", str(report_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "completed            : 3" in out
    report = json.loads(report_path.read_text())
    assert report["exit_code"] == 0
    assert {q["status"] for q in report["queries"]} == {"completed"}


def test_serve_command_requires_one_input_source():
    with pytest.raises(SystemExit):
        main(["serve"])
    with pytest.raises(SystemExit):
        main(["serve", "requests.json", "--synthetic", "2"])


def test_serve_command_retry_budget_exhaustion(capsys, tmp_path):
    """The retry-exhaustion regression: the victim fails alone with a
    structured status and exit code 1 while its sibling's digest is
    untouched."""
    import json

    requests = tmp_path / "requests.json"
    requests.write_text(json.dumps({"requests": [
        {"name": "victim", "gpu_ids": [0, 1], "tuples": 4096, "seed": 7},
        {"name": "bystander", "gpu_ids": [4, 5], "tuples": 4096, "seed": 8},
    ]}))
    plan = tmp_path / "blackout.json"
    plan.write_text(json.dumps({
        "name": "blackout-01", "seed": 42,
        "events": [{"kind": "link-blackout", "at": 0.0, "src": 0,
                    "dst": 1, "duration": 0.005}],
    }))
    argv = [
        "serve", str(requests), "--policy", "direct",
        "--plan", str(plan),
    ]
    healthy_path = tmp_path / "healthy.json"
    assert main(argv + ["--json", str(healthy_path)]) == 0
    code = main(argv + ["--retry-budget", "0",
                        "--json", str(tmp_path / "starved.json")])
    assert code == 1
    capsys.readouterr()
    healthy = json.loads(healthy_path.read_text())
    starved = json.loads((tmp_path / "starved.json").read_text())
    by_name = {q["name"]: q for q in starved["queries"]}
    assert by_name["victim"]["status"] == "retry-budget-exhausted"
    assert by_name["bystander"]["status"] == "completed"
    healthy_by_name = {q["name"]: q for q in healthy["queries"]}
    assert (by_name["bystander"]["match_digest"]
            == healthy_by_name["bystander"]["match_digest"])


def test_serve_command_rejects_bad_inputs(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    assert main(["serve", str(bad)]) == 2


def test_chaos_serve_command_gate(capsys, tmp_path):
    import json

    store = tmp_path / "store"
    code = main([
        "chaos", "--serve", "--preset", "gpu-crash", "--gpus", "4",
        "--real-tuples", "1K", "--queries", "12",
        "--out-dir", str(tmp_path), "--store", str(store),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "digest identity : OK" in out
    report = json.loads((tmp_path / "serve_chaos_report.json").read_text())
    assert report["correct"] is True
    assert report["in_flight_peak"] >= 12
    assert report["recovered_queries"]
    from repro.experiments.store import ResultsStore

    record = ResultsStore(store).latest(kind="serve-chaos")
    assert record is not None
    assert record.metrics["serve.chaos_correct"] == 1.0


def test_chaos_serve_requires_a_scenario():
    with pytest.raises(SystemExit):
        main(["chaos", "--serve", "--gpus", "4"])
