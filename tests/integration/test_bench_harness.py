"""The benchmark harness and reporting layer."""

import json

import pytest

from repro.bench.harness import FigureResult, bench_workload, run_observed
from repro.bench.reporting import format_markdown_table, save_figure_result


class TestFigureResult:
    def test_add_and_series(self):
        result = FigureResult("Fig X", "test")
        result.add(algo="a", gpus=2, value=1.0)
        result.add(algo="b", gpus=2, value=2.0)
        result.add(algo="a", gpus=4, value=3.0)
        assert len(result.series("algo", "a")) == 2
        assert result.column("value", where={"algo": "a"}) == [1.0, 3.0]

    def test_markdown_contains_rows_and_notes(self):
        result = FigureResult("Fig X", "a title")
        result.add(x=1, y=2.5)
        result.note("a note")
        text = result.to_markdown()
        assert "Fig X" in text and "a title" in text
        assert "| x | y |" in text
        assert "> a note" in text


class TestMarkdownTable:
    def test_empty(self):
        assert format_markdown_table([]) == "(no rows)\n"

    def test_heterogeneous_rows_union_columns(self):
        text = format_markdown_table([{"a": 1}, {"b": 2}])
        assert "| a | b |" in text

    def test_float_formatting(self):
        text = format_markdown_table([{"v": 123.456}, {"v": 1.23456}, {"v": 0.0123}])
        assert "123" in text
        assert "1.23" in text
        assert "0.0123" in text


class TestSaveFigureResult:
    def test_json_and_md_written(self, tmp_path):
        result = FigureResult("Figure 99", "save test")
        result.add(a=1)
        path = save_figure_result(result, tmp_path)
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["rows"] == [{"a": 1}]
        assert (tmp_path / "figure_99.md").exists()

    def test_slashes_in_names_sanitized(self, tmp_path):
        result = FigureResult("Ablation a/b", "slash test")
        result.add(a=1)
        path = save_figure_result(result, tmp_path)
        assert path.name == "ablation_a-b.json"

    def test_metric_snapshots_persisted(self, tmp_path):
        from repro.obs import Observer

        result = FigureResult("Figure 98", "metrics test")
        result.add(a=1)
        observer = Observer()
        observer.counter("probe.matches", gpu=0).inc(5)
        result.attach_metrics("mgjoin-8gpus", observer)
        path = save_figure_result(result, tmp_path)
        data = json.loads(path.read_text())
        snapshot = data["metrics"]["mgjoin-8gpus"]
        assert snapshot["counters"][0]["value"] == 5

    def test_no_metrics_key_without_snapshots(self, tmp_path):
        result = FigureResult("Figure 97", "no metrics")
        result.add(a=1)
        data = json.loads(save_figure_result(result, tmp_path).read_text())
        assert "metrics" not in data


class TestRunObserved:
    def test_observer_attached_then_restored(self, dgx1):
        from helpers import make_workload
        from repro.core.mgjoin import MGJoin

        algorithm = MGJoin(dgx1)
        workload = make_workload(num_gpus=2, real=512, logical=1 << 14)
        result, observer = run_observed(algorithm, workload)
        assert algorithm.observer is None  # restored
        assert result.matches_real > 0
        assert observer.spans.find("join")
        assert observer.metrics.total("probe.matches") == result.matches_real


class TestBenchWorkload:
    def test_cached_identity(self):
        a = bench_workload((0, 1), logical_tuples_per_gpu=4096,
                           real_tuples_per_gpu=1024)
        b = bench_workload((0, 1), logical_tuples_per_gpu=4096,
                           real_tuples_per_gpu=1024)
        assert a is b

    def test_different_parameters_differ(self):
        a = bench_workload((0, 1), logical_tuples_per_gpu=4096,
                           real_tuples_per_gpu=1024)
        b = bench_workload((0, 1), logical_tuples_per_gpu=4096,
                           real_tuples_per_gpu=1024, placement_zipf=0.5)
        assert a is not b


def test_fig04_runs_fast_and_has_shape():
    from repro.bench.figures import fig04_packet_size

    result = fig04_packet_size()
    assert len(result.rows) == 14  # 2 KB .. 16 MB doublings
    assert result.rows[0]["packet_kb"] == 2
    assert result.rows[-1]["packet_kb"] == 16384
