"""Generality on the DGX-Station (paper §5.1's second machine)."""

import pytest

from repro.baselines import DPRJJoin
from repro.core import MGJoin
from repro.routing import AdaptiveArmPolicy, DirectPolicy
from repro.sim import FlowMatrix, ShuffleSimulator

from helpers import make_workload

PAPER = 512 * 1024 * 1024


def test_station_join_is_exact(station):
    workload = make_workload(num_gpus=4, real=1024)
    result = MGJoin(station).run(workload)
    assert result.matches_real == workload.r.num_tuples


def test_station_mgjoin_not_worse_than_dprj(station):
    workload = make_workload(num_gpus=4, real=2048, logical=PAPER)
    mgj = MGJoin(station).run(workload)
    dprj = DPRJJoin(station).run(workload)
    assert mgj.throughput >= dprj.throughput


def test_station_gains_are_smaller_than_dgx1(dgx1, station):
    """The DGX-Station is a full NVLink clique: every pair is adjacent,
    so multi-hop routing has less to fix than on the DGX-1 — the
    paper's generality claim, quantified."""
    flows_station = FlowMatrix.all_to_all(tuple(range(4)), 512 * 1024 * 1024)
    sim_station = ShuffleSimulator(station, tuple(range(4)))
    station_gain = (
        sim_station.run(flows_station, DirectPolicy()).elapsed
        / sim_station.run(flows_station, AdaptiveArmPolicy()).elapsed
    )
    sim_dgx1 = ShuffleSimulator(dgx1, tuple(range(8)))
    flows_dgx1 = FlowMatrix.all_to_all(tuple(range(8)), 512 * 1024 * 1024)
    dgx1_gain = (
        sim_dgx1.run(flows_dgx1, DirectPolicy()).elapsed
        / sim_dgx1.run(flows_dgx1, AdaptiveArmPolicy()).elapsed
    )
    assert dgx1_gain > station_gain
    assert station_gain >= 0.99  # adaptive never hurts


def test_station_scales_with_gpus(station):
    one = MGJoin(station).run(make_workload(1, real=2048, logical=PAPER))
    four = MGJoin(station).run(make_workload(4, real=2048, logical=PAPER))
    assert four.throughput > 3.0 * one.throughput
