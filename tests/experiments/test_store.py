"""ResultsStore: deterministic IDs, round-trips, ledger semantics."""

import json

import pytest

from repro.experiments.store import (
    ResultsStore,
    RunRecord,
    StoreError,
    chaos_record,
)
from repro.obs.meta import run_id_for


def make_record(policy="adaptive", throughput=17.5, **extras) -> RunRecord:
    config = {"topology": "dgx1", "policy": policy, "scale": 8}
    return RunRecord.build(
        "join",
        config=config,
        metrics={"join.throughput_btps": throughput, "join.total_time_ms": 1.25},
        directions={
            "join.throughput_btps": "higher",
            "join.total_time_ms": "lower",
        },
        meta={"topology": "dgx1", "policy": policy, "num_gpus": 8},
        **extras,
    )


def test_run_id_is_deterministic_across_builds():
    a = make_record()
    b = make_record()
    assert a.run_id == b.run_id
    assert a.run_id == run_id_for("join", a.config)
    assert a.run_id.startswith("join-")
    # A different config is a different experiment.
    assert make_record(policy="direct").run_id != a.run_id


def test_record_round_trips_exactly():
    record = make_record(
        phases={"probe": 0.0123456789012345},
        links=[{"link": "NVLINK 0<->1", "busy_seconds": 0.5}],
        telemetry={"digest_match": True},
    )
    clone = RunRecord.from_dict(json.loads(record.to_json()))
    assert clone.to_dict() == record.to_dict()
    assert clone.to_json() == record.to_json()


def test_to_json_is_diff_stable():
    record = make_record()
    # Same content serialized twice is byte-identical, keys sorted.
    assert record.to_json() == record.to_json()
    payload = json.loads(record.to_json())
    assert list(payload) == sorted(payload)


def test_put_assigns_sequence_and_bumps_revision(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    first = store.put(make_record())
    other = store.put(make_record(policy="direct"))
    assert (first.sequence, first.revision) == (1, 1)
    assert (other.sequence, other.revision) == (2, 1)
    # Re-running the same configuration keeps the ID, bumps revision.
    again = store.put(make_record(throughput=18.0))
    assert again.run_id == first.run_id
    assert (again.sequence, again.revision) == (3, 2)
    assert len(store) == 2
    assert store.get(first.run_id).metrics["join.throughput_btps"] == 18.0


def test_history_keeps_superseded_revisions(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    store.put(make_record(throughput=10.0))
    store.put(make_record(throughput=12.0))
    history = store.history()
    assert [entry["join.throughput_btps"] for entry in history] == [10.0, 12.0]
    assert len(store.index()) == 1  # index keeps the last line per ID


def test_get_resolves_unambiguous_prefix(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    record = store.put(make_record())
    assert store.get(record.run_id[:9]).run_id == record.run_id
    with pytest.raises(StoreError, match="no run"):
        store.get("nope-000000")
    store.put(make_record(policy="direct"))
    with pytest.raises(StoreError, match="ambiguous"):
        store.get("join-")


def test_select_filters_and_latest(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    store.put(make_record(policy="adaptive"))
    store.put(make_record(policy="direct"))
    assert len(store.select(kind="join")) == 2
    (entry,) = store.select(policy="direct")
    assert entry["policy"] == "direct"
    assert store.latest(kind="join").meta["policy"] == "direct"
    assert store.latest(kind="perf") is None


def test_rebuild_recovers_deleted_ledger(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    a = store.put(make_record())
    b = store.put(make_record(policy="direct"))
    store.ledger_path.unlink()
    assert store.rebuild() == 2
    assert store.run_ids() == [a.run_id, b.run_id]


def test_rebuild_skips_corrupt_run_files_with_warning(tmp_path):
    """A torn/corrupt run file must not abort recovery of the rest."""
    store = ResultsStore(tmp_path / "exp")
    a = store.put(make_record())
    b = store.put(make_record(policy="direct"))
    truncated = store.runs_dir / f"{a.run_id}.json"
    truncated.write_text(truncated.read_text()[:40])  # torn write
    (store.runs_dir / "stray.json").write_text('{"kind": "join"}')  # no run_id
    store.ledger_path.unlink()
    with pytest.warns(UserWarning, match="skipping corrupt run file"):
        assert store.rebuild() == 1
    assert store.run_ids() == [b.run_id]


def test_history_skips_torn_tail_line(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    store.put(make_record())
    with store.ledger_path.open("a") as ledger:
        ledger.write('{"run_id": "join-tr')  # torn write
    assert len(store.history()) == 1


def test_run_id_rejects_path_separators():
    with pytest.raises(StoreError, match="path separators"):
        RunRecord(run_id="../evil", kind="join")


def test_ingest_bench_baseline(tmp_path):
    baseline = tmp_path / "BENCH_test.json"
    baseline.write_text(json.dumps({
        "run": {"topology": "dgx1", "num_gpus": 8, "repro_version": "1.4.0"},
        "directions": {"join.throughput_btps": "higher"},
        "metrics": {"join.throughput_btps": 17.5},
    }))
    store = ResultsStore(tmp_path / "exp")
    record = store.ingest(baseline)
    assert record.kind == "perf"
    assert record.metrics == {"join.throughput_btps": 17.5}
    assert record.directions == {"join.throughput_btps": "higher"}
    # Re-ingesting the same file is the same run, one revision later.
    assert store.ingest(baseline).run_id == record.run_id
    assert store.get(record.run_id).revision == 2


def test_ingest_chaos_report(tmp_path):
    report = tmp_path / "chaos_report.json"
    report.write_text(json.dumps({
        "plan": {"name": "nvlink-brownout"},
        "run": {"topology": "dgx1", "num_gpus": 8, "seed": 7,
                "policy": "adaptive"},
        "throughput_retention": 0.84,
        "healthy_seconds": 1.0,
        "faulted_seconds": 1.2,
        "correct": True,
        "healthy_digest": "abc",
        "faulted_digest": "abc",
        "counters": {"packet_reroutes": 3},
    }))
    store = ResultsStore(tmp_path / "exp")
    record = store.ingest(report)
    assert record.kind == "chaos"
    assert record.metrics["chaos.throughput_retention"] == 0.84
    assert record.metrics["chaos.packet_reroutes"] == 3.0
    assert record.directions["chaos.packet_reroutes"] == "track"
    assert record.telemetry["digest_match"] is True
    assert record.config["scenario"] == "nvlink-brownout"


def test_ingest_rejects_unknown_shape(tmp_path):
    path = tmp_path / "mystery.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(StoreError, match="unrecognized"):
        ResultsStore(tmp_path / "exp").ingest(path)


def test_chaos_record_digest_mismatch():
    record = chaos_record({
        "plan": {"name": "gpu-crash"},
        "throughput_retention": 0.5,
        "healthy_seconds": 1.0,
        "faulted_seconds": 2.0,
        "correct": False,
        "healthy_digest": "abc",
        "faulted_digest": "xyz",
    })
    assert record.telemetry["digest_match"] is False
    assert record.metrics["chaos.correct"] == 0.0
