"""Sweep harness: parsing, run_one records, run_batch events."""

import dataclasses

import pytest

from repro.experiments.store import ResultsStore
from repro.experiments.sweep import (
    SweepError,
    SweepPoint,
    parse_sweep,
    run_batch,
    run_one,
    validate_point,
)

#: Small enough that a sweep point runs in well under a second.
TINY = SweepPoint(scale=2, tuples_per_gpu=64 * 1024, real_tuples=1024)


def test_parse_sweep_cartesian_product():
    points = parse_sweep(
        ["topology=dgx1", "policy=adaptive,static", "scale=2,4"],
        defaults=TINY,
    )
    assert len(points) == 4
    assert {(p.policy, p.scale) for p in points} == {
        ("adaptive", 2), ("adaptive", 4), ("static", 2), ("static", 4),
    }
    # Unswept axes keep the default point's values.
    assert all(p.real_tuples == TINY.real_tuples for p in points)
    # Deterministic expansion order: token order drives the product.
    assert [p.policy for p in points[:2]] == ["adaptive", "adaptive"]


def test_parse_sweep_rejects_bad_tokens():
    with pytest.raises(SweepError, match="key=v1"):
        parse_sweep(["topology"])
    with pytest.raises(SweepError, match="unknown sweep axis"):
        parse_sweep(["topolgy=dgx1"])
    with pytest.raises(SweepError, match="twice"):
        parse_sweep(["scale=2", "scale=4"])
    with pytest.raises(SweepError, match="empty sweep"):
        parse_sweep([])
    with pytest.raises(SweepError, match="bad value"):
        parse_sweep(["scale=two"])


def test_parse_sweep_faults_none_and_dedup():
    points = parse_sweep(["faults=none,nvlink-cut"], defaults=TINY)
    assert [p.faults for p in points] == [None, "nvlink-cut"]
    # Duplicate values collapse to one point per run ID.
    assert len(parse_sweep(["policy=adaptive,adaptive"], defaults=TINY)) == 1


def test_validate_point_rejects_unknowns():
    with pytest.raises(SweepError, match="unknown topology"):
        validate_point(dataclasses.replace(TINY, topology="dgx9"))
    with pytest.raises(SweepError, match="unknown policy"):
        validate_point(dataclasses.replace(TINY, policy="psychic"))
    with pytest.raises(SweepError, match="unknown fault preset"):
        validate_point(dataclasses.replace(TINY, faults="meteor"))
    validate_point(dataclasses.replace(TINY, policy="static"))  # aliased


def test_run_one_builds_full_record(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    record = run_one(TINY, store=store)
    assert record.run_id == TINY.run_id
    assert record.kind == "join"
    assert record.metrics["join.throughput_btps"] > 0
    assert record.directions["join.throughput_btps"] == "higher"
    assert record.metrics["perf.self_time_seconds"] > 0
    # Span-derived phases, link breakdown, meta stamp all present.
    assert record.phases
    assert all(seconds >= 0 for seconds in record.phases.values())
    assert record.links and "busy_seconds" in record.links[0]
    assert record.meta["run_id"] == TINY.run_id
    assert record.meta["policy"] == "adaptive"
    assert record.meta["config_hash"]  # like-for-like provenance digest
    # Self-time gauges made it into the registry snapshot.
    gauge_names = {row["name"] for row in record.snapshot["gauges"]}
    assert any(name.endswith(".self_seconds") for name in gauge_names)
    assert record.run_id in store


def test_run_one_is_deterministic_across_repeats():
    a, b = run_one(TINY), run_one(TINY)
    assert a.run_id == b.run_id
    wallclock = {"perf.self_time_seconds"}
    assert {k: v for k, v in a.metrics.items() if k not in wallclock} == \
           {k: v for k, v in b.metrics.items() if k not in wallclock}


def test_run_one_chaos_point_adds_fault_telemetry(tmp_path):
    point = dataclasses.replace(TINY, faults="nvlink-cut")
    record = run_one(point)
    assert record.kind == "chaos"
    assert 0 < record.metrics["chaos.throughput_retention"] <= 1.5
    assert record.metrics["chaos.correct"] == 1.0
    assert record.telemetry["digest_match"] is True


def test_run_one_rejects_overscaled_point():
    with pytest.raises(SweepError, match="exceeds"):
        run_one(dataclasses.replace(TINY, scale=64))


def test_run_batch_commits_and_emits_events(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    points = parse_sweep(["policy=adaptive,static"], defaults=TINY)
    events = []
    records = run_batch(points, store, jobs=1, progress=events.append)
    assert len(records) == 2
    assert len(store) == 2
    kinds = [event["event"] for event in events]
    assert kinds[0] == "sweep_started"
    assert kinds[-1] == "sweep_finished"
    assert kinds.count("point_finished") == 2
    finished = [e for e in events if e["event"] == "point_finished"]
    assert {e["run_id"] for e in finished} == {p.run_id for p in points}
    assert all(e["throughput_btps"] > 0 for e in finished)
    assert events[-1]["failed"] == 0


def test_run_batch_surfaces_failures_after_committing_rest(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    good = TINY
    bad = dataclasses.replace(TINY, seed=7, scale=64)  # over-scaled
    events = []
    with pytest.raises(SweepError, match="1 of 2"):
        # validate_point passes (dgx1 exists, 64 >= 1); the worker fails.
        run_batch([good, bad], store, jobs=1, progress=events.append)
    assert len(store) == 1  # the good point still landed
    assert any(event["event"] == "point_failed" for event in events)


def test_run_batch_rejects_empty_and_bad_jobs(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    with pytest.raises(SweepError, match="at least one"):
        run_batch([], store)
    with pytest.raises(SweepError, match="jobs"):
        run_batch([TINY], store, jobs=0)


def test_run_batch_parallel_matches_serial(tmp_path):
    points = parse_sweep(["policy=adaptive,direct"], defaults=TINY)
    serial = ResultsStore(tmp_path / "serial")
    parallel = ResultsStore(tmp_path / "parallel")
    run_batch(points, serial, jobs=1)
    run_batch(points, parallel, jobs=2)
    wallclock = {"perf.self_time_seconds"}
    for point in points:
        a = serial.get(point.run_id).metrics
        b = parallel.get(point.run_id).metrics
        assert {k: v for k, v in a.items() if k not in wallclock} == \
               {k: v for k, v in b.items() if k not in wallclock}
