"""Sweep harness: the queries=/arrival= serving axes."""

import dataclasses

import pytest

from repro.experiments.store import ResultsStore
from repro.experiments.sweep import (
    SweepError,
    SweepPoint,
    parse_sweep,
    run_one,
    validate_point,
)

TINY = SweepPoint(scale=2, tuples_per_gpu=64 * 1024, real_tuples=1024)


class TestServeAxes:
    def test_parse_queries_and_arrival(self):
        points = parse_sweep(
            ["queries=1,4", "arrival=0.0,0.001"], defaults=TINY,
        )
        assert len(points) == 4
        assert {(p.queries, p.arrival) for p in points} == {
            (1, 0.0), (1, 0.001), (4, 0.0), (4, 0.001),
        }

    def test_multi_query_points_are_serve_runs(self):
        solo = dataclasses.replace(TINY, queries=1)
        served = dataclasses.replace(TINY, queries=4)
        assert solo.run_kind == "join"
        assert served.run_kind == "serve"
        assert "4q" in served.label and "4q" not in solo.label
        # Fault axis composes: a faulted serve point is still "serve".
        assert dataclasses.replace(served, faults="gpu-crash").run_kind == "serve"

    def test_validate_rejects_bad_serve_points(self):
        with pytest.raises(SweepError, match="queries"):
            validate_point(dataclasses.replace(TINY, queries=0))
        with pytest.raises(SweepError, match="arrival"):
            validate_point(dataclasses.replace(TINY, arrival=-0.1))
        validate_point(dataclasses.replace(TINY, queries=4))

    def test_validate_rejects_corruption_under_concurrency(self):
        point = dataclasses.replace(TINY, queries=4, faults="payload-corrupt")
        with pytest.raises(SweepError, match="not supported with queries"):
            validate_point(point)
        # Solo corruption chaos stays allowed.
        validate_point(dataclasses.replace(TINY, faults="payload-corrupt"))


class TestServeRunOne:
    def test_healthy_serve_point_records_sla_metrics(self, tmp_path):
        store = ResultsStore(tmp_path / "exp")
        point = dataclasses.replace(TINY, queries=4)
        record = run_one(point, store=store)
        assert record.kind == "serve"
        assert record.metrics["serve.completed"] == 4.0
        assert record.metrics["serve.failed"] == 0.0
        assert record.metrics["serve.in_flight_peak"] == 4.0
        assert record.metrics["serve.retention_ratio"] == 1.0
        assert record.metrics["serve.elapsed_ms"] > 0
        assert record.directions["serve.latency_max_ms"] == "lower"
        statuses = record.telemetry["serve"]["statuses"]
        assert set(statuses.values()) == {"completed"}

    def test_faulted_serve_point_carries_the_chaos_gate(self, tmp_path):
        store = ResultsStore(tmp_path / "exp")
        point = dataclasses.replace(
            TINY, scale=4, queries=4, faults="gpu-crash",
        )
        record = run_one(point, store=store)
        assert record.kind == "serve"
        assert record.metrics["chaos.correct"] == 1.0
        assert record.metrics["serve.completed"] == 4.0
        assert record.metrics["chaos.recovered_queries"] >= 1.0
