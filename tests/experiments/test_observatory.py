"""Observatory: direction-aware diffs, attribution, trend lines."""

from repro.experiments.observatory import (
    attribute_regression,
    diff_records,
    render_compare,
    render_trends,
    sparkline,
    trend_rows,
)
from repro.experiments.store import ResultsStore, RunRecord


def make_record(throughput, elapsed_ms=1.0, seed=42, *, phases=None,
                links=None) -> RunRecord:
    return RunRecord.build(
        "join",
        config={"topology": "dgx1", "policy": "adaptive", "seed": seed},
        metrics={
            "join.throughput_btps": throughput,
            "shuffle.elapsed_ms": elapsed_ms,
            "shuffle.average_hops": 1.0,
        },
        directions={
            "join.throughput_btps": "higher",
            "shuffle.elapsed_ms": "lower",
            "shuffle.average_hops": "track",
        },
        meta={"topology": "dgx1", "policy": "adaptive", "num_gpus": 8},
        phases=phases or {},
        links=links or [],
    )


def test_diff_records_is_direction_aware():
    baseline = make_record(throughput=10.0, elapsed_ms=1.0)
    # Throughput down 20% regresses; elapsed down 20% improves.
    current = make_record(throughput=8.0, elapsed_ms=0.8, seed=7)
    result = diff_records(baseline, current, tolerance=0.10)
    assert not result.ok
    assert [c.name for c in result.regressions] == ["join.throughput_btps"]
    # Track metrics never gate, even when they move.
    hops = next(c for c in result.comparisons
                if c.name == "shuffle.average_hops")
    assert not hops.regressed(0.10)


def test_diff_records_within_tolerance_passes():
    baseline = make_record(throughput=10.0)
    current = make_record(throughput=9.5, seed=7)  # -5% < 10% band
    assert diff_records(baseline, current).ok


def test_attribution_names_moved_phases_and_links():
    baseline = make_record(
        10.0,
        phases={"probe": 0.010, "build": 0.005},
        links=[{"link": "NVLINK 0<->1", "busy_seconds": 0.002}],
    )
    current = make_record(
        8.0, seed=7,
        phases={"probe": 0.025, "build": 0.005},
        links=[{"link": "NVLINK 0<->1", "busy_seconds": 0.009}],
    )
    result = diff_records(baseline, current)
    text = attribute_regression(baseline, current, result)
    assert "join.throughput_btps" in text
    assert "probe" in text and "build" not in text  # only movers listed
    assert "NVLINK 0<->1" in text


def test_render_compare_includes_attribution_only_on_regression():
    baseline = make_record(10.0, phases={"probe": 0.01})
    good = make_record(10.0)
    bad = make_record(5.0, seed=7, phases={"probe": 0.05})
    assert "attribution" not in render_compare(
        baseline, good, diff_records(baseline, good))
    report = render_compare(baseline, bad, diff_records(baseline, bad))
    assert "regression attribution:" in report
    assert report.startswith("baseline : join-")


def test_trend_rows_use_full_ledger_history(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    for throughput in (10.0, 11.0, 12.0):
        store.put(make_record(throughput))  # same ID, three revisions
    series = trend_rows(store, "join.throughput_btps")
    ((key, samples),) = series.items()
    assert key[0] == "dgx1" and key[1] == "adaptive"
    assert [value for _, value in samples] == [10.0, 11.0, 12.0]
    # Filters narrow the history.
    assert trend_rows(store, "join.throughput_btps", topology="dgx2") == {}
    assert trend_rows(store, "join.throughput_btps", kind="chaos") == {}


def test_sparkline_shape():
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"
    line = sparkline([0.0, 0.5, 1.0])
    assert line[0] == "▁" and line[-1] == "█"


def test_render_trends(tmp_path):
    store = ResultsStore(tmp_path / "exp")
    store.put(make_record(10.0))
    store.put(make_record(12.0))
    text = render_trends(store, metrics=["join.throughput_btps"])
    assert "join.throughput_btps:" in text
    assert "dgx1/adaptive" in text
    assert "latest 12.0000" in text and "2 samples" in text
    assert render_trends(store, metrics=["no.such.metric"]).startswith("(no")
