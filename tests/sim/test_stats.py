"""Bisection cuts and shuffle reports."""

import pytest

from repro.sim import bisection_cut
from repro.sim.stats import LinkStats
from repro.topology.links import LinkSpec, LinkType
from repro.topology.nodes import gpu


def test_dgx1_min_cut_is_the_board_split(dgx1):
    cut = bisection_cut(dgx1)
    assert set(cut.side_a) in ({0, 1, 2, 3}, {4, 5, 6, 7})
    assert cut.capacity_ab == pytest.approx(175.6e9, rel=0.01)
    assert cut.capacity_ba == pytest.approx(175.6e9, rel=0.01)


def test_crossing_links_are_cross_board(dgx1):
    cut = bisection_cut(dgx1)
    by_id = {link.link_id: link for link in dgx1.links}
    for link_id in cut.crossing_ab:
        link = by_id[link_id]
        if link.src.is_gpu and link.dst.is_gpu:
            sides = ({0, 1, 2, 3}, {4, 5, 6, 7})
            src_board = 0 if link.src.index in sides[0] else 1
            dst_board = 0 if link.dst.index in sides[0] else 1
            assert src_board != dst_board


def test_cut_subset(dgx1):
    cut = bisection_cut(dgx1, (0, 1))
    assert cut.side_a == (0,) and cut.side_b == (1,)


def test_cut_needs_two_gpus(dgx1):
    with pytest.raises(ValueError):
        bisection_cut(dgx1, (5,))


def test_link_stats_utilization():
    spec = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK)
    stats = LinkStats(spec=spec, bytes_sent=100, busy_time=0.5, transfers=3)
    assert stats.utilization(1.0) == pytest.approx(0.5)
    assert stats.utilization(0.25) == 1.0  # clamped
    assert stats.achieved_bandwidth(2.0) == pytest.approx(50.0)
    assert stats.utilization(0.0) == 0.0


def test_link_stats_degenerate_elapsed():
    """Zero or negative horizons must not divide: both rates are 0."""
    spec = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK)
    stats = LinkStats(spec=spec, bytes_sent=100, busy_time=0.5, transfers=3)
    for elapsed in (0.0, -1.0, -0.001):
        assert stats.utilization(elapsed) == 0.0
        assert stats.achieved_bandwidth(elapsed) == 0.0


def test_link_stats_idle_link():
    spec = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK)
    stats = LinkStats(spec=spec, bytes_sent=0, busy_time=0.0, transfers=0)
    assert stats.utilization(1.0) == 0.0
    assert stats.achieved_bandwidth(1.0) == 0.0
