"""Bisection cuts and shuffle reports."""

import pytest

from repro.sim import bisection_cut
from repro.sim.stats import BisectionCut, LinkStats, ShuffleReport
from repro.topology import dgx2_topology, multi_node_dgx1
from repro.topology.links import LinkSpec, LinkType
from repro.topology.nodes import gpu


def test_dgx1_min_cut_is_the_board_split(dgx1):
    cut = bisection_cut(dgx1)
    assert set(cut.side_a) in ({0, 1, 2, 3}, {4, 5, 6, 7})
    assert cut.capacity_ab == pytest.approx(175.6e9, rel=0.01)
    assert cut.capacity_ba == pytest.approx(175.6e9, rel=0.01)


def test_crossing_links_are_cross_board(dgx1):
    cut = bisection_cut(dgx1)
    by_id = {link.link_id: link for link in dgx1.links}
    for link_id in cut.crossing_ab:
        link = by_id[link_id]
        if link.src.is_gpu and link.dst.is_gpu:
            sides = ({0, 1, 2, 3}, {4, 5, 6, 7})
            src_board = 0 if link.src.index in sides[0] else 1
            dst_board = 0 if link.dst.index in sides[0] else 1
            assert src_board != dst_board


def test_cut_subset(dgx1):
    cut = bisection_cut(dgx1, (0, 1))
    assert cut.side_a == (0,) and cut.side_b == (1,)


def test_cut_needs_two_gpus(dgx1):
    with pytest.raises(ValueError):
        bisection_cut(dgx1, (5,))


@pytest.mark.parametrize("count", [3, 5, 7])
def test_cut_odd_gpu_counts(dgx1, count):
    """Odd subsets split floor/ceil and still find a positive cut."""
    ids = tuple(dgx1.gpu_ids[:count])
    cut = bisection_cut(dgx1, ids)
    assert len(cut.side_a) == count // 2
    assert len(cut.side_b) == count - count // 2
    assert set(cut.side_a) | set(cut.side_b) == set(ids)
    assert not set(cut.side_a) & set(cut.side_b)
    assert cut.capacity_ab > 0 and cut.capacity_ba > 0
    assert cut.crossing_ab and cut.crossing_ba


def test_cut_dgx2_is_balanced_and_symmetric():
    machine = dgx2_topology()
    cut = bisection_cut(machine)
    assert len(cut.side_a) == len(cut.side_b) == 8
    # NVSwitch fabric: both directions see the same capacity.
    assert cut.capacity_ab == pytest.approx(cut.capacity_ba)
    assert cut.capacity_ab > 0
    assert cut.crossing_ab and cut.crossing_ba


def test_cut_multinode_crosses_the_interconnect():
    machine = multi_node_dgx1(2)
    cut = bisection_cut(machine)
    assert len(cut.side_a) == len(cut.side_b) == 8
    assert cut.capacity_ab > 0 and cut.capacity_ba > 0
    # The min cut of two IB-connected DGX-1s is the inter-node fabric,
    # far below a single board's NVLink bisection.
    single_board = bisection_cut(machine, tuple(machine.gpu_ids[:8]))
    assert cut.capacity_ab < single_board.capacity_ab


def test_link_stats_utilization():
    spec = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK)
    stats = LinkStats(spec=spec, bytes_sent=100, busy_time=0.5, transfers=3)
    assert stats.utilization(1.0) == pytest.approx(0.5)
    assert stats.utilization(0.25) == 1.0  # clamped
    assert stats.achieved_bandwidth(2.0) == pytest.approx(50.0)
    assert stats.utilization(0.0) == 0.0


def test_link_stats_degenerate_elapsed():
    """Zero or negative horizons must not divide: both rates are 0."""
    spec = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK)
    stats = LinkStats(spec=spec, bytes_sent=100, busy_time=0.5, transfers=3)
    for elapsed in (0.0, -1.0, -0.001):
        assert stats.utilization(elapsed) == 0.0
        assert stats.achieved_bandwidth(elapsed) == 0.0


def test_link_stats_idle_link():
    spec = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK)
    stats = LinkStats(spec=spec, bytes_sent=0, busy_time=0.0, transfers=0)
    assert stats.utilization(1.0) == 0.0
    assert stats.achieved_bandwidth(1.0) == 0.0


def _report_with_cut(link_bytes: dict[int, int], elapsed: float) -> ShuffleReport:
    cut = BisectionCut(
        side_a=(0,),
        side_b=(1,),
        capacity_ab=100.0,
        capacity_ba=200.0,
        crossing_ab=(1,),
        crossing_ba=(2,),
    )
    link_stats = {
        link_id: LinkStats(
            spec=LinkSpec(link_id, gpu(0), gpu(1), LinkType.NVLINK),
            bytes_sent=nbytes,
            busy_time=0.0,
            transfers=1,
        )
        for link_id, nbytes in link_bytes.items()
    }
    return ShuffleReport(
        policy_name="test",
        num_gpus=2,
        elapsed=elapsed,
        payload_bytes=sum(link_bytes.values()),
        delivered_bytes=sum(link_bytes.values()),
        wire_bytes=sum(link_bytes.values()),
        packets_delivered=1,
        hop_count_total=1,
        link_stats=link_stats,
        cut=cut,
        buffer_sync_count=0,
        board_broadcast_count=0,
    )


def test_bisection_utilization_per_direction():
    # Link 1 crosses a->b (capacity 100), link 2 crosses b->a (200);
    # link 3 does not cross at all and must not count.
    report = _report_with_cut({1: 50, 2: 100, 3: 999}, elapsed=1.0)
    assert report.bisection_utilization_ab == pytest.approx(0.5)
    assert report.bisection_utilization_ba == pytest.approx(0.5)
    # Combined metric pools both directions over the total capacity.
    assert report.bisection_utilization == pytest.approx(150 / 300)


def test_bisection_utilization_direction_asymmetry():
    report = _report_with_cut({1: 90, 2: 20}, elapsed=1.0)
    assert report.bisection_utilization_ab == pytest.approx(0.9)
    assert report.bisection_utilization_ba == pytest.approx(0.1)


def test_bisection_utilization_clamps_and_degenerates():
    saturated = _report_with_cut({1: 1000, 2: 1000}, elapsed=1.0)
    assert saturated.bisection_utilization_ab == 1.0
    assert saturated.bisection_utilization_ba == 1.0
    zero = _report_with_cut({1: 50}, elapsed=0.0)
    assert zero.bisection_utilization_ab == 0.0
    assert zero.bisection_utilization_ba == 0.0
