"""Link channels: FIFO queueing, Q_i accounting, the state board."""

import pytest

from repro.sim import Engine, LinkChannel, LinkStateBoard
from repro.topology.links import LinkSpec, LinkType
from repro.topology.nodes import gpu


def make_link(engine, board=None, lanes=1):
    spec = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK, lanes=lanes)
    return LinkChannel(engine, spec, board)


def test_service_time():
    engine = Engine()
    link = make_link(engine)
    expected = link.spec.latency + 1e6 / link.spec.bandwidth
    assert link.service_time(1e6) == pytest.approx(expected)


def test_single_transfer_completes_after_service_time():
    engine = Engine()
    link = make_link(engine)
    done = []

    def sender():
        yield link.transmit(1_000_000)
        done.append(engine.now)

    engine.process(sender())
    engine.run()
    assert done[0] == pytest.approx(link.service_time(1_000_000))


def test_fifo_queueing_serializes_transfers():
    engine = Engine()
    link = make_link(engine)
    finishes = []

    def sender(name):
        yield link.transmit(1_000_000)
        finishes.append((name, engine.now))

    engine.process(sender("first"))
    engine.process(sender("second"))
    engine.run()
    service = link.service_time(1_000_000)
    assert finishes[0][1] == pytest.approx(service)
    assert finishes[1][1] == pytest.approx(2 * service)


def test_queue_delay_reflects_backlog():
    engine = Engine()
    link = make_link(engine)
    link.transmit(1_000_000)
    link.transmit(1_000_000)
    assert link.queue_delay() == pytest.approx(2 * link.service_time(1_000_000))


def test_commit_adds_to_queue_delay_and_fulfill_removes():
    engine = Engine()
    link = make_link(engine)
    link.commit(2_000_000)
    assert link.queue_delay() == pytest.approx(link.service_time(2_000_000))
    link.fulfill(2_000_000)
    assert link.queue_delay() == 0.0


def test_busy_time_and_bytes_accumulate():
    engine = Engine()
    link = make_link(engine)
    link.transmit(500_000)
    link.transmit(500_000)
    engine.run()
    assert link.bytes_sent == 1_000_000
    assert link.transfers == 2
    assert link.busy_time == pytest.approx(2 * link.service_time(500_000))


def test_zero_byte_transfer_rejected():
    engine = Engine()
    link = make_link(engine)
    with pytest.raises(ValueError):
        link.transmit(0)


class TestLinkStateBoard:
    def test_published_state_arrives_after_latency(self):
        engine = Engine()
        board = LinkStateBoard(engine, broadcast_latency=1e-3, quantum=1e-9)
        link = make_link(engine, board)
        link.transmit(250_000_000)  # 10 ms of service
        # Immediately: nothing published yet.
        assert board.published_queue_delay(link.spec.link_id) == 0.0
        engine.run(until=2e-3)  # past the 1 ms broadcast latency
        assert board.published_queue_delay(link.spec.link_id) > 0.0

    def test_small_changes_filtered_by_quantum(self):
        engine = Engine()
        board = LinkStateBoard(engine, broadcast_latency=0.0, quantum=1.0)
        link = make_link(engine, board)
        link.transmit(1_000)  # microseconds of service << 1 s quantum
        assert board.broadcast_count == 0

    def test_published_delay_decays_with_time(self):
        engine = Engine()
        board = LinkStateBoard(engine, broadcast_latency=0.0, quantum=1e-9)
        link = make_link(engine, board)
        link.transmit(25_000_000)
        engine.run(until=1e-4)
        early = board.published_queue_delay(link.spec.link_id)
        engine.run(until=9e-4)
        late = board.published_queue_delay(link.spec.link_id)
        assert late < early

    def test_broadcast_counts_measure_chattiness(self):
        engine = Engine()
        board = LinkStateBoard(engine, broadcast_latency=0.0, quantum=1e-9)
        link = make_link(engine, board)
        for _ in range(5):
            link.transmit(25_000_000)
        assert board.broadcast_count == 5

    def test_inflight_broadcast_coalesces_to_latest_value(self):
        """Regression: a queue change published while an earlier
        broadcast is still propagating must not be lost.  The delivery
        applies the *latest* value, so after the first broadcast lands
        remote GPUs see the full two-transfer backlog — not a stale
        snapshot that the second (still in-flight) broadcast would only
        correct half a millisecond later."""
        engine = Engine()
        board = LinkStateBoard(engine, broadcast_latency=1e-3, quantum=1e-9)
        link = make_link(engine, board)
        link.transmit(25_000_000)  # ~1 ms of service
        engine.run(until=0.5e-3)
        link.transmit(25_000_000)  # second broadcast while first in flight
        engine.run(until=1.1e-3)  # only the first delivery has landed
        published = board.published_queue_delay(link.spec.link_id)
        assert published == pytest.approx(link.queue_delay())
        assert published > 0.5 * link.service_time(25_000_000)

    def test_stale_delivery_cannot_roll_back_newer_value(self):
        """A slow first broadcast must not overwrite the state written
        by a newer broadcast that was delivered at the same instant."""
        engine = Engine()
        board = LinkStateBoard(engine, broadcast_latency=1e-3, quantum=1e-9)
        link = make_link(engine, board)
        link.transmit(25_000_000)
        engine.run(until=0.9e-3)
        link.transmit(250_000_000)  # much larger backlog, lands at 1.9 ms
        engine.run(until=2.5e-3)
        # Whatever order deliveries ran in, the surviving published
        # value reflects the latest local truth.
        assert board.published_queue_delay(
            link.spec.link_id
        ) == pytest.approx(link.queue_delay())
