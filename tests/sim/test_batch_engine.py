"""BatchEngine unit behaviour: calendar, cohorts, pool, factory seam."""

import os

import pytest

from repro.sim import BatchEngine, Engine
from repro.sim.batch import _VECTOR_THRESHOLD
from repro.sim.engine import (
    ENGINE_MODE_ENV,
    ENGINE_MODES,
    SimulationError,
    engine_descriptor,
    engine_factory_for,
    resolve_engine_mode,
)


class TestFactorySeam:
    def test_modes(self):
        assert set(ENGINE_MODES) == {"reference", "fast", "batch"}

    def test_default_mode_is_fast(self, monkeypatch):
        monkeypatch.delenv(ENGINE_MODE_ENV, raising=False)
        assert resolve_engine_mode() == "fast"
        engine = engine_factory_for()()
        assert type(engine) is Engine and engine.fast and not engine.batch

    def test_env_var_selects_batch(self, monkeypatch):
        monkeypatch.setenv(ENGINE_MODE_ENV, "batch")
        engine = engine_factory_for()()
        assert isinstance(engine, BatchEngine) and engine.batch

    def test_reference_mode(self):
        engine = engine_factory_for("reference")()
        assert type(engine) is Engine and not engine.fast

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            resolve_engine_mode("gpu")

    def test_descriptor_names_backend(self, monkeypatch):
        monkeypatch.delenv(ENGINE_MODE_ENV, raising=False)
        assert engine_descriptor() == "fast"
        assert engine_descriptor("reference") == "reference"
        descriptor = engine_descriptor("batch")
        assert descriptor.startswith("batch+")
        assert descriptor.split("+", 1)[1] in ("numpy", "numba")


class TestCalendar:
    def test_timers_fire_in_time_then_seq_order(self):
        engine = BatchEngine()
        fired = []
        engine.schedule(3e-3, fired.append, "late")
        engine.schedule(1e-3, fired.append, "early")
        engine.schedule(2e-3, fired.append, "mid-a")
        engine.schedule(2e-3, fired.append, "mid-b")
        engine.run()
        assert fired == ["early", "mid-a", "mid-b", "late"]
        assert engine.now == pytest.approx(3e-3)

    def test_same_instant_cohort_drains_as_batch(self):
        engine = BatchEngine()
        fired = []
        for label in range(12):
            engine.schedule(1e-3, fired.append, label)
        engine.run()
        assert fired == list(range(12))
        stats = engine.stats
        assert stats["max_batch"] == 12
        assert stats["batch_drains"] == 1

    def test_zero_delay_goes_to_ready_deque(self):
        engine = BatchEngine()
        fired = []
        engine.schedule(0.0, fired.append, "now")
        assert engine.pending == 1
        engine.run()
        assert fired == ["now"]
        assert engine.stats["ready_dispatches"] >= 1

    def test_vector_merge_threshold_crossed(self):
        engine = BatchEngine()
        fired = []
        for label in range(_VECTOR_THRESHOLD * 2):
            engine.schedule((label + 1) * 1e-4, fired.append, label)
        engine.run()
        assert fired == list(range(_VECTOR_THRESHOLD * 2))
        assert engine.stats["vector_merges"] >= 1

    def test_scalar_merge_below_threshold(self):
        engine = BatchEngine()
        fired = []
        for label in range(_VECTOR_THRESHOLD - 1):
            engine.schedule((label + 1) * 1e-4, fired.append, label)
        engine.run()
        assert fired == list(range(_VECTOR_THRESHOLD - 1))
        assert engine.stats["vector_merges"] == 0

    def test_timer_scheduled_mid_cohort_for_now_runs_in_order(self):
        # A callback scheduling delay-0 work must see it run after the
        # rest of its cohort (higher seq), exactly like the fast engine.
        engine = BatchEngine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule(0.0, fired.append, "deferred")

        engine.schedule(1e-3, first)
        engine.schedule(1e-3, fired.append, "second")
        engine.run()
        assert fired == ["first", "second", "deferred"]

    def test_interleaved_earlier_timer_beats_ready_entry(self):
        # Mirror of the fast engine's heap-vs-deque cross-check: a
        # timer due *now* with a lower seq than the deque head runs
        # first.  Reproduce by scheduling the timer before the deferral.
        engine = BatchEngine()
        fired = []

        def outer():
            engine.schedule(1e-3, fired.append, "timer")  # lower seq
            engine.schedule(0.0, hold)

        def hold(_event=None):
            # Runs at t=0; sleep to t=1e-3 so the timer and a fresh
            # ready entry become runnable at the same instant.
            fired.append("hold")

        engine.schedule(0.0, outer)
        engine.run()
        assert fired == ["hold", "timer"]

    def test_negative_delay_rejected(self):
        engine = BatchEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1e-9, lambda: None)

    def test_run_until_stops_before_next_timer(self):
        engine = BatchEngine()
        fired = []
        engine.schedule(5e-3, fired.append, "late")
        assert engine.run(until=1e-3) == pytest.approx(1e-3)
        assert fired == []
        assert engine.pending == 1
        engine.run()
        assert fired == ["late"]

    def test_pending_counts_run_buffer_and_ready(self):
        engine = BatchEngine()
        engine.schedule(1e-3, lambda: None)
        engine.schedule(0.0, lambda: None)
        assert engine.pending == 2
        engine.run()
        assert engine.pending == 0


class TestPooledEvents:
    def test_pool_refills_in_chunks_and_recycles(self):
        engine = BatchEngine()
        first = engine.pooled_event()
        assert len(engine._event_pool) > 0
        second = engine.pooled_event()
        assert first is not second
        assert engine.stats["timeout_pool_hits"] >= 1

    def test_sleep_timers_byte_identical_to_fast(self):
        def run(engine):
            fired = []

            def proc():
                yield engine.sleep(1e-3)
                fired.append(engine.now)
                yield engine.sleep(2e-3)
                fired.append(engine.now)

            engine.process(proc())
            engine.run()
            return fired

        assert run(BatchEngine()) == run(Engine())


class TestBackendPlumbing:
    def test_explicit_backend_name(self):
        engine = BatchEngine(backend="numpy")
        assert engine.backend == "numpy"

    def test_default_backend_resolves(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_BACKEND", raising=False)
        assert BatchEngine().backend in ("numpy", "numba")


def test_workload_cache_key_includes_engine(tmp_path, monkeypatch):
    """Disk-cached workloads are keyed per engine mode, so CI matrix
    legs sharing one cache directory never read each other's pickles."""
    from repro.bench.harness import bench_workload

    monkeypatch.setenv("REPRO_WORKLOAD_CACHE", str(tmp_path))
    bench_workload.cache_clear()
    monkeypatch.setenv(ENGINE_MODE_ENV, "batch")
    bench_workload(gpu_ids=(0, 1), real_tuples_per_gpu=256)
    bench_workload.cache_clear()
    monkeypatch.setenv(ENGINE_MODE_ENV, "fast")
    bench_workload(gpu_ids=(0, 1), real_tuples_per_gpu=256)
    bench_workload.cache_clear()
    names = sorted(p.name for p in tmp_path.glob("workload-*.pkl"))
    assert len(names) == 2
    assert any("batch" in name for name in names)
    assert any("fast" in name for name in names)


def test_run_metadata_records_engine(monkeypatch):
    from repro.obs import run_metadata

    monkeypatch.setenv(ENGINE_MODE_ENV, "batch")
    assert run_metadata()["engine"].startswith("batch+")
    monkeypatch.delenv(ENGINE_MODE_ENV)
    assert run_metadata()["engine"] == "fast"
