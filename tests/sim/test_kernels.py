"""Backend seam: resolution rules and kernel semantics."""

import numpy as np
import pytest

from repro.sim import kernels
from repro.sim.kernels import (
    BACKENDS,
    ENGINE_BACKEND_ENV,
    BackendError,
    backend_name,
    numba_available,
    resolve_backend,
)


class TestResolution:
    def test_numpy_always_available(self):
        backend = resolve_backend("numpy")
        assert backend.name == "numpy"

    def test_auto_resolves_to_an_installed_backend(self):
        backend = resolve_backend("auto")
        expected = "numba" if numba_available() else "numpy"
        assert backend.name == expected

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENGINE_BACKEND_ENV, "numpy")
        assert resolve_backend().name == "numpy"

    def test_explicit_name_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(ENGINE_BACKEND_ENV, "numba")
        assert resolve_backend("numpy").name == "numpy"

    def test_numba_request_falls_back_when_missing(self):
        backend = resolve_backend("numba")
        if numba_available():
            assert backend.name == "numba"
        else:
            # The CI matrix sets REPRO_ENGINE_BACKEND=numba on a leg
            # without numba installed; that must degrade, not crash.
            assert backend.name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError):
            resolve_backend("cuda")
        assert "cuda" not in BACKENDS

    def test_backend_name_helper(self):
        assert backend_name("numpy") == "numpy"


def _both_backends():
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    return [resolve_backend(name) for name in names]


@pytest.mark.parametrize("backend", _both_backends(), ids=lambda b: b.name)
class TestKernelSemantics:
    def test_cohort_end_finds_equal_time_prefix(self, backend):
        times = np.array([1.0, 1.0, 1.0, 2.0, 3.0])
        assert backend.cohort_end(times, 0, len(times)) == 3
        assert backend.cohort_end(times, 3, len(times)) == 4
        assert backend.cohort_end(times, 4, len(times)) == 5

    def test_cohort_end_whole_array_one_cohort(self, backend):
        times = np.full(7, 2.5)
        assert backend.cohort_end(times, 0, 7) == 7
        assert backend.cohort_end(times, 4, 7) == 7

    def test_merge_order_sorts_by_time_then_seq(self, backend):
        times = np.array([2.0, 1.0, 2.0, 1.0])
        seqs = np.array([7, 9, 3, 1], dtype=np.int64)
        order = np.asarray(backend.merge_order(times, seqs))
        assert list(seqs[order]) == [1, 9, 3, 7]
        assert list(times[order]) == [1.0, 1.0, 2.0, 2.0]

    def test_merge_order_matches_python_sort_on_random_input(self, backend):
        rng = np.random.default_rng(5)
        for _ in range(25):
            n = int(rng.integers(1, 200))
            times = rng.integers(0, 20, size=n).astype(np.float64)
            seqs = rng.permutation(n).astype(np.int64)
            order = np.asarray(backend.merge_order(times, seqs))
            got = list(zip(times[order], seqs[order]))
            assert got == sorted(zip(times.tolist(), seqs.tolist()))

    def test_link_drain_fifo_forecast(self, backend):
        sizes = np.array([1e6, 2e6, 4e6])
        latency, inv_bw = 5e-6, 1.0 / 25e9
        starts, completions, busy = backend.link_drain(
            sizes, 1e-3, 0.0, latency, inv_bw
        )
        service = latency + sizes * inv_bw
        # FIFO: back-to-back from free_at (which is past `now` here).
        assert starts[0] == 1e-3
        assert np.allclose(completions - starts, service)
        assert np.allclose(starts[1:], completions[:-1])
        assert busy == pytest.approx(service.sum())

    def test_link_drain_starts_at_now_when_link_free(self, backend):
        sizes = np.array([1e6])
        starts, completions, _ = backend.link_drain(
            sizes, 0.0, 2e-3, 5e-6, 1.0 / 25e9
        )
        assert starts[0] == 2e-3
        assert completions[0] > starts[0]


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestBackendAgreement:
    """When both backends exist they must agree value-for-value."""

    def test_kernels_agree_on_random_calendars(self):
        np_backend = resolve_backend("numpy")
        nb_backend = resolve_backend("numba")
        rng = np.random.default_rng(11)
        for _ in range(10):
            n = int(rng.integers(2, 300))
            times = np.sort(rng.integers(0, 30, size=n).astype(np.float64))
            seqs = rng.permutation(n).astype(np.int64)
            lo = int(rng.integers(0, n))
            assert np_backend.cohort_end(times, lo, n) == nb_backend.cohort_end(
                times, lo, n
            )
            assert np.array_equal(
                np.asarray(np_backend.merge_order(times, seqs)),
                np.asarray(nb_backend.merge_order(times, seqs)),
            )
            sizes = rng.integers(1, 1 << 22, size=n).astype(np.float64)
            a = np_backend.link_drain(sizes, 1e-4, 0.0, 5e-6, 1.0 / 25e9)
            b = nb_backend.link_drain(sizes, 1e-4, 0.0, 5e-6, 1.0 / 25e9)
            assert np.array_equal(a[0], b[0])
            assert np.array_equal(a[1], b[1])
            assert a[2] == b[2]
