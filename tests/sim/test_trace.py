"""Simulation tracing."""

import pytest

from repro.routing import DirectPolicy
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator, Tracer
from repro.sim.trace import TraceEvent

MB = 1024 * 1024


@pytest.fixture
def traced_run(dgx1):
    tracer = Tracer()
    flows = FlowMatrix.all_to_all((0, 1, 4), 8 * MB)
    config = ShuffleConfig(injection_rate=None, consume_rate=None)
    report = ShuffleSimulator(dgx1, (0, 1, 4), config, tracer=tracer).run(
        flows, DirectPolicy()
    )
    return tracer, report


def test_transfers_recorded(traced_run):
    tracer, report = traced_run
    transfers = [e for e in tracer.events if e.kind == "transfer"]
    assert len(transfers) > 0
    # Every traced byte corresponds to wire traffic.
    assert sum(e.nbytes for e in transfers) == report.wire_bytes


def test_horizon_matches_elapsed(traced_run):
    tracer, report = traced_run
    assert tracer.horizon == pytest.approx(report.elapsed, rel=0.05)


def test_busy_time_consistent_with_link_stats(traced_run):
    tracer, report = traced_run
    for link_id, stats in report.link_stats.items():
        label = str(stats.spec)
        assert tracer.busy_time(label) == pytest.approx(stats.busy_time)
        assert tracer.bytes_moved(label) == stats.bytes_sent


def test_csv_export(traced_run):
    tracer, _ = traced_run
    csv = tracer.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == "time,duration,kind,subject,bytes,detail"
    assert len(lines) == len(tracer.events) + 1


def test_ascii_gantt_renders(traced_run):
    tracer, _ = traced_run
    chart = tracer.ascii_gantt(width=40, top=5)
    assert "#" in chart
    assert "ms" in chart


def test_empty_tracer():
    tracer = Tracer()
    assert tracer.horizon == 0.0
    assert tracer.ascii_gantt() == "(no trace events)\n"
    assert tracer.subjects() == ()


def test_event_cap():
    tracer = Tracer(max_events=2)
    for index in range(5):
        tracer.record(index, 1.0, "transfer", "x", 1)
    assert len(tracer) == 2


def test_event_end():
    event = TraceEvent(time=1.0, duration=0.5, kind="transfer", subject="a", nbytes=1)
    assert event.end == 1.5
