"""Simulation tracing."""

import warnings

import pytest

from repro.routing import DirectPolicy
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator, Tracer
from repro.sim.trace import TraceEvent

MB = 1024 * 1024


@pytest.fixture
def traced_run(dgx1):
    tracer = Tracer()
    flows = FlowMatrix.all_to_all((0, 1, 4), 8 * MB)
    config = ShuffleConfig(injection_rate=None, consume_rate=None)
    report = ShuffleSimulator(dgx1, (0, 1, 4), config, tracer=tracer).run(
        flows, DirectPolicy()
    )
    return tracer, report


def test_transfers_recorded(traced_run):
    tracer, report = traced_run
    transfers = [e for e in tracer.events if e.kind == "transfer"]
    assert len(transfers) > 0
    # Every traced byte corresponds to wire traffic.
    assert sum(e.nbytes for e in transfers) == report.wire_bytes


def test_horizon_matches_elapsed(traced_run):
    tracer, report = traced_run
    assert tracer.horizon == pytest.approx(report.elapsed, rel=0.05)


def test_busy_time_consistent_with_link_stats(traced_run):
    tracer, report = traced_run
    for link_id, stats in report.link_stats.items():
        label = str(stats.spec)
        assert tracer.busy_time(label) == pytest.approx(stats.busy_time)
        assert tracer.bytes_moved(label) == stats.bytes_sent


def test_csv_export(traced_run):
    tracer, _ = traced_run
    csv = tracer.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == "time,duration,kind,subject,bytes,detail"
    assert len(lines) == len(tracer.events) + 1


def test_ascii_gantt_renders(traced_run):
    tracer, _ = traced_run
    chart = tracer.ascii_gantt(width=40, top=5)
    assert "#" in chart
    assert "ms" in chart


def test_empty_tracer():
    tracer = Tracer()
    assert tracer.horizon == 0.0
    assert tracer.ascii_gantt() == "(no trace events)\n"
    assert tracer.subjects() == ()


def test_event_cap_counts_drops_and_warns_once():
    tracer = Tracer(max_events=2)
    assert tracer.dropped_events == 0
    with pytest.warns(RuntimeWarning, match="max_events"):
        for index in range(5):
            tracer.record(index, 1.0, "transfer", "x", 1)
    assert len(tracer) == 2
    assert len(tracer.events) == 2
    assert tracer.dropped_events == 3
    # The warning fires only on the first drop; later drops are only
    # counted (simplefilter("error") would raise if it re-warned).
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        tracer.record(9.0, 1.0, "transfer", "x", 1)
    assert tracer.dropped_events == 4


def test_csv_footer_reports_drops():
    tracer = Tracer(max_events=1)
    with pytest.warns(RuntimeWarning):
        tracer.record(0.0, 1.0, "transfer", "x", 1)
        tracer.record(1.0, 1.0, "transfer", "x", 1)
    assert tracer.to_csv().strip().endswith("# dropped_events,1")


def test_shared_span_store_merges_and_respects_its_cap():
    from repro.obs.spans import SpanTracer

    spans = SpanTracer(max_records=1)
    tracer = Tracer(spans=spans, max_events=10)
    with pytest.warns(RuntimeWarning, match="max_records"):
        tracer.record(0.0, 1.0, "transfer", "gpu0->gpu1", 64)
        tracer.record(1.0, 1.0, "transfer", "gpu0->gpu1", 64)
    # The second event was refused by the shared store, not by the
    # tracer's own cap — it still counts as a drop here.
    assert len(tracer) == 1
    assert tracer.dropped_events == 1
    (span,) = spans.spans
    assert span.track == "gpu0->gpu1"
    assert span.attrs["bytes"] == 64


def test_events_are_views_over_spans():
    tracer = Tracer()
    tracer.record(0.5, 0.25, "deliver", "gpu2", 128, detail="pkt")
    (event,) = tracer.events
    assert event == TraceEvent(
        time=0.5, duration=0.25, kind="deliver", subject="gpu2", nbytes=128,
        detail="pkt",
    )
    assert tracer.busy_time("gpu2") == pytest.approx(0.25)
    assert tracer.bytes_moved("gpu2") == 128
    assert tracer.horizon == pytest.approx(0.75)


def test_event_end():
    event = TraceEvent(time=1.0, duration=0.5, kind="transfer", subject="a", nbytes=1)
    assert event.end == 1.5
