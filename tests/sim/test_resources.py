"""Stores and credit-managed routing buffers (§4.1)."""

import pytest

from repro.sim import Engine, RoutingBuffer, Store
from repro.sim.engine import SimulationError


def drive(engine, generator):
    """Run a generator as a process and return the process."""
    return engine.process(generator)


class TestStore:
    def test_get_after_put(self):
        engine = Engine()
        store = Store(engine)
        store.put("item")
        got = []

        def getter():
            value = yield store.get()
            got.append(value)

        drive(engine, getter())
        engine.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self):
        engine = Engine()
        store = Store(engine)
        got = []

        def getter():
            value = yield store.get()
            got.append((engine.now, value))

        drive(engine, getter())
        engine.schedule(2.0, store.put, "late")
        engine.run()
        assert got == [(2.0, "late")]

    def test_fifo_order(self):
        engine = Engine()
        store = Store(engine)
        for index in range(3):
            store.put(index)
        got = []

        def getter():
            for _ in range(3):
                got.append((yield store.get()))

        drive(engine, getter())
        engine.run()
        assert got == [0, 1, 2]


class TestRoutingBuffer:
    def test_acquire_within_credits_is_instant(self):
        engine = Engine()
        buffer = RoutingBuffer(engine, slots=4, sync_latency=1.0)

        def sender():
            for _ in range(4):
                yield from buffer.acquire()

        drive(engine, sender())
        engine.run()
        assert engine.now == 0.0
        assert buffer.occupied == 4
        assert buffer.sync_count == 0

    def test_sync_paid_when_credits_run_out(self):
        engine = Engine()
        buffer = RoutingBuffer(engine, slots=2, sync_latency=1.0)
        # Release happens before the sender runs out, so the sync
        # refreshes credits successfully.
        engine.schedule(0.5, buffer.release)

        def sender():
            yield from buffer.acquire()
            yield from buffer.acquire()
            yield from buffer.acquire()  # out of credits -> sync

        drive(engine, sender())
        engine.run()
        assert buffer.sync_count == 1
        assert engine.now == pytest.approx(1.0)

    def test_blocks_until_receiver_releases(self):
        engine = Engine()
        buffer = RoutingBuffer(engine, slots=1, sync_latency=0.1)
        times = []

        def sender():
            yield from buffer.acquire()
            yield from buffer.acquire()
            times.append(engine.now)

        drive(engine, sender())
        engine.schedule(5.0, buffer.release)
        engine.run()
        assert times and times[0] >= 5.0

    def test_release_without_acquire_fails(self):
        engine = Engine()
        buffer = RoutingBuffer(engine, slots=1, sync_latency=0.0)
        with pytest.raises(SimulationError):
            buffer.release()

    def test_two_senders_share_slots(self):
        engine = Engine()
        buffer = RoutingBuffer(engine, slots=2, sync_latency=0.1)
        acquired = []

        def sender(name):
            yield from buffer.acquire()
            acquired.append(name)

        drive(engine, sender("a"))
        drive(engine, sender("b"))
        engine.run()
        assert sorted(acquired) == ["a", "b"]
        assert buffer.free == 0

    def test_invalid_parameters(self):
        engine = Engine()
        with pytest.raises(ValueError):
            RoutingBuffer(engine, slots=0, sync_latency=0.0)
        with pytest.raises(ValueError):
            RoutingBuffer(engine, slots=1, sync_latency=-1.0)
