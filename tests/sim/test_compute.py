"""The GPU kernel cost model and its calibration anchors."""

import pytest

from repro.sim import GpuComputeModel, V100
from repro.sim.compute import GpuSpec


def test_v100_parameters_match_paper():
    """§5.1: 80 SMs at 1.53 GHz, 32 GB HBM at 900 GB/s."""
    assert V100.num_sms == 80
    assert V100.clock_hz == pytest.approx(1.53e9)
    assert V100.memory_bandwidth == pytest.approx(900e9)
    assert V100.memory_bytes == 32 * 1024**3


def test_times_scale_linearly_with_input():
    model = GpuComputeModel()
    small = model.partition_time(1_000_000) - V100.kernel_launch_overhead
    large = model.partition_time(4_000_000) - V100.kernel_launch_overhead
    assert large == pytest.approx(4 * small)


def test_zero_tuples_costs_only_launch():
    model = GpuComputeModel()
    assert model.histogram_time(0) == 0.0 or model.histogram_time(0) <= (
        V100.kernel_launch_overhead
    )


def test_partition_passes_multiply():
    model = GpuComputeModel()
    one = model.partition_time(1_000_000, passes=1)
    three = model.partition_time(1_000_000, passes=3)
    assert three == pytest.approx(3 * one)


def test_negative_inputs_rejected():
    model = GpuComputeModel()
    with pytest.raises(ValueError):
        model.partition_time(-1)
    with pytest.raises(ValueError):
        model.partition_time(10, passes=-1)
    with pytest.raises(ValueError):
        model.page_fault_time(10, num_gpus=0)


def test_probe_counts_matches_in_cost():
    model = GpuComputeModel()
    no_matches = model.probe_time(1e6, 1e6, 0)
    many_matches = model.probe_time(1e6, 1e6, 1e6)
    assert many_matches > no_matches


def test_page_fault_cost_grows_with_gpu_count():
    """§2.1: page-table lock contention scales with GPU count."""
    model = GpuComputeModel()
    one = model.page_fault_time(1 << 30, num_gpus=1)
    eight = model.page_fault_time(1 << 30, num_gpus=8)
    assert eight > 3 * one


def test_page_fault_zero_bytes_is_free():
    assert GpuComputeModel().page_fault_time(0, num_gpus=8) == 0.0


def test_cycles_conversion():
    model = GpuComputeModel()
    assert model.cycles(1.0) == pytest.approx(V100.clock_hz * V100.num_sms)


def test_spec_overrides():
    slower = V100.with_overrides(memory_bandwidth=450e9)
    fast_model = GpuComputeModel()
    slow_model = GpuComputeModel(spec=slower)
    assert slow_model.partition_time(1e6) > fast_model.partition_time(1e6)


def test_single_gpu_join_rate_calibration():
    """The whole pipeline (hist + 2 partition passes + probe) for 1B
    tuples should land near the paper's ~3-4 B tuples/s single-GPU
    operating point (Figure 11)."""
    model = GpuComputeModel()
    tuples = 1 << 30
    total = (
        model.histogram_time(tuples)
        + model.partition_time(tuples, passes=2)
        + model.probe_time(tuples / 2, tuples / 2, tuples / 2)
    )
    throughput = tuples / total
    assert 2.5e9 <= throughput <= 5.0e9
