"""Batch engine vs fast vs reference: bit-identical across fuzz plans.

The batch engine replaces per-event heap dispatch with an array
calendar, cohort extraction and vectorized per-link cost evaluation —
pure *bookkeeping* changes.  Its contract is the same as the fast
kernel's: every simulated number must match the all-heap reference
mode float bit for float bit, under faults, verified transport and
live telemetry included.  These tests sample fault plans from the
``repro chaos fuzz`` stream (property-style: the plans are arbitrary
valid chaos, not hand-picked cases) and hold all three engines to
byte-identical reports, telemetry event sequences and integrity
accounting, plus the join-level canonical match digest.
"""

import dataclasses

import pytest

from repro.faults.fuzz import sample_plan
from repro.obs import Observer
from repro.obs.stream import TelemetryStream
from repro.routing import AdaptiveArmPolicy
from repro.sim import (
    BatchEngine,
    Engine,
    FlowMatrix,
    ShuffleConfig,
    ShuffleSimulator,
)

MB = 1024 * 1024

#: The three kernel modes under comparison.
ENGINE_FACTORIES = {
    "reference": lambda: Engine(fast=False),
    "fast": Engine,
    "batch": BatchEngine,
}

#: Fuzz-stream coordinates: enough plans to hit every fault kind
#: (corruption, duplication, reorder, crash, degrade, blackout) with
#: near-certainty while keeping the suite in tier-1 time.
FUZZ_SEED = 1234
FUZZ_PLANS = 10
GPUS = (0, 1, 2, 3)
HORIZON = 0.02


def _flows():
    flows = FlowMatrix()
    for src in GPUS:
        for dst in GPUS:
            if src != dst:
                flows.add(src, dst, (8 if dst == GPUS[0] else 4) * MB)
    return flows


def _mask_engine_specific(event: dict) -> dict:
    """Drop fields that legitimately differ between engine modes.

    The ``kernel`` event reports the engine's own dispatch counters
    (heap vs ready vs batch drains) — implementation telemetry, not
    simulation output.  Everything else must match exactly.
    """
    if event.get("type") == "kernel":
        event = dict(event)
        event.pop("stats", None)
    return event


def _run_streamed(dgx1, factory, plan, verify=True):
    events = []
    stream = TelemetryStream(None)
    stream.subscribe(events.append)
    observer = Observer()
    observer.stream = stream
    simulator = ShuffleSimulator(
        dgx1,
        GPUS,
        ShuffleConfig(verify_transport=verify),
        observer=observer,
        faults=plan,
        engine_factory=factory,
    )
    report = simulator.run(_flows(), AdaptiveArmPolicy())
    return (
        dataclasses.asdict(report),
        [_mask_engine_specific(event) for event in events],
    )


@pytest.mark.parametrize("index", range(FUZZ_PLANS))
def test_fuzz_plan_equivalence(dgx1, index):
    """Each fuzz-sampled plan: identical report (incl. IntegrityStats)
    and identical telemetry stream on all three engines."""
    plan = sample_plan(dgx1, HORIZON, FUZZ_SEED, index, gpu_ids=GPUS)
    reports = {}
    streams = {}
    for name, factory in ENGINE_FACTORIES.items():
        reports[name], streams[name] = _run_streamed(dgx1, factory, plan)
    assert reports["fast"] == reports["reference"], plan.name
    assert reports["batch"] == reports["reference"], plan.name
    assert streams["fast"] == streams["reference"], plan.name
    assert streams["batch"] == streams["reference"], plan.name
    # Verified transport was actually on: integrity accounting compared.
    assert reports["batch"]["integrity"] is not None


def test_fuzz_plans_cover_integrity_action(dgx1):
    """At least one sampled plan makes the integrity layer act (repair,
    drop or reorder) — otherwise the suite above proves too little."""
    acted = 0
    for index in range(FUZZ_PLANS):
        plan = sample_plan(dgx1, HORIZON, FUZZ_SEED, index, gpu_ids=GPUS)
        report, _ = _run_streamed(dgx1, BatchEngine, plan)
        integrity = report["integrity"]
        acted += any(
            integrity[key]
            for key in ("corrupted_wire", "duplicated_wire", "reordered_wire")
        )
    assert acted > 0


def test_match_digest_identical_across_engines(dgx1):
    """End-to-end MG-Join: the canonical match digest (and the whole
    materialized result) is engine-independent, healthy and faulted."""
    from repro.core import MGJoin, MGJoinConfig
    from repro.workloads import WorkloadSpec, generate_workload

    workload = generate_workload(
        WorkloadSpec(
            gpu_ids=GPUS,
            logical_tuples_per_gpu=1 * MB,
            real_tuples_per_gpu=4096,
            key_zipf=0.5,
            seed=7,
        )
    )
    plan = sample_plan(dgx1, HORIZON, FUZZ_SEED, 0, gpu_ids=GPUS)
    for faults in (None, plan):
        digests = {}
        matches = {}
        for name, factory in ENGINE_FACTORIES.items():
            import os

            from repro.sim.engine import ENGINE_MODE_ENV

            previous = os.environ.get(ENGINE_MODE_ENV)
            os.environ[ENGINE_MODE_ENV] = name
            try:
                join = MGJoin(
                    dgx1,
                    config=MGJoinConfig(materialize=True),
                    policy=AdaptiveArmPolicy(),
                    faults=faults,
                )
                result = join.run(workload)
            finally:
                if previous is None:
                    os.environ.pop(ENGINE_MODE_ENV, None)
                else:
                    os.environ[ENGINE_MODE_ENV] = previous
            digests[name] = result.match_digest
            matches[name] = result.matches_real
        assert digests["fast"] == digests["reference"]
        assert digests["batch"] == digests["reference"]
        assert digests["batch"] is not None
        assert matches["batch"] == matches["reference"]


def test_streaming_on_off_identical_on_batch_engine(dgx1):
    """Attaching the telemetry stream (LinkPump sampling rides
    ``Engine.every`` housekeeping ticks) must not perturb the batch
    engine's simulation by a single bit."""
    plan = sample_plan(dgx1, HORIZON, FUZZ_SEED, 3, gpu_ids=GPUS)
    streamed, events = _run_streamed(dgx1, BatchEngine, plan)
    plain = ShuffleSimulator(
        dgx1,
        GPUS,
        ShuffleConfig(verify_transport=True),
        faults=plan,
        engine_factory=BatchEngine,
    ).run(_flows(), AdaptiveArmPolicy())
    assert events  # the stream actually recorded the run
    assert dataclasses.asdict(plain) == streamed
