"""The discrete-event kernel: events, timeouts, processes."""

import pytest

from repro.sim import Engine, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    engine = Engine()
    engine.timeout(2.5)
    assert engine.run() == pytest.approx(2.5)


def test_events_fire_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(3.0, lambda: seen.append("late"))
    engine.schedule(1.0, lambda: seen.append("early"))
    engine.schedule(2.0, lambda: seen.append("middle"))
    engine.run()
    assert seen == ["early", "middle", "late"]


def test_same_time_events_fifo():
    engine = Engine()
    seen = []
    for index in range(5):
        engine.schedule(1.0, lambda i=index: seen.append(i))
    engine.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1.0, lambda: None)


def test_process_waits_on_timeouts():
    engine = Engine()
    trace = []

    def worker():
        trace.append(("start", engine.now))
        yield engine.timeout(1.5)
        trace.append(("mid", engine.now))
        yield engine.timeout(0.5)
        trace.append(("end", engine.now))
        return "done"

    process = engine.process(worker())
    engine.run()
    assert trace == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]
    assert process.triggered and process.value == "done"


def test_timeout_value_passed_to_process():
    engine = Engine()
    received = []

    def worker():
        value = yield engine.timeout(1.0, "payload")
        received.append(value)

    engine.process(worker())
    engine.run()
    assert received == ["payload"]


def test_process_waiting_on_manual_event():
    engine = Engine()
    gate = engine.event()
    log = []

    def waiter():
        value = yield gate
        log.append((engine.now, value))

    engine.process(waiter())
    engine.schedule(4.0, gate.succeed, 42)
    engine.run()
    assert log == [(4.0, 42)]


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = engine.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_callback_on_already_triggered_event_still_fires():
    engine = Engine()
    event = engine.event()
    event.succeed("x")
    got = []
    event.add_callback(lambda ev: got.append(ev.value))
    engine.run()
    assert got == ["x"]


def test_yielding_non_event_is_an_error():
    engine = Engine()

    def broken():
        yield 42

    engine.process(broken())
    with pytest.raises(SimulationError):
        engine.run()


def test_all_of_waits_for_every_event():
    engine = Engine()
    events = [engine.timeout(t, t) for t in (1.0, 3.0, 2.0)]
    done = engine.all_of(events)
    finished_at = []

    def waiter():
        values = yield done
        finished_at.append((engine.now, values))

    engine.process(waiter())
    engine.run()
    assert finished_at == [(3.0, [1.0, 3.0, 2.0])]


def test_all_of_empty_triggers_immediately():
    engine = Engine()
    assert engine.all_of([]).triggered


def test_run_until_stops_early():
    engine = Engine()
    hit = []
    engine.schedule(10.0, lambda: hit.append(True))
    assert engine.run(until=5.0) == 5.0
    assert not hit


def test_processes_interleave():
    engine = Engine()
    order = []

    def ticker(name, period):
        for _ in range(3):
            yield engine.timeout(period)
            order.append((name, engine.now))

    engine.process(ticker("a", 1.0))
    engine.process(ticker("b", 1.5))
    engine.run()
    # At t=3.0 both fire; b's timeout was enqueued first (at t=1.5).
    assert order == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5)
    ]


def test_any_of_returns_the_first_event():
    engine = Engine()
    slow = engine.timeout(3.0, "slow")
    fast = engine.timeout(1.0, "fast")
    winners = []

    def waiter():
        winner = yield engine.any_of([slow, fast])
        winners.append((engine.now, winner))

    engine.process(waiter())
    engine.run()
    assert winners == [(1.0, fast)]
    assert winners[0][1].value == "fast"


def test_any_of_ignores_later_completions():
    engine = Engine()
    first = engine.timeout(1.0)
    second = engine.timeout(2.0)
    done = engine.any_of([first, second])
    engine.run()
    assert done.value is first
    assert second.triggered  # raced event still completes on its own


def test_any_of_with_already_triggered_event():
    engine = Engine()
    ready = engine.event()
    ready.succeed("now")
    done = engine.any_of([ready, engine.timeout(5.0)])
    engine.run(until=0.1)
    assert done.triggered and done.value is ready


def test_any_of_empty_is_an_error():
    with pytest.raises(SimulationError):
        Engine().any_of([])


@pytest.mark.parametrize("fast", [True, False])
def test_succeed_and_zero_delay_schedules_interleave_fifo(fast):
    """Triggered-event callbacks are zero-delay schedules: the two kinds
    must interleave in strict registration (sequence) order, in both the
    deque fast path and the all-heap reference mode."""
    engine = Engine(fast=fast)
    seen = []
    gate = engine.event()
    gate.add_callback(lambda ev: seen.append("cb1"))
    engine.schedule(0.0, lambda: seen.append("s1"))
    gate.succeed()  # defers cb1 *now*, after s1
    engine.schedule(0.0, lambda: seen.append("s2"))
    gate.add_callback(lambda ev: seen.append("cb2"))  # already triggered
    engine.schedule(0.0, lambda: seen.append("s3"))
    engine.run()
    assert seen == ["s1", "cb1", "s2", "cb2", "s3"]


@pytest.mark.parametrize("fast", [True, False])
def test_same_instant_work_spawned_during_dispatch_stays_fifo(fast):
    """Callbacks that schedule more zero-delay work run it after
    everything already queued for this instant — classic FIFO, not
    LIFO — and time does not advance until the instant drains."""
    engine = Engine(fast=fast)
    seen = []

    def first():
        seen.append(("first", engine.now))
        engine.schedule(0.0, lambda: seen.append(("nested", engine.now)))

    engine.schedule(1.0, first)
    engine.schedule(1.0, lambda: seen.append(("second", engine.now)))
    engine.schedule(2.0, lambda: seen.append(("later", engine.now)))
    engine.run()
    assert seen == [
        ("first", 1.0), ("second", 1.0), ("nested", 1.0), ("later", 2.0)
    ]


def test_fast_and_reference_mode_execute_identically():
    """A busy mixed workload must produce the same trace in both modes."""
    def trace_for(fast):
        engine = Engine(fast=fast)
        trace = []

        def worker(name, period, rounds):
            for index in range(rounds):
                yield engine.timeout(period)
                trace.append((name, index, engine.now))
                if index % 2 == 0:
                    engine.schedule(
                        0.0, lambda n=name, i=index: trace.append((n, i, "echo"))
                    )

        gate = engine.event()
        gate.add_callback(lambda ev: trace.append(("gate", ev.value)))
        engine.process(worker("a", 0.5, 4))
        engine.process(worker("b", 1.0, 3))
        engine.schedule(1.0, gate.succeed, "open")
        engine.run()
        return trace

    assert trace_for(True) == trace_for(False)


def test_sleep_recycles_timeout_events():
    engine = Engine()
    observed = []

    def pacer():
        for _ in range(5):
            event = engine.sleep(0.1)
            observed.append(id(event))
            yield event

    engine.process(pacer())
    engine.run()
    # A consumed sleep event is released only after the resumed process
    # registers its next wait, so the pool lags one allocation behind:
    # two objects alternate, everything after them is recycled.
    assert len(set(observed)) == 2
    assert engine.stats["timeout_pool_hits"] == 3


def test_sleep_event_with_second_consumer_is_not_pooled():
    """Retaining a sleep event (e.g. inside any_of) demotes it to a
    normal one-shot: it must keep its identity and triggered state."""
    engine = Engine()
    kept = []

    def waiter():
        event = engine.sleep(0.1, "tick")
        event.add_callback(lambda ev: kept.append(ev.value))  # 2nd consumer
        value = yield event
        kept.append(value)
        follow_up = engine.sleep(0.1)
        yield follow_up
        kept.append(follow_up is event)

    engine.process(waiter())
    engine.run()
    demoted, resumed, recycled_into = kept
    assert {demoted, resumed} == {"tick"}
    assert recycled_into is False  # never entered the pool
    assert engine.stats["timeout_pool_hits"] == 0


def test_engine_stats_count_dispatch_paths():
    engine = Engine()
    engine.schedule(0.0, lambda: None)
    engine.schedule(1.0, lambda: None)
    engine.run()
    stats = engine.stats
    assert stats["events_scheduled"] == 2
    assert stats["ready_dispatches"] == 1
    assert stats["heap_dispatches"] == 1


class TestEvery:
    """Periodic housekeeping chains that stop with the real workload."""

    def test_ticks_while_real_work_remains(self):
        engine = Engine()
        ticks = []
        engine.every(1.0, lambda: ticks.append(engine.now))
        engine.schedule(3.5, lambda: None)
        # The chain overruns the last real event by at most one tick
        # (the reschedule decision at 3.0 still saw the 3.5 work).
        assert engine.run() == pytest.approx(4.0)
        assert ticks == [pytest.approx(t) for t in (1.0, 2.0, 3.0, 4.0)]

    def test_chain_does_not_keep_engine_alive(self):
        engine = Engine()
        engine.every(1.0, lambda: None)
        # No real work at all: the first tick sees only itself pending.
        assert engine.run() == pytest.approx(1.0)

    def test_two_chains_do_not_keep_each_other_alive(self):
        engine = Engine()
        counts = [0, 0]

        def bump(index):
            counts[index] += 1

        engine.every(1.0, lambda: bump(0))
        engine.every(1.0, lambda: bump(1))
        engine.schedule(2.5, lambda: None)
        # Without housekeeping accounting each chain would read the
        # other as pending work and the run would never terminate.
        assert engine.run() == pytest.approx(3.0)
        assert counts == [3, 3]

    def test_rejects_non_positive_interval(self):
        with pytest.raises(SimulationError):
            Engine().every(0.0, lambda: None)
        with pytest.raises(SimulationError):
            Engine().every(-1.0, lambda: None)

    def test_callbacks_do_not_retime_real_events(self):
        seen = []
        engine = Engine()
        engine.schedule(1.0, lambda: seen.append(("work", engine.now)))
        engine.every(0.4, lambda: None)
        engine.schedule(2.0, lambda: seen.append(("late", engine.now)))
        engine.run()
        assert seen == [
            ("work", pytest.approx(1.0)),
            ("late", pytest.approx(2.0)),
        ]
