"""The discrete-event kernel: events, timeouts, processes."""

import pytest

from repro.sim import Engine, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    engine = Engine()
    engine.timeout(2.5)
    assert engine.run() == pytest.approx(2.5)


def test_events_fire_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(3.0, lambda: seen.append("late"))
    engine.schedule(1.0, lambda: seen.append("early"))
    engine.schedule(2.0, lambda: seen.append("middle"))
    engine.run()
    assert seen == ["early", "middle", "late"]


def test_same_time_events_fifo():
    engine = Engine()
    seen = []
    for index in range(5):
        engine.schedule(1.0, lambda i=index: seen.append(i))
    engine.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1.0, lambda: None)


def test_process_waits_on_timeouts():
    engine = Engine()
    trace = []

    def worker():
        trace.append(("start", engine.now))
        yield engine.timeout(1.5)
        trace.append(("mid", engine.now))
        yield engine.timeout(0.5)
        trace.append(("end", engine.now))
        return "done"

    process = engine.process(worker())
    engine.run()
    assert trace == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]
    assert process.triggered and process.value == "done"


def test_timeout_value_passed_to_process():
    engine = Engine()
    received = []

    def worker():
        value = yield engine.timeout(1.0, "payload")
        received.append(value)

    engine.process(worker())
    engine.run()
    assert received == ["payload"]


def test_process_waiting_on_manual_event():
    engine = Engine()
    gate = engine.event()
    log = []

    def waiter():
        value = yield gate
        log.append((engine.now, value))

    engine.process(waiter())
    engine.schedule(4.0, gate.succeed, 42)
    engine.run()
    assert log == [(4.0, 42)]


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = engine.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_callback_on_already_triggered_event_still_fires():
    engine = Engine()
    event = engine.event()
    event.succeed("x")
    got = []
    event.add_callback(lambda ev: got.append(ev.value))
    engine.run()
    assert got == ["x"]


def test_yielding_non_event_is_an_error():
    engine = Engine()

    def broken():
        yield 42

    engine.process(broken())
    with pytest.raises(SimulationError):
        engine.run()


def test_all_of_waits_for_every_event():
    engine = Engine()
    events = [engine.timeout(t, t) for t in (1.0, 3.0, 2.0)]
    done = engine.all_of(events)
    finished_at = []

    def waiter():
        values = yield done
        finished_at.append((engine.now, values))

    engine.process(waiter())
    engine.run()
    assert finished_at == [(3.0, [1.0, 3.0, 2.0])]


def test_all_of_empty_triggers_immediately():
    engine = Engine()
    assert engine.all_of([]).triggered


def test_run_until_stops_early():
    engine = Engine()
    hit = []
    engine.schedule(10.0, lambda: hit.append(True))
    assert engine.run(until=5.0) == 5.0
    assert not hit


def test_processes_interleave():
    engine = Engine()
    order = []

    def ticker(name, period):
        for _ in range(3):
            yield engine.timeout(period)
            order.append((name, engine.now))

    engine.process(ticker("a", 1.0))
    engine.process(ticker("b", 1.5))
    engine.run()
    # At t=3.0 both fire; b's timeout was enqueued first (at t=1.5).
    assert order == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5)
    ]


def test_any_of_returns_the_first_event():
    engine = Engine()
    slow = engine.timeout(3.0, "slow")
    fast = engine.timeout(1.0, "fast")
    winners = []

    def waiter():
        winner = yield engine.any_of([slow, fast])
        winners.append((engine.now, winner))

    engine.process(waiter())
    engine.run()
    assert winners == [(1.0, fast)]
    assert winners[0][1].value == "fast"


def test_any_of_ignores_later_completions():
    engine = Engine()
    first = engine.timeout(1.0)
    second = engine.timeout(2.0)
    done = engine.any_of([first, second])
    engine.run()
    assert done.value is first
    assert second.triggered  # raced event still completes on its own


def test_any_of_with_already_triggered_event():
    engine = Engine()
    ready = engine.event()
    ready.succeed("now")
    done = engine.any_of([ready, engine.timeout(5.0)])
    engine.run(until=0.1)
    assert done.triggered and done.value is ready


def test_any_of_empty_is_an_error():
    with pytest.raises(SimulationError):
        Engine().any_of([])
