"""Fast-path vs reference kernel: bit-identical shuffle outcomes.

The fast engine dispatches same-instant work from a FIFO deque instead
of the time heap.  Ready entries and heap entries share one sequence
counter and time never advances while the deque is non-empty, so the
callback order — and therefore every simulated number — must match the
all-heap reference mode (``Engine(fast=False)``) exactly, float bit
for float bit.  These tests hold the kernel to that across the policy
spectrum and under an active fault plan.
"""

import dataclasses

from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.obs import Observer
from repro.routing import AdaptiveArmPolicy, CentralizedPolicy, DirectPolicy
from repro.sim import Engine, FlowMatrix, ShuffleConfig, ShuffleSimulator

MB = 1024 * 1024


def small_config(**overrides):
    defaults = dict(injection_rate=None, consume_rate=None)
    defaults.update(overrides)
    return ShuffleConfig(**defaults)


def run_both(machine, gpus, flows, make_policy, **sim_kwargs):
    """Run the same shuffle on the fast and the reference kernel."""
    fast = ShuffleSimulator(machine, gpus, small_config(), **sim_kwargs).run(
        flows, make_policy()
    )
    reference = ShuffleSimulator(
        machine,
        gpus,
        small_config(),
        engine_factory=lambda: Engine(fast=False),
        **sim_kwargs,
    ).run(flows, make_policy())
    return fast, reference


def assert_identical(fast, reference):
    """Field-by-field exact equality — no approx, floats must be ==."""
    assert dataclasses.asdict(fast) == dataclasses.asdict(reference)


def skewed_flows(gpus):
    flows = FlowMatrix()
    for src in gpus:
        for dst in gpus:
            if src != dst:
                flows.add(src, dst, (12 if dst == gpus[0] else 4) * MB)
    return flows


def test_direct_policy_identical(dgx1):
    gpus = (0, 1, 2, 3)
    fast, reference = run_both(
        dgx1, gpus, FlowMatrix.all_to_all(gpus, 8 * MB), DirectPolicy
    )
    assert_identical(fast, reference)


def test_adaptive_policy_identical_under_skew(dgx1):
    gpus = tuple(range(8))
    fast, reference = run_both(
        dgx1, gpus, skewed_flows(gpus), AdaptiveArmPolicy
    )
    assert_identical(fast, reference)


def test_centralized_policy_identical(dgx1):
    gpus = (0, 1, 2, 3)
    fast, reference = run_both(
        dgx1, gpus, FlowMatrix.all_to_all(gpus, 8 * MB), CentralizedPolicy
    )
    assert_identical(fast, reference)


def test_identical_under_chaos_fault_plan(dgx1):
    """Equivalence must survive faults: reroutes, retries, restores."""
    gpus = tuple(range(8))
    plan = FaultPlan(
        name="equivalence-mix",
        events=(
            FaultEvent(FaultKind.LINK_DEGRADE, at=0.002, src=0, dst=1,
                       magnitude=0.25, duration=0.01),
            FaultEvent(FaultKind.LINK_FAIL, at=0.004, src=2, dst=3),
            FaultEvent(FaultKind.GPU_STRAGGLER, at=0.003, gpu=4,
                       magnitude=2.0, duration=0.01),
        ),
    )
    fast, reference = run_both(
        dgx1, gpus, skewed_flows(gpus), AdaptiveArmPolicy, faults=plan
    )
    assert_identical(fast, reference)


def test_both_kernels_consume_identical_schedule_sequence(dgx1):
    """Both modes must burn sequence numbers identically: the fast
    path's ordering proof rests on the shared counter, so a drift in
    ``events_scheduled`` would break FIFO equivalence silently."""
    gpus = (0, 1, 2, 3)
    snapshots = []
    for factory in (Engine, lambda: Engine(fast=False)):
        observer = Observer()
        ShuffleSimulator(
            dgx1, gpus, small_config(), observer=observer,
            engine_factory=factory,
        ).run(FlowMatrix.all_to_all(gpus, 8 * MB), AdaptiveArmPolicy())
        snapshots.append(
            observer.metrics.gauge("engine.events_scheduled").value
        )
    assert snapshots[0] == snapshots[1] > 0
    # The fast kernel must actually be exercising its deque here, or
    # this whole file is vacuously comparing the reference to itself.
    fast_observer = Observer()
    ShuffleSimulator(dgx1, gpus, small_config(), observer=fast_observer).run(
        FlowMatrix.all_to_all(gpus, 8 * MB), AdaptiveArmPolicy()
    )
    assert fast_observer.metrics.gauge("engine.ready_dispatches").value > 0
