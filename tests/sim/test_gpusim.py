"""GPU sender/receiver machinery internals.

Exercised through small, surgical shuffles so the queueing, batching,
forwarding and backpressure behaviours are observable.
"""

import pytest

from repro.routing import AdaptiveArmPolicy, DirectPolicy
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator
from repro.topology.routes import Route

MB = 1024 * 1024


def config(**overrides):
    defaults = dict(injection_rate=None, consume_rate=None)
    defaults.update(overrides)
    return ShuffleConfig(**defaults)


class _FixedRoutePolicy(DirectPolicy):
    """Test double: always route via a fixed relay."""

    name = "fixed-relay"

    def __init__(self, route: Route) -> None:
        self._route = route

    def choose_route(self, context, src, dst, batch_bytes, packet_bytes):
        if (src, dst) == (self._route.src, self._route.dst):
            return self._route
        return context.enumerator.direct_route(src, dst)


def test_forwarding_through_relay_counts_wire_bytes_twice(dgx1):
    flows = FlowMatrix()
    flows.add(0, 5, 16 * MB)
    policy = _FixedRoutePolicy(Route((0, 1, 5)))
    report = ShuffleSimulator(dgx1, (0, 1, 5), config()).run(flows, policy)
    # Payload counted once, wire bytes once per hop.
    assert report.payload_bytes == 16 * MB
    assert report.wire_bytes == pytest.approx(2 * 16 * MB, rel=0.01)
    assert report.average_hops == 2.0


def test_relay_gpu_forwards_without_consuming(dgx1):
    flows = FlowMatrix()
    flows.add(0, 5, 8 * MB)
    policy = _FixedRoutePolicy(Route((0, 4, 5)))
    report = ShuffleSimulator(dgx1, (0, 4, 5), config()).run(flows, policy)
    assert report.per_gpu_delivered[5] == 8 * MB
    assert report.per_gpu_delivered.get(4, 0) == 0


def test_batching_respects_batch_size(dgx1):
    flows = FlowMatrix()
    flows.add(0, 1, 64 * MB)  # 32 packets
    small_batches = config(batch_size=2, buffer_slots=64)
    report = ShuffleSimulator(dgx1, (0, 1), small_batches).run(
        flows, DirectPolicy()
    )
    assert report.packets_delivered == 32


def test_dma_engine_limit_caps_parallelism(dgx1):
    # GPU 0 sends to 4 NVLink neighbours at once; with one DMA engine
    # the transfers serialize, with four they parallelize.
    flows = FlowMatrix()
    for dst in (1, 2, 3, 4):
        flows.add(0, dst, 32 * MB)
    participants = (0, 1, 2, 3, 4)
    serial = ShuffleSimulator(dgx1, participants, config(dma_engines=1)).run(
        flows, DirectPolicy()
    )
    parallel = ShuffleSimulator(dgx1, participants, config(dma_engines=4)).run(
        flows, DirectPolicy()
    )
    assert serial.elapsed > 2.5 * parallel.elapsed


def test_wrr_drains_flows_fairly(dgx1):
    # Two equal flows out of GPU 0 on equal links should finish
    # within ~one batch of each other.
    flows = FlowMatrix()
    flows.add(0, 1, 32 * MB)
    flows.add(0, 2, 32 * MB)
    report = ShuffleSimulator(dgx1, (0, 1, 2), config(dma_engines=2)).run(
        flows, DirectPolicy()
    )
    assert report.per_gpu_delivered[1] == report.per_gpu_delivered[2]


def test_backpressure_from_slow_consumer(dgx1):
    flows = FlowMatrix()
    flows.add(0, 1, 64 * MB)
    slow = config(consume_rate=2e9, buffer_slots=8)
    fast = config(consume_rate=None)
    slow_report = ShuffleSimulator(dgx1, (0, 1), slow).run(flows, DirectPolicy())
    fast_report = ShuffleSimulator(dgx1, (0, 1), fast).run(flows, DirectPolicy())
    # With an 8-slot buffer and a 2 GB/s consumer, arrivals stall.
    assert slow_report.elapsed > 2 * fast_report.elapsed
    assert slow_report.buffer_sync_count > 0


def test_header_bytes_add_wire_overhead(dgx1):
    flows = FlowMatrix()
    flows.add(0, 1, 16 * MB)
    lean = ShuffleSimulator(dgx1, (0, 1), config(header_bytes=0)).run(
        flows, DirectPolicy()
    )
    fat = ShuffleSimulator(dgx1, (0, 1), config(header_bytes=4096)).run(
        flows, DirectPolicy()
    )
    assert fat.wire_bytes > lean.wire_bytes
    assert fat.delivered_bytes == lean.delivered_bytes == 16 * MB


def test_staged_transfer_crosses_every_link(dgx1):
    flows = FlowMatrix()
    flows.add(0, 5, 4 * MB)
    report = ShuffleSimulator(dgx1, (0, 5), config()).run(flows, DirectPolicy())
    # gpu0->sw0->cpu0->cpu1->sw2->gpu5: five links each moved the data.
    assert len(report.link_stats) == 5
    for stats in report.link_stats.values():
        assert stats.bytes_sent >= 4 * MB


def test_buffer_slots_must_cover_batch(dgx1):
    with pytest.raises(ValueError):
        ShuffleConfig(batch_size=16, buffer_slots=8)


class TestPickBatch:
    """Unit tests for the weighted round-robin batch selection.

    A node with zero DMA engines never runs its senders, so the queues
    can be staged and ``_pick_batch`` called directly.
    """

    def make_node(self, machine, gpu_id=0, batch_size=8):
        from repro.sim.engine import Engine
        from repro.sim.gpusim import GpuNode

        return GpuNode(
            Engine(),
            gpu_id,
            machine,
            links={},
            policy=None,
            context=None,
            packet_size=2 * MB,
            batch_size=batch_size,
            header_bytes=0,
            buffer_slots=batch_size,
            buffer_sync_latency=0.0,
            dma_engines=0,
            injection_rate=None,
            consume_rate=None,
            on_delivery=lambda packet: None,
        )

    def packet(self, dst, sequence, route=None):
        from repro.sim.gpusim import Packet

        return Packet(
            flow_src=0,
            flow_dst=dst,
            payload_bytes=MB,
            header_bytes=0,
            route=route or Route((0, dst)),
            sequence=sequence,
        )

    def test_empty_queues_yield_none(self, dgx1):
        assert self.make_node(dgx1)._pick_batch() is None

    def test_mixed_destinations_pick_most_loaded_queue(self, dgx1):
        node = self.make_node(dgx1)
        for sequence in range(3):
            node.enqueue(self.packet(1, sequence))
        node.enqueue(self.packet(2, 3))
        first = node._pick_batch()
        assert [p.flow_dst for p in first] == [1, 1, 1]
        second = node._pick_batch()
        assert [p.flow_dst for p in second] == [2]
        assert node._pick_batch() is None

    def test_batch_capped_at_batch_size(self, dgx1):
        node = self.make_node(dgx1, batch_size=8)
        for sequence in range(12):
            node.enqueue(self.packet(1, sequence))
        batch = node._pick_batch()
        assert len(batch) == 8
        assert [p.sequence for p in batch] == list(range(8))
        assert len(node._pick_batch()) == 4  # FIFO remainder

    def test_batch_never_mixes_routes(self, dgx1):
        # Same next hop (gpu1) but different full routes: the batch
        # must stop at the route boundary because its packets share one
        # buffer acquisition and link commitment downstream.
        node = self.make_node(dgx1)
        direct = Route((0, 1))
        relayed = Route((0, 1, 5))
        node.enqueue(self.packet(1, 0, direct))
        node.enqueue(self.packet(1, 1, direct))
        node.enqueue(self.packet(5, 2, relayed))
        node.enqueue(self.packet(5, 3, relayed))
        assert [p.route for p in node._pick_batch()] == [direct, direct]
        assert [p.route for p in node._pick_batch()] == [relayed, relayed]

    def test_active_sends_discount_prevents_starvation(self, dgx1):
        # A slow link keeps DMA engines parked on its queue; the weight
        # discount must steer the next free engine to the short queue
        # instead of piling a third engine onto the long one.
        node = self.make_node(dgx1)
        for sequence in range(6):
            node.enqueue(self.packet(1, sequence))
        for sequence in range(6, 9):
            node.enqueue(self.packet(2, sequence))
        node._active_sends[1] = 2  # weight 6/(1+2)=2 vs 3/(1+0)=3
        batch = node._pick_batch()
        assert {p.flow_dst for p in batch} == {2}

    def test_ties_rotate_between_queues(self, dgx1):
        node = self.make_node(dgx1)
        node.enqueue(self.packet(1, 0))
        node.enqueue(self.packet(2, 1))
        first = node._pick_batch()
        second = node._pick_batch()
        assert {first[0].flow_dst, second[0].flow_dst} == {1, 2}
        # Refill equally: the rotation means the queue served second
        # above is not penalized — strict weights still alternate.
        node.enqueue(self.packet(1, 2))
        node.enqueue(self.packet(2, 3))
        third = node._pick_batch()
        assert third[0].flow_dst != second[0].flow_dst
