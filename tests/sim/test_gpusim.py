"""GPU sender/receiver machinery internals.

Exercised through small, surgical shuffles so the queueing, batching,
forwarding and backpressure behaviours are observable.
"""

import pytest

from repro.routing import AdaptiveArmPolicy, DirectPolicy
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator
from repro.topology.routes import Route

MB = 1024 * 1024


def config(**overrides):
    defaults = dict(injection_rate=None, consume_rate=None)
    defaults.update(overrides)
    return ShuffleConfig(**defaults)


class _FixedRoutePolicy(DirectPolicy):
    """Test double: always route via a fixed relay."""

    name = "fixed-relay"

    def __init__(self, route: Route) -> None:
        self._route = route

    def choose_route(self, context, src, dst, batch_bytes, packet_bytes):
        if (src, dst) == (self._route.src, self._route.dst):
            return self._route
        return context.enumerator.direct_route(src, dst)


def test_forwarding_through_relay_counts_wire_bytes_twice(dgx1):
    flows = FlowMatrix()
    flows.add(0, 5, 16 * MB)
    policy = _FixedRoutePolicy(Route((0, 1, 5)))
    report = ShuffleSimulator(dgx1, (0, 1, 5), config()).run(flows, policy)
    # Payload counted once, wire bytes once per hop.
    assert report.payload_bytes == 16 * MB
    assert report.wire_bytes == pytest.approx(2 * 16 * MB, rel=0.01)
    assert report.average_hops == 2.0


def test_relay_gpu_forwards_without_consuming(dgx1):
    flows = FlowMatrix()
    flows.add(0, 5, 8 * MB)
    policy = _FixedRoutePolicy(Route((0, 4, 5)))
    report = ShuffleSimulator(dgx1, (0, 4, 5), config()).run(flows, policy)
    assert report.per_gpu_delivered[5] == 8 * MB
    assert report.per_gpu_delivered.get(4, 0) == 0


def test_batching_respects_batch_size(dgx1):
    flows = FlowMatrix()
    flows.add(0, 1, 64 * MB)  # 32 packets
    small_batches = config(batch_size=2, buffer_slots=64)
    report = ShuffleSimulator(dgx1, (0, 1), small_batches).run(
        flows, DirectPolicy()
    )
    assert report.packets_delivered == 32


def test_dma_engine_limit_caps_parallelism(dgx1):
    # GPU 0 sends to 4 NVLink neighbours at once; with one DMA engine
    # the transfers serialize, with four they parallelize.
    flows = FlowMatrix()
    for dst in (1, 2, 3, 4):
        flows.add(0, dst, 32 * MB)
    participants = (0, 1, 2, 3, 4)
    serial = ShuffleSimulator(dgx1, participants, config(dma_engines=1)).run(
        flows, DirectPolicy()
    )
    parallel = ShuffleSimulator(dgx1, participants, config(dma_engines=4)).run(
        flows, DirectPolicy()
    )
    assert serial.elapsed > 2.5 * parallel.elapsed


def test_wrr_drains_flows_fairly(dgx1):
    # Two equal flows out of GPU 0 on equal links should finish
    # within ~one batch of each other.
    flows = FlowMatrix()
    flows.add(0, 1, 32 * MB)
    flows.add(0, 2, 32 * MB)
    report = ShuffleSimulator(dgx1, (0, 1, 2), config(dma_engines=2)).run(
        flows, DirectPolicy()
    )
    assert report.per_gpu_delivered[1] == report.per_gpu_delivered[2]


def test_backpressure_from_slow_consumer(dgx1):
    flows = FlowMatrix()
    flows.add(0, 1, 64 * MB)
    slow = config(consume_rate=2e9, buffer_slots=8)
    fast = config(consume_rate=None)
    slow_report = ShuffleSimulator(dgx1, (0, 1), slow).run(flows, DirectPolicy())
    fast_report = ShuffleSimulator(dgx1, (0, 1), fast).run(flows, DirectPolicy())
    # With an 8-slot buffer and a 2 GB/s consumer, arrivals stall.
    assert slow_report.elapsed > 2 * fast_report.elapsed
    assert slow_report.buffer_sync_count > 0


def test_header_bytes_add_wire_overhead(dgx1):
    flows = FlowMatrix()
    flows.add(0, 1, 16 * MB)
    lean = ShuffleSimulator(dgx1, (0, 1), config(header_bytes=0)).run(
        flows, DirectPolicy()
    )
    fat = ShuffleSimulator(dgx1, (0, 1), config(header_bytes=4096)).run(
        flows, DirectPolicy()
    )
    assert fat.wire_bytes > lean.wire_bytes
    assert fat.delivered_bytes == lean.delivered_bytes == 16 * MB


def test_staged_transfer_crosses_every_link(dgx1):
    flows = FlowMatrix()
    flows.add(0, 5, 4 * MB)
    report = ShuffleSimulator(dgx1, (0, 5), config()).run(flows, DirectPolicy())
    # gpu0->sw0->cpu0->cpu1->sw2->gpu5: five links each moved the data.
    assert len(report.link_stats) == 5
    for stats in report.link_stats.values():
        assert stats.bytes_sent >= 4 * MB


def test_buffer_slots_must_cover_batch(dgx1):
    with pytest.raises(ValueError):
        ShuffleConfig(batch_size=16, buffer_slots=8)
