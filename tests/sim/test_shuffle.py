"""The shuffle simulator end to end (small flows for speed)."""

import pytest

from repro.routing import (
    AdaptiveArmPolicy,
    BandwidthPolicy,
    CentralizedPolicy,
    DirectPolicy,
    HopCountPolicy,
    LatencyPolicy,
)
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator

MB = 1024 * 1024


def small_config(**overrides):
    defaults = dict(injection_rate=None, consume_rate=None)
    defaults.update(overrides)
    return ShuffleConfig(**defaults)


class TestFlowMatrix:
    def test_add_and_total(self):
        flows = FlowMatrix()
        flows.add(0, 1, 100)
        flows.add(0, 1, 50)
        flows.add(1, 0, 25)
        assert flows.flows[(0, 1)] == 150
        assert flows.total_bytes == 175

    def test_self_flows_ignored(self):
        flows = FlowMatrix()
        flows.add(2, 2, 1000)
        assert flows.total_bytes == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FlowMatrix().add(0, 1, -5)

    def test_all_to_all(self):
        flows = FlowMatrix.all_to_all((0, 1, 2), 10)
        assert len(flows.flows) == 6
        assert flows.total_bytes == 60
        assert flows.outgoing(0) == {1: 10, 2: 10}


class TestShuffleSimulator:
    def test_everything_is_delivered(self, dgx1):
        flows = FlowMatrix.all_to_all((0, 1, 2, 3), 8 * MB)
        report = ShuffleSimulator(dgx1, (0, 1, 2, 3), small_config()).run(
            flows, DirectPolicy()
        )
        assert report.delivered_bytes == flows.total_bytes
        assert report.packets_delivered == 4 * 3 * 4  # 8MB / 2MB packets

    def test_throughput_definition(self, dgx1):
        flows = FlowMatrix.all_to_all((0, 1), 16 * MB)
        report = ShuffleSimulator(dgx1, (0, 1), small_config()).run(
            flows, DirectPolicy()
        )
        assert report.throughput == pytest.approx(
            report.payload_bytes / report.elapsed
        )

    def test_single_nvlink_pair_saturates_link(self, dgx1):
        """One direction of one NVLink x1 pair ~= 25 GB/s."""
        flows = FlowMatrix()
        flows.add(0, 1, 64 * MB)
        report = ShuffleSimulator(dgx1, (0, 1), small_config()).run(
            flows, DirectPolicy()
        )
        achieved = report.payload_bytes / report.elapsed
        assert achieved == pytest.approx(25e9, rel=0.08)

    def test_direct_policy_all_packets_single_hop(self, dgx1):
        flows = FlowMatrix.all_to_all((0, 1, 4, 5), 4 * MB)
        report = ShuffleSimulator(dgx1, (0, 1, 4, 5), small_config()).run(
            flows, DirectPolicy()
        )
        assert report.average_hops == 1.0

    def test_adaptive_uses_multi_hop_for_staged_pairs(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 5, 64 * MB)  # no NVLink between 0 and 5
        report = ShuffleSimulator(dgx1, (0, 1, 5), small_config()).run(
            flows, AdaptiveArmPolicy()
        )
        assert report.average_hops > 1.0

    def test_multi_hop_beats_direct_on_staged_pair(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 5, 64 * MB)
        sim = ShuffleSimulator(dgx1, (0, 1, 5), small_config())
        direct = sim.run(flows, DirectPolicy())
        adaptive = sim.run(flows, AdaptiveArmPolicy())
        assert adaptive.elapsed < direct.elapsed

    def test_static_policies_complete(self, dgx1):
        flows = FlowMatrix.all_to_all((0, 3, 4, 7), 4 * MB)
        sim = ShuffleSimulator(dgx1, (0, 3, 4, 7), small_config())
        for policy in (BandwidthPolicy(), HopCountPolicy(), LatencyPolicy()):
            report = sim.run(flows, policy)
            assert report.delivered_bytes == flows.total_bytes

    def test_centralized_charges_sync_time(self, dgx1):
        flows = FlowMatrix.all_to_all((0, 1, 2, 3), 8 * MB)
        sim = ShuffleSimulator(dgx1, (0, 1, 2, 3), small_config())
        report = sim.run(flows, CentralizedPolicy())
        assert report.sync_time_total > 0.0

    def test_injection_pacing_slows_completion(self, dgx1):
        flows = FlowMatrix.all_to_all((0, 1, 2, 3), 8 * MB)
        fast = ShuffleSimulator(dgx1, (0, 1, 2, 3), small_config()).run(
            flows, DirectPolicy()
        )
        paced = ShuffleSimulator(
            dgx1, (0, 1, 2, 3), small_config(injection_rate=1e9)
        ).run(flows, DirectPolicy())
        assert paced.elapsed > fast.elapsed

    def test_consume_rate_extends_consume_finish(self, dgx1):
        flows = FlowMatrix.all_to_all((0, 1), 16 * MB)
        report = ShuffleSimulator(
            dgx1, (0, 1), small_config(consume_rate=1e9)
        ).run(flows, DirectPolicy())
        assert report.consume_finish_time > report.elapsed

    def test_bisection_utilization_bounded(self, dgx1):
        flows = FlowMatrix.all_to_all(tuple(range(8)), 2 * MB)
        report = ShuffleSimulator(dgx1, tuple(range(8)), small_config()).run(
            flows, AdaptiveArmPolicy()
        )
        assert 0.0 <= report.bisection_utilization <= 1.0

    def test_foreign_flow_gpus_rejected(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 7, MB)
        with pytest.raises(ValueError):
            ShuffleSimulator(dgx1, (0, 1)).run(flows, DirectPolicy())

    def test_needs_two_gpus(self, dgx1):
        with pytest.raises(ValueError):
            ShuffleSimulator(dgx1, (0,))

    def test_partial_packet_for_non_multiple_sizes(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 1, 3 * MB)  # 2 MB + 1 MB packets
        report = ShuffleSimulator(dgx1, (0, 1), small_config()).run(
            flows, DirectPolicy()
        )
        assert report.packets_delivered == 2
        assert report.delivered_bytes == 3 * MB

    def test_external_relays_opt_in(self, dgx1):
        """Idle machine GPUs may relay only when explicitly allowed."""
        flows = FlowMatrix()
        flows.add(0, 5, 64 * MB)  # only NVLink path is via idle GPUs
        restricted = ShuffleSimulator(dgx1, (0, 5), small_config()).run(
            flows, AdaptiveArmPolicy()
        )
        relayed = ShuffleSimulator(
            dgx1, (0, 5), small_config(allow_external_relays=True)
        ).run(flows, AdaptiveArmPolicy())
        assert restricted.average_hops == 1.0  # nothing to relay through
        assert relayed.average_hops > 1.0
        assert relayed.elapsed < restricted.elapsed
        assert relayed.delivered_bytes == restricted.delivered_bytes

    def test_buffer_syncs_counted_under_pressure(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 1, 128 * MB)
        config = small_config(buffer_slots=8, consume_rate=5e9)
        report = ShuffleSimulator(dgx1, (0, 1), config).run(
            flows, DirectPolicy()
        )
        assert report.buffer_sync_count > 0


class TestRogueRoutePolicies:
    """A policy bug must surface as a clear SimulationError naming the
    flow and the offending route — never a hang or a KeyError."""

    def _run(self, dgx1, policy):
        from repro.sim import SimulationError

        flows = FlowMatrix()
        flows.add(0, 5, 4 * MB)
        with pytest.raises(SimulationError) as excinfo:
            ShuffleSimulator(dgx1, (0, 1, 5), small_config()).run(
                flows, policy
            )
        return str(excinfo.value)

    def test_disconnected_route_rejected(self, dgx1):
        from repro.routing.base import RoutingPolicy
        from repro.topology import Route

        class Teleporter(RoutingPolicy):
            name = "teleporter"

            def choose_route(self, context, src, dst, batch_bytes,
                             packet_bytes):
                return Route((src, 6, dst))  # 6 not NVLink-adjacent to 5

        message = self._run(dgx1, Teleporter())
        assert "gpu0->gpu5" in message
        assert "gpu6" in message

    def test_route_with_wrong_endpoints_rejected(self, dgx1):
        from repro.routing.base import RoutingPolicy
        from repro.topology import Route

        class WrongWay(RoutingPolicy):
            name = "wrong-way"

            def choose_route(self, context, src, dst, batch_bytes,
                             packet_bytes):
                return Route((src, 1))  # never reaches dst

        message = self._run(dgx1, WrongWay())
        assert "gpu0->gpu5" in message
        assert "endpoints" in message
