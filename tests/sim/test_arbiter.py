"""Per-link bandwidth arbitration between tagged (per-query) flows."""

import pytest

from repro.sim import ARBITRATION_MODES, Engine, LinkArbiter, LinkChannel
from repro.topology.links import LinkSpec, LinkType
from repro.topology.nodes import gpu

MB = 1024 * 1024


def make_link(engine, mode=None, priorities=None):
    spec = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK)
    link = LinkChannel(engine, spec, None)
    if mode is not None:
        link.arbiter = LinkArbiter(link, mode=mode, priorities=priorities or {})
    return link


def submit_all(engine, link, labelled):
    """Submit (tag, nbytes) pairs; returns the completion log."""
    log = []
    for tag, nbytes in labelled:
        event = link.transmit(nbytes, tag=tag)
        event.add_callback(
            lambda ev, tag=tag: log.append((tag, engine.now, ev.value))
        )
    return log


def test_mode_vocabulary_is_closed():
    engine = Engine()
    link = make_link(engine)
    assert set(ARBITRATION_MODES) == {"fair", "priority"}
    with pytest.raises(ValueError, match="unknown arbitration mode"):
        LinkArbiter(link, mode="psychic")


def test_fair_interleaves_two_queries_packet_for_packet():
    engine = Engine()
    link = make_link(engine, mode="fair")
    log = submit_all(
        engine, link, [("a", MB), ("a", MB), ("b", MB), ("b", MB)]
    )
    engine.run()
    # A FIFO wire would finish a,a,b,b; the arbiter alternates.
    assert [tag for tag, _, _ in log] == ["a", "b", "a", "b"]
    service = link.service_time(MB)
    for index, (_, at, delivered) in enumerate(log, start=1):
        assert delivered is True
        assert at == pytest.approx(index * service)


def test_fair_shields_a_small_query_from_a_deep_backlog():
    engine = Engine()
    link = make_link(engine, mode="fair")
    log = submit_all(
        engine, link,
        [("bulk", MB)] * 4 + [("tiny", MB)],
    )
    engine.run()
    # The single-packet query gets the second slot, not the fifth.
    assert [tag for tag, _, _ in log][:2] == ["bulk", "tiny"]


def test_priority_preempts_at_packet_boundaries():
    engine = Engine()
    link = make_link(engine, mode="priority", priorities={"hi": 1})
    log = submit_all(
        engine, link, [("lo", MB), ("lo", MB), ("hi", MB)]
    )
    engine.run()
    # The in-flight packet is never aborted; the high-priority tag wins
    # the next boundary instead.
    assert [tag for tag, _, _ in log] == ["lo", "hi", "lo"]


def test_single_tag_is_timing_identical_to_the_legacy_path():
    """With no competition, arbitration must not change the clock."""
    sizes = [MB, 2 * MB, MB // 2]

    def finish_times(tagged):
        engine = Engine()
        link = make_link(engine, mode="fair" if tagged else None)
        log = submit_all(
            engine, link,
            [("only" if tagged else None, size) for size in sizes],
        )
        engine.run()
        return [at for _, at, _ in log]

    assert finish_times(tagged=True) == finish_times(tagged=False)


def test_waiting_requests_count_toward_queue_delay():
    """Arbiter-held requests are part of the paper's Q_i backlog."""
    engine = Engine()
    plain = make_link(engine)
    arbitrated = make_link(engine, mode="fair")
    for link, tag in ((plain, None), (arbitrated, "q")):
        link.transmit(MB, tag=tag)
        link.transmit(MB, tag=tag)
    assert arbitrated.queue_delay() == pytest.approx(plain.queue_delay())


def test_dead_link_fails_tagged_transfers_fast():
    engine = Engine()
    link = make_link(engine, mode="fair")
    link.take_down()
    log = submit_all(engine, link, [("a", MB)])
    engine.run()
    tag, at, delivered = log[0]
    assert delivered is False
    assert at == pytest.approx(link.spec.latency)
    assert link.transfers_lost == 1


def test_outage_mid_wait_does_not_stall_other_queries():
    """A request that dies waiting its turn surfaces as a lost packet;
    requests behind it keep flowing once the link is back."""
    engine = Engine()
    link = make_link(engine, mode="fair")
    log = submit_all(engine, link, [("a", MB), ("b", MB)])
    service = link.service_time(MB)
    # Outage window covers the first completion boundary only.
    engine.schedule(service * 0.5, link.take_down)
    engine.schedule(service * 1.5, link.bring_up)
    engine.run()
    outcomes = {tag: delivered for tag, _, delivered in log}
    assert outcomes["a"] is False  # died mid-flight
    assert len(log) == 2  # b still reached a terminal event
