"""Alert engine: rule matching, budgets, cooldowns, persistence."""

import json

import pytest

from repro.obs.alerts import (
    DEFAULT_RULES,
    AlertEngine,
    AlertRule,
    load_rules,
    with_threshold,
)
from repro.obs.stream import TelemetryStream


def links_event(t, max_util):
    return dict(
        type="links", t=t, clock="sim", samples=[], max_util=max_util,
        max_queue=0.0, v=1,
    )


class TestAlertRule:
    def test_threshold_match(self):
        rule = AlertRule("hot", "links", field="max_util", threshold=0.9)
        assert rule.matches(links_event(0.0, 0.95))
        assert not rule.matches(links_event(0.0, 0.5))
        assert not rule.matches({"type": "fault"})

    def test_where_clause(self):
        rule = AlertRule(
            "blackout", "fault",
            where=(("action", "fault.inject"), ("kind", "link-blackout")),
        )
        assert rule.matches(
            {"type": "fault", "action": "fault.inject", "kind": "link-blackout"}
        )
        # Restores must not re-fire injection alerts.
        assert not rule.matches(
            {"type": "fault", "action": "fault.restore", "kind": "link-blackout"}
        )

    def test_non_numeric_value_never_matches(self):
        rule = AlertRule("hot", "links", field="max_util", threshold=0.9)
        assert not rule.matches(
            {"type": "links", "max_util": "high"}
        )
        assert not rule.matches({"type": "links", "max_util": True})

    @pytest.mark.parametrize("op,value,fires", [
        (">=", 0.9, True), (">", 0.9, False), ("<=", 0.9, True),
        ("<", 0.9, False), ("==", 0.9, True),
    ])
    def test_ops(self, op, value, fires):
        rule = AlertRule("r", "links", field="max_util", op=op, threshold=0.9)
        assert rule.matches(links_event(0.0, value)) is fires

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown op"):
            AlertRule("r", "links", field="x", op="!=", threshold=1.0)
        with pytest.raises(ValueError, match="without threshold"):
            AlertRule("r", "links", field="x")
        with pytest.raises(ValueError, match="min_count"):
            AlertRule("r", "links", min_count=0)

    def test_dict_roundtrip(self):
        for rule in DEFAULT_RULES:
            assert AlertRule.from_dict(rule.to_dict()) == rule

    def test_with_threshold(self):
        rule = with_threshold(DEFAULT_RULES[0], 0.5)
        assert rule.threshold == 0.5
        assert rule.name == DEFAULT_RULES[0].name


class TestAlertEngine:
    def test_fires_and_reemits_into_stream(self):
        stream = TelemetryStream(None)
        seen = []
        stream.subscribe(seen.append)
        engine = AlertEngine(stream)
        stream.emit("links", t=0.0, samples=[], max_util=0.99, max_queue=0.0)
        assert len(engine.fired) == 1
        alert = engine.fired[0]
        assert alert["rule"] == "link-saturation"
        assert alert["value"] == 0.99 and alert["threshold"] == 0.95
        assert any(event["type"] == "alert" for event in seen)

    def test_never_alerts_on_alerts(self):
        stream = TelemetryStream(None)
        rules = (AlertRule("meta", "alert"),)
        engine = AlertEngine(stream, rules)
        stream.emit("alert", t=0.0, rule="x", severity="warning")
        assert engine.fired == []

    def test_min_count_budget(self):
        stream = TelemetryStream(None)
        engine = AlertEngine(
            stream, (AlertRule("budget", "packet.retry", min_count=3),)
        )
        for index in range(4):
            stream.emit("packet.retry", t=float(index), reason="busy")
        # Fires at the 3rd and again at the 4th (no cooldown configured).
        assert [alert["count"] for alert in engine.fired] == [3, 4]

    def test_cooldown_rate_limits(self):
        stream = TelemetryStream(None)
        engine = AlertEngine(
            stream,
            (AlertRule("hot", "links", field="max_util", threshold=0.9,
                       cooldown=1.0),),
        )
        for t in (0.0, 0.5, 1.5):
            stream.emit("links", t=t, samples=[], max_util=1.0, max_queue=0.0)
        assert [alert["t"] for alert in engine.fired] == [0.0, 1.5]

    def test_writes_alerts_jsonl(self, tmp_path):
        path = tmp_path / "telemetry" / "alerts.jsonl"
        stream = TelemetryStream(None)
        engine = AlertEngine(stream, path=path)
        stream.emit(
            "fault", t=0.1, action="fault.inject", kind="link-blackout"
        )
        engine.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["rule"] == "link-blackout"
        assert lines[0]["severity"] == "critical"

    def test_summary_counts_by_severity(self):
        stream = TelemetryStream(None)
        engine = AlertEngine(stream)
        stream.emit("fault", t=0.0, action="fault.inject", kind="link-blackout")
        stream.emit("fault", t=0.0, action="fault.inject", kind="gpu-straggler")
        assert engine.summary() == {
            "fired": 2,
            "by_severity": {"critical": 1, "warning": 1},
        }

    def test_default_rules_ignore_fault_restores(self):
        stream = TelemetryStream(None)
        engine = AlertEngine(stream)
        stream.emit("fault", t=0.5, action="fault.restore", kind="link-blackout")
        assert engine.fired == []

    def test_residual_drift_rule(self):
        stream = TelemetryStream(None)
        engine = AlertEngine(stream)
        stream.emit("conformance", t=1.0, count=100, drift_ratio=0.75)
        assert [alert["rule"] for alert in engine.fired] == ["residual-drift"]

    def test_checksum_failure_rule(self):
        stream = TelemetryStream(None)
        engine = AlertEngine(stream)
        stream.emit(
            "integrity", t=1.0, kind="checksum-failure", src=0, dst=1, sequence=3
        )
        assert [alert["rule"] for alert in engine.fired] == ["checksum-failure"]
        assert engine.fired[0]["severity"] == "critical"

    def test_checksum_rule_ignores_dup_drops(self):
        # Duplicate suppression is routine protection, not an SLO breach.
        stream = TelemetryStream(None)
        engine = AlertEngine(stream)
        stream.emit(
            "integrity", t=1.0, kind="dup-dropped", src=0, dst=1, sequence=3
        )
        assert engine.fired == []

    def test_checksum_rule_is_a_default(self):
        assert any(rule.name == "checksum-failure" for rule in DEFAULT_RULES)


def test_load_rules_roundtrip(tmp_path):
    path = tmp_path / "rules.json"
    path.write_text(json.dumps([rule.to_dict() for rule in DEFAULT_RULES]))
    assert load_rules(path) == DEFAULT_RULES
    path.write_text(json.dumps({"not": "a list"}))
    with pytest.raises(ValueError, match="JSON list"):
        load_rules(path)
