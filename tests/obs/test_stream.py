"""Telemetry stream: schema, sinks, bounds, and simulator integration."""

import io
import json

import pytest

from repro.obs import Observer
from repro.obs.analyze import LinkTimelineSampler
from repro.obs.stream import (
    EVENT_TYPES,
    STREAM_SCHEMA_VERSION,
    TelemetryStream,
    open_stream,
    read_events,
    validate_event,
)
from repro.routing import AdaptiveArmPolicy
from repro.sim import FlowMatrix, ShuffleSimulator

MB = 1024 * 1024


class TestTelemetryStream:
    def test_emit_writes_schema_versioned_ndjson(self):
        sink = io.StringIO()
        stream = TelemetryStream(sink)
        stream.emit("run.started", t=0.0, clock="sim", gpus=4)
        stream.emit("run.finished", t=1.5, clock="sim", elapsed=1.5)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["v"] == STREAM_SCHEMA_VERSION
        assert first["type"] == "run.started"
        assert first["gpus"] == 4
        assert validate_event(first) == []
        assert validate_event(json.loads(lines[1])) == []

    def test_subscribers_see_every_event(self):
        stream = TelemetryStream(None)
        seen = []
        stream.subscribe(seen.append)
        stream.emit("phase", t=0.0, clock="wall", name="shuffle", state="begin")
        assert seen and seen[0]["name"] == "shuffle"

    def test_max_events_drops_and_counts(self):
        sink = io.StringIO()
        stream = TelemetryStream(sink, max_events=2)
        for _ in range(5):
            stream.emit("packet.recovered", t=0.0)
        assert stream.events_emitted == 2
        assert stream.events_dropped == 3
        assert len(sink.getvalue().splitlines()) == 2
        assert stream.stats == {"events_emitted": 2, "events_dropped": 3}

    def test_path_sink_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "stream.ndjson"
        stream = open_stream(path)
        stream.emit("run.finished", t=2.0, elapsed=2.0)
        stream.close()
        events = list(read_events(path))
        assert len(events) == 1
        assert events[0]["elapsed"] == 2.0

    def test_read_events_skips_torn_lines(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        path.write_text(
            json.dumps({"v": 1, "type": "run.started", "t": 0, "clock": "sim"})
            + "\n"
            + '{"v":1,"type":"run.fin'  # torn write
        )
        events = list(read_events(path))
        assert len(events) == 1

    def test_closed_sink_keeps_subscribers_alive(self):
        sink = io.StringIO()
        stream = TelemetryStream(sink)
        seen = []
        stream.subscribe(seen.append)
        sink.close()
        stream.emit("packet.recovered", t=0.0)
        assert len(seen) == 1


class TestValidateEvent:
    def test_rejects_non_dict(self):
        assert validate_event([1, 2]) != []

    def test_rejects_wrong_schema_version(self):
        assert any(
            "schema version" in p
            for p in validate_event(
                {"v": 99, "type": "run.started", "t": 0.0, "clock": "sim"}
            )
        )

    def test_rejects_unknown_type(self):
        assert any(
            "unknown event type" in p
            for p in validate_event({"v": 1, "type": "nope", "t": 0.0, "clock": "sim"})
        )

    def test_rejects_missing_required_fields(self):
        problems = validate_event(
            {"v": 1, "type": "run.finished", "t": 0.0, "clock": "sim"}
        )
        assert any("missing field 'elapsed'" in p for p in problems)

    def test_rejects_bad_clock_and_time(self):
        problems = validate_event(
            {"v": 1, "type": "run.started", "t": "soon", "clock": "lunar"}
        )
        assert any("expected number" in p for p in problems)
        assert any("clock" in p for p in problems)

    def test_rejects_bad_phase_state_and_samples(self):
        assert any(
            "begin/end" in p
            for p in validate_event(
                {"v": 1, "type": "phase", "t": 0.0, "clock": "wall",
                 "name": "shuffle", "state": "paused"}
            )
        )
        assert any(
            "malformed sample" in p
            for p in validate_event(
                {"v": 1, "type": "links", "t": 0.0, "clock": "sim",
                 "samples": [{"util": 1.0}], "max_util": 1.0, "max_queue": 0.0}
            )
        )


def _run_shuffle(machine, observer=None, sampler=None):
    gpu_ids = tuple(machine.gpu_ids)
    flows = FlowMatrix.all_to_all(gpu_ids, 8 * MB)
    simulator = ShuffleSimulator(
        machine, gpu_ids, observer=observer, sampler=sampler
    )
    return simulator.run(flows, AdaptiveArmPolicy())


class TestSimulatorIntegration:
    def test_streamed_run_emits_valid_events_and_terminates(self, dgx1):
        sink = io.StringIO()
        observer = Observer()
        observer.stream = TelemetryStream(sink)
        report = _run_shuffle(dgx1, observer=observer)
        assert report.elapsed > 0.0
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert events, "streamed run emitted nothing"
        for event in events:
            assert validate_event(event) == [], event
        types = {event["type"] for event in events}
        assert {"run.started", "links", "kernel", "run.finished"} <= types
        # The link pump samples on the sim clock and stops with the run:
        # run.finished carries the engine end time (>= last delivery),
        # and no sample outlives it.
        finished = next(e for e in events if e["type"] == "run.finished")
        assert finished["elapsed"] >= report.elapsed
        last_sample = max(
            e["t"] for e in events if e["type"] == "links"
        )
        assert last_sample <= finished["elapsed"]

    def test_streaming_does_not_perturb_the_simulation(self, dgx1):
        baseline = _run_shuffle(dgx1)
        observer = Observer()
        observer.stream = TelemetryStream(io.StringIO())
        streamed = _run_shuffle(dgx1, observer=observer)
        assert streamed.elapsed == baseline.elapsed
        assert streamed.throughput == baseline.throughput

    def test_two_periodic_probes_coexist(self, dgx1):
        """Stream pump + timeline sampler must not keep each other alive."""
        baseline = _run_shuffle(dgx1)
        observer = Observer()
        observer.stream = TelemetryStream(io.StringIO())
        sampler = LinkTimelineSampler()
        report = _run_shuffle(dgx1, observer=observer, sampler=sampler)
        assert report.elapsed == baseline.elapsed
        assert sampler.horizon == pytest.approx(report.elapsed)


def test_event_types_registry_is_consistent():
    for etype, fields in EVENT_TYPES.items():
        assert isinstance(etype, str) and etype
        assert all(isinstance(field, str) for field in fields)
