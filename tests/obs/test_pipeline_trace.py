"""End-to-end observability of a full MG-Join run.

Acceptance criteria for the observability layer: an observed 8-GPU join
emits a loadable Chrome trace with spans for every pipeline phase,
per-route ARM decision events carrying their T_R / D_R terms, and the
whole thing survives the CLI round trip (``repro join --trace``).
"""

import json
import time

import pytest

from helpers import make_workload
from repro.core.mgjoin import PHASE_SPANS, MGJoin, PhaseBreakdown
from repro.obs import SIM, WALL, Observer
from repro.obs.export import validate_chrome_trace
from repro.routing import AdaptiveArmPolicy
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator

MB = 1024 * 1024


@pytest.fixture(scope="module")
def observed_join(dgx1):
    observer = Observer()
    workload = make_workload(num_gpus=8, real=1 << 12, logical=1 << 20)
    result = MGJoin(dgx1, observer=observer).run(workload)
    return observer, result


def test_every_phase_has_a_wall_span(observed_join):
    observer, _ = observed_join
    names = {s.name for s in observer.spans.find(clock=WALL)}
    assert {
        "join",
        "histogram",
        "assignment",
        "global_partition",
        "shuffle",
        "local_partition",
        "probe",
    } <= names


def test_span_nesting_matches_pipeline_structure(observed_join):
    observer, _ = observed_join
    spans = observer.spans
    (join,) = spans.find("join", clock=WALL)
    assert join.parent_id is None
    for phase in ("histogram", "global_partition", "local_partition", "probe"):
        (span,) = spans.find(phase, clock=WALL)
        assert spans.parent_of(span) is join, phase
    (shuffle,) = spans.find("shuffle", clock=WALL)
    assert spans.parent_of(shuffle).name == "global_partition"


def test_route_decisions_recorded_with_arm_terms(observed_join):
    observer, _ = observed_join
    decisions = observer.spans.find_instants("arm.decision", category="route")
    assert len(decisions) > 0
    for decision in decisions:
        attrs = decision.attrs
        assert attrs["T_R"] >= 0
        assert attrs["D_R"] >= 0
        # ARM(R, P) = T_R + D_R (Eq. 4).
        assert attrs["arm"] == pytest.approx(attrs["T_R"] + attrs["D_R"])
        assert "->" in attrs["route"]
    assert observer.metrics.total("route.decisions") == len(decisions)


def test_simulated_timeline_spans(observed_join):
    observer, result = observed_join
    sim_phases = observer.spans.find(clock=SIM, category="phase")
    names = {s.name for s in sim_phases}
    assert {"histogram", "global_partition", "local_partition", "probe"} <= names
    (distribution,) = [s for s in sim_phases if s.name == "distribution"]
    assert distribution.attrs["overlapped"] is True
    (probe,) = [s for s in sim_phases if s.name == "probe"]
    assert probe.end == pytest.approx(result.breakdown.total)


def test_link_transfers_merge_into_trace(observed_join):
    observer, result = observed_join
    link_spans = observer.spans.find(category="link")
    transfers = [s for s in link_spans if s.name == "transfer"]
    assert transfers
    assert sum(s.attrs["bytes"] for s in transfers) == result.shuffle_report.wire_bytes


def test_pipeline_metrics_recorded(observed_join):
    observer, result = observed_join
    metrics = observer.metrics
    assert metrics.total("shuffle.packets") > 0
    assert metrics.total("link.bytes") == result.shuffle_report.wire_bytes
    assert metrics.total("probe.matches") == result.matches_real
    assert metrics.value("shuffle.elapsed_seconds") == pytest.approx(
        result.shuffle_report.elapsed
    )
    staleness = metrics.histogram("board.staleness_seconds")
    assert staleness.count > 0


# ---------------------------------------------------------------------------
# PhaseBreakdown <-> spans sync regression (a new timed phase must also
# appear in the reported breakdown, and vice versa).
# ---------------------------------------------------------------------------


def test_phase_spans_cover_breakdown_keys():
    breakdown = PhaseBreakdown(0.0, 0.0, 0.0, 0.0)
    assert set(PHASE_SPANS) == set(breakdown.as_dict())


def test_phase_spans_match_spans_actually_timed(observed_join):
    observer, _ = observed_join
    timed = {s.name for s in observer.spans.find(clock=WALL, category="phase")}
    mapped = {name for names in PHASE_SPANS.values() for name in names}
    # Every breakdown contributor is really timed by MGJoin.run ...
    assert mapped <= timed
    # ... and every timed phase is accounted for (the root span and the
    # assignment, which the paper overlaps off the critical path, are
    # deliberately not part of the breakdown).
    assert timed - mapped == {"join", "assignment"}


# ---------------------------------------------------------------------------
# CLI round trip
# ---------------------------------------------------------------------------


def test_cli_join_trace_roundtrip(tmp_path, capsys):
    from repro.cli import main

    trace_path = tmp_path / "join.json"
    csv_path = tmp_path / "join.csv"
    rc = main(
        [
            "join",
            "--gpus",
            "8",
            "--tuples-per-gpu",
            "1M",
            "--real-tuples",
            "4K",
            "--trace",
            str(trace_path),
            "--trace-csv",
            str(csv_path),
        ]
    )
    assert rc == 0
    trace = json.loads(trace_path.read_text())
    assert validate_chrome_trace(trace) == []
    events = trace["traceEvents"]
    spans = {e["name"]: e for e in events if e["ph"] == "X" and e["pid"] == 1}
    for phase in ("join", "histogram", "global_partition", "shuffle", "probe"):
        assert phase in spans, phase
    assert spans["shuffle"]["args"]["parent"] == spans["global_partition"]["id"]
    assert spans["histogram"]["args"]["parent"] == spans["join"]["id"]
    decisions = [e for e in events if e["name"] == "arm.decision" and e["ph"] == "i"]
    assert len(decisions) > 0
    assert trace["otherData"]["metrics"]["counters"]
    csv_lines = csv_path.read_text().splitlines()
    assert csv_lines[0] == "record,clock,track,name,start,duration,value,labels"
    assert len(csv_lines) > 1
    out = capsys.readouterr().out
    assert "chrome trace" in out


def test_cli_trace_command(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "shuffle.json"
    rc = main(
        [
            "trace",
            "--gpus",
            "4",
            "--bytes-per-flow",
            "16M",
            "--out",
            str(out_path),
            "--gantt",
        ]
    )
    assert rc == 0
    trace = json.loads(out_path.read_text())
    assert validate_chrome_trace(trace) == []
    # Per-link lanes come through as simulated-clock transfer spans.
    transfers = [
        e for e in trace["traceEvents"] if e["name"] == "transfer" and e["ph"] == "X"
    ]
    assert transfers
    out = capsys.readouterr().out
    assert "route decisions" in out


# ---------------------------------------------------------------------------
# Disabled-path overhead guard
# ---------------------------------------------------------------------------


def _time_shuffle(dgx1, observer) -> float:
    gpu_ids = tuple(range(8))
    flows = FlowMatrix.all_to_all(gpu_ids, 8 * MB)
    best = float("inf")
    for _ in range(3):
        simulator = ShuffleSimulator(
            dgx1, gpu_ids, ShuffleConfig(), observer=observer
        )
        start = time.perf_counter()
        simulator.run(flows, AdaptiveArmPolicy())
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_observability_overhead_is_negligible(dgx1):
    """A Figure-6-style shuffle with ``observer=None`` must not be
    slower than the same shuffle recording everything: recording is a
    strict superset of the disabled path's work, so this bounds the
    cost of the ``is not None`` guards well under the 5% budget.
    """
    disabled = _time_shuffle(dgx1, observer=None)
    enabled = _time_shuffle(dgx1, observer=Observer())
    assert disabled <= enabled * 1.05 + 0.010


def test_disabled_run_records_nothing(dgx1):
    workload = make_workload(num_gpus=4, real=1 << 10, logical=1 << 16)
    join = MGJoin(dgx1)
    assert join.observer is None
    result = join.run(workload)
    assert result.matches_real > 0
