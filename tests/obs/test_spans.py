"""SpanTracer: nesting, clocks, the record cap, queries."""

import warnings

import pytest

from repro.obs import SIM, WALL, SpanTracer


def test_span_context_manager_nests():
    tracer = SpanTracer()
    with tracer.span("outer") as outer:
        assert tracer.current is outer
        with tracer.span("inner") as inner:
            assert tracer.current is inner
            assert inner.parent_id == outer.span_id
    assert tracer.current is None
    # Inner closes first, so it is recorded first.
    assert [s.name for s in tracer.spans] == ["inner", "outer"]
    assert tracer.parent_of(inner) is outer
    assert tracer.children_of(outer) == [inner]
    assert outer.start <= inner.start <= inner.end <= outer.end


def test_span_recorded_on_exception():
    tracer = SpanTracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert tracer.span_names() == {"doomed"}
    assert tracer.current is None


def test_wall_spans_carry_wall_clock_and_attrs():
    tracer = SpanTracer()
    with tracer.span("phase", gpus=8) as span:
        pass
    assert span.clock == WALL
    assert span.category == "phase"
    assert span.attrs == {"gpus": 8}
    assert span.duration >= 0.0


def test_add_span_defaults_to_sim_clock():
    tracer = SpanTracer()
    span = tracer.add_span("transfer", 1.0, 3.5, track="gpu0->gpu1")
    assert span.clock == SIM
    assert span.duration == pytest.approx(2.5)
    assert tracer.find(track="gpu0->gpu1") == [span]


def test_add_span_rejects_negative_duration():
    tracer = SpanTracer()
    with pytest.raises(ValueError, match="ends"):
        tracer.add_span("bad", 2.0, 1.0)


def test_instants_recorded_and_filtered():
    tracer = SpanTracer()
    tracer.instant("decision", 0.5, category="route", arm=1.25)
    tracer.instant("other", 0.6, category="misc")
    decisions = tracer.find_instants(category="route")
    assert len(decisions) == 1
    assert decisions[0].attrs["arm"] == 1.25
    assert len(tracer.find_instants("other")) == 1


def test_record_cap_counts_drops_and_warns_once():
    tracer = SpanTracer(max_records=2)
    tracer.add_span("a", 0.0, 1.0)
    with pytest.warns(RuntimeWarning, match="max_records"):
        tracer.add_span("b", 0.0, 1.0)
        assert tracer.add_span("c", 0.0, 1.0) is None
    assert len(tracer) == 2
    assert tracer.dropped == 1
    # Further drops are counted without re-warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert tracer.instant("d", 0.0) is None
    assert tracer.dropped == 2


def test_max_records_must_be_positive():
    with pytest.raises(ValueError):
        SpanTracer(max_records=0)


def test_queries_filter_on_every_axis():
    tracer = SpanTracer()
    tracer.add_span("x", 0.0, 1.0, clock=SIM, category="link", track="l0")
    tracer.add_span("x", 0.0, 2.0, clock=SIM, category="phase", track="p")
    tracer.add_span("y", 0.0, 4.0, clock=WALL, category="phase", track="p")
    assert len(tracer.find("x")) == 2
    assert len(tracer.find(category="phase")) == 2
    assert len(tracer.find("x", category="link")) == 1
    assert tracer.find(clock=WALL)[0].name == "y"
    assert tracer.total_duration("x") == pytest.approx(3.0)
    assert tracer.span_names() == {"x", "y"}


def test_self_times_subtract_direct_children():
    tracer = SpanTracer()
    tracer.add_span("join", 0.0, 10.0)
    parent = tracer.spans[-1]
    tracer.add_span("shuffle", 1.0, 5.0, parent_id=parent.span_id)
    tracer.add_span("probe", 5.0, 8.0, parent_id=parent.span_id)
    self_times = tracer.self_times()
    assert self_times["join"] == pytest.approx(3.0)  # 10 - (4 + 3)
    assert self_times["shuffle"] == pytest.approx(4.0)  # leaf = inclusive
    assert self_times["probe"] == pytest.approx(3.0)


def test_self_times_aggregate_by_name_and_clamp():
    tracer = SpanTracer()
    tracer.add_span("phase", 0.0, 2.0)
    tracer.add_span("phase", 3.0, 4.0)
    assert tracer.self_times() == {"phase": pytest.approx(3.0)}
    # Overlapping children longer than the parent clamp to zero, not
    # negative (can happen with wall-clock jitter on nested spans).
    tracer = SpanTracer()
    tracer.add_span("outer", 0.0, 1.0)
    outer = tracer.spans[-1]
    tracer.add_span("inner", 0.0, 1.0, parent_id=outer.span_id)
    tracer.add_span("inner2", 0.0, 1.0, parent_id=outer.span_id)
    assert tracer.self_times()["outer"] == 0.0


def test_self_times_filter_by_clock():
    tracer = SpanTracer()
    tracer.add_span("sim.work", 0.0, 5.0)  # SIM clock
    with tracer.span("wall.work"):
        pass
    assert set(tracer.self_times(clock=SIM)) == {"sim.work"}
    assert set(tracer.self_times(clock=WALL)) == {"wall.work"}
    assert set(tracer.self_times()) == {"sim.work", "wall.work"}
