"""The link timeline sampler: recording, probing, bucketing."""

import pytest

from repro.obs.analyze import LinkTimelineSampler
from repro.obs.analyze.timeline import TransferSample
from repro.routing import DirectPolicy
from repro.sim import FlowMatrix, ShuffleSimulator

MB = 1024 * 1024


class _StubSpec:
    def __init__(self, link_id):
        self.link_id = link_id

    def __str__(self):
        return f"link{self.link_id}"


class _StubChannel:
    def __init__(self, link_id, delay=0.0):
        self.spec = _StubSpec(link_id)
        self.delay = delay
        self.sampler = None

    def queue_delay(self):
        return self.delay


class _StubEngine:
    def __init__(self):
        self.now = 0.0
        self.pending = 0
        self.scheduled = []

    def schedule(self, delay, callback):
        self.scheduled.append((delay, callback))

    def every(self, interval, callback):
        self.scheduled.append((interval, callback))


def _bound_sampler(interval=None):
    sampler = LinkTimelineSampler(sample_interval=interval)
    engine = _StubEngine()
    channel = _StubChannel(3)
    sampler.bind(engine, {3: channel})
    return sampler, engine, channel


def test_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        LinkTimelineSampler(sample_interval=0.0)


def test_bind_attaches_and_schedules_probe():
    sampler, engine, channel = _bound_sampler(interval=1e-4)
    assert channel.sampler is sampler
    assert engine.scheduled and engine.scheduled[0][0] == 1e-4


def test_bind_without_interval_schedules_nothing():
    sampler, engine, _ = _bound_sampler(interval=None)
    assert engine.scheduled == []


def test_rebinding_clears_previous_run():
    sampler, engine, channel = _bound_sampler()
    engine.now = 1.0
    sampler.record_queue(channel)
    sampler.bind(engine, {3: channel})
    assert sampler.queue_delay_at(3, 2.0) == 0.0


def test_queue_delay_lookup_is_strictly_before():
    """A decision's own same-timestamp commits must stay invisible."""
    sampler, engine, channel = _bound_sampler()
    channel.delay = 0.5
    engine.now = 1.0
    sampler.record_queue(channel)
    channel.delay = 2.0
    engine.now = 3.0
    sampler.record_queue(channel)
    assert sampler.queue_delay_at(3, 0.5) == 0.0  # before any sample
    assert sampler.queue_delay_at(3, 1.0) == 0.0  # strictly before 1.0
    assert sampler.queue_delay_at(3, 2.0) == 0.5
    assert sampler.queue_delay_at(3, 3.0) == 0.5  # strictly before 3.0
    assert sampler.queue_delay_at(3, 9.0) == 2.0
    assert sampler.queue_delay_at(99, 9.0) == 0.0  # unknown link


def test_window_queries():
    sampler, engine, channel = _bound_sampler()
    sampler.record_transfer(channel, submit=0.0, start=1.0, end=3.0, nbytes=100)
    sampler.record_transfer(channel, submit=2.0, start=3.0, end=4.0, nbytes=50)
    assert sampler.busy_time(3, 0.0, 10.0) == pytest.approx(3.0)
    assert sampler.busy_time(3, 2.0, 3.0) == pytest.approx(1.0)
    # Half of the first transfer's service window -> half its bytes.
    assert sampler.bytes_in_window(3, 1.0, 2.0) == pytest.approx(50.0)
    # Waits attribute to the window the transfer was *submitted* in.
    assert sampler.queueing_time(3, 0.0, 1.0) == pytest.approx(1.0)
    assert sampler.queueing_time(3, 1.0, 5.0) == pytest.approx(1.0)


def test_zero_duration_run_yields_empty_timeline():
    sampler, _, _ = _bound_sampler()
    timeline = sampler.timeline(num_buckets=60)
    assert sampler.horizon == 0.0
    assert timeline.num_buckets == 0
    assert timeline.bucket_width == 0.0
    assert timeline.series == {}
    assert timeline.ranked() == []


def test_timeline_rejects_bad_bucket_count():
    sampler, _, _ = _bound_sampler()
    with pytest.raises(ValueError):
        sampler.timeline(num_buckets=0)


def test_bucketing_prorates_utilization_and_bytes():
    sampler, engine, channel = _bound_sampler()
    # One transfer busy over [1, 3) of a [0, 4) horizon -> 50% overall.
    sampler.record_transfer(channel, submit=1.0, start=1.0, end=3.0, nbytes=80)
    timeline = sampler.timeline(num_buckets=4, horizon=4.0)
    series = timeline.series[3]
    assert series.utilization == pytest.approx([0.0, 1.0, 1.0, 0.0])
    assert series.bytes == pytest.approx([0.0, 40.0, 40.0, 0.0])
    assert series.mean_utilization == pytest.approx(0.5)
    assert series.peak_utilization == 1.0
    assert series.total_bytes == pytest.approx(80.0)


def test_queue_series_carries_last_value_forward():
    sampler, engine, channel = _bound_sampler()
    sampler.record_transfer(channel, submit=0.0, start=0.0, end=4.0, nbytes=1)
    channel.delay = 0.25
    engine.now = 0.5
    sampler.record_queue(channel)
    timeline = sampler.timeline(num_buckets=4, horizon=4.0)
    # Sample lands in bucket 0; buckets 1-3 inherit the step value.
    assert timeline.series[3].queue_delay == pytest.approx([0.25] * 4)


def test_instrumented_shuffle_records_and_terminates(tiny_machine):
    """The periodic probe must not keep the finished engine alive."""
    sampler = LinkTimelineSampler(sample_interval=50e-6)
    simulator = ShuffleSimulator(tiny_machine, sampler=sampler)
    flows = FlowMatrix.all_to_all(tuple(tiny_machine.gpu_ids), 8 * MB)
    report = simulator.run(flows, DirectPolicy())  # returning = terminating
    assert sampler.probe_count > 0
    assert sampler.engine.pending == 0
    assert sampler.horizon > 0.0
    assert sampler.horizon <= report.elapsed * 1.01
    assert len(sampler.deliveries) == report.packets_delivered
    for samples in sampler.transfers.values():
        for sample in samples:
            assert sample.submit <= sample.start <= sample.end


def test_single_packet_flow(tiny_machine):
    """A one-packet run still produces a coherent timeline."""
    sampler = LinkTimelineSampler()
    flows = FlowMatrix()
    flows.add(0, 1, 1 * MB)  # below packet_size -> exactly one packet
    report = ShuffleSimulator(tiny_machine, sampler=sampler).run(
        flows, DirectPolicy()
    )
    assert report.packets_delivered == 1
    assert len(sampler.deliveries) == 1
    delivery = sampler.deliveries[0]
    assert delivery.latency >= delivery.ideal_latency > 0.0
    assert delivery.queueing == pytest.approx(
        delivery.latency - delivery.ideal_latency
    )
    timeline = sampler.timeline(num_buckets=8)
    assert timeline.num_buckets == 8
    busiest = timeline.ranked(top=1)[0]
    assert busiest.peak_utilization > 0.0


def test_transfer_sample_wait_and_service():
    sample = TransferSample(submit=1.0, start=2.5, end=4.0, nbytes=10)
    assert sample.wait == pytest.approx(1.5)
    assert sample.service == pytest.approx(1.5)


def test_sampled_run_matches_link_stats(adaptive_run):
    """Sampled busy time must agree with the channels' own accounting."""
    sampler = adaptive_run.sampler
    report = adaptive_run.report
    horizon = sampler.horizon
    for link_id, stats in report.link_stats.items():
        sampled = sampler.busy_time(link_id, 0.0, horizon + 1.0)
        assert sampled == pytest.approx(stats.busy_time, rel=1e-9)
        total = sum(s.nbytes for s in sampler.transfers.get(link_id, ()))
        assert total == stats.bytes_sent
