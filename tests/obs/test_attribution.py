"""Bottleneck attribution over sampled runs."""

import pytest

from repro.obs.analyze import (
    PhaseWindow,
    attribute,
    attribute_phase,
    flow_latency_rows,
)


def test_default_single_phase_covers_the_run(adaptive_run):
    report = attribute(adaptive_run.sampler, adaptive_run.report.cut)
    assert len(report.phases) == 1
    phase = report.phases[0]
    assert phase.phase.name == "distribution"
    assert phase.phase.start == 0.0
    assert phase.phase.end == pytest.approx(adaptive_run.sampler.horizon)


def test_bottleneck_names_a_saturated_link(adaptive_run):
    report = attribute(adaptive_run.sampler, adaptive_run.report.cut)
    phase = report.phases[0]
    bottleneck = phase.bottleneck
    assert bottleneck is not None
    assert 0.0 < bottleneck.utilization <= 1.0
    # The skewed workload's hot receiver is gpu0: the cap is a link
    # into it, and its saturation leads the ranking.
    assert "gpu0" in bottleneck.label
    ranked = [link.utilization for link in phase.links]
    assert ranked == sorted(ranked, reverse=True)


def test_bisection_share_and_queueing_split(adaptive_run):
    report = attribute(adaptive_run.sampler, adaptive_run.report.cut)
    phase = report.phases[0]
    assert 0.0 < phase.bisection_time_share <= 1.0
    assert 0.0 <= phase.queueing_share < 1.0
    crossing = [link for link in phase.links if link.crossing]
    assert crossing, "skewed all-to-all traffic must cross the bisection"
    assert {link.crossing for link in crossing} <= {"ab", "ba"}
    # Per-direction utilization over the full window agrees with the
    # ShuffleReport's own per-direction accounting.
    assert phase.bisection_utilization_ab == pytest.approx(
        adaptive_run.report.bisection_utilization_ab, rel=0.02
    )
    assert phase.bisection_utilization_ba == pytest.approx(
        adaptive_run.report.bisection_utilization_ba, rel=0.02
    )


def test_phase_windows_split_the_run(adaptive_run):
    sampler = adaptive_run.sampler
    cut = adaptive_run.report.cut
    horizon = sampler.horizon
    halves = [
        PhaseWindow("first half", 0.0, horizon / 2),
        PhaseWindow("second half", horizon / 2, horizon),
    ]
    report = attribute(sampler, cut, phases=halves)
    assert [p.phase.name for p in report.phases] == ["first half", "second half"]
    whole = attribute_phase(sampler, cut, PhaseWindow("all", 0.0, horizon))
    for link in whole.links:
        split = sum(
            phase_link.transmission_seconds
            for phase in report.phases
            for phase_link in phase.links
            if phase_link.link_id == link.link_id
        )
        assert split == pytest.approx(link.transmission_seconds, rel=1e-9)


def test_empty_phase_windows_are_dropped(adaptive_run):
    report = attribute(
        adaptive_run.sampler,
        adaptive_run.report.cut,
        phases=[PhaseWindow("empty", 1.0, 1.0), PhaseWindow("bad", 2.0, 1.0)],
    )
    assert report.phases == []


def test_top_limits_the_ranking(adaptive_run):
    report = attribute(adaptive_run.sampler, adaptive_run.report.cut, top=3)
    assert len(report.phases[0].links) == 3


def test_flow_latency_rows(adaptive_run):
    rows = flow_latency_rows(adaptive_run.sampler)
    pairs = {(row.flow_src, row.flow_dst) for row in rows}
    assert len(pairs) == len(rows) == 8 * 7
    latencies = [row.mean_latency for row in rows]
    assert latencies == sorted(latencies, reverse=True)
    for row in rows:
        assert row.mean_latency > 0
        assert 0.0 <= row.queueing_share <= 1.0
        assert row.mean_queueing + row.mean_transmission == pytest.approx(
            row.mean_latency
        )


def test_report_to_dict_is_json_ready(adaptive_run):
    import json

    report = attribute(adaptive_run.sampler, adaptive_run.report.cut, top=4)
    payload = report.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["phases"][0]["links"]
    assert payload["flows"][0]["queueing_share"] >= 0.0
