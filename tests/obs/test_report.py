"""Observatory exporters: heatmaps, report rendering, artifacts."""

import json

import pytest

from repro.obs.analyze import (
    LinkTimeline,
    ascii_heatmap,
    attribute,
    audit_decisions,
    heatmap_csv,
    heatmap_json,
    render_bottleneck_report,
    render_regret_table,
    write_analysis,
)
from repro.obs.analyze.timeline import LinkSeries


def _tiny_timeline():
    timeline = LinkTimeline(horizon=2.0, num_buckets=4)
    timeline.series[0] = LinkSeries(
        link_id=0,
        label="gpu0->gpu1 [nvlink]",
        utilization=[1.0, 0.5, 0.0, 0.25],
        queue_delay=[0.0, 0.1, 0.1, 0.0],
        bytes=[100.0, 50.0, 0.0, 25.0],
    )
    timeline.series[1] = LinkSeries(
        link_id=1,
        label="gpu1->gpu0 [nvlink]",
        utilization=[0.0, 0.0, 0.0, 0.0],
        queue_delay=[0.0, 0.0, 0.0, 0.0],
        bytes=[0.0, 0.0, 0.0, 0.0],
    )
    return timeline


def test_ascii_heatmap_shades_by_utilization():
    text = ascii_heatmap(_tiny_timeline(), top=2)
    lines = text.splitlines()
    assert "gpu0->gpu1 [nvlink] |@+ :|" in lines[0]
    assert "43.8%" in lines[0]  # mean of the four buckets
    assert "shade:" in lines[-1]


def test_ascii_heatmap_queue_mode_normalizes_per_row():
    text = ascii_heatmap(_tiny_timeline(), top=1, queue=True)
    # Peak queue delay shades as saturated even though it is only 0.1 s.
    assert "| @@ |" in text


def test_ascii_heatmap_empty():
    assert "no link activity" in ascii_heatmap(LinkTimeline(0.0, 0))


def test_heatmap_csv_one_row_per_cell():
    lines = heatmap_csv(_tiny_timeline()).splitlines()
    assert lines[0].startswith("link,bucket,start,end,")
    assert len(lines) == 1 + 2 * 4


def test_heatmap_json_round_trips():
    payload = heatmap_json(_tiny_timeline())
    assert json.loads(json.dumps(payload)) == payload
    assert payload["num_buckets"] == 4
    assert payload["links"][0]["utilization"] == [1.0, 0.5, 0.0, 0.25]


def test_rendered_reports_and_artifacts(adaptive_run, tmp_path):
    timeline = adaptive_run.sampler.timeline(num_buckets=24)
    bottlenecks = attribute(adaptive_run.sampler, adaptive_run.report.cut, top=6)
    regret = audit_decisions(
        adaptive_run.machine, adaptive_run.observer, adaptive_run.sampler
    )

    heat = ascii_heatmap(timeline, top=6)
    assert "gpu" in heat and "%" in heat
    table = render_bottleneck_report(bottlenecks)
    assert "bottleneck attribution:" in table
    assert "bisection time share" in table
    assert "slowest flows" in table
    audit_text = render_regret_table(regret, top=5)
    assert "ARM decision audit" in audit_text
    assert "mean regret" in audit_text

    paths = write_analysis(
        tmp_path,
        timeline=timeline,
        bottlenecks=bottlenecks,
        regret=regret,
        metadata={"topology": "dgx1", "num_gpus": 8},
    )
    names = {path.name for path in paths}
    assert names == {"heatmap.csv", "heatmap.json", "bottlenecks.json", "regret.csv"}
    payload = json.loads((tmp_path / "bottlenecks.json").read_text())
    assert payload["run"] == {"topology": "dgx1", "num_gpus": 8}
    assert payload["regret"]["decisions"] == regret.decisions
    assert payload["phases"][0]["links"]
    regret_lines = (tmp_path / "regret.csv").read_text().splitlines()
    assert len(regret_lines) == 1 + regret.decisions


def test_write_analysis_without_regret(tmp_path):
    from repro.obs.analyze import BottleneckReport

    paths = write_analysis(
        tmp_path,
        timeline=_tiny_timeline(),
        bottlenecks=BottleneckReport(horizon=2.0),
    )
    names = {path.name for path in paths}
    assert "regret.csv" not in names
    payload = json.loads((tmp_path / "bottlenecks.json").read_text())
    assert "regret" not in payload and "run" not in payload


def test_run_metadata_and_config_hash():
    from repro.obs import config_hash, run_metadata
    from repro.sim import ShuffleConfig

    meta = run_metadata(
        topology="dgx1", num_gpus=8, seed=7, config=ShuffleConfig(), policy="x"
    )
    assert meta["topology"] == "dgx1"
    assert meta["num_gpus"] == 8
    assert meta["seed"] == 7
    assert meta["policy"] == "x"
    import repro

    assert meta["repro_version"] == repro.__version__
    assert len(meta["config_hash"]) == 12
    # Stable across key order, sensitive to values.
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})
    assert meta["config_hash"] == config_hash(ShuffleConfig())
