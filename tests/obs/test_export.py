"""Exporters: Chrome trace events, schema validation, CSV, summary."""

import json

import pytest

from repro.obs import Observer
from repro.obs.export import (
    chrome_trace_events,
    gauge_counter_events,
    summary,
    to_chrome_trace,
    to_csv,
    validate_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture
def observed():
    observer = Observer()
    with observer.span("join", gpus=4):
        with observer.span("histogram"):
            pass
    observer.add_span(
        "transfer", 1.0, 2.0, track="gpu0->gpu1[nvlink]", category="link", bytes=64
    )
    observer.instant("arm.decision", 1.5, track="gpu0", category="route", T_R=0.5)
    observer.counter("shuffle.packets", route="gpu0->gpu1").inc(3)
    observer.gauge("shuffle.elapsed_seconds").set(2.0)
    observer.histogram("board.staleness_seconds").observe(1e-6)
    return observer


def test_clocks_map_to_separate_pids(observed):
    events = chrome_trace_events(observed.spans)
    by_name = {e["name"]: e for e in events if e["ph"] in ("X", "i")}
    assert by_name["join"]["pid"] == 1  # wall clock
    assert by_name["transfer"]["pid"] == 2  # simulated time
    assert by_name["arm.decision"]["pid"] == 2
    # Nesting survives via args.parent.
    assert by_name["histogram"]["args"]["parent"] == by_name["join"]["id"]


def test_metadata_names_processes_and_tracks(observed):
    events = chrome_trace_events(observed.spans)
    meta = [e for e in events if e["ph"] == "M"]
    process_names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert process_names == {"wall clock (host)", "simulated time"}
    assert {"pipeline", "gpu0->gpu1[nvlink]", "gpu0"} <= thread_names


def test_timestamps_are_microseconds(observed):
    events = chrome_trace_events(observed.spans)
    transfer = next(e for e in events if e["name"] == "transfer")
    assert transfer["ts"] == pytest.approx(1.0e6)
    assert transfer["dur"] == pytest.approx(1.0e6)


def test_to_chrome_trace_is_valid_and_serialisable(observed):
    trace = to_chrome_trace(observed)
    assert validate_chrome_trace(trace) == []
    assert trace["otherData"]["dropped_records"] == 0
    metrics = trace["otherData"]["metrics"]
    assert metrics["counters"][0]["name"] == "shuffle.packets"
    json.dumps(trace)


def test_write_chrome_trace_roundtrip(observed, tmp_path):
    path = write_chrome_trace(observed, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == []
    expected = (
        len(chrome_trace_events(observed.spans))
        + len(gauge_counter_events(observed.metrics))
    )
    assert len(loaded["traceEvents"]) == expected


@pytest.mark.parametrize(
    "trace, fragment",
    [
        ([], "JSON object"),
        ({}, "traceEvents must be a list"),
        ({"traceEvents": [42]}, "not an object"),
        ({"traceEvents": [{"name": "x"}]}, "missing ph"),
        ({"traceEvents": [{"ph": "X", "name": "x"}]}, "missing"),
        (
            {
                "traceEvents": [
                    {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1, "dur": -5}
                ]
            },
            "negative dur",
        ),
        (
            {
                "traceEvents": [
                    {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
                ]
            },
            "missing dur",
        ),
        (
            {
                "traceEvents": [
                    {"name": "x", "ph": "i", "ts": 0, "pid": 1, "tid": 1, "s": "z"}
                ]
            },
            "bad instant scope",
        ),
        (
            {
                "traceEvents": [
                    {"name": "x", "ph": "B", "ts": "0", "pid": 1, "tid": 1}
                ]
            },
            "must be numeric",
        ),
    ],
)
def test_validate_chrome_trace_flags_problems(trace, fragment):
    problems = validate_chrome_trace(trace)
    assert problems
    assert any(fragment in p for p in problems)


def test_instant_events_roundtrip_through_write(observed, tmp_path):
    path = write_chrome_trace(observed, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == []
    instants = [e for e in loaded["traceEvents"] if e["ph"] == "i"]
    (decision,) = instants
    assert decision["name"] == "arm.decision"
    assert decision["ts"] == pytest.approx(1.5e6)
    assert decision["s"] == "t"
    assert decision["args"]["T_R"] == 0.5


def test_gauge_counter_events(observed):
    events = gauge_counter_events(observed.metrics)
    (gauge,) = events
    assert gauge["ph"] == "C"
    assert gauge["name"] == "shuffle.elapsed_seconds"
    assert gauge["args"] == {"shuffle.elapsed_seconds": 2.0}
    assert gauge["pid"] == 1 and gauge["tid"] == 0


def test_gauge_counter_events_fold_labels_into_name():
    observer = Observer()
    observer.gauge("link.util", link="0->1", kind="nvlink").set(0.5)
    (gauge,) = gauge_counter_events(observer.metrics)
    assert gauge["name"] == "link.util[kind=nvlink,link=0->1]"
    assert gauge["args"]["link.util"] == 0.5


def test_gauge_counters_roundtrip_through_write(observed, tmp_path):
    path = write_chrome_trace(observed, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == []
    counters = [e for e in loaded["traceEvents"] if e["ph"] == "C"]
    names = {e["name"] for e in counters}
    assert "shuffle.elapsed_seconds" in names
    # record_self_time_gauges is not implied: only explicit gauges ride.
    assert all(isinstance(v, (int, float)) for e in counters
               for v in e["args"].values())


@pytest.mark.parametrize(
    "counter, fragment",
    [
        (
            {"name": "g", "ph": "C", "ts": 0, "pid": 1, "tid": 0},
            "non-empty args",
        ),
        (
            {"name": "g", "ph": "C", "ts": 0, "pid": 1, "tid": 0, "args": {}},
            "non-empty args",
        ),
        (
            {"name": "g", "ph": "C", "ts": 0, "pid": 1, "tid": 0,
             "args": {"g": "high"}},
            "must be numeric",
        ),
        (
            {"name": "g", "ph": "C", "ts": 0, "pid": 1, "tid": 0,
             "args": {"g": True}},
            "must be numeric",
        ),
    ],
)
def test_validate_chrome_trace_flags_bad_counters(counter, fragment):
    problems = validate_chrome_trace({"traceEvents": [counter]})
    assert any(fragment in p for p in problems), problems


def test_metadata_events_need_no_timestamp():
    trace = {
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "x"}}
        ]
    }
    assert validate_chrome_trace(trace) == []


def test_csv_merges_all_record_kinds(observed):
    lines = to_csv(observed).splitlines()
    assert lines[0] == "record,clock,track,name,start,duration,value,labels"
    kinds = {line.split(",", 1)[0] for line in lines[1:]}
    assert kinds == {"span", "instant", "counter", "gauge", "histogram"}
    counter_row = next(line for line in lines if line.startswith("counter"))
    assert "shuffle.packets" in counter_row
    assert "route=gpu0->gpu1" in counter_row


def test_csv_quotes_awkward_labels():
    observer = Observer()
    observer.counter("c", note='has,"both"').inc()
    csv = to_csv(observer)
    assert '"note=has,""both"""' in csv


def test_summary_mentions_everything(observed):
    text = summary(observed)
    assert "wall-clock spans" in text
    assert "join" in text
    assert "route decisions: 1" in text
    assert "shuffle.packets" in text
    assert "board.staleness_seconds" in text
    assert "WARNING" not in text


def test_summary_reports_drops():
    observer = Observer(max_records=1)
    with pytest.warns(RuntimeWarning):
        observer.add_span("a", 0.0, 1.0)
        observer.add_span("b", 0.0, 1.0)
    assert "1 records dropped" in summary(observer)


def test_summary_empty_observer():
    assert summary(Observer()) == "(no observations recorded)\n"


def test_record_self_time_gauges(observed):
    from repro.obs import SIM, WALL
    from repro.obs.export import record_self_time_gauges

    wall = record_self_time_gauges(observed)
    assert set(wall) == {"join", "histogram"}
    # join's self-time excludes the nested histogram span.
    join_incl = next(
        s for s in observed.spans.spans if s.name == "join"
    ).duration
    assert 0.0 <= wall["join"] <= join_incl
    # One gauge per span name, labelled by clock.
    assert observed.metrics.value(
        "span.join.self_seconds", clock=WALL
    ) == pytest.approx(wall["join"])
    assert observed.metrics.value(
        "span.transfer.self_seconds", clock=SIM
    ) == pytest.approx(1.0)


def test_summary_shows_exclusive_self_time(observed):
    text = summary(observed)
    assert "incl/self" in text
    join_line = next(
        line for line in text.splitlines() if line.strip().startswith("join")
    )
    assert "self" in join_line
