"""MetricsRegistry: get-or-create, label identity, snapshots."""

import pytest

from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP, MetricsRegistry


def test_counter_get_or_create_by_labels():
    registry = MetricsRegistry()
    a = registry.counter("link.bytes", link="0->1")
    b = registry.counter("link.bytes", link="0->1")
    c = registry.counter("link.bytes", link="1->0")
    assert a is b
    assert a is not c
    a.inc(10)
    a.inc()
    assert registry.value("link.bytes", link="0->1") == 11
    assert registry.value("link.bytes", link="1->0") == 0
    assert len(registry) == 2


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    a = registry.counter("m", src=0, dst=1)
    b = registry.counter("m", dst=1, src=0)
    assert a is b


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="gauge"):
        registry.counter("n").inc(-1)


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x", gpu=0)
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x", gpu=0)
    # A different label set is a distinct instrument, so no conflict.
    registry.counter("x", gpu=1).inc()


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(4)
    gauge.add(-1.5)
    assert registry.value("depth") == pytest.approx(2.5)


def test_total_sums_counter_family():
    registry = MetricsRegistry()
    registry.counter("pkts", route="a").inc(3)
    registry.counter("pkts", route="b").inc(4)
    registry.gauge("pkts_rate").set(100)  # different family, ignored
    assert registry.total("pkts") == 7
    assert registry.total("missing") == 0


def test_histogram_stats_and_percentiles():
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    for value in [1.0, 2.0, 3.0, 4.0]:
        hist.observe(value)
    assert hist.count == 4
    assert hist.mean == pytest.approx(2.5)
    assert hist.vmin == 1.0 and hist.vmax == 4.0
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 4.0
    assert hist.percentile(50) in (2.0, 3.0)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_sample_cap_keeps_exact_aggregates():
    registry = MetricsRegistry()
    hist = registry.histogram("big")
    n = HISTOGRAM_SAMPLE_CAP + 100
    for value in range(n):
        hist.observe(float(value))
    assert hist.count == n
    assert len(hist.samples) == HISTOGRAM_SAMPLE_CAP
    assert hist.vmax == float(n - 1)  # max is exact despite sampling
    assert hist.total == pytest.approx(n * (n - 1) / 2)


def test_empty_histogram_is_safe():
    registry = MetricsRegistry()
    hist = registry.histogram("empty")
    assert hist.mean == 0.0
    assert hist.percentile(99) == 0.0


def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c", gpu=1).inc(2)
    registry.gauge("g").set(7)
    registry.histogram("h").observe(3.0)
    snap = registry.snapshot()
    assert snap["counters"] == [{"name": "c", "labels": {"gpu": 1}, "value": 2.0}]
    assert snap["gauges"] == [{"name": "g", "labels": {}, "value": 7.0}]
    (hist_row,) = snap["histograms"]
    assert hist_row["count"] == 1
    assert hist_row["mean"] == 3.0
    assert hist_row["min"] == hist_row["max"] == hist_row["p50"] == 3.0
    # Snapshot must be JSON-serialisable as-is.
    import json

    json.dumps(snap)


def test_stable_float_rounds_to_12_significant_digits():
    from repro.obs.metrics import stable_float

    a = 0.1 + 0.2                    # 0.30000000000000004
    assert stable_float(a) == 0.3
    assert stable_float(1234567890123456.0) == 1234567890120000.0
    assert stable_float(0.0) == 0.0
    assert stable_float(float("inf")) == float("inf")
    nan = stable_float(float("nan"))
    assert nan != nan


def test_snapshot_is_diff_stable():
    # Two registries populated in different orders, with last-bit float
    # noise, serialize byte-identically.
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("z.last", dst=1, src=0).inc(3)
    a.gauge("a.first").set(0.1 + 0.2)
    b.gauge("a.first").set(0.3)
    b.counter("z.last", src=0, dst=1).inc(3)
    assert a.to_json() == b.to_json()
    # Instruments come out sorted by (name, labels), labels key-sorted.
    snap = a.snapshot()
    assert [row["name"] for row in snap["gauges"]] == ["a.first"]
    assert list(snap["counters"][0]["labels"]) == ["dst", "src"]


def test_to_json_round_trips_snapshot():
    import json

    registry = MetricsRegistry()
    registry.histogram("h").observe(1.0)
    assert json.loads(registry.to_json()) == registry.snapshot()
    assert registry.to_json() == registry.to_json()
