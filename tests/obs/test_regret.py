"""The ARM decision audit: counterfactual replay and regret."""

import pytest

from repro.obs.analyze import RegretReport, audit_decisions, parse_route
from repro.obs.analyze.regret import DecisionAudit, realized_arm
from repro.topology.routes import Route


def test_parse_route_round_trips():
    for hops in ((0, 1), (5, 7, 3, 2), (0, 4, 6)):
        route = Route(hops)
        assert parse_route(str(route)) == route


def test_audit_covers_every_decision(adaptive_run):
    audit = audit_decisions(
        adaptive_run.machine, adaptive_run.observer, adaptive_run.sampler
    )
    decisions = adaptive_run.observer.spans.find_instants("arm.decision")
    assert audit.decisions == len(decisions) > 0
    assert audit.policy == "mg-join"
    times = [row.time for row in audit.rows]
    assert times == sorted(times)


def test_regret_is_nonnegative_and_zero_when_optimal(adaptive_run):
    audit = audit_decisions(
        adaptive_run.machine, adaptive_run.observer, adaptive_run.sampler
    )
    for row in audit.rows:
        assert row.regret >= 0.0
        assert row.realized_chosen >= row.realized_best
        if row.was_optimal:
            assert row.regret == 0.0
        else:
            assert row.regret > 0.0
    assert 0.0 < audit.optimal_share <= 1.0


def test_realized_cost_of_chosen_route_matches_replay(adaptive_run):
    audit = audit_decisions(
        adaptive_run.machine, adaptive_run.observer, adaptive_run.sampler
    )
    row = audit.rows[len(audit.rows) // 2]
    decisions = adaptive_run.observer.spans.find_instants("arm.decision")
    instant = next(i for i in decisions if i.time == row.time)
    cost = realized_arm(
        adaptive_run.machine,
        adaptive_run.sampler,
        parse_route(row.chosen),
        instant.attrs["packet_bytes"],
        row.time,
    )
    assert cost == pytest.approx(row.realized_chosen)


def test_staleness_correlation_is_defined(adaptive_run):
    audit = audit_decisions(
        adaptive_run.machine, adaptive_run.observer, adaptive_run.sampler
    )
    correlation = audit.staleness_regret_correlation
    assert correlation is not None
    assert -1.0 <= correlation <= 1.0


def test_adaptive_beats_direct_on_skewed_workload(adaptive_run, direct_run):
    """The paper's point, audited: routing around congestion leaves far
    less on the table than blindly taking the direct route."""
    adaptive = audit_decisions(
        adaptive_run.machine, adaptive_run.observer, adaptive_run.sampler
    )
    direct = audit_decisions(
        direct_run.machine, direct_run.observer, direct_run.sampler
    )
    assert direct.policy == "direct"
    assert direct.decisions > 0
    assert adaptive.mean_regret < direct.mean_regret
    assert adaptive.total_regret < direct.total_regret


def test_empty_report_degenerates_cleanly():
    report = RegretReport(policy="none")
    assert report.mean_regret == 0.0
    assert report.total_regret == 0.0
    assert report.optimal_share == 0.0
    assert report.percentile_regret(95) == 0.0
    assert report.staleness_regret_correlation is None
    assert report.worst() == []


def test_correlation_undefined_for_constant_series():
    def row(time, staleness, chosen_cost):
        return DecisionAudit(
            time=time, src=0, dst=1, policy="p", chosen="0->1", best="0->1",
            realized_chosen=chosen_cost, realized_best=1.0,
            batch_bytes=1, staleness=staleness,
        )

    constant = RegretReport(policy="p", rows=[row(0.0, 1.0, 2.0), row(1.0, 1.0, 3.0)])
    assert constant.staleness_regret_correlation is None
    varying = RegretReport(policy="p", rows=[row(0.0, 1.0, 2.0), row(1.0, 2.0, 3.0)])
    assert varying.staleness_regret_correlation == pytest.approx(1.0)


def test_report_to_dict(adaptive_run):
    audit = audit_decisions(
        adaptive_run.machine, adaptive_run.observer, adaptive_run.sampler
    )
    payload = audit.to_dict()
    assert payload["decisions"] == audit.decisions
    assert payload["mean_regret"] == pytest.approx(audit.mean_regret)
    assert payload["p95_regret"] >= payload["mean_regret"] * 0.0
