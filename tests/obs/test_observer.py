"""Observer bundle and the NULL_OBSERVER no-op stand-in."""

from repro.obs import NULL_OBSERVER, NullObserver, Observer


def test_observer_pass_throughs():
    observer = Observer()
    with observer.span("work", gpus=2) as span:
        observer.instant("mark", 0.5, category="route")
    observer.add_span("sim", 0.0, 1.0, track="gpu0")
    observer.counter("c").inc(2)
    observer.gauge("g").set(1)
    observer.histogram("h").observe(4.0)
    assert observer.enabled
    assert span in observer.spans.spans
    assert observer.spans.find("sim")
    assert observer.spans.find_instants("mark")
    assert observer.metrics.value("c") == 2


def test_null_observer_is_inert():
    with NULL_OBSERVER.span("anything", gpus=8) as span:
        assert span is None
    assert NULL_OBSERVER.add_span("x", 0.0, 1.0) is None
    assert NULL_OBSERVER.instant("x", 0.0) is None
    assert not NULL_OBSERVER.enabled
    # All instrument handles are the same shared no-op object.
    counter = NULL_OBSERVER.counter("c", gpu=1)
    assert counter is NULL_OBSERVER.gauge("g")
    assert counter is NULL_OBSERVER.histogram("h")
    counter.inc()
    counter.set(3)
    counter.add(1)
    counter.observe(2.0)


def test_null_observer_singleton_idiom():
    observer = None
    resolved = observer or NULL_OBSERVER
    assert isinstance(resolved, NullObserver)
