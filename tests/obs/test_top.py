"""The ``repro top`` dashboard: event folding, rendering, tailing."""

import io
import json

from repro.obs.top import TopModel, follow, render


def event(etype, t=0.0, clock="sim", **fields):
    return dict({"v": 1, "type": etype, "t": t, "clock": clock}, **fields)


def links_event(t, samples):
    return event(
        "links", t=t, samples=samples,
        max_util=max((s["util"] for s in samples), default=0.0),
        max_queue=0.0,
    )


class TestTopModel:
    def test_ingest_line_tolerates_garbage(self):
        model = TopModel()
        model.ingest_line("")
        model.ingest_line("not json{")
        model.ingest_line(json.dumps(event("run.started", gpus=8)))
        assert model.events == 1
        assert model.invalid == 1
        assert model.run["gpus"] == 8

    def test_phase_tracking(self):
        model = TopModel()
        model.ingest(event("phase", clock="wall", name="shuffle", state="begin"))
        assert model.current_phase == "shuffle"
        model.ingest(event("phase", clock="wall", name="shuffle", state="end"))
        assert model.current_phase is None
        assert model.phases["shuffle"] == "end"

    def test_sim_clock_is_max_over_sim_events(self):
        model = TopModel()
        model.ingest(links_event(0.002, []))
        model.ingest(event("phase", t=99.0, clock="wall", name="x", state="begin"))
        assert model.sim_time == 0.002  # wall events don't advance it

    def test_link_history_builds_sparkline_window(self):
        model = TopModel()
        for t in range(30):
            model.ingest(
                links_event(t * 1e-3, [{"link": 5, "util": 0.5, "queue": 0.0}])
            )
        assert len(model.link_history[5]) == 24  # bounded window

    def test_counters_and_alerts(self):
        model = TopModel(max_alerts=2)
        model.ingest(event("fault", action="fault.inject", kind="link-blackout"))
        model.ingest(event("packet.retry", reason="down"))
        model.ingest(event("packet.fallback", reason="budget"))
        model.ingest(event("packet.recovered"))
        for index in range(3):
            model.ingest(event("alert", rule=f"r{index}", severity="warning"))
        assert model.counters == {
            "retries": 1, "fallbacks": 1, "recovered": 1, "faults": 1,
        }
        assert [a["rule"] for a in model.alerts] == ["r1", "r2"]  # bounded


class TestRender:
    def test_render_empty_model(self):
        text = render(TopModel())
        assert "repro top" in text
        assert "(no link samples yet)" in text
        assert "(none)" in text

    def test_render_full_dashboard(self):
        model = TopModel()
        model.ingest(event("run.started", gpus=8, links=58))
        model.ingest(event("phase", clock="wall", name="shuffle", state="begin"))
        model.ingest(
            links_event(
                0.001,
                [{"link": 3, "util": 0.9, "queue": 1e-4, "up": False}],
            )
        )
        model.ingest(event("alert", rule="link-saturation", severity="warning",
                           message="hot"))
        model.ingest(event("conformance", count=10, drift_ratio=0.25,
                           residual_p95_us=12.0))
        model.ingest(event("run.finished", t=0.005, elapsed=0.005))
        text = render(model)
        assert "8 GPUs" in text
        assert "link    3" in text and "DOWN" in text
        assert "link-saturation" in text
        assert "drift 25.0%" in text
        assert "run finished" in text

    def test_render_sweep_progress(self):
        model = TopModel()
        model.ingest(event("sweep.started", clock="wall", points=4))
        model.ingest(event("sweep.point", clock="wall", run_id="join-abc",
                           completed=2, points=4))
        assert "sweep: 2/4" in render(model)
        model.ingest(event("sweep.finished", clock="wall", finished=4, failed=0))
        assert "sweep: finished=4" in render(model)


class TestFollow:
    def test_one_shot_renders_final_state(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        path.write_text(
            "\n".join(
                json.dumps(e)
                for e in (
                    event("run.started", gpus=2),
                    event("run.finished", t=1.0, elapsed=1.0),
                )
            )
            + "\n"
        )
        out = io.StringIO()
        model = follow(path, iterations=1, out=out)
        assert model.finished is not None
        assert "run finished" in out.getvalue()

    def test_follow_stops_on_run_finished(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        path.write_text(json.dumps(event("run.finished", elapsed=1.0)) + "\n")
        out = io.StringIO()
        model = follow(path, interval=0.01, out=out)
        assert model.events == 1

    def test_missing_file_renders_empty(self, tmp_path):
        out = io.StringIO()
        model = follow(tmp_path / "absent.ndjson", iterations=1, out=out)
        assert model.events == 0
        assert "repro top" in out.getvalue()
