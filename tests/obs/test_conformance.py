"""Cost-model conformance probe: residual accounting + sim integration."""

from types import SimpleNamespace

import pytest

from repro.obs import Observer
from repro.obs.conformance import ConformanceProbe, _percentile
from repro.routing import AdaptiveArmPolicy
from repro.sim import FlowMatrix, ShuffleSimulator

MB = 1024 * 1024


def fake_packet(created_at=0.0, attempts=0, fallback=False):
    return SimpleNamespace(
        created_at=created_at, attempts=attempts, fallback=fallback
    )


class TestPercentile:
    def test_empty_and_single(self):
        assert _percentile([], 95) == 0.0
        assert _percentile([3.0], 50) == 3.0

    def test_interpolates(self):
        assert _percentile([0.0, 10.0], 50) == pytest.approx(5.0)
        assert _percentile([0.0, 1.0, 2.0, 3.0, 4.0], 95) == pytest.approx(3.8)


class TestProbeAccounting:
    def test_register_and_record_residual(self):
        probe = ConformanceProbe()
        packet = fake_packet(created_at=1.0)
        probe.register(packet, (0.002, 0.001, 7))
        probe.record_delivery(packet, now=1.004)
        assert probe.count == 1
        assert probe.residual_sum == pytest.approx(0.001)
        assert probe.underpredicted == 1
        assert 7 in probe.links

    def test_unregistered_delivery_is_noop(self):
        probe = ConformanceProbe()
        probe.record_delivery(fake_packet(), now=1.0)
        assert probe.count == 0

    def test_retried_packets_counted(self):
        probe = ConformanceProbe()
        packet = fake_packet(created_at=0.0, attempts=2)
        probe.register(packet, (0.001, 0.0, 3))
        probe.record_delivery(packet, now=0.01)
        assert probe.retried == 1

    def test_reservoir_caps_but_aggregates_keep_counting(self):
        probe = ConformanceProbe(max_samples=2)
        for index in range(5):
            packet = fake_packet(created_at=0.0)
            probe.register(packet, (0.001, 0.0, index))
            probe.record_delivery(packet, now=0.002)
        assert probe.count == 5
        assert len(probe._residuals) == 2

    def test_drift_ratio(self):
        probe = ConformanceProbe()
        assert probe.drift_ratio == 0.0  # no predictions yet
        packet = fake_packet(created_at=0.0)
        probe.register(packet, (0.01, 0.0, 1))
        probe.record_delivery(packet, now=0.015)
        assert probe.drift_ratio == pytest.approx(0.5)

    def test_summary_and_render_empty(self):
        probe = ConformanceProbe()
        summary = probe.summary()
        assert summary["count"] == 0
        assert summary["drift_ratio"] == 0.0
        lines = probe.render()
        assert any("no routed transfers" in line for line in lines)

    def test_worst_links_ranked_by_abs_residual(self):
        probe = ConformanceProbe()
        for link, residual in ((1, 0.001), (2, 0.005), (3, 0.002)):
            packet = fake_packet(created_at=0.0)
            probe.register(packet, (0.001, 0.0, link))
            probe.record_delivery(packet, now=0.001 + residual)
        ranked = probe.worst_links(top=2)
        assert [entry["link"] for entry in ranked] == [2, 3]
        assert ranked[0]["abs_share"] == pytest.approx(0.625)


class TestSimulatorIntegration:
    @pytest.fixture(scope="class")
    def instrumented(self, dgx1):
        gpu_ids = tuple(dgx1.gpu_ids)
        flows = FlowMatrix.all_to_all(gpu_ids, 8 * MB)
        baseline = ShuffleSimulator(dgx1, gpu_ids).run(
            flows, AdaptiveArmPolicy()
        )
        observer = Observer()
        observer.conformance = ConformanceProbe()
        report = ShuffleSimulator(dgx1, gpu_ids, observer=observer).run(
            flows, AdaptiveArmPolicy()
        )
        return baseline, report, observer

    def test_probe_sees_every_delivered_packet(self, instrumented):
        _, report, observer = instrumented
        probe = observer.conformance
        assert probe.count > 0
        assert not probe._pending, "packets armed but never delivered"
        assert probe.policy  # stamped from the routing policy

    def test_probe_does_not_perturb_the_simulation(self, instrumented):
        baseline, report, _ = instrumented
        assert report.elapsed == baseline.elapsed
        assert report.throughput == baseline.throughput

    def test_exported_metrics_land_in_registry(self, instrumented):
        _, _, observer = instrumented
        probe = observer.conformance
        assert observer.metrics.value("conformance.count") == float(probe.count)
        assert observer.metrics.value(
            "conformance.drift_ratio"
        ) == pytest.approx(probe.drift_ratio)

    def test_summary_is_stream_event_shaped(self, instrumented):
        from repro.obs.stream import validate_event

        _, _, observer = instrumented
        event = dict(
            observer.conformance.summary(), v=1, type="conformance", t=0.0,
            clock="sim",
        )
        assert validate_event(event) == []

    def test_render_names_bottleneck_links(self, instrumented):
        _, _, observer = instrumented
        text = "\n".join(observer.conformance.render())
        assert "cost-model conformance" in text
        assert "drift by predicted bottleneck link" in text
