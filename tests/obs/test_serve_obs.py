"""Serving-layer observability: query events, alerts, top lanes."""

from repro.obs.alerts import DEFAULT_RULES, AlertEngine
from repro.obs.stream import TelemetryStream, validate_event
from repro.obs.top import TopModel, render


def query_event(action, name="q000", t=0.0, **fields):
    return dict(
        type="query", t=t, clock="sim", v=1, action=action, query=name,
        **fields,
    )


class TestQueryEvents:
    def test_schema_accepts_query_lifecycle_events(self):
        assert validate_event(query_event("admitted", tag=0)) == []
        assert validate_event(query_event("completed", latency=0.1)) == []

    def test_schema_requires_action_and_query(self):
        problems = validate_event(
            {"type": "query", "t": 0.0, "clock": "sim", "v": 1}
        )
        assert any("action" in p for p in problems)
        assert any("query" in p for p in problems)


class TestServeAlertRules:
    def make_engine(self):
        stream = TelemetryStream(None)
        return stream, AlertEngine(stream, DEFAULT_RULES)

    def test_admission_shed_fires_on_rejections(self):
        stream, engine = self.make_engine()
        stream.emit(
            "query", t=0.0, clock="sim", action="rejected", query="q1",
            reason="queue-full",
        )
        fired = [a for a in engine.fired if a["rule"] == "admission-shed"]
        assert len(fired) == 1
        assert fired[0]["severity"] == "warning"

    def test_sla_breach_fires_on_slow_completions_only(self):
        stream, engine = self.make_engine()
        stream.emit(
            "query", t=0.5, clock="sim", action="completed", query="fast",
            latency=0.5,
        )
        assert not [a for a in engine.fired if a["rule"] == "sla-breach"]
        stream.emit(
            "query", t=2.0, clock="sim", action="completed", query="slow",
            latency=2.0,
        )
        breaches = [a for a in engine.fired if a["rule"] == "sla-breach"]
        assert len(breaches) == 1
        assert breaches[0]["severity"] == "critical"

    def test_admissions_and_retries_do_not_alert(self):
        stream, engine = self.make_engine()
        stream.emit(
            "query", t=0.0, clock="sim", action="admitted", query="q1",
            queue_wait=0.0,
        )
        stream.emit(
            "query", t=0.1, clock="sim", action="retry", query="q1", spent=1,
        )
        assert engine.fired == []


class TestTopQueryLanes:
    def test_lane_follows_the_query_lifecycle(self):
        model = TopModel()
        model.ingest(query_event("submitted"))
        assert model.queries["q000"]["phase"] == "submitted"
        model.ingest(query_event("queued", depth=1))
        model.ingest(query_event("admitted", t=0.2, queue_wait=0.2))
        lane = model.queries["q000"]
        assert lane["phase"] == "admitted"
        assert lane["queue_wait"] == 0.2
        model.ingest(query_event("retry", spent=1))
        model.ingest(query_event("retry", spent=2))
        # Retries count without clobbering the lifecycle phase.
        assert lane["phase"] == "admitted"
        assert lane["retries"] == 2
        model.ingest(query_event("completed", t=0.9, latency=0.9))
        assert lane["phase"] == "completed"
        assert lane["latency"] == 0.9

    def test_render_shows_serving_lanes(self):
        model = TopModel()
        model.ingest(query_event("admitted", name="tenant-a", queue_wait=0.0))
        model.ingest(query_event("rejected", name="tenant-b"))
        text = render(model)
        assert "queries (serving lanes)" in text
        assert "tenant-a" in text and "admitted" in text
        assert "tenant-b" in text and "rejected" in text

    def test_render_caps_the_lane_list(self):
        model = TopModel()
        for index in range(15):
            model.ingest(query_event("admitted", name=f"q{index:03d}",
                                     queue_wait=0.0))
        assert "... and 3 more" in render(model)

    def test_no_lane_section_without_query_events(self):
        assert "serving lanes" not in render(TopModel())
