"""Shared sampled runs for the analyzer tests.

One skewed 8-GPU shuffle per policy, run once per session: the
timeline, attribution and regret tests all read from the same recorded
run instead of re-simulating.
"""

from __future__ import annotations

import pytest

from repro.obs import Observer
from repro.obs.analyze import LinkTimelineSampler
from repro.routing import AdaptiveArmPolicy, DirectPolicy
from repro.sim import FlowMatrix, ShuffleSimulator

MB = 1024 * 1024


def skewed_flows(gpu_ids, hot_gpu):
    flows = FlowMatrix()
    for src in gpu_ids:
        for dst in gpu_ids:
            if src != dst:
                flows.add(src, dst, 24 * MB if dst == hot_gpu else 4 * MB)
    return flows


class SampledRun:
    """One observed + sampled shuffle and everything it recorded."""

    def __init__(self, machine, policy):
        self.machine = machine
        self.observer = Observer()
        self.sampler = LinkTimelineSampler()
        gpu_ids = tuple(machine.gpu_ids)[:8]
        simulator = ShuffleSimulator(
            machine, gpu_ids, observer=self.observer, sampler=self.sampler
        )
        self.report = simulator.run(skewed_flows(gpu_ids, gpu_ids[0]), policy)


@pytest.fixture(scope="session")
def adaptive_run(dgx1):
    return SampledRun(dgx1, AdaptiveArmPolicy())


@pytest.fixture(scope="session")
def direct_run(dgx1):
    return SampledRun(dgx1, DirectPolicy())
