"""Fault plans: validation, serialization round-trips, seeded presets."""

import json
import subprocess
import sys

import pytest

from repro.faults import (
    PRESET_NAMES,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    build_preset,
)


class TestFaultEvent:
    def test_link_kinds_need_a_distinct_pair(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(
                kind=FaultKind.LINK_DEGRADE, at=0.0, src=1,
                duration=1.0, magnitude=0.5,
            )
        with pytest.raises(FaultPlanError):
            FaultEvent(kind=FaultKind.LINK_BLACKOUT, at=0.0, src=1, dst=1,
                       duration=1.0)

    def test_gpu_kinds_need_a_target(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.0)

    def test_permanent_kinds_refuse_duration(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind=FaultKind.LINK_FAIL, at=0.0, src=0, dst=1,
                       duration=1.0)
        with pytest.raises(FaultPlanError):
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.0, gpu=0, duration=1.0)

    def test_transient_kinds_need_duration(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind=FaultKind.LINK_BLACKOUT, at=0.0, src=0, dst=1)
        with pytest.raises(FaultPlanError):
            FaultEvent(kind=FaultKind.GPU_STRAGGLER, at=0.0, gpu=0,
                       duration=-1.0, magnitude=2.0)

    def test_degrade_magnitude_is_a_bandwidth_scale(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind=FaultKind.LINK_DEGRADE, at=0.0, src=0, dst=1,
                       duration=1.0, magnitude=1.5)

    def test_straggler_magnitude_is_a_slowdown(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind=FaultKind.GPU_STRAGGLER, at=0.0, gpu=0,
                       duration=1.0, magnitude=0.5)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind=FaultKind.GPU_CRASH, at=-1.0, gpu=0)

    def test_ends_at(self):
        flap = FaultEvent(kind=FaultKind.LINK_BLACKOUT, at=2.0, src=0, dst=1,
                          duration=0.5)
        assert flap.ends_at == pytest.approx(2.5)
        cut = FaultEvent(kind=FaultKind.LINK_FAIL, at=2.0, src=0, dst=1)
        assert cut.ends_at is None

    def test_dict_round_trip(self):
        event = FaultEvent(kind=FaultKind.LINK_DEGRADE, at=1.0, src=0, dst=3,
                           duration=2.0, magnitude=0.25)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent.from_dict(
                {"kind": "gpu-crash", "at": 0.0, "gpu": 1, "blast_radius": 2}
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent.from_dict({"kind": "meteor-strike", "at": 0.0})


def sample_plan():
    return FaultPlan(
        name="sample",
        seed=3,
        events=(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=5.0, gpu=1),
            FaultEvent(kind=FaultKind.LINK_FAIL, at=1.0, src=0, dst=1),
        ),
    )


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        assert [event.at for event in sample_plan().events] == [1.0, 5.0]

    def test_dict_round_trip(self):
        plan = sample_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_events_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"name": "x", "events": []})

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(sample_plan().to_dict()))
        assert FaultPlan.from_file(path) == sample_plan()

    def test_from_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "plan.yaml"
        path.write_text(yaml.safe_dump(sample_plan().to_dict()))
        assert FaultPlan.from_file(path) == sample_plan()

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{nope")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_file(path)


class TestPresets:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_same_seed_reproduces_the_plan(self, dgx1, name):
        first = build_preset(name, dgx1, horizon=1.0, seed=7)
        again = build_preset(name, dgx1, horizon=1.0, seed=7)
        assert first == again
        assert len(first) >= 1

    def test_reproducible_across_interpreters(self, dgx1):
        """Preset schedules must not depend on PYTHONHASHSEED."""
        local = json.dumps(
            build_preset("link-flap", dgx1, horizon=1.0, seed=7).to_dict()
        )
        script = (
            "import json; from repro.topology import dgx1_topology;"
            " from repro.faults import build_preset;"
            " print(json.dumps(build_preset('link-flap', dgx1_topology(),"
            " horizon=1.0, seed=7).to_dict()))"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert remote == local

    def test_seed_varies_targets(self, dgx1):
        plans = {
            json.dumps(build_preset("link-flap", dgx1, 1.0, seed=s).to_dict())
            for s in range(8)
        }
        assert len(plans) > 1

    def test_times_scale_with_horizon(self, dgx1):
        short = build_preset("nvlink-cut", dgx1, horizon=1.0, seed=0)
        long = build_preset("nvlink-cut", dgx1, horizon=10.0, seed=0)
        assert long.events[0].at == pytest.approx(10 * short.events[0].at)

    def test_gpu_targets_restricted_to_participants(self, dgx1):
        for seed in range(10):
            plan = build_preset(
                "gpu-straggler", dgx1, 1.0, seed=seed, gpu_ids=(0, 1)
            )
            assert plan.events[0].gpu in (0, 1)

    def test_link_targets_restricted_to_participants(self, dgx1):
        for seed in range(10):
            plan = build_preset(
                "nvlink-cut", dgx1, 1.0, seed=seed, gpu_ids=(0, 1, 2, 3)
            )
            event = plan.events[0]
            assert event.src in (0, 1, 2, 3) and event.dst in (0, 1, 2, 3)

    def test_unknown_preset_rejected(self, dgx1):
        with pytest.raises(FaultPlanError):
            build_preset("meteor-strike", dgx1, 1.0)

    def test_nonpositive_horizon_rejected(self, dgx1):
        with pytest.raises(FaultPlanError):
            build_preset("nvlink-cut", dgx1, 0.0)


def corruption_event(kind=FaultKind.PAYLOAD_CORRUPT, **overrides):
    kwargs = dict(kind=kind, at=1.0, duration=2.0, src=0, dst=1, magnitude=0.5)
    kwargs.update(overrides)
    return FaultEvent(**kwargs)


class TestCorruptionEvents:
    @pytest.mark.parametrize(
        "kind",
        (FaultKind.PAYLOAD_CORRUPT, FaultKind.PACKET_DUP, FaultKind.PACKET_REORDER),
    )
    def test_magnitude_must_be_a_rate(self, kind):
        with pytest.raises(FaultPlanError):
            corruption_event(kind, magnitude=0.0)
        with pytest.raises(FaultPlanError):
            corruption_event(kind, magnitude=1.5)
        assert corruption_event(kind, magnitude=1.0).magnitude == 1.0

    @pytest.mark.parametrize(
        "kind",
        (FaultKind.PAYLOAD_CORRUPT, FaultKind.PACKET_DUP, FaultKind.PACKET_REORDER),
    )
    def test_needs_duration_and_link_pair(self, kind):
        with pytest.raises(FaultPlanError):
            corruption_event(kind, duration=None)
        with pytest.raises(FaultPlanError):
            corruption_event(kind, src=None, dst=None)

    def test_dict_round_trip_keeps_magnitude(self):
        event = corruption_event(FaultKind.PACKET_DUP, magnitude=0.25)
        payload = event.to_dict()
        assert payload["magnitude"] == 0.25
        assert FaultEvent.from_dict(payload) == event

    def test_corruption_presets_validate(self, dgx1):
        for name in ("payload-corrupt", "packet-dup", "packet-reorder"):
            plan = build_preset(name, dgx1, horizon=1.0, seed=4)
            plan.validate(dgx1)
            assert plan.events[0].kind.value == name
            assert plan.events[0].duration is not None


class TestPermanentConflicts:
    """validate() rejects plans whose later events target something an
    earlier permanent fault already removed, naming both events."""

    def test_double_crash_same_gpu(self, dgx1):
        plan = FaultPlan(
            name="crash-twice",
            events=(
                FaultEvent(kind=FaultKind.GPU_CRASH, at=1.0, gpu=2),
                FaultEvent(kind=FaultKind.GPU_CRASH, at=2.0, gpu=2),
            ),
        )
        with pytest.raises(FaultPlanError) as err:
            plan.validate(dgx1)
        message = str(err.value)
        assert "gpu-crash at t=1.0 on gpu2" in message
        assert "gpu-crash at t=2.0 on gpu2" in message

    def test_double_fail_same_link(self, dgx1):
        plan = FaultPlan(
            name="fail-twice",
            events=(
                FaultEvent(kind=FaultKind.LINK_FAIL, at=1.0, src=0, dst=1),
                FaultEvent(kind=FaultKind.LINK_FAIL, at=2.0, src=1, dst=0),
            ),
        )
        with pytest.raises(FaultPlanError) as err:
            plan.validate(dgx1)
        message = str(err.value)
        assert "link-fail at t=1.0" in message and "link-fail at t=2.0" in message

    def test_event_on_failed_link(self, dgx1):
        plan = FaultPlan(
            name="degrade-dead-link",
            events=(
                FaultEvent(kind=FaultKind.LINK_FAIL, at=1.0, src=0, dst=1),
                FaultEvent(
                    kind=FaultKind.LINK_DEGRADE,
                    at=2.0,
                    src=0,
                    dst=1,
                    duration=1.0,
                    magnitude=0.5,
                ),
            ),
        )
        with pytest.raises(FaultPlanError, match="already removed by"):
            plan.validate(dgx1)

    def test_event_touching_crashed_gpu(self, dgx1):
        plan = FaultPlan(
            name="corrupt-dead-gpu",
            events=(
                FaultEvent(kind=FaultKind.GPU_CRASH, at=1.0, gpu=1),
                corruption_event(at=2.0, src=0, dst=1),
            ),
        )
        with pytest.raises(FaultPlanError) as err:
            plan.validate(dgx1)
        message = str(err.value)
        assert "gpu-crash at t=1.0 on gpu1" in message
        assert "payload-corrupt at t=2.0 on gpu0<->gpu1" in message

    def test_straggler_on_crashed_gpu(self, dgx1):
        plan = FaultPlan(
            name="straggle-the-dead",
            events=(
                FaultEvent(kind=FaultKind.GPU_CRASH, at=1.0, gpu=3),
                FaultEvent(
                    kind=FaultKind.GPU_STRAGGLER,
                    at=2.0,
                    gpu=3,
                    duration=1.0,
                    magnitude=2.0,
                ),
            ),
        )
        with pytest.raises(FaultPlanError, match="already removed by"):
            plan.validate(dgx1)

    def test_disjoint_targets_pass(self, dgx1):
        plan = FaultPlan(
            name="fine",
            events=(
                FaultEvent(kind=FaultKind.LINK_FAIL, at=1.0, src=0, dst=1),
                FaultEvent(kind=FaultKind.GPU_CRASH, at=2.0, gpu=5),
                corruption_event(at=3.0, src=2, dst=3),
            ),
        )
        assert plan.validate(dgx1) is plan

    def test_transient_faults_may_repeat(self, dgx1):
        plan = FaultPlan(
            name="flap",
            events=(
                FaultEvent(
                    kind=FaultKind.LINK_BLACKOUT, at=1.0, duration=0.5, src=0, dst=1
                ),
                FaultEvent(
                    kind=FaultKind.LINK_BLACKOUT, at=3.0, duration=0.5, src=0, dst=1
                ),
            ),
        )
        assert plan.validate(dgx1) is plan
