"""Acceptance: chaos scenarios complete with correct joins, adaptive
routing retains the most throughput, and every single NVLink cut on the
DGX-1 is survivable with the recovery visible in the trace."""

import pytest
from helpers import make_workload

from repro.faults import (
    PRESET_NAMES,
    ChaosError,
    FaultEvent,
    FaultKind,
    FaultPlan,
    build_preset,
    run_chaos,
)
from repro.obs import Observer
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.routing import AdaptiveArmPolicy, DirectPolicy
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator

MB = 1024 * 1024


def small_config(**overrides):
    defaults = dict(injection_rate=None, consume_rate=None)
    defaults.update(overrides)
    return ShuffleConfig(**defaults)


def nvlink_pairs(machine):
    return sorted(
        {
            (min(g, n), max(g, n))
            for g in machine.gpu_ids
            for n in machine.nvlink_neighbors(g)
        }
    )


class TestPresetAcceptance:
    """Every built-in scenario must complete with the exact healthy
    join result — the subsystem's headline guarantee."""

    @pytest.mark.parametrize("preset", PRESET_NAMES)
    def test_preset_completes_with_correct_join(self, dgx1, preset):
        workload = make_workload(num_gpus=8, real=2048)
        report = run_chaos(dgx1, workload, preset, seed=1)  # strict
        assert report.correct
        assert report.fault_counters["faults_injected"] == len(report.plan)
        assert report.throughput_retention > 0.0

    def test_report_metrics_and_summary(self, dgx1):
        workload = make_workload(num_gpus=8, real=2048)
        report = run_chaos(dgx1, workload, "nvlink-cut", seed=1)
        assert report.throughput_retention == pytest.approx(
            report.faulted.throughput / report.healthy.throughput
        )
        text = "\n".join(report.summary_lines())
        assert "nvlink-cut" in text
        assert "retention" in text

    def test_unknown_scenario_rejected(self, dgx1):
        workload = make_workload(num_gpus=4, real=2048)
        with pytest.raises(Exception):
            run_chaos(dgx1, workload, "meteor-strike")

    def test_chaos_trace_is_loadable_and_shows_faults(self, dgx1):
        workload = make_workload(num_gpus=8, real=2048)
        observer = Observer()
        run_chaos(dgx1, workload, "link-flap", seed=1, observer=observer)
        trace = to_chrome_trace(observer)
        assert validate_chrome_trace(trace) == []
        names = {event["name"] for event in trace["traceEvents"]}
        assert "fault.inject" in names
        assert "fault.restore" in names
        assert any(name.startswith("fault:") for name in names)


class TestAdaptiveRetainsMoreThroughput:
    def test_adaptive_beats_direct_under_brownout(self, dgx1):
        """Under an NVLink brownout the adaptive policy must retain
        strictly more shuffle throughput than static direct routing —
        the paper's claim, under fire."""
        gpus = tuple(range(8))
        flows = FlowMatrix.all_to_all(gpus, 8 * MB)
        healthy = ShuffleSimulator(dgx1, gpus, small_config()).run(
            flows, AdaptiveArmPolicy()
        )
        plan = build_preset("nvlink-brownout", dgx1, healthy.elapsed, seed=0)
        adaptive = ShuffleSimulator(
            dgx1, gpus, small_config(), faults=plan
        ).run(flows, AdaptiveArmPolicy())
        direct = ShuffleSimulator(
            dgx1, gpus, small_config(), faults=plan
        ).run(flows, DirectPolicy())
        assert adaptive.delivered_bytes == flows.total_bytes
        assert direct.delivered_bytes == flows.total_bytes
        assert adaptive.throughput > direct.throughput


class TestSingleNvlinkCutSurvivability:
    def test_every_single_nvlink_cut_is_survivable(self, dgx1):
        """Acceptance: cut any one NVLink mid-shuffle; the run must
        finish with every byte delivered, re-routing where traffic was
        committed to the dead link."""
        gpus = tuple(range(8))
        flows = FlowMatrix.all_to_all(gpus, 4 * MB)
        healthy = ShuffleSimulator(dgx1, gpus, small_config()).run(
            flows, AdaptiveArmPolicy()
        )
        recovered_runs = []
        for src, dst in nvlink_pairs(dgx1):
            plan = FaultPlan(
                name=f"cut-{src}-{dst}",
                events=(
                    FaultEvent(
                        kind=FaultKind.LINK_FAIL,
                        at=0.3 * healthy.elapsed,
                        src=src,
                        dst=dst,
                    ),
                ),
            )
            observer = Observer()
            report = ShuffleSimulator(
                dgx1, gpus, small_config(), faults=plan, observer=observer
            ).run(flows, AdaptiveArmPolicy())
            assert report.delivered_bytes == flows.total_bytes, (src, dst)
            assert report.faults_injected == 1
            if report.packet_retries:
                recovered_runs.append((report, observer))
        # Mid-run cuts on a loaded all-to-all must catch committed
        # packets somewhere — and their recovery must be observable.
        assert recovered_runs
        report, observer = recovered_runs[0]
        assert observer.spans.find_instants("packet.retry")
        assert report.packets_recovered > 0
        assert sum(r.packet_reroutes for r, _ in recovered_runs) > 0

    def test_cut_with_direct_policy_survives_via_reroute(self, dgx1):
        """Even the static direct policy must survive a cut: retries
        re-ask the policy, and a failed direct route falls back."""
        flows = FlowMatrix.all_to_all((0, 1, 2, 3), 8 * MB)
        healthy = ShuffleSimulator(dgx1, (0, 1, 2, 3), small_config()).run(
            flows, DirectPolicy()
        )
        plan = FaultPlan(
            name="cut-0-1",
            events=(
                FaultEvent(
                    kind=FaultKind.LINK_FAIL,
                    at=0.3 * healthy.elapsed,
                    src=0,
                    dst=1,
                ),
            ),
        )
        report = ShuffleSimulator(
            dgx1, (0, 1, 2, 3), small_config(), faults=plan
        ).run(flows, DirectPolicy())
        assert report.delivered_bytes == flows.total_bytes
        assert (
            report.packet_reroutes + report.packet_fallbacks
        ) > 0


def test_chaos_error_type():
    assert issubclass(ChaosError, RuntimeError)
