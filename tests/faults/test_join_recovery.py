"""Join-level crash recovery: exact results after losing GPUs mid-join.

The headline guarantee under test: for any fault plan crashing up to
N−1 GPUs, the faulted join's match set equals the healthy run's
byte-for-byte (canonical digest), crashed GPUs provably contribute zero
post-crash compute, and healthy runs pay zero recovery overhead.
"""

from __future__ import annotations

import pytest

from helpers import make_workload
from repro.core import (
    MGJoin,
    MGJoinConfig,
    RecoveryError,
    assign_partitions,
    build_histograms,
    ensure_recoverable,
)
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    run_chaos,
)
from repro.obs import Observer
from repro.sim import RecoveryConfig, RetryPolicy
from repro.topology import TopologyBuilder
from repro.topology.routes import RouteEnumerator, UnroutableError

CFG = MGJoinConfig(materialize=True)


def crash_plan(*events: FaultEvent, name: str = "crash-test") -> FaultPlan:
    return FaultPlan(name=name, events=tuple(events), seed=0)


def run_pair(machine, workload, plan, *, recovery=None, observer=None):
    """One healthy and one faulted run of the same workload."""
    healthy = MGJoin(machine, CFG).run(workload)
    faulted = MGJoin(
        machine, CFG, faults=plan, recovery=recovery, observer=observer
    ).run(workload)
    return healthy, faulted


def assert_exact(healthy, faulted, expected_dead):
    assert faulted.match_digest == healthy.match_digest
    assert faulted.matches_logical == healthy.matches_logical
    assert faulted.recovery is not None
    assert set(faulted.recovery.dead_gpus) == set(expected_dead)
    for gpu_id in expected_dead:
        assert faulted.per_gpu_matches[gpu_id] == 0


class TestSingleCrash:
    def test_preset_recovers_exact_result(self, dgx1):
        workload = make_workload(num_gpus=4)
        report = run_chaos(dgx1, workload, "gpu-crash", seed=1)  # strict
        recovery = report.faulted.recovery
        assert report.correct
        assert report.faulted.match_digest == report.healthy.match_digest
        assert recovery is not None and len(recovery.dead_gpus) == 1
        assert recovery.partitions_reassigned > 0
        assert recovery.reshuffled_bytes > 0
        assert recovery.max_detection_latency > 0
        dead = recovery.dead_gpus[0]
        assert report.faulted.per_gpu_matches[dead] == 0
        # Survivors absorbed the dead GPU's share of the matches.
        assert (
            sum(report.faulted.per_gpu_matches.values())
            == sum(report.healthy.per_gpu_matches.values())
        )

    def test_detection_distinguishes_straggler_from_crash(self, dgx1):
        """A slow GPU keeps heartbeating; only the crashed one dies."""
        workload = make_workload(num_gpus=4)
        healthy = MGJoin(dgx1, CFG).run(workload)
        at = healthy.shuffle_report.elapsed * 0.3
        plan = crash_plan(
            FaultEvent(
                kind=FaultKind.GPU_STRAGGLER,
                at=at,
                gpu=2,
                duration=healthy.shuffle_report.elapsed,
                magnitude=6.0,
            ),
            FaultEvent(kind=FaultKind.GPU_CRASH, at=at, gpu=1),
        )
        faulted = MGJoin(dgx1, CFG, faults=plan).run(workload)
        assert_exact(healthy, faulted, {1})
        assert 2 not in faulted.recovery.dead_gpus
        assert faulted.per_gpu_matches[2] > 0

    def test_crash_after_shuffle_before_probe(self, dgx1):
        """Data fully received, then lost: everything must re-shuffle."""
        workload = make_workload(num_gpus=4)
        healthy = MGJoin(dgx1, CFG).run(workload)
        plan = crash_plan(
            FaultEvent(
                kind=FaultKind.GPU_CRASH,
                at=healthy.shuffle_report.elapsed * 1.05,
                gpu=2,
            )
        )
        faulted = MGJoin(dgx1, CFG, faults=plan).run(workload)
        assert_exact(healthy, faulted, {2})
        # The crash discarded already-received partition data.
        assert faulted.shuffle_report.recovery.bytes_discarded > 0

    def test_crash_during_selective_broadcast(self, dgx1):
        """Killing a broadcast-partition owner demotes it exactly."""
        workload = make_workload(num_gpus=4, key_zipf=1.5)
        healthy = MGJoin(dgx1, CFG).run(workload)
        assert healthy.assignment_broadcasts > 0, "need broadcast partitions"
        # Crash a GPU that co-owns a broadcast partition.
        histograms = build_histograms(workload.r, workload.s, _num_partitions())
        assignment = assign_partitions(histograms, dgx1)
        broadcast_owner = next(
            assignment.owner_gpus(p)[0]
            for p in range(assignment.num_partitions)
            if assignment.broadcast_side[p] != 0
        )
        plan = crash_plan(
            FaultEvent(
                kind=FaultKind.GPU_CRASH,
                at=healthy.shuffle_report.elapsed * 0.3,
                gpu=broadcast_owner,
            )
        )
        faulted = MGJoin(dgx1, CFG, faults=plan).run(workload)
        assert_exact(healthy, faulted, {broadcast_owner})

    def test_crash_of_intermediate_hop(self, line3):
        """The middle GPU of a 3-GPU line relays traffic; kill it."""
        workload = make_workload(num_gpus=3)
        healthy = MGJoin(line3, CFG).run(workload)
        plan = crash_plan(
            FaultEvent(
                kind=FaultKind.GPU_CRASH,
                at=healthy.shuffle_report.elapsed * 0.3,
                gpu=1,
            )
        )
        faulted = MGJoin(line3, CFG, faults=plan).run(workload)
        assert_exact(healthy, faulted, {1})
        # gpu0 and gpu2 have no NVLink left: host staging carried bytes.
        assert faulted.shuffle_report.packet_fallbacks > 0


class TestMultiCrash:
    def test_two_crashes_same_epoch(self, dgx1):
        """The second GPU dies before the first is even declared."""
        workload = make_workload(num_gpus=4)
        healthy = MGJoin(dgx1, CFG).run(workload)
        at = healthy.shuffle_report.elapsed * 0.3
        plan = crash_plan(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=at, gpu=1),
            FaultEvent(kind=FaultKind.GPU_CRASH, at=at * 1.01, gpu=3),
        )
        faulted = MGJoin(dgx1, CFG, faults=plan).run(workload)
        assert_exact(healthy, faulted, {1, 3})
        assert set(faulted.recovery.survivors) == {0, 2}

    def test_crash_x2_preset_strict(self, dgx1):
        workload = make_workload(num_gpus=4)
        report = run_chaos(dgx1, workload, "gpu-crash-x2", seed=3)  # strict
        assert report.correct
        assert len(report.faulted.recovery.dead_gpus) == 2

    def test_n_minus_one_crashes(self, dgx1):
        """Lose 3 of 4 GPUs; the last survivor owns everything."""
        workload = make_workload(num_gpus=4)
        healthy = MGJoin(dgx1, CFG).run(workload)
        at = healthy.shuffle_report.elapsed * 0.25
        plan = crash_plan(
            *(
                FaultEvent(kind=FaultKind.GPU_CRASH, at=at * (1 + i), gpu=g)
                for i, g in enumerate((1, 2, 3))
            )
        )
        faulted = MGJoin(dgx1, CFG, faults=plan).run(workload)
        assert_exact(healthy, faulted, {1, 2, 3})
        assert faulted.per_gpu_matches[0] == healthy.matches_real

    def test_all_crash_is_unrecoverable(self, dgx1):
        workload = make_workload(num_gpus=4)
        plan = crash_plan(
            *(
                FaultEvent(kind=FaultKind.GPU_CRASH, at=1e-5, gpu=g)
                for g in range(4)
            )
        )
        with pytest.raises(RecoveryError, match="no survivors"):
            MGJoin(dgx1, CFG, faults=plan).run(workload)
        with pytest.raises(RecoveryError):
            run_chaos(dgx1, workload, plan, seed=0)
        ensure_recoverable(
            crash_plan(FaultEvent(kind=FaultKind.GPU_CRASH, at=0.1, gpu=0)),
            (0, 1, 2, 3),
        )


class TestCheckpoint:
    def test_checkpoint_bounds_reshuffle_volume(self, dgx1):
        """A receive-state checkpoint restores instead of re-sending."""
        workload = make_workload(num_gpus=4)
        healthy = MGJoin(dgx1, CFG).run(workload)
        plan = crash_plan(
            FaultEvent(
                kind=FaultKind.GPU_CRASH,
                at=healthy.shuffle_report.elapsed * 1.05,
                gpu=1,
            )
        )
        interval = healthy.shuffle_report.elapsed / 10
        plain = MGJoin(dgx1, CFG, faults=plan).run(workload)
        checked = MGJoin(
            dgx1,
            CFG,
            faults=plan,
            recovery=RecoveryConfig(checkpoint_interval=interval),
        ).run(workload)
        assert plain.match_digest == healthy.match_digest
        assert checked.match_digest == healthy.match_digest
        assert plain.recovery.checkpoint_restored_bytes == 0
        assert checked.recovery.checkpoint_restored_bytes > 0
        # Restored bytes replace re-shuffled fabric/host traffic.
        assert (
            checked.recovery.host_resent_bytes
            < plain.recovery.host_resent_bytes
            + plain.recovery.reshuffled_bytes
        )


class TestTraceAndOverhead:
    def test_crashed_gpu_contributes_zero_post_crash_compute(self, dgx1):
        """Dead GPU's timeline spans end at (or before) its crash."""
        workload = make_workload(num_gpus=4)
        healthy = MGJoin(dgx1, CFG).run(workload)
        plan = crash_plan(
            FaultEvent(
                kind=FaultKind.GPU_CRASH,
                at=healthy.shuffle_report.elapsed * 0.3,
                gpu=2,
            )
        )
        observer = Observer()
        faulted = MGJoin(dgx1, CFG, faults=plan, observer=observer).run(
            workload
        )
        assert faulted.recovery.dead_gpus == (2,)
        track = "gpu2 (sim)"
        crash_marks = [
            inst
            for inst in observer.spans.find_instants("gpu.crashed")
            if inst.track == track
        ]
        assert len(crash_marks) == 1
        crash_time = crash_marks[0].time
        # Mid-shuffle crash: local/probe never start, so the dead track
        # has no phase spans at all; any that do exist end at the crash.
        spans = observer.spans.find(track=track, category="phase")
        assert all(span.end <= crash_time + 1e-12 for span in spans)
        assert not any(span.start >= crash_time + 1e-12 for span in spans)
        # A surviving GPU's probe span extends past the crash.
        alive = observer.spans.find("probe", track="gpu0 (sim)")
        assert alive and alive[0].end > crash_time

    def test_healthy_run_has_zero_recovery_overhead(self, dgx1):
        workload = make_workload(num_gpus=4)
        baseline = MGJoin(dgx1, CFG).run(workload)
        with_knobs = MGJoin(
            dgx1,
            CFG,
            retry=RetryPolicy(max_attempts=7),
            recovery=RecoveryConfig(checkpoint_interval=1e-4),
        ).run(workload)
        assert baseline.recovery is None
        assert baseline.shuffle_report.recovery is None
        assert with_knobs.match_digest == baseline.match_digest
        assert with_knobs.total_time == baseline.total_time
        assert with_knobs.shuffle_report.elapsed == baseline.shuffle_report.elapsed


class TestSurvivorRouting:
    def test_fail_gpu_makes_routes_through_it_unroutable(self, dgx1):
        enumerator = RouteEnumerator(dgx1)
        route = enumerator.routes(0, 5)[0]
        assert route is not None
        enumerator.fail_gpu(0)
        with pytest.raises(UnroutableError, match="declared dead"):
            enumerator.routes(0, 5)
        with pytest.raises(UnroutableError, match="declared dead"):
            enumerator.routes(5, 0)
        # Survivor-to-survivor routes keep working.
        assert enumerator.routes(5, 6)


class TestPlanValidation:
    def test_unknown_gpu_target_fails_at_load(self, dgx1):
        plan = crash_plan(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.1, gpu=12)
        )
        with pytest.raises(FaultPlanError, match="gpu12"):
            plan.validate(dgx1)

    def test_gpu_outside_cut_fails_at_load(self, dgx1):
        plan = crash_plan(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.1, gpu=6)
        )
        plan.validate(dgx1)  # full machine: fine
        with pytest.raises(FaultPlanError, match="gpu6"):
            plan.validate(dgx1, gpu_ids=(0, 1, 2, 3))

    def test_missing_nvlink_fails_at_load(self, dgx1):
        plan = crash_plan(
            FaultEvent(kind=FaultKind.LINK_FAIL, at=0.1, src=0, dst=5)
        )
        with pytest.raises(FaultPlanError, match="no NVLink"):
            plan.validate(dgx1)

    def test_validate_returns_plan_for_chaining(self, dgx1):
        plan = crash_plan(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.1, gpu=0)
        )
        assert plan.validate(dgx1) is plan


class TestRetryKnobs:
    def test_plan_retry_round_trips(self):
        plan = FaultPlan(
            name="tuned",
            events=(FaultEvent(kind=FaultKind.GPU_CRASH, at=0.1, gpu=0),),
            retry=(("max_attempts", 6), ("host_bandwidth", 8e9)),
        )
        data = plan.to_dict()
        assert data["retry"] == {"max_attempts": 6, "host_bandwidth": 8e9}
        loaded = FaultPlan.from_dict(data)
        assert loaded.retry_kwargs == {
            "max_attempts": 6,
            "host_bandwidth": 8e9,
        }
        assert RetryPolicy(**loaded.retry_kwargs).max_attempts == 6

    def test_unknown_retry_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown retry fields"):
            FaultPlan(
                name="bad",
                events=(
                    FaultEvent(kind=FaultKind.GPU_CRASH, at=0.1, gpu=0),
                ),
                retry=(("warp_speed", 9.0),),
            )

    def test_plan_retry_applies_to_faulted_run(self, dgx1):
        workload = make_workload(num_gpus=4)
        healthy = MGJoin(dgx1, CFG).run(workload)
        plan = FaultPlan(
            name="tuned-crash",
            events=(
                FaultEvent(
                    kind=FaultKind.GPU_CRASH,
                    at=healthy.shuffle_report.elapsed * 0.3,
                    gpu=1,
                ),
            ),
            retry=(("host_bandwidth", 50e9),),
        )
        fast = run_chaos(dgx1, workload, plan, seed=0, strict=False)
        slow = run_chaos(
            dgx1,
            workload,
            plan,
            seed=0,
            strict=False,
            retry=RetryPolicy(host_bandwidth=1e9),
        )
        assert fast.correct and slow.correct
        # The explicit retry argument overrides the plan's baked-in one.
        assert (
            slow.faulted.shuffle_report.elapsed
            >= fast.faulted.shuffle_report.elapsed
        )


class TestChaosCli:
    def test_unbridgeable_plan_exits_cleanly(self, tmp_path):
        import json

        from repro.cli import main

        plan_path = tmp_path / "allcrash.json"
        plan_path.write_text(
            json.dumps(
                {
                    "name": "all-crash",
                    "events": [
                        {"kind": "gpu-crash", "at": 1e-4, "gpu": g}
                        for g in range(4)
                    ],
                }
            )
        )
        code = main(
            [
                "chaos",
                "--machine",
                "dgx1",
                "--gpus",
                "4",
                "--plan",
                str(plan_path),
                "--tuples-per-gpu",
                "64K",
                "--real-tuples",
                "2K",
            ]
        )
        assert code == 2

    def test_expect_loss_fails_without_a_crash(self):
        from repro.cli import main

        code = main(
            [
                "chaos",
                "--machine",
                "dgx1",
                "--gpus",
                "4",
                "--preset",
                "nvlink-cut",
                "--tuples-per-gpu",
                "64K",
                "--real-tuples",
                "2K",
                "--expect-loss",
            ]
        )
        assert code == 1

    def test_expect_loss_passes_with_crash(self, tmp_path):
        import json

        from repro.cli import main

        out_dir = tmp_path / "chaos"
        code = main(
            [
                "chaos",
                "--machine",
                "dgx1",
                "--gpus",
                "4",
                "--preset",
                "gpu-crash",
                "--tuples-per-gpu",
                "64K",
                "--real-tuples",
                "2K",
                "--expect-loss",
                "--max-attempts",
                "6",
                "--out-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        payload = json.loads((out_dir / "chaos_report.json").read_text())
        assert payload["correct"] is True
        assert payload["healthy_digest"] == payload["faulted_digest"]
        assert payload["retry"]["max_attempts"] == 6
        assert payload["recovery_telemetry"]["dead_gpus"]
        assert payload["recovery_telemetry"]["reshuffled_bytes"] > 0


@pytest.fixture(scope="module")
def line3():
    """Three GPUs in a line: gpu1 is the only NVLink relay for 0<->2."""
    builder = TopologyBuilder("line3")
    builder.add_gpus(3)
    builder.add_switch(0, socket=0)
    for gpu_id in range(3):
        builder.attach_gpu_to_switch(gpu_id, 0)
    builder.add_nvlink(0, 1)
    builder.add_nvlink(1, 2)
    return builder.build()


def _num_partitions() -> int:
    """Mirror MGJoin.run()'s partition-count choice for CFG."""
    from repro.core.histogram import max_partitions

    return CFG.num_partitions or max_partitions(
        CFG.compute.spec, CFG.histogram_entry_bytes, CFG.thread_blocks_per_sm
    )
