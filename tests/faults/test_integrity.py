"""Verified transport: checksums, NACK/retransmit, dedup, and the
end-to-end audit that catches silent corruption with verification off.

The single-NVLink tiny machine guarantees every shuffle packet crosses
the tampered link, so magnitude-1.0 plans tamper deterministically —
no reliance on which links a router happens to pick.
"""

import pytest
from helpers import make_workload

from repro.faults import ChaosError, FaultEvent, FaultKind, FaultPlan, run_chaos
from repro.sim.integrity import IntegrityStats, payload_checksum, payload_token

CORRUPTION = (
    FaultKind.PAYLOAD_CORRUPT,
    FaultKind.PACKET_DUP,
    FaultKind.PACKET_REORDER,
)


def corruption_plan(kind, magnitude=1.0, retry=None):
    """One whole-run corruption window on the tiny machine's only link."""
    return FaultPlan(
        name=f"it-{kind.value}",
        events=(
            FaultEvent(
                kind=kind,
                at=0.0,
                duration=10.0,
                src=0,
                dst=1,
                magnitude=magnitude,
            ),
        ),
        retry=retry,
    )


@pytest.fixture
def workload():
    return make_workload(num_gpus=2, real=2048)


class TestVerifiedTransport:
    """With verification on, every corruption class is absorbed and the
    faulted digest equals the healthy one byte-for-byte."""

    @pytest.mark.parametrize("kind", CORRUPTION)
    def test_digest_identical_under_corruption(self, tiny_machine, workload, kind):
        report = run_chaos(
            tiny_machine, workload, corruption_plan(kind), verify=True
        )  # strict: raises on any mismatch
        assert report.correct
        assert report.faulted.match_digest == report.healthy.match_digest
        stats = report.integrity
        assert stats is not None and stats.verified
        assert not stats.silent_corruption

    def test_corruption_is_repaired_via_nack(self, tiny_machine, workload):
        report = run_chaos(
            tiny_machine,
            workload,
            corruption_plan(FaultKind.PAYLOAD_CORRUPT),
            verify=True,
        )
        stats = report.integrity
        assert stats.corrupted_wire > 0
        assert stats.checksum_failures == stats.corrupted_wire
        assert stats.retransmits > 0
        assert stats.corrupt_delivered == 0
        assert report.fault_counters["checksum_failures"] > 0

    def test_duplicates_are_dropped(self, tiny_machine, workload):
        report = run_chaos(
            tiny_machine,
            workload,
            corruption_plan(FaultKind.PACKET_DUP),
            verify=True,
        )
        stats = report.integrity
        assert stats.duplicated_wire > 0
        assert stats.dup_dropped == stats.duplicated_wire
        assert stats.dup_delivered == 0

    def test_reorders_are_marked(self, tiny_machine, workload):
        report = run_chaos(
            tiny_machine,
            workload,
            corruption_plan(FaultKind.PACKET_REORDER),
            verify=True,
        )
        assert report.integrity.reordered_wire > 0


class TestUnverifiedAudit:
    """With verification off, the audit must detect corruption — the
    run is graded wrong (never silently correct-looking)."""

    @pytest.mark.parametrize(
        "kind", (FaultKind.PAYLOAD_CORRUPT, FaultKind.PACKET_DUP)
    )
    def test_silent_corruption_detected(self, tiny_machine, workload, kind):
        report = run_chaos(
            tiny_machine,
            workload,
            corruption_plan(kind),
            strict=False,
            verify=False,
        )
        assert report.silent_corruption_detected
        assert not report.correct
        stats = report.integrity
        assert not stats.verified
        if kind is FaultKind.PAYLOAD_CORRUPT:
            assert stats.corrupt_delivered > 0
        else:
            assert stats.dup_delivered > 0
            assert stats.dup_payload_bytes > 0

    def test_strict_raises_naming_silent_corruption(self, tiny_machine, workload):
        with pytest.raises(ChaosError, match="silently corrupted"):
            run_chaos(
                tiny_machine,
                workload,
                corruption_plan(FaultKind.PAYLOAD_CORRUPT),
                verify=False,
            )

    def test_reorder_without_verification_is_benign(self, tiny_machine, workload):
        # Arrival order is not a correctness property (healthy multi-route
        # shuffles already reorder); the audit must not cry wolf.
        report = run_chaos(
            tiny_machine,
            workload,
            corruption_plan(FaultKind.PACKET_REORDER),
            strict=False,
            verify=False,
        )
        assert report.integrity.reordered_wire > 0
        assert not report.silent_corruption_detected
        assert report.correct


class TestAutoVerify:
    def test_auto_on_for_corruption_plans(self, tiny_machine, workload):
        report = run_chaos(
            tiny_machine,
            workload,
            corruption_plan(FaultKind.PAYLOAD_CORRUPT),
        )  # verify=None
        assert report.integrity is not None
        assert report.integrity.verified

    def test_off_for_loss_only_plans(self, tiny_machine, workload):
        plan = FaultPlan(
            name="it-blackout",
            events=(
                FaultEvent(
                    kind=FaultKind.LINK_BLACKOUT,
                    at=1e-5,
                    duration=2e-5,
                    src=0,
                    dst=1,
                ),
            ),
        )
        report = run_chaos(tiny_machine, workload, plan, strict=False)
        # No integrity layer: zero overhead, historical digests intact.
        assert report.integrity is None

    def test_precomputed_healthy_baseline(self, tiny_machine, workload):
        from dataclasses import replace

        from repro.core import MGJoin
        from repro.core.config import MGJoinConfig

        config = replace(MGJoinConfig(), materialize=True)
        healthy = MGJoin(tiny_machine, config=config).run(workload)
        report = run_chaos(
            tiny_machine,
            workload,
            corruption_plan(FaultKind.PAYLOAD_CORRUPT),
            config=config,
            healthy=healthy,
        )
        assert report.healthy is healthy
        assert report.correct


class TestChecksumPrimitives:
    def test_token_and_checksum_deterministic(self):
        token = payload_token(0, 1, 7, 4096)
        assert token == payload_token(0, 1, 7, 4096)
        assert payload_checksum(token) == payload_checksum(token)

    def test_any_bit_flip_invalidates(self):
        token = payload_token(2, 3, 11, 8192)
        checksum = payload_checksum(token)
        for bit in range(32):
            assert payload_checksum(token ^ (1 << bit)) != checksum

    def test_distinct_packets_distinct_tokens(self):
        tokens = {
            payload_token(src, dst, seq, 4096)
            for src in range(4)
            for dst in range(4)
            for seq in range(8)
        }
        assert len(tokens) == 4 * 4 * 8

    def test_stats_to_dict_and_silent_flag(self):
        stats = IntegrityStats(verified=False, corrupt_delivered=2)
        assert stats.silent_corruption
        payload = stats.to_dict()
        assert payload["corrupt_delivered"] == 2
        assert payload["silent_corruption"] is True
        assert not IntegrityStats(verified=True).silent_corruption


class TestRetryJitterDeterminism:
    """Jitter is seeded from the plan (crc32 of its name ^ seed), so two
    identical chaos runs emit byte-identical retry telemetry."""

    def run_once(self, machine, workload):
        from repro.obs import Observer
        from repro.obs.stream import TelemetryStream

        events = []
        stream = TelemetryStream(None)
        stream.subscribe(events.append)
        observer = Observer()
        observer.stream = stream
        plan = corruption_plan(
            FaultKind.PAYLOAD_CORRUPT,
            retry=(("jitter", 0.5), ("base_delay", 1e-6)),
        )
        report = run_chaos(
            machine, workload, plan, verify=True, observer=observer
        )
        assert report.integrity.retransmits > 0
        return [e for e in events if e["type"] in ("packet.retry", "integrity")]

    def test_identical_runs_identical_retry_telemetry(
        self, tiny_machine, workload
    ):
        first = self.run_once(tiny_machine, workload)
        second = self.run_once(tiny_machine, workload)
        assert first  # jitter actually exercised the retry path
        assert first == second

    def test_jitter_validation(self):
        from repro.sim.recovery import RetryPolicy

        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        assert RetryPolicy(jitter=0.25).jitter == 0.25

    def test_jitter_perturbs_but_preserves_mean_scale(self):
        from repro.sim.recovery import RecoveryManager, RetryPolicy

        policy = RetryPolicy(jitter=0.5, base_delay=1e-6)
        manager = RecoveryManager(engine=None, policy=policy, jitter_seed=7)
        base = policy.retry_delay(0)
        delays = [manager.retry_delay(0) for _ in range(64)]
        assert any(d != base for d in delays)
        assert all(0.5 * base <= d <= 1.5 * base for d in delays)
        # Zero jitter must bypass the RNG entirely (digest stability).
        plain = RecoveryManager(engine=None, policy=RetryPolicy(), jitter_seed=7)
        assert plain.retry_delay(0) == RetryPolicy().retry_delay(0)
        assert plain._jitter_rng is None
