"""Chaos fuzzer: seeded determinism, grammar validity, shrinking."""

import pytest

from repro.faults import (
    CORRUPTION_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    run_fuzz,
    sample_plan,
    shrink_plan,
)


class TestSampling:
    def test_same_seed_same_plan(self, dgx1):
        for index in range(5):
            first = sample_plan(dgx1, 1e-3, seed=8, index=index)
            second = sample_plan(dgx1, 1e-3, seed=8, index=index)
            assert first.to_dict() == second.to_dict()

    def test_seed_and_index_vary_plans(self, dgx1):
        base = sample_plan(dgx1, 1e-3, seed=8, index=0)
        assert sample_plan(dgx1, 1e-3, seed=9, index=0).to_dict() != base.to_dict()
        assert sample_plan(dgx1, 1e-3, seed=8, index=1).to_dict() != base.to_dict()

    def test_plans_are_valid_and_bounded(self, dgx1):
        for index in range(40):
            plan = sample_plan(dgx1, 1e-3, seed=3, index=index)
            plan.validate(dgx1)  # must not raise
            assert 1 <= len(plan.events) <= 3
            crashes = [
                e for e in plan.events if e.kind is FaultKind.GPU_CRASH
            ]
            assert len(crashes) <= 1
            for event in plan.events:
                assert 0.0 <= event.at <= 0.5e-3

    def test_grammar_covers_most_kinds(self, dgx1):
        kinds = {
            event.kind
            for index in range(60)
            for event in sample_plan(dgx1, 1e-3, seed=5, index=index).events
        }
        assert len(kinds) >= 6
        assert kinds & CORRUPTION_KINDS

    def test_respects_gpu_subset(self, dgx1):
        subset = (0, 1, 2, 3)
        for index in range(20):
            plan = sample_plan(dgx1, 1e-3, seed=2, index=index, gpu_ids=subset)
            for event in plan.events:
                targets = {event.gpu, event.src, event.dst} - {None}
                assert targets <= set(subset)


def corrupt_event(magnitude=0.8):
    return FaultEvent(
        kind=FaultKind.PAYLOAD_CORRUPT,
        at=0.0,
        duration=1e-3,
        src=0,
        dst=1,
        magnitude=magnitude,
    )


def straggler_event():
    return FaultEvent(
        kind=FaultKind.GPU_STRAGGLER, at=0.0, duration=1e-3, gpu=2, magnitude=4.0
    )


def blackout_event():
    return FaultEvent(
        kind=FaultKind.LINK_BLACKOUT, at=0.0, duration=1e-4, src=2, dst=3
    )


class TestShrinking:
    def test_drops_irrelevant_events(self):
        plan = FaultPlan(
            name="s",
            events=(corrupt_event(), straggler_event(), blackout_event()),
        )

        def oracle(candidate):
            return any(
                e.kind is FaultKind.PAYLOAD_CORRUPT for e in candidate.events
            )

        shrunk, checks = shrink_plan(plan, oracle)
        assert len(shrunk.events) == 1
        assert shrunk.events[0].kind is FaultKind.PAYLOAD_CORRUPT
        assert checks <= 32

    def test_softens_magnitude_to_floor(self):
        plan = FaultPlan(name="s", events=(corrupt_event(magnitude=0.8),))

        def oracle(candidate):  # fails at any magnitude
            return True

        shrunk, _ = shrink_plan(plan, oracle)
        assert shrunk.events[0].magnitude == pytest.approx(0.05)
        assert shrunk.events[0].duration < 1e-3

    def test_keeps_magnitude_needed_to_fail(self):
        plan = FaultPlan(name="s", events=(corrupt_event(magnitude=0.8),))

        def oracle(candidate):
            return candidate.events[0].magnitude >= 0.4

        shrunk, _ = shrink_plan(plan, oracle)
        assert shrunk.events[0].magnitude >= 0.4

    def test_oracle_calls_bounded(self):
        plan = FaultPlan(
            name="s",
            events=(corrupt_event(), straggler_event(), blackout_event()),
        )
        calls = 0

        def oracle(candidate):
            nonlocal calls
            calls += 1
            return True

        _, checks = shrink_plan(plan, oracle, max_checks=5)
        assert checks == 5
        assert calls == 5


class TestRunFuzz:
    def stub_runner(self, failing_names):
        calls = []

        def runner(plan):
            calls.append(plan.name)
            if plan.name in failing_names:
                return "boom"
            return None

        return runner, calls

    def test_budget_and_determinism(self, dgx1):
        runner, calls = self.stub_runner(set())
        report = run_fuzz(dgx1, 1e-3, runner, seed=8, budget=7)
        assert report.ok
        assert report.plans_run == 7
        assert calls == [f"fuzz-8-{i:03d}" for i in range(7)]
        rerun = run_fuzz(dgx1, 1e-3, self.stub_runner(set())[0], seed=8, budget=7)
        assert report.to_dict() == rerun.to_dict()

    def test_failures_are_shrunk_and_reported(self, dgx1):
        runner, _ = self.stub_runner({"fuzz-8-002"})

        def sticky_runner(plan):
            # The shrunk candidates keep the failing plan's name, so the
            # failure persists through shrinking (worst case: minimal
            # plan is one maximally-softened event).
            return runner(plan)

        report = run_fuzz(dgx1, 1e-3, sticky_runner, seed=8, budget=4)
        assert not report.ok
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.plan.name == "fuzz-8-002"
        assert failure.reason == "boom"
        assert len(failure.shrunk.events) <= len(failure.plan.events)
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["failures"][0]["plan"]["name"] == "fuzz-8-002"
        text = "\n".join(report.summary_lines())
        assert "FAILURE" in text and "fuzz-8-002" in text

    def test_log_callback_sees_every_plan(self, dgx1):
        lines = []
        runner, _ = self.stub_runner(set())
        run_fuzz(dgx1, 1e-3, runner, seed=1, budget=3, log=lines.append)
        assert len(lines) == 3
        assert "[1/3]" in lines[0]
