"""Retry/backoff bounds and credit-timeout recovery plumbing."""

import pytest

from repro.sim import Engine, RoutingBuffer
from repro.sim.recovery import RetryPolicy


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "base,backoff,cap,attempts",
        [
            (100e-6, 2.0, 5e-3, 4),
            (50e-6, 1.5, 1e-3, 8),
            (0.0, 3.0, 1e-2, 3),
            (1e-3, 1.0, 1e-3, 16),
            (2e-4, 4.0, 2e-4, 2),
        ],
    )
    def test_delays_bounded_and_monotone(self, base, backoff, cap, attempts):
        """Property: every backoff delay is capped, non-decreasing, and
        the whole retry budget sums to the documented bound."""
        policy = RetryPolicy(
            max_attempts=attempts, base_delay=base, backoff=backoff,
            max_delay=cap,
        )
        delays = [policy.retry_delay(i) for i in range(attempts - 1)]
        assert all(0.0 <= delay <= cap for delay in delays)
        assert delays == sorted(delays)
        assert policy.total_delay_bound() == pytest.approx(sum(delays))
        assert policy.total_delay_bound() <= cap * (attempts - 1) * (1 + 1e-9)

    def test_default_budget_is_small(self):
        # The whole retry budget must stay well under a typical shuffle
        # so recovery never dominates a run that mostly succeeds.
        assert RetryPolicy().total_delay_bound() < 10e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)


class TestAcquireTimeout:
    """RoutingBuffer.acquire(timeout=...) — the crashed-receiver escape."""

    def test_timeout_returns_false_at_deadline(self):
        engine = Engine()
        buffer = RoutingBuffer(engine, slots=1, sync_latency=0.0)
        outcome = []

        def holder():
            ok = yield from buffer.acquire()
            assert ok

        def waiter():
            ok = yield from buffer.acquire(timeout=0.5)
            outcome.append((engine.now, ok))

        engine.process(holder())
        engine.process(waiter())
        engine.run()
        assert outcome == [(0.5, False)]

    def test_release_before_deadline_returns_true(self):
        engine = Engine()
        buffer = RoutingBuffer(engine, slots=1, sync_latency=0.0)
        outcome = []

        def holder():
            ok = yield from buffer.acquire()
            assert ok

        def waiter():
            ok = yield from buffer.acquire(timeout=0.5)
            outcome.append((engine.now, ok))

        engine.process(holder())
        engine.process(waiter())
        engine.schedule(0.2, buffer.release)
        engine.run()
        assert outcome == [(0.2, True)]

    def test_timed_out_waiter_does_not_leak_the_slot(self):
        """A release after the timeout must not wake the dead waiter —
        the slot has to go to the next live acquirer."""
        engine = Engine()
        buffer = RoutingBuffer(engine, slots=1, sync_latency=0.0)
        outcome = []

        def holder():
            ok = yield from buffer.acquire()
            assert ok

        def impatient():
            ok = yield from buffer.acquire(timeout=0.1)
            outcome.append(("impatient", engine.now, ok))

        def late():
            yield engine.timeout(2.0)
            ok = yield from buffer.acquire(timeout=5.0)
            outcome.append(("late", engine.now, ok))

        engine.process(holder())
        engine.process(impatient())
        engine.process(late())
        engine.schedule(1.0, buffer.release)
        engine.run()
        assert outcome == [
            ("impatient", 0.1, False),
            ("late", 2.0, True),
        ]

    def test_immediate_acquire_ignores_timeout(self):
        engine = Engine()
        buffer = RoutingBuffer(engine, slots=2, sync_latency=0.0)
        outcome = []

        def grabber():
            ok = yield from buffer.acquire(timeout=1e-9)
            outcome.append((engine.now, ok))

        engine.process(grabber())
        engine.run()
        assert outcome == [(0.0, True)]
