"""Fault models against live links, the state board, and full shuffles."""

import pytest

from repro.faults import (
    LINK_DOWN_PENALTY,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanError,
)
from repro.obs import Observer
from repro.routing import AdaptiveArmPolicy, DirectPolicy
from repro.sim import (
    Engine,
    FlowMatrix,
    LinkChannel,
    LinkStateBoard,
    ShuffleConfig,
    ShuffleSimulator,
)
from repro.topology.links import LinkSpec, LinkType
from repro.topology.nodes import gpu

MB = 1024 * 1024


def make_link(engine, board=None, lanes=1):
    spec = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK, lanes=lanes)
    return LinkChannel(engine, spec, board)


def small_config(**overrides):
    defaults = dict(injection_rate=None, consume_rate=None)
    defaults.update(overrides)
    return ShuffleConfig(**defaults)


class TestLinkFaultPrimitives:
    def test_down_link_loses_new_transfers(self):
        engine = Engine()
        link = make_link(engine)
        link.take_down()
        event = link.transmit(MB)
        engine.run()
        assert event.value is False
        assert link.transfers_lost == 1

    def test_take_down_loses_in_flight_transfer(self):
        engine = Engine()
        link = make_link(engine)
        event = link.transmit(25_000_000)  # ~1 ms of service
        engine.schedule(0.5e-3, link.take_down)
        engine.run()
        assert event.value is False
        assert link.transfers_lost == 1

    def test_bring_up_restores_service(self):
        engine = Engine()
        link = make_link(engine)
        link.take_down()
        link.bring_up()
        event = link.transmit(MB)
        engine.run()
        assert event.value is True
        assert link.transfers_lost == 0

    def test_transfer_spanning_a_blackout_is_lost(self):
        """Down-then-up while a transfer is in flight: still lost —
        the outage epoch changed under it."""
        engine = Engine()
        link = make_link(engine)
        event = link.transmit(25_000_000)
        engine.schedule(0.3e-3, link.take_down)
        engine.schedule(0.4e-3, link.bring_up)
        engine.run()
        assert event.value is False

    def test_degraded_bandwidth_stretches_service_time(self):
        engine = Engine()
        link = make_link(engine)
        healthy = link.service_time(MB)
        link.bandwidth_scale = 0.5
        degraded = link.service_time(MB)
        assert degraded - link.spec.latency == pytest.approx(
            2 * (healthy - link.spec.latency)
        )

    def test_fault_penalty_shows_in_queue_delay(self):
        engine = Engine()
        link = make_link(engine)
        assert link.queue_delay() == 0.0
        link.fault_penalty = LINK_DOWN_PENALTY
        assert link.queue_delay() >= LINK_DOWN_PENALTY


class TestFaultBroadcast:
    def test_publish_fault_arrives_after_broadcast_latency(self):
        engine = Engine()
        board = LinkStateBoard(engine, broadcast_latency=1e-3)
        board.publish_fault(0, 0.25)
        engine.run(until=0.5e-3)
        assert board.published_queue_delay(0) == 0.0
        engine.run(until=2e-3)
        assert board.published_queue_delay(0) == pytest.approx(0.25)

    def test_fault_restore_clears_published_penalty(self):
        engine = Engine()
        board = LinkStateBoard(engine, broadcast_latency=1e-3)
        board.publish_fault(0, 0.25)
        engine.schedule(5e-3, board.publish_fault, 0, 0.0)
        engine.run()
        assert board.published_queue_delay(0) == 0.0

    def test_stale_fault_broadcast_cannot_roll_back_newer(self):
        engine = Engine()
        board = LinkStateBoard(engine, broadcast_latency=1e-3)
        board.publish_fault(0, 0.25)
        engine.schedule(0.5e-3, board.publish_fault, 0, 0.0)
        engine.run()
        # The second (restoring) broadcast must win even though the
        # first one's delivery was still in flight when it was sent.
        assert board.published_queue_delay(0) == 0.0


def run_faulted(machine, gpu_ids, flows, plan, policy=None, observer=None,
                config=None):
    simulator = ShuffleSimulator(
        machine,
        gpu_ids,
        config or small_config(),
        faults=plan,
        observer=observer,
    )
    return simulator.run(flows, policy or AdaptiveArmPolicy())


class TestInjectedShuffles:
    def test_blackout_packets_are_retried_and_delivered(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 1, 16 * MB)
        healthy = ShuffleSimulator(dgx1, (0, 1), small_config()).run(
            flows, DirectPolicy()
        )
        plan = FaultPlan(
            name="mid-run-blackout",
            events=(
                FaultEvent(
                    kind=FaultKind.LINK_BLACKOUT,
                    at=0.3 * healthy.elapsed,
                    src=0,
                    dst=1,
                    duration=0.3 * healthy.elapsed,
                ),
            ),
        )
        report = run_faulted(dgx1, (0, 1), flows, plan, DirectPolicy())
        assert report.delivered_bytes == flows.total_bytes
        assert report.faults_injected == 1
        assert report.packet_retries > 0
        assert report.packets_recovered > 0

    def test_link_fail_reroutes_around_the_cut(self, dgx1):
        flows = FlowMatrix.all_to_all((0, 1, 2, 3), 8 * MB)
        healthy = ShuffleSimulator(dgx1, (0, 1, 2, 3), small_config()).run(
            flows, AdaptiveArmPolicy()
        )
        plan = FaultPlan(
            name="cut",
            events=(
                FaultEvent(
                    kind=FaultKind.LINK_FAIL,
                    at=0.3 * healthy.elapsed,
                    src=0,
                    dst=1,
                ),
            ),
        )
        report = run_faulted(dgx1, (0, 1, 2, 3), flows, plan)
        assert report.delivered_bytes == flows.total_bytes
        assert report.packet_reroutes > 0

    def test_straggler_slows_but_completes(self, dgx1):
        # Several batches per flow so the mid-run slowdown actually
        # paces later injections (one batch = 8 x 2 MB packets).
        flows = FlowMatrix.all_to_all((0, 1), 64 * MB)
        config = ShuffleConfig()  # keep injection/consume pacing on
        healthy = ShuffleSimulator(dgx1, (0, 1), config).run(
            flows, DirectPolicy()
        )
        plan = FaultPlan(
            name="straggler",
            events=(
                FaultEvent(
                    kind=FaultKind.GPU_STRAGGLER,
                    at=0.1 * healthy.elapsed,
                    gpu=0,
                    duration=0.7 * healthy.elapsed,
                    magnitude=8.0,
                ),
            ),
        )
        report = run_faulted(
            dgx1, (0, 1), flows, plan, DirectPolicy(), config=config
        )
        assert report.delivered_bytes == flows.total_bytes
        assert report.faults_injected == 1
        # The wire stays the bottleneck, but the straggler's 8x-slower
        # consumption must push its pipeline finish out.
        assert report.consume_finish_time > healthy.consume_finish_time

    def test_gpu_crash_drains_through_host_fallback(self, dgx1):
        flows = FlowMatrix.all_to_all((0, 1), 8 * MB)
        healthy = ShuffleSimulator(dgx1, (0, 1), small_config()).run(
            flows, DirectPolicy()
        )
        plan = FaultPlan(
            name="crash",
            events=(
                FaultEvent(
                    kind=FaultKind.GPU_CRASH,
                    at=0.4 * healthy.elapsed,
                    gpu=1,
                ),
            ),
        )
        report = run_faulted(dgx1, (0, 1), flows, plan, DirectPolicy())
        assert report.delivered_bytes == flows.total_bytes
        assert report.packet_fallbacks > 0

    def test_fault_counters_reach_observer_metrics(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 1, 16 * MB)
        observer = Observer()
        plan = FaultPlan(
            name="flap",
            events=(
                FaultEvent(
                    kind=FaultKind.LINK_BLACKOUT,
                    at=1e-4,
                    src=0,
                    dst=1,
                    duration=1e-4,
                ),
            ),
        )
        report = run_faulted(
            dgx1, (0, 1), flows, plan, DirectPolicy(), observer=observer
        )
        counters = {
            (row["name"], tuple(sorted(row["labels"].items()))): row["value"]
            for row in observer.metrics.snapshot()["counters"]
        }
        injected = counters[
            ("faults.injected", (("kind", "link-blackout"),))
        ]
        assert injected == 1
        assert counters[("faults.retries", ())] == report.packet_retries
        names = {name for name, _ in counters}
        assert "faults.packets_recovered" in names

    def test_fault_window_span_and_instants_in_observer(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 1, 16 * MB)
        observer = Observer()
        plan = FaultPlan(
            name="flap",
            events=(
                FaultEvent(
                    kind=FaultKind.LINK_BLACKOUT,
                    at=1e-4,
                    src=0,
                    dst=1,
                    duration=1e-4,
                ),
            ),
        )
        run_faulted(dgx1, (0, 1), flows, plan, DirectPolicy(),
                    observer=observer)
        assert observer.spans.find_instants("fault.inject")
        assert observer.spans.find_instants("fault.restore")
        windows = observer.spans.find("fault:link-blackout")
        assert len(windows) == 1
        assert windows[0].duration == pytest.approx(1e-4)

    def test_plan_targeting_foreign_gpu_rejected(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 1, MB)
        plan = FaultPlan(
            name="bad",
            events=(
                FaultEvent(kind=FaultKind.GPU_CRASH, at=0.0, gpu=7),
            ),
        )
        with pytest.raises(FaultPlanError):
            run_faulted(dgx1, (0, 1), flows, plan, DirectPolicy())

    def test_plan_targeting_unlinked_pair_rejected(self, dgx1):
        flows = FlowMatrix()
        flows.add(0, 1, MB)
        plan = FaultPlan(
            name="bad",
            events=(
                # 0<->5 has no NVLink on the DGX-1.
                FaultEvent(kind=FaultKind.LINK_FAIL, at=0.0, src=0, dst=5),
            ),
        )
        with pytest.raises(FaultPlanError):
            run_faulted(dgx1, (0, 1), flows, plan, DirectPolicy())


def test_injector_counts_injections(dgx1):
    plan = FaultPlan(
        name="pair",
        events=(
            FaultEvent(kind=FaultKind.LINK_BLACKOUT, at=1e-5, src=0, dst=1,
                       duration=1e-5),
            FaultEvent(kind=FaultKind.LINK_BLACKOUT, at=5e-5, src=2, dst=3,
                       duration=1e-5),
        ),
    )
    flows = FlowMatrix.all_to_all((0, 1, 2, 3), 4 * MB)
    report = ShuffleSimulator(
        dgx1, (0, 1, 2, 3), small_config(), faults=plan
    ).run(flows, AdaptiveArmPolicy())
    assert report.faults_injected == len(plan)
    assert report.delivered_bytes == flows.total_bytes
