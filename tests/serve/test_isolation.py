"""Fault isolation: damage stays scoped to the queries it touches."""

import pytest
from helpers import healthy_latency, solo_join

from repro.faults import FaultEvent, FaultKind, FaultPlan, FaultPlanError
from repro.routing import AdaptiveArmPolicy
from repro.serve import QueryRequest, QueryScheduler


class TestCrashIsolation:
    def test_crash_recovers_victim_and_spares_bystander(self, dgx1):
        """gpu1 dies mid-shuffle: the (0,1) query must recover to its
        solo digest while the disjoint (4,5) query never notices."""
        victim = QueryRequest(name="victim", gpu_ids=(0, 1), tuples=4096)
        budget = healthy_latency(dgx1, victim)
        plan = FaultPlan(
            name="isolated-crash",
            seed=1,
            events=(
                FaultEvent(kind=FaultKind.GPU_CRASH, at=budget * 0.3, gpu=1),
            ),
        )
        bystander = QueryRequest(
            name="bystander", gpu_ids=(4, 5), tuples=4096, seed=9,
        )
        report = QueryScheduler(
            dgx1,
            [victim, bystander],
            policy_factory=AdaptiveArmPolicy,
            faults=plan,
        ).run()
        recovered = report.outcome("victim")
        assert recovered.status == "completed"
        assert recovered.crashed_gpus == (1,)
        assert recovered.match_digest == solo_join(dgx1, victim).match_digest
        untouched = report.outcome("bystander")
        assert untouched.status == "completed"
        assert untouched.crashed_gpus == ()
        assert untouched.match_digest == solo_join(dgx1, bystander).match_digest
        # The recovered join runs longer than the untouched one.
        assert recovered.latency > untouched.latency
        assert report.exit_code == 0

    def test_late_arrival_is_shed_from_crashed_hardware(self, dgx1):
        """A query arriving after the crash must be rejected, not
        started against dead hardware."""
        early = QueryRequest(name="early", gpu_ids=(0, 1), tuples=2048)
        budget = healthy_latency(dgx1, early)
        plan = FaultPlan(
            name="crash-then-arrival",
            seed=1,
            events=(
                FaultEvent(kind=FaultKind.GPU_CRASH, at=budget * 0.3, gpu=1),
            ),
        )
        late = QueryRequest(
            name="late", gpu_ids=(1, 2), tuples=1024,
            arrival=budget * 0.6,  # after the crash
        )
        report = QueryScheduler(
            dgx1,
            [early, late],
            policy_factory=AdaptiveArmPolicy,
            faults=plan,
        ).run()
        assert report.outcome("early").status == "completed"
        shed = report.outcome("late")
        assert shed.status == "rejected"
        assert shed.rejection.reason == "gpu-unavailable"
        assert report.exit_code == 0


class TestServeContextPlanValidation:
    QUERIES = {"a": (0, 1), "b": (2, 3)}

    def plan(self, *events):
        return FaultPlan(name="probe", seed=0, events=tuple(events))

    def test_gpu_fault_must_hit_a_member_gpu(self, dgx1):
        plan = self.plan(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.0, gpu=7),
        )
        with pytest.raises(FaultPlanError, match="gpu7"):
            plan.validate(dgx1, queries=self.QUERIES)

    def test_link_fault_needs_one_query_spanning_both_ends(self, dgx1):
        """GPUs 1 and 2 are both members, but of *different* queries —
        no single query's traffic crosses that link."""
        plan = self.plan(
            FaultEvent(
                kind=FaultKind.LINK_BLACKOUT, at=0.0, src=1, dst=2,
                duration=1e-3,
            ),
        )
        with pytest.raises(FaultPlanError, match="no admitted query"):
            plan.validate(dgx1, queries=self.QUERIES)

    def test_reachable_plan_validates_and_chains(self, dgx1):
        plan = self.plan(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.0, gpu=2),
            FaultEvent(
                kind=FaultKind.LINK_BLACKOUT, at=0.0, src=0, dst=1,
                duration=1e-3,
            ),
        )
        assert plan.validate(dgx1, queries=self.QUERIES) is plan
