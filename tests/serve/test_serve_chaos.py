"""Chaos under concurrency: the per-query digest-identity gate."""

import pytest

from repro.faults.chaos import ChaosError
from repro.routing import AdaptiveArmPolicy
from repro.serve import run_serve_chaos, synthetic_requests
from repro.sim import ENGINE_MODES, engine_factory_for

#: Twelve four-GPU tenants — the ISSUE's headline concurrency bar.
REQUESTS = synthetic_requests(12, gpus=4, tuples=1024)


@pytest.fixture(scope="module")
def gpu_crash_report(dgx1):
    """One graded gpu-crash run shared by the inspection tests."""
    return run_serve_chaos(
        dgx1,
        REQUESTS,
        "gpu-crash",
        policy_factory=AdaptiveArmPolicy,
        min_in_flight=12,
    )


class TestConcurrencyIdentityGate:
    def test_gpu_crash_with_twelve_in_flight(self, gpu_crash_report):
        report = gpu_crash_report
        assert report.correct
        assert report.concurrent_enough
        assert report.serve.in_flight_peak >= 12
        assert report.serve.completed == 12
        assert report.mismatches == []
        # The crash actually hit someone: at least one query recovered.
        assert report.recovered_queries
        for name in report.recovered_queries:
            outcome = report.serve.outcome(name)
            assert outcome.crashed_gpus
            assert outcome.match_digest == report.solo[name].match_digest

    @pytest.mark.parametrize(
        "mode", [m for m in ENGINE_MODES if m != "reference"]
    )
    def test_gate_holds_on_every_engine(self, dgx1, mode):
        report = run_serve_chaos(
            dgx1,
            REQUESTS,
            "gpu-crash",
            policy_factory=AdaptiveArmPolicy,
            min_in_flight=12,
            engine_factory=engine_factory_for(mode),
        )
        assert report.correct
        assert report.recovered_queries


class TestReportShape:
    def test_to_dict_carries_per_query_verdicts(self, gpu_crash_report):
        payload = gpu_crash_report.to_dict()
        assert payload["correct"] is True
        assert payload["min_in_flight"] == 12
        assert payload["in_flight_peak"] >= 12
        assert set(payload["queries"]) == {r.name for r in REQUESTS}
        for verdict in payload["queries"].values():
            assert verdict["status"] == "completed"
            assert verdict["digest"] == verdict["solo_digest"]
        assert payload["serve"]["exit_code"] == 0

    def test_summary_names_the_gate(self, gpu_crash_report):
        text = "\n".join(gpu_crash_report.summary_lines())
        assert "digest identity : OK" in text
        assert "recovered" in text


class TestGuards:
    def test_too_few_requests_for_the_gate(self, dgx1):
        with pytest.raises(ValueError, match="at least 12"):
            run_serve_chaos(
                dgx1,
                synthetic_requests(3, gpus=2, tuples=1024),
                "gpu-crash",
                policy_factory=AdaptiveArmPolicy,
                min_in_flight=12,
            )

    def test_corruption_scenarios_rejected(self, dgx1):
        """Serving has no per-query verified transport yet; corruption
        plans must be refused up front, not silently mis-graded."""
        with pytest.raises(ValueError, match="not .*supported by the serving"):
            run_serve_chaos(
                dgx1,
                synthetic_requests(2, gpus=2, tuples=1024),
                "payload-corrupt",
                policy_factory=AdaptiveArmPolicy,
                min_in_flight=2,
            )

    def test_single_gpu_workloads_cannot_be_graded(self, dgx1):
        with pytest.raises(ChaosError, match="shuffle"):
            run_serve_chaos(
                dgx1,
                synthetic_requests(2, gpus=1, tuples=1024),
                "gpu-crash",
                policy_factory=AdaptiveArmPolicy,
                min_in_flight=2,
            )
