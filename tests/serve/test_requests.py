"""Request structures: validation, files, the synthetic stream."""

import json

import pytest

from repro.serve import (
    REJECT_REASONS,
    TERMINAL_STATUSES,
    QueryOutcome,
    QueryRejected,
    QueryRequest,
    load_requests,
    synthetic_requests,
)


class TestQueryRequest:
    def test_roundtrip_through_dict(self):
        request = QueryRequest(
            name="tenant-a", arrival=0.5, gpu_ids=(3, 1), tuples=4096,
            logical_tuples=8192, priority=2, deadline=1.5, seed=7,
        )
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_gpu_ids_are_sorted(self):
        request = QueryRequest(name="q", gpu_ids=(5, 2, 0))
        assert request.gpu_ids == (0, 2, 5)
        assert request.num_gpus == 3

    def test_gpus_used_when_no_explicit_placement(self):
        assert QueryRequest(name="q", gpus=4).num_gpus == 4

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(name="q", arrival=-1.0),
        dict(name="q", gpu_ids=(0, 0)),
        dict(name="q", gpu_ids=()),
        dict(name="q", gpus=0),
        dict(name="q", tuples=0),
        dict(name="q", tuples=100, logical_tuples=150),  # not a multiple
        dict(name="q", deadline=0.0),
    ])
    def test_invalid_requests_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QueryRequest(**kwargs)

    def test_rejection_reason_vocabulary_is_closed(self):
        with pytest.raises(ValueError, match="unknown rejection reason"):
            QueryRejected(name="q", reason="cosmic-ray", at=0.0,
                          in_flight=0, queued=0)
        for reason in REJECT_REASONS:
            QueryRejected(name="q", reason=reason, at=0.0,
                          in_flight=0, queued=0)

    def test_outcome_status_vocabulary_is_closed(self):
        with pytest.raises(ValueError, match="unknown outcome status"):
            QueryOutcome(name="q", status="vanished")
        for status in TERMINAL_STATUSES:
            outcome = QueryOutcome(name="q", status=status)
            # Rejections are graceful shed-load, not serving failures.
            assert outcome.ok == (status in ("completed", "rejected"))


class TestLoadRequests:
    def test_accepts_bare_list_and_wrapped_object(self, tmp_path):
        entries = [{"name": "a"}, {"name": "b", "gpus": 4}]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(entries))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"requests": entries}))
        assert load_requests(bare) == load_requests(wrapped)
        assert [r.name for r in load_requests(bare)] == ["a", "b"]

    def test_malformed_entry_names_its_index(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"name": "ok"}, {"gpus": 2}]))
        with pytest.raises(ValueError, match="request #1"):
            load_requests(path)

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "dup.json"
        path.write_text(json.dumps([{"name": "q"}, {"name": "q"}]))
        with pytest.raises(ValueError, match="duplicate query name"):
            load_requests(path)

    def test_non_list_payload_rejected(self, tmp_path):
        path = tmp_path / "scalar.json"
        path.write_text("42")
        with pytest.raises(ValueError, match="expected a JSON list"):
            load_requests(path)


class TestSyntheticRequests:
    def test_deterministic_and_distinct_seeds(self):
        first = synthetic_requests(4, seed=10)
        second = synthetic_requests(4, seed=10)
        assert first == second
        assert [r.name for r in first] == ["q000", "q001", "q002", "q003"]
        # Each tenant carries distinct data.
        assert len({r.seed for r in first}) == 4

    def test_arrival_spacing_and_priority_period(self):
        requests = synthetic_requests(
            4, arrival_spacing=0.25, priority_period=2, deadline=3.0,
        )
        assert [r.arrival for r in requests] == [0.0, 0.25, 0.5, 0.75]
        assert [r.priority for r in requests] == [1, 0, 1, 0]
        assert all(r.deadline == 3.0 for r in requests)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            synthetic_requests(0)
