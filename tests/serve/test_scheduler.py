"""QueryScheduler: admission control, determinism, deadlines, budgets.

The scheduler's contract is graded against solo joins: serving must
never change what a query computes, only when it runs — and every way
a query can fail must end in a structured outcome, never a hang.
"""

import pytest
from helpers import healthy_latency, solo_join

from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.routing import AdaptiveArmPolicy, DirectPolicy
from repro.serve import QueryRequest, QueryScheduler, synthetic_requests
from repro.sim import ENGINE_MODES, engine_factory_for


class TestServingIdentity:
    @pytest.mark.parametrize("arbitration", [None, "fair", "priority"])
    def test_single_query_serve_equals_solo_join(self, dgx1, arbitration):
        """One tenant alone must see exactly the standalone join."""
        request = QueryRequest(name="only", gpus=4, tuples=2048)
        report = QueryScheduler(
            dgx1,
            [request],
            policy_factory=AdaptiveArmPolicy,
            arbitration=arbitration,
        ).run()
        outcome = report.outcome("only")
        reference = solo_join(dgx1, request)
        assert outcome.status == "completed"
        assert outcome.match_digest == reference.match_digest
        assert outcome.matches == reference.matches_real
        # Not approximately: an uncontended fabric is timing-identical
        # to the standalone simulator, arbitrated or not.
        assert outcome.join_time == reference.total_time
        assert report.exit_code == 0

    def test_concurrent_queries_keep_solo_digests(self, dgx1):
        requests = synthetic_requests(5, gpus=4, tuples=1024)
        report = QueryScheduler(
            dgx1,
            requests,
            policy_factory=AdaptiveArmPolicy,
            max_in_flight=2,
        ).run()
        assert report.completed == 5
        assert report.in_flight_peak == 2
        assert report.queue_peak >= 1
        for request in requests:
            outcome = report.outcome(request.name)
            assert outcome.match_digest == solo_join(dgx1, request).match_digest
        # Someone had to wait behind the two admission slots.
        assert max(o.queue_wait for o in report.outcomes) > 0.0

    def test_same_instant_admission_identical_across_engines(self, dgx1):
        """Six queries arriving at t=0 tell one story on every kernel."""
        requests = synthetic_requests(6, gpus=4, tuples=1024)
        stories = {}
        for mode in ENGINE_MODES:
            report = QueryScheduler(
                dgx1,
                requests,
                policy_factory=AdaptiveArmPolicy,
                max_in_flight=len(requests),
                engine_factory=engine_factory_for(mode),
            ).run()
            stories[mode] = [
                (o.name, o.status, o.match_digest, o.matches)
                for o in report.outcomes
            ]
        assert stories["fast"] == stories["reference"]
        assert stories["batch"] == stories["reference"]


class TestAdmissionControl:
    def test_zero_capacity_sheds_everything_without_hanging(self, dgx1):
        requests = synthetic_requests(4, gpus=2, tuples=1024)
        report = QueryScheduler(
            dgx1, requests, policy_factory=AdaptiveArmPolicy, max_in_flight=0,
        ).run()
        assert report.rejected == 4
        assert all(
            o.rejection is not None and o.rejection.reason == "no-capacity"
            for o in report.outcomes
        )
        # Shed load is graceful: nothing was admitted, nothing was lost.
        assert report.exit_code == 0

    def test_queue_full_sheds_the_overflow_only(self, dgx1):
        requests = synthetic_requests(3, gpus=2, tuples=1024)
        report = QueryScheduler(
            dgx1,
            requests,
            policy_factory=AdaptiveArmPolicy,
            max_in_flight=1,
            queue_depth=1,
        ).run()
        assert report.completed == 2
        assert report.rejected == 1
        shed = [o for o in report.outcomes if o.status == "rejected"]
        assert shed[0].rejection.reason == "queue-full"
        # Arrival order decides who overflowed: the last same-instant
        # arrival is the one shed, deterministically.
        assert shed[0].name == "q002"
        assert report.queue_peak == 1

    def test_crash_at_admission_instant_sheds_gpu_unavailable(self, dgx1):
        """A fault at t=0 lands before the t=0 arrivals: admission must
        see the dead GPU, not start a query on it."""
        plan = FaultPlan(
            name="crash-at-admission",
            seed=1,
            events=(FaultEvent(kind=FaultKind.GPU_CRASH, at=0.0, gpu=0),),
        )
        doomed = QueryRequest(name="doomed", gpu_ids=(0, 1), tuples=1024)
        healthy = QueryRequest(name="healthy", gpu_ids=(4, 5), tuples=1024, seed=9)
        report = QueryScheduler(
            dgx1,
            [doomed, healthy],
            policy_factory=AdaptiveArmPolicy,
            faults=plan,
        ).run()
        shed = report.outcome("doomed")
        assert shed.status == "rejected"
        assert shed.rejection.reason == "gpu-unavailable"
        survivor = report.outcome("healthy")
        assert survivor.status == "completed"
        assert survivor.match_digest == solo_join(dgx1, healthy).match_digest
        assert report.exit_code == 0


class TestDeadlines:
    def test_deadline_expired_while_queued_never_starts(self, dgx1):
        head = QueryRequest(name="head", gpus=4, tuples=4096)
        budget = healthy_latency(dgx1, head)
        stale = QueryRequest(
            name="stale", gpus=2, tuples=1024, deadline=budget * 0.1,
        )
        report = QueryScheduler(
            dgx1,
            [head, stale],
            policy_factory=AdaptiveArmPolicy,
            max_in_flight=1,
            queue_depth=4,
        ).run()
        expired = report.outcome("stale")
        assert expired.status == "deadline-expired"
        assert expired.admitted_at is None  # never ran
        assert "queued" in expired.detail
        assert report.outcome("head").status == "completed"
        assert report.exit_code == 1

    def test_deadline_expiry_during_crash_reshuffle(self, dgx1):
        """A crash mid-shuffle starts recovery; the deadline fires while
        the re-shuffle is still in flight.  The victim must cancel
        cleanly and its sibling must not notice either event."""
        victim = QueryRequest(name="victim", gpu_ids=(0, 1), tuples=4096)
        budget = healthy_latency(dgx1, victim)
        plan = FaultPlan(
            name="mid-shuffle-crash",
            seed=1,
            events=(
                FaultEvent(
                    kind=FaultKind.GPU_CRASH, at=budget * 0.4, gpu=1,
                ),
            ),
        )
        victim = QueryRequest(
            name="victim", gpu_ids=(0, 1), tuples=4096,
            deadline=budget * 0.7,
        )
        sibling = QueryRequest(
            name="sibling", gpu_ids=(4, 5), tuples=4096, seed=9,
        )
        report = QueryScheduler(
            dgx1,
            [victim, sibling],
            policy_factory=AdaptiveArmPolicy,
            faults=plan,
        ).run()
        lost = report.outcome("victim")
        assert lost.status == "deadline-expired"
        assert lost.crashed_gpus == (1,)  # the crash landed first
        untouched = report.outcome("sibling")
        assert untouched.status == "completed"
        assert untouched.crashed_gpus == ()
        assert untouched.match_digest == solo_join(dgx1, sibling).match_digest
        assert report.exit_code == 1


class TestRetryBudgets:
    """The validated blackout scenario: a direct-routing query loses
    packets to a link blackout and must retry its way through."""

    PLAN = FaultPlan(
        name="blackout-01",
        seed=42,
        events=(
            FaultEvent(
                kind=FaultKind.LINK_BLACKOUT, at=0.0, src=0, dst=1,
                duration=5e-3,
            ),
        ),
    )
    VICTIM = QueryRequest(name="victim", gpu_ids=(0, 1), tuples=4096, seed=7)
    BYSTANDER = QueryRequest(
        name="bystander", gpu_ids=(4, 5), tuples=4096, seed=8,
    )

    def run(self, machine, retry_budget):
        return QueryScheduler(
            machine,
            [self.VICTIM, self.BYSTANDER],
            policy_factory=DirectPolicy,
            faults=self.PLAN,
            retry_budget=retry_budget,
        ).run()

    def test_unlimited_budget_retries_through_the_blackout(self, dgx1):
        report = self.run(dgx1, retry_budget=None)
        victim = report.outcome("victim")
        assert victim.status == "completed"
        assert victim.retries > 0
        assert victim.match_digest == solo_join(
            dgx1, self.VICTIM, DirectPolicy
        ).match_digest
        assert report.exit_code == 0

    def test_exhausted_budget_fails_the_victim_alone(self, dgx1):
        report = self.run(dgx1, retry_budget=0)
        victim = report.outcome("victim")
        assert victim.status == "retry-budget-exhausted"
        assert "retry budget" in victim.detail
        bystander = report.outcome("bystander")
        assert bystander.status == "completed"
        assert bystander.match_digest == solo_join(
            dgx1, self.BYSTANDER, DirectPolicy
        ).match_digest
        assert report.exit_code == 1


class TestSchedulerValidation:
    def test_duplicate_names_rejected(self, dgx1):
        requests = [QueryRequest(name="q"), QueryRequest(name="q")]
        with pytest.raises(ValueError, match="unique"):
            QueryScheduler(dgx1, requests, policy_factory=AdaptiveArmPolicy)

    def test_unknown_gpu_rejected(self, dgx1):
        request = QueryRequest(name="q", gpu_ids=(0, 99))
        with pytest.raises(ValueError, match="unknown GPUs"):
            QueryScheduler(
                dgx1, [request], policy_factory=AdaptiveArmPolicy
            ).run()

    def test_negative_limits_rejected(self, dgx1):
        requests = [QueryRequest(name="q")]
        with pytest.raises(ValueError):
            QueryScheduler(
                dgx1, requests, policy_factory=AdaptiveArmPolicy,
                max_in_flight=-1,
            )
        with pytest.raises(ValueError):
            QueryScheduler(
                dgx1, requests, policy_factory=AdaptiveArmPolicy,
                queue_depth=-1,
            )
