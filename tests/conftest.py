"""Shared fixtures: machines and small, fast workloads."""

from __future__ import annotations

import pytest

from helpers import make_workload
from repro.topology import TopologyBuilder, dgx1_topology, dgx_station_topology


@pytest.fixture(scope="session")
def dgx1():
    return dgx1_topology()


@pytest.fixture(scope="session")
def station():
    return dgx_station_topology()


@pytest.fixture(scope="session")
def tiny_machine():
    """Two GPUs behind one switch, a single NVLink pair."""
    builder = TopologyBuilder("tiny")
    builder.add_gpus(2)
    builder.add_switch(0, socket=0)
    builder.attach_gpu_to_switch(0, 0)
    builder.attach_gpu_to_switch(1, 0)
    builder.add_nvlink(0, 1)
    return builder.build()


@pytest.fixture
def small_workload():
    return make_workload()
