"""Finite-Zipf helpers."""

import numpy as np
import pytest

from repro.workloads.zipf import (
    zipf_partition_counts,
    zipf_sample,
    zipf_weights,
)


class TestWeights:
    def test_zero_factor_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_weights_normalize(self):
        for z in (0.0, 0.5, 1.0, 2.0):
            assert zipf_weights(37, z).sum() == pytest.approx(1.0)

    def test_weights_decrease_with_rank(self):
        weights = zipf_weights(10, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_higher_z_more_skew(self):
        mild = zipf_weights(10, 0.5)
        strong = zipf_weights(10, 1.5)
        assert strong[0] > mild[0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -0.5)


class TestSample:
    def test_values_in_range(self):
        rng = np.random.default_rng(0)
        sample = zipf_sample(16, 1000, 1.0, rng)
        assert sample.min() >= 0 and sample.max() < 16

    def test_rank_zero_most_frequent(self):
        rng = np.random.default_rng(1)
        sample = zipf_sample(8, 20_000, 1.0, rng)
        counts = np.bincount(sample, minlength=8)
        assert counts[0] == counts.max()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            zipf_sample(8, -1, 1.0, np.random.default_rng(0))


class TestPartitionCounts:
    def test_counts_sum_to_total(self):
        for z in (0.0, 0.5, 1.0):
            counts = zipf_partition_counts(8, 12345, z)
            assert counts.sum() == 12345

    def test_uniform_split_even(self):
        counts = zipf_partition_counts(4, 1000, 0.0)
        assert counts.tolist() == [250, 250, 250, 250]

    def test_skewed_split_decreasing(self):
        counts = zipf_partition_counts(4, 10_000, 1.0)
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert counts[0] > 2 * counts[-1]

    def test_deterministic(self):
        assert np.array_equal(
            zipf_partition_counts(8, 999, 0.7),
            zipf_partition_counts(8, 999, 0.7),
        )
