"""The synthetic workload generator (paper §5.1)."""

import numpy as np
import pytest

from repro.workloads import WorkloadSpec, generate_workload

from helpers import make_workload


class TestSpecValidation:
    def test_scale_must_divide(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                gpu_ids=(0,), logical_tuples_per_gpu=1000,
                real_tuples_per_gpu=512,
            )

    def test_duplicate_gpus_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(gpu_ids=(0, 0))

    def test_empty_gpus_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(gpu_ids=())

    def test_logical_scale(self):
        spec = WorkloadSpec(
            gpu_ids=(0, 1),
            logical_tuples_per_gpu=512 * 1024 * 1024,
            real_tuples_per_gpu=1 << 16,
        )
        assert spec.logical_scale == 8192


class TestGeneration:
    def test_equal_relation_sizes(self):
        workload = make_workload(num_gpus=4, real=2048)
        assert workload.r.num_tuples == workload.s.num_tuples

    def test_keys_are_a_permutation(self):
        """Sequential-then-shuffled keys: 100% join selectivity."""
        workload = make_workload(num_gpus=2, real=1024)
        keys = np.sort(workload.r.all_keys())
        assert np.array_equal(keys, np.arange(2048, dtype=np.uint32))

    def test_r_and_s_differ(self):
        workload = make_workload(num_gpus=2, real=1024)
        assert not np.array_equal(
            workload.r.shard(0).keys, workload.s.shard(0).keys
        )

    def test_deterministic_per_seed(self):
        a = make_workload(num_gpus=2, real=512, seed=7)
        b = make_workload(num_gpus=2, real=512, seed=7)
        assert np.array_equal(a.r.shard(0).keys, b.r.shard(0).keys)

    def test_seeds_differ(self):
        a = make_workload(num_gpus=2, real=512, seed=1)
        b = make_workload(num_gpus=2, real=512, seed=2)
        assert not np.array_equal(a.r.shard(0).keys, b.r.shard(0).keys)

    def test_uniform_placement_even(self):
        workload = make_workload(num_gpus=4, real=1000)
        sizes = {g: workload.r.tuples_on(g) for g in range(4)}
        assert set(sizes.values()) == {1000}

    def test_zipf_placement_skews_sizes(self):
        workload = make_workload(num_gpus=4, real=1000, placement_zipf=1.0)
        sizes = [workload.r.tuples_on(g) for g in range(4)]
        assert sizes[0] > sizes[3]
        assert sum(sizes) == 4000  # total conserved

    def test_key_zipf_creates_duplicates(self):
        workload = make_workload(num_gpus=2, real=2048, key_zipf=1.0)
        keys = workload.r.all_keys()
        assert len(np.unique(keys)) < len(keys)

    def test_workload_logical_accessors(self):
        workload = make_workload(num_gpus=2, real=1024, logical=4096)
        assert workload.logical_scale == 4
        assert workload.logical_tuples == 2 * 2 * 1024 * 4
        assert workload.logical_tuples_on(0) == 2 * 1024 * 4
