"""OmniSci baseline models: replication, OOM (the NA pattern), CPU."""

import pytest

from repro.relational import OmnisciCpuEngine, OmnisciGpuEngine, QueryOutOfMemory
from repro.relational.tpch import generate_tpch, run_query


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale_factor=0.01, seed=2)


@pytest.fixture(scope="module")
def dgx1_module():
    from repro.topology import dgx1_topology

    return dgx1_topology()


SCALE_250 = 250 / 0.01


def test_paper_na_pattern_at_sf250(dgx1_module, db):
    """§5.4: OmniSci GPU runs only Q14 and Q19 at SF 250."""
    engine = OmnisciGpuEngine(dgx1_module, logical_scale=SCALE_250)
    outcomes = {q: run_query(q, engine, db) for q in
                ("q3", "q5", "q10", "q12", "q14", "q19")}
    assert all(outcomes[q].is_na for q in ("q3", "q5", "q10", "q12"))
    assert not outcomes["q14"].is_na
    assert not outcomes["q19"].is_na


def test_oom_reason_names_the_dimension(dgx1_module, db):
    engine = OmnisciGpuEngine(dgx1_module, logical_scale=SCALE_250)
    outcome = run_query("q3", engine, db)
    assert outcome.is_na
    assert "orders" in outcome.na_reason


def test_everything_runs_at_small_scale(dgx1_module, db):
    engine = OmnisciGpuEngine(dgx1_module, logical_scale=100.0)
    for query in ("q3", "q5", "q10", "q12", "q14", "q19"):
        assert not run_query(query, engine, db).is_na


def test_broadcast_charged_once_per_dimension(dgx1_module, db):
    engine = OmnisciGpuEngine(dgx1_module, logical_scale=100.0)
    outcome = run_query("q5", engine, db)
    broadcasts = [
        op.detail
        for op in outcome.report.operators
        if op.operator == "join-broadcast"
    ]
    # Each dimension base table broadcast at most once.
    assert len(broadcasts) == len(set(broadcasts))


def test_gpu_answers_match_cpu(dgx1_module, db):
    gpu = OmnisciGpuEngine(dgx1_module, logical_scale=10.0)
    cpu = OmnisciCpuEngine(dgx1_module, logical_scale=10.0)
    gpu_result = run_query("q14", gpu, db)
    cpu_result = run_query("q14", cpu, db)
    assert gpu_result.table["promo_revenue"][0] == pytest.approx(
        cpu_result.table["promo_revenue"][0]
    )


def test_cpu_much_slower_than_gpu_engines(dgx1_module, db):
    from repro.relational import MGJoinQueryEngine

    cpu = OmnisciCpuEngine(dgx1_module, logical_scale=SCALE_250)
    mgj = MGJoinQueryEngine(dgx1_module, logical_scale=SCALE_250)
    cpu_time = run_query("q19", cpu, db).seconds
    mgj_time = run_query("q19", mgj, db).seconds
    assert cpu_time > 5 * mgj_time


def test_mgjoin_beats_omnisci_gpu_where_it_runs(dgx1_module, db):
    from repro.relational import MGJoinQueryEngine

    omnisci = OmnisciGpuEngine(dgx1_module, logical_scale=SCALE_250)
    mgj = MGJoinQueryEngine(dgx1_module, logical_scale=SCALE_250)
    for query in ("q14", "q19"):
        omnisci_time = run_query(query, omnisci, db).seconds
        mgj_time = run_query(query, mgj, db).seconds
        assert 2.0 <= omnisci_time / mgj_time <= 8.0
