"""Relational operators: joins, aggregation, sorting — exactness."""

import numpy as np
import pytest

from repro.relational.operators import (
    Aggregate,
    filter_rows,
    group_aggregate,
    hash_join,
    sort_rows,
)
from repro.relational.table import Table


def make(name, **columns):
    return Table(name=name, columns={
        k: np.asarray(v) for k, v in columns.items()
    })


class TestFilter:
    def test_mask_filter(self):
        t = make("t", a=[1, 2, 3, 4])
        out = filter_rows(t, lambda x: x["a"] % 2 == 0)
        assert out["a"].tolist() == [2, 4]

    def test_bad_predicate_rejected(self):
        t = make("t", a=[1, 2])
        with pytest.raises(ValueError):
            filter_rows(t, lambda x: np.array([1, 0]))


class TestHashJoin:
    def test_inner_join_basic(self):
        left = make("l", k=[1, 2, 3], lv=[10, 20, 30])
        right = make("r", k=[2, 3, 4], rv=[200, 300, 400])
        out = hash_join(left, right, "k", "k")
        rows = sorted(zip(out["lv"].tolist(), out["rv"].tolist()))
        assert rows == [(20, 200), (30, 300)]

    def test_duplicate_keys_cross_product(self):
        left = make("l", k=[7, 7], lv=[1, 2])
        right = make("r", k=[7, 7, 7], rv=[5, 6, 8])
        out = hash_join(left, right, "k", "k")
        assert out.num_rows == 6

    def test_different_key_names(self):
        left = make("l", a=[1, 2])
        right = make("r", b=[2, 3])
        out = hash_join(left, right, "a", "b")
        assert out.num_rows == 1
        assert out["a"].tolist() == [2] and out["b"].tolist() == [2]

    def test_column_collision_gets_suffix(self):
        left = make("l", k=[1], v=[10])
        right = make("r", k=[1], v=[99])
        out = hash_join(left, right, "k", "k")
        assert out["v"].tolist() == [10]
        assert out["v_r"].tolist() == [99]

    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(5)
        left = make("l", k=rng.integers(0, 100, 500))
        right = make("r", k=rng.integers(0, 100, 500))
        out = hash_join(left, right, "k", "k")
        expected = sum(
            int(np.sum(right["k"] == key)) for key in left["k"]
        )
        assert out.num_rows == expected

    def test_int64_keys_in_uint32_range(self):
        left = make("l", k=np.array([1, 2], dtype=np.int64))
        right = make("r", k=np.array([2], dtype=np.int64))
        assert hash_join(left, right, "k", "k").num_rows == 1

    def test_out_of_range_keys_rejected(self):
        left = make("l", k=np.array([-1], dtype=np.int64))
        right = make("r", k=np.array([1], dtype=np.int64))
        with pytest.raises(ValueError):
            hash_join(left, right, "k", "k")


class TestGroupAggregate:
    def test_sum_per_group(self):
        t = make("t", g=[1, 1, 2], x=[1.0, 2.0, 5.0])
        out = group_aggregate(t, ("g",), (Aggregate("s", "sum", column="x"),))
        assert dict(zip(out["g"].tolist(), out["s"].tolist())) == {
            1: 3.0, 2: 5.0,
        }

    def test_count(self):
        t = make("t", g=[1, 1, 2])
        out = group_aggregate(t, ("g",), (Aggregate("n", "count"),))
        assert dict(zip(out["g"].tolist(), out["n"].tolist())) == {1: 2, 2: 1}

    def test_mean(self):
        t = make("t", g=[1, 1], x=[2.0, 4.0])
        out = group_aggregate(t, ("g",), (Aggregate("m", "mean", column="x"),))
        assert out["m"].tolist() == [3.0]

    def test_expression_aggregate(self):
        t = make("t", g=[1, 1], p=[10.0, 20.0], d=[0.1, 0.5])
        agg = Aggregate("rev", "sum", expression=lambda x: x["p"] * (1 - x["d"]))
        out = group_aggregate(t, ("g",), (agg,))
        assert out["rev"].tolist() == [pytest.approx(9.0 + 10.0)]

    def test_multi_key_grouping(self):
        t = make("t", a=[1, 1, 2], b=[1, 2, 1], x=[1.0, 2.0, 3.0])
        out = group_aggregate(
            t, ("a", "b"), (Aggregate("s", "sum", column="x"),)
        )
        assert out.num_rows == 3

    def test_global_aggregate_no_keys(self):
        t = make("t", x=[1.0, 2.0, 3.0])
        out = group_aggregate(t, (), (Aggregate("s", "sum", column="x"),))
        assert out.num_rows == 1
        assert out["s"].tolist() == [6.0]

    def test_empty_input(self):
        t = make("t", g=np.array([], dtype=np.int64), x=np.array([]))
        out = group_aggregate(t, ("g",), (Aggregate("s", "sum", column="x"),))
        assert out.num_rows == 0

    def test_unknown_kind_rejected(self):
        t = make("t", g=[1], x=[1.0])
        with pytest.raises(ValueError):
            group_aggregate(t, ("g",), (Aggregate("s", "median", column="x"),))


class TestSort:
    def test_ascending(self):
        t = make("t", a=[3, 1, 2])
        assert sort_rows(t, ("a",))["a"].tolist() == [1, 2, 3]

    def test_descending_float(self):
        t = make("t", a=[1.5, -2.0, 7.0])
        assert sort_rows(t, ("a",), (False,))["a"].tolist() == [7.0, 1.5, -2.0]

    def test_multi_key_mixed_direction(self):
        t = make("t", a=[1, 1, 2], b=[5.0, 9.0, 1.0])
        out = sort_rows(t, ("a", "b"), (True, False))
        assert list(zip(out["a"].tolist(), out["b"].tolist())) == [
            (1, 9.0), (1, 5.0), (2, 1.0),
        ]

    def test_mismatched_flags_rejected(self):
        t = make("t", a=[1])
        with pytest.raises(ValueError):
            sort_rows(t, ("a",), (True, False))
