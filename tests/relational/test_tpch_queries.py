"""The six TPC-H query plans: engine-independent exact answers."""

import numpy as np
import pytest

from repro.relational import (
    DPRJQueryEngine,
    MGJoinQueryEngine,
    OmnisciCpuEngine,
    OmnisciGpuEngine,
)
from repro.relational.operators import hash_join
from repro.relational.tpch import QUERIES, generate_tpch, run_query
from repro.relational.tpch.dates import date_to_days


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale_factor=0.01, seed=2)


@pytest.fixture(scope="module")
def engine(dgx1_module):
    return MGJoinQueryEngine(dgx1_module, logical_scale=1.0)


@pytest.fixture(scope="module")
def dgx1_module():
    from repro.topology import dgx1_topology

    return dgx1_topology()


def test_all_queries_run(engine, db):
    for name in QUERIES:
        outcome = run_query(name, engine, db)
        assert not outcome.is_na
        assert outcome.table is not None
        assert outcome.seconds > 0


def test_q3_matches_reference(engine, db):
    """Cross-check Q3's top-1 revenue against a direct numpy evaluation."""
    outcome = run_query("q3", engine, db)
    segment = db.customer.encode("c_mktsegment", "BUILDING")
    cutoff = date_to_days(1995, 3, 15)
    cust = db.customer.take(db.customer["c_mktsegment"] == segment)
    orders = db.orders.take(db.orders["o_orderdate"] < cutoff)
    li = db.lineitem.take(db.lineitem["l_shipdate"] > cutoff)
    joined = hash_join(
        hash_join(cust, orders, "c_custkey", "o_custkey"),
        li, "o_orderkey", "l_orderkey",
    )
    revenue = joined["l_extendedprice"] * (1 - joined["l_discount"])
    best = 0.0
    for key in np.unique(joined["l_orderkey"]):
        best = max(best, revenue[joined["l_orderkey"] == key].sum())
    table = outcome.table
    assert table.num_rows <= 10
    assert table["revenue"][0] == pytest.approx(best)
    # Sorted descending by revenue.
    assert all(
        a >= b for a, b in zip(table["revenue"], table["revenue"][1:])
    )


def test_q5_revenue_positive_and_grouped_by_nation(engine, db):
    outcome = run_query("q5", engine, db)
    table = outcome.table
    assert table.num_rows <= 25
    assert np.all(table["revenue"] > 0)
    names = table.decode("n_name", table["n_name"])
    assert len(set(names)) == table.num_rows


def test_q10_limit_and_order(engine, db):
    outcome = run_query("q10", engine, db)
    table = outcome.table
    assert table.num_rows == 20
    revenues = table["revenue"].tolist()
    assert revenues == sorted(revenues, reverse=True)


def test_q12_counts_add_up(engine, db):
    outcome = run_query("q12", engine, db)
    table = outcome.table
    modes = table.decode("l_shipmode", table["l_shipmode"])
    assert sorted(modes) == ["MAIL", "SHIP"]
    # high + low = all qualifying lineitems; verify against direct count.
    start, end = date_to_days(1994, 1, 1), date_to_days(1995, 1, 1)
    li = db.lineitem
    mail = db.lineitem.encode("l_shipmode", "MAIL")
    ship = db.lineitem.encode("l_shipmode", "SHIP")
    mask = (
        ((li["l_shipmode"] == mail) | (li["l_shipmode"] == ship))
        & (li["l_commitdate"] < li["l_receiptdate"])
        & (li["l_shipdate"] < li["l_commitdate"])
        & (li["l_receiptdate"] >= start)
        & (li["l_receiptdate"] < end)
    )
    total = table["high_line_count"].sum() + table["low_line_count"].sum()
    assert total == int(mask.sum())


def test_q14_promo_share_in_range(engine, db):
    outcome = run_query("q14", engine, db)
    share = outcome.table["promo_revenue"][0]
    # PROMO is 1 of 6 type prefixes: expect roughly 16% +- noise.
    assert 5.0 < share < 30.0


def test_q19_matches_reference(engine, db):
    outcome = run_query("q19", engine, db)
    value = outcome.table["revenue"][0]
    assert value >= 0.0
    # Recompute directly.
    li, part = db.lineitem, db.part
    joined = hash_join(li, part, "l_partkey", "p_partkey")
    air = db.lineitem.encode("l_shipmode", "AIR")
    reg = db.lineitem.encode("l_shipmode", "REG AIR")
    person = db.lineitem.encode("l_shipinstruct", "DELIVER IN PERSON")
    base = (
        ((joined["l_shipmode"] == air) | (joined["l_shipmode"] == reg))
        & (joined["l_shipinstruct"] == person)
    )
    total = 0.0
    from repro.relational.tpch.queries import _Q19_BRANCHES, _dict_mask

    disjunction = np.zeros(joined.num_rows, dtype=bool)
    for brand, containers, lo, hi, size in _Q19_BRANCHES:
        code = joined.encode("p_brand", brand)
        cmask = _dict_mask(joined, "p_container", lambda v, c=containers: v in c)
        disjunction |= (
            (joined["p_brand"] == code)
            & cmask
            & (joined["l_quantity"] >= lo)
            & (joined["l_quantity"] <= hi)
            & (joined["p_size"] <= size)
            & (joined["p_size"] >= 1)
        )
    mask = base & disjunction
    revenue = joined["l_extendedprice"] * (1 - joined["l_discount"])
    total = revenue[mask].sum()
    assert value == pytest.approx(total)


def test_engines_agree_on_answers(dgx1_module, db):
    """All engines share operators, so answers must be identical."""
    reference = None
    for engine in (
        MGJoinQueryEngine(dgx1_module),
        DPRJQueryEngine(dgx1_module),
        OmnisciCpuEngine(dgx1_module),
    ):
        outcome = run_query("q14", engine, db)
        value = outcome.table["promo_revenue"][0]
        if reference is None:
            reference = value
        assert value == pytest.approx(reference)


def test_unknown_query_rejected(engine, db):
    with pytest.raises(KeyError):
        run_query("q99", engine, db)
