"""The TPC-H generator: cardinalities, distributions, referential integrity."""

import numpy as np
import pytest

from repro.relational.tpch import generate_tpch
from repro.relational.tpch.dates import MAX_ORDER_DAYS, date_to_days, days_to_date


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale_factor=0.01, seed=1)


def test_dbgen_cardinalities(db):
    assert db.customer.num_rows == 1500
    assert db.orders.num_rows == 15_000
    assert db.part.num_rows == 2000
    assert db.supplier.num_rows == 100
    assert db.partsupp.num_rows == 8000
    assert db.nation.num_rows == 25
    assert db.region.num_rows == 5
    # lineitem: 1-7 per order, mean ~4.
    assert 3.5 * 15_000 <= db.lineitem.num_rows <= 4.5 * 15_000


def test_scale_factor_scales_rows():
    small = generate_tpch(scale_factor=0.005, seed=1)
    assert small.customer.num_rows == 750


def test_invalid_scale_rejected():
    with pytest.raises(ValueError):
        generate_tpch(scale_factor=0.0)


def test_referential_integrity(db):
    assert set(np.unique(db.orders["o_custkey"])) <= set(
        db.customer["c_custkey"].tolist()
    )
    assert set(np.unique(db.lineitem["l_orderkey"])) <= set(
        db.orders["o_orderkey"].tolist()
    )
    assert db.lineitem["l_partkey"].max() <= db.part["p_partkey"].max()
    assert db.nation["n_regionkey"].max() < db.region.num_rows


def test_lineitem_dates_consistent(db):
    li = db.lineitem
    assert np.all(li["l_receiptdate"] > li["l_shipdate"])
    orders_by_key = dict(
        zip(db.orders["o_orderkey"].tolist(), db.orders["o_orderdate"].tolist())
    )
    orderdates = np.array(
        [orders_by_key[k] for k in li["l_orderkey"][:500].tolist()]
    )
    assert np.all(li["l_shipdate"][:500] > orderdates)


def test_order_dates_span_range(db):
    dates = db.orders["o_orderdate"]
    assert dates.min() >= 0
    assert dates.max() < MAX_ORDER_DAYS


def test_dictionaries_present(db):
    assert db.customer.dictionaries["c_mktsegment"] == [
        "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD",
    ]
    assert len(db.part.dictionaries["p_type"]) == 150
    assert len(db.part.dictionaries["p_brand"]) == 25
    assert len(db.part.dictionaries["p_container"]) == 40


def test_extendedprice_follows_dbgen_formula(db):
    li = db.lineitem
    retail = 900.0 + (li["l_partkey"] % 1000) / 10.0
    assert np.allclose(li["l_extendedprice"], (li["l_quantity"] * retail).round(2))


def test_discount_range(db):
    discount = db.lineitem["l_discount"]
    assert discount.min() >= 0.0 and discount.max() <= 0.10


def test_deterministic_per_seed():
    a = generate_tpch(0.005, seed=3)
    b = generate_tpch(0.005, seed=3)
    assert np.array_equal(a.lineitem["l_orderkey"], b.lineitem["l_orderkey"])


def test_table_lookup(db):
    assert db.table("lineitem") is db.lineitem
    with pytest.raises(KeyError):
        db.table("nope")
    assert set(db.tables) == {
        "region", "nation", "supplier", "customer",
        "part", "partsupp", "orders", "lineitem",
    }


def test_date_helpers_roundtrip():
    days = date_to_days(1995, 3, 15)
    assert days_to_date(days).isoformat() == "1995-03-15"
    assert date_to_days(1992, 1, 1) == 0
