"""Columnar tables and dictionary encoding."""

import numpy as np
import pytest

from repro.relational.table import Table


@pytest.fixture
def table():
    return Table(
        name="t",
        columns={
            "k": np.array([1, 2, 3, 4], dtype=np.int32),
            "v": np.array([1.0, 2.0, 3.0, 4.0]),
            "mode": np.array([0, 1, 0, 2], dtype=np.int8),
        },
        dictionaries={"mode": ["AIR", "SHIP", "MAIL"]},
    )


def test_num_rows(table):
    assert table.num_rows == 4


def test_ragged_columns_rejected():
    with pytest.raises(ValueError):
        Table("bad", {"a": np.arange(3), "b": np.arange(4)})


def test_row_width(table):
    assert table.row_width(("k", "mode")) == 4 + 1
    assert table.row_width() == 4 + 8 + 1


def test_total_bytes(table):
    assert table.total_bytes == 4 * (4 + 8 + 1)


def test_encode_decode(table):
    assert table.encode("mode", "SHIP") == 1
    assert table.encode("mode", "TRUCK") == -1
    assert table.decode("mode", table["mode"][:2]) == ["AIR", "SHIP"]


def test_select_keeps_dictionaries(table):
    projected = table.select(("k", "mode"))
    assert projected.column_names == ("k", "mode")
    assert "mode" in projected.dictionaries


def test_select_unknown_column(table):
    with pytest.raises(KeyError):
        table.select(("nope",))


def test_take_mask(table):
    subset = table.take(table["k"] > 2)
    assert subset.num_rows == 2
    assert subset["v"].tolist() == [3.0, 4.0]


def test_take_indices(table):
    subset = table.take(np.array([3, 0]))
    assert subset["k"].tolist() == [4, 1]


def test_with_columns(table):
    extended = table.with_columns({"double": table["v"] * 2})
    assert extended["double"].tolist() == [2.0, 4.0, 6.0, 8.0]
    assert table.num_rows == extended.num_rows


def test_renamed(table):
    renamed = table.renamed({"mode": "shipmode"})
    assert "shipmode" in renamed.columns
    assert "shipmode" in renamed.dictionaries


def test_head(table):
    assert table.head(2).num_rows == 2
    assert table.head(99).num_rows == 4
