"""Query engines: cost accounting behaviours."""

import numpy as np
import pytest

from repro.relational import DPRJQueryEngine, MGJoinQueryEngine
from repro.relational.operators import Aggregate
from repro.relational.table import Table


def make_table(name, rows, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        name=name,
        columns={
            "k": rng.integers(0, max(1, rows // 2), rows).astype(np.int64),
            "v": rng.uniform(0, 100, rows),
        },
    )


@pytest.fixture
def engine(dgx1):
    e = MGJoinQueryEngine(dgx1, logical_scale=1e6)
    e.begin()
    return e


def test_begin_resets_report(dgx1):
    engine = MGJoinQueryEngine(dgx1)
    engine.begin()
    engine.scan(make_table("a", 100))
    assert engine.report.total_seconds > 0
    engine.begin()
    ops = [op.operator for op in engine.report.operators]
    assert "scan" not in ops


def test_every_operator_charges_time(engine):
    table = engine.scan(make_table("t", 1000))
    joined = engine.join(table, make_table("u", 1000, seed=1), "k", "k")
    aggregated = engine.aggregate(
        joined, ("k",), (Aggregate("s", "sum", column="v"),)
    )
    engine.sort_limit(aggregated, ("s",), (False,), limit=5)
    kinds = {op.operator for op in engine.report.operators}
    assert {"scan", "join-compute", "aggregate", "sort"} <= kinds


def test_scan_cost_scales_with_logical_scale(dgx1):
    small = MGJoinQueryEngine(dgx1, logical_scale=1.0)
    large = MGJoinQueryEngine(dgx1, logical_scale=1e9)
    table = make_table("t", 1000)
    small.begin(); small.scan(table)
    large.begin(); large.scan(table)
    small_scan = [o for o in small.report.operators if o.operator == "scan"][0]
    large_scan = [o for o in large.report.operators if o.operator == "scan"][0]
    assert large_scan.seconds > small_scan.seconds


def test_join_shuffle_exposed_only_without_overlap(dgx1):
    left, right = make_table("l", 5000), make_table("r", 5000, seed=2)
    mg = MGJoinQueryEngine(dgx1, logical_scale=1e6)
    dprj = DPRJQueryEngine(dgx1, logical_scale=1e6)
    mg.begin(); mg.join(left, right, "k", "k")
    dprj.begin(); dprj.join(left, right, "k", "k")
    mg_shuffle = sum(
        o.seconds for o in mg.report.operators if o.operator == "join-shuffle"
    )
    dprj_shuffle = sum(
        o.seconds for o in dprj.report.operators if o.operator == "join-shuffle"
    )
    assert dprj_shuffle > mg_shuffle


def test_dprj_query_slower_than_mgjoin(dgx1):
    left, right = make_table("l", 5000), make_table("r", 5000, seed=2)
    mg = MGJoinQueryEngine(dgx1, logical_scale=1e6)
    dprj = DPRJQueryEngine(dgx1, logical_scale=1e6)
    mg.begin(); mg.join(left, right, "k", "k")
    dprj.begin(); dprj.join(left, right, "k", "k")
    assert dprj.report.total_seconds > mg.report.total_seconds


def test_single_gpu_engine_has_no_shuffle(dgx1):
    engine = MGJoinQueryEngine(dgx1, gpu_ids=(0,), logical_scale=1e6)
    engine.begin()
    engine.join(make_table("l", 2000), make_table("r", 2000, seed=3), "k", "k")
    assert not any(
        o.operator == "join-shuffle" for o in engine.report.operators
    )


def test_report_groups_by_operator(engine):
    engine.scan(make_table("a", 10))
    engine.scan(make_table("b", 10))
    by_op = engine.report.seconds_by_operator()
    assert by_op["scan"] > 0


def test_invalid_scale_rejected(dgx1):
    with pytest.raises(ValueError):
        MGJoinQueryEngine(dgx1, logical_scale=0.5)


def test_negative_charge_rejected(engine):
    with pytest.raises(ValueError):
        engine.report.charge("x", "y", -1.0)
