"""MachineTopology structural queries."""

import pytest

from repro.topology import LinkType, dgx1_topology
from repro.topology.machine import TopologyError
from repro.topology.nodes import gpu


def test_gpu_ids_sorted(dgx1):
    assert dgx1.gpu_ids == tuple(range(8))
    assert dgx1.num_gpus == 8


def test_nvlink_between_adjacent_pair(dgx1):
    link = dgx1.nvlink_between(0, 4)
    assert link is not None
    assert link.link_type is LinkType.NVLINK
    assert link.lanes == 2  # double link on the DGX-1


def test_nvlink_between_non_adjacent_pair(dgx1):
    assert dgx1.nvlink_between(0, 5) is None


def test_nvlink_neighbors_symmetric(dgx1):
    for a in dgx1.gpu_ids:
        for b in dgx1.nvlink_neighbors(a):
            assert a in dgx1.nvlink_neighbors(b)


def test_direct_path_nvlink_single_link(dgx1):
    path = dgx1.direct_path(0, 4)
    assert len(path) == 1
    assert path[0].link_type is LinkType.NVLINK


def test_direct_path_same_switch_stays_on_pcie(dgx1):
    # GPUs 0 and 1 share sw0 but also have NVLink; force the staged
    # path by querying a pair with no NVLink: 0 and 5 (cross socket).
    path = dgx1.direct_path(0, 5)
    types = [link.link_type for link in path]
    assert LinkType.QPI in types
    assert types.count(LinkType.PCIE) == 4
    assert path[0].src == gpu(0)
    assert path[-1].dst == gpu(5)


def test_direct_path_contiguous(dgx1):
    for src in dgx1.gpu_ids:
        for dst in dgx1.gpu_ids:
            if src == dst:
                continue
            path = dgx1.direct_path(src, dst)
            for first, second in zip(path, path[1:]):
                assert first.dst == second.src


def test_direct_path_self_rejected(dgx1):
    with pytest.raises(TopologyError):
        dgx1.direct_path(3, 3)


def test_staged_path_has_no_intermediate_gpus(dgx1):
    for src, dst in ((0, 5), (1, 6), (3, 4)):
        if dgx1.nvlink_between(src, dst):
            continue
        path = dgx1.direct_path(src, dst)
        inner_nodes = [link.dst for link in path[:-1]]
        assert not any(node.is_gpu for node in inner_nodes)


def test_bisection_bandwidth_eight_gpus(dgx1):
    """Six NVLink links + QPI cross the canonical board split."""
    bandwidth = dgx1.bisection_bandwidth()
    assert bandwidth == pytest.approx(150e9 + 25.6e9, rel=0.01)


def test_bisection_bandwidth_subset_excludes_foreign_relays(dgx1):
    # With only GPUs 0 and 1 participating, traffic cannot be relayed
    # through GPUs 2-7, so the cut is one NVLink + the PCIe path.
    bandwidth = dgx1.bisection_bandwidth((0, 1))
    assert bandwidth == pytest.approx(25e9 + 16e9, rel=0.01)


def test_bisection_bandwidth_requires_two_gpus(dgx1):
    with pytest.raises(TopologyError):
        dgx1.bisection_bandwidth((3,))


def test_station_is_fully_nvlink_connected(station):
    for a in station.gpu_ids:
        for b in station.gpu_ids:
            if a != b:
                assert station.nvlink_between(a, b) is not None


def test_duplicate_link_ids_rejected(dgx1):
    from repro.topology.machine import MachineTopology

    bad = [link for link in dgx1.links[:2]]
    bad[1] = type(bad[1])(
        link_id=bad[0].link_id,
        src=bad[1].src,
        dst=bad[1].dst,
        link_type=bad[1].link_type,
    )
    with pytest.raises(TopologyError):
        MachineTopology("bad", dgx1.nodes, tuple(bad))
