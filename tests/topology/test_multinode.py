"""Rack-scale multi-node machines (paper §7 future work)."""

import pytest

from repro.core import MGJoin
from repro.topology import LinkType, multi_node_dgx1, node_of
from repro.workloads import WorkloadSpec, generate_workload

from helpers import make_workload


@pytest.fixture(scope="module")
def two_node():
    return multi_node_dgx1(2)


def test_gpu_count(two_node):
    assert two_node.num_gpus == 16
    assert multi_node_dgx1(4).num_gpus == 32


def test_invalid_parameters():
    with pytest.raises(ValueError):
        multi_node_dgx1(1)
    with pytest.raises(ValueError):
        multi_node_dgx1(2, ib_lanes=0)


def test_node_of():
    assert node_of(0) == 0
    assert node_of(7) == 0
    assert node_of(8) == 1
    assert node_of(15) == 1
    with pytest.raises(ValueError):
        node_of(-1)


def test_intra_node_topology_is_dgx1(two_node):
    # Same NVLink degree per GPU as a single DGX-1.
    for gpu_id in two_node.gpu_ids:
        assert len(two_node.nvlink_neighbors(gpu_id)) == 4


def test_no_cross_node_nvlink(two_node):
    for gpu_id in two_node.gpu_ids:
        for neighbor in two_node.nvlink_neighbors(gpu_id):
            assert node_of(neighbor) == node_of(gpu_id)


def test_cross_node_path_uses_infiniband(two_node):
    path = two_node.direct_path(0, 8)
    assert any(link.link_type is LinkType.INFINIBAND for link in path)


def test_intra_node_path_never_leaves_node(two_node):
    path = two_node.direct_path(8, 13)
    assert not any(link.link_type is LinkType.INFINIBAND for link in path)


def test_bisection_is_ib_bound(two_node):
    # The min cut separates the nodes: a handful of IB lanes.
    bandwidth = two_node.bisection_bandwidth()
    assert bandwidth == pytest.approx(4 * 12.5e9, rel=0.01)


def test_join_is_exact_across_nodes(two_node):
    workload = make_workload(num_gpus=16, real=512)
    result = MGJoin(two_node).run(workload)
    assert result.matches_real == workload.r.num_tuples


def test_cross_node_join_is_communication_bound():
    """With a thin single-lane IB pipe, the distribution no longer
    hides under compute (§7: why rack-scale needs faster fabrics)."""
    thin = multi_node_dgx1(2, ib_lanes=1)
    workload = generate_workload(
        WorkloadSpec(
            gpu_ids=tuple(range(16)),
            logical_tuples_per_gpu=512 * 1024 * 1024,
            real_tuples_per_gpu=1 << 13,
        )
    )
    result = MGJoin(thin).run(workload)
    assert result.breakdown.distribution_share > 0.30


def test_fatter_ib_restores_overlap(two_node):
    """Four bonded IB lanes let the shuffle hide under compute again —
    the quantitative version of the paper's future-work argument."""
    workload = generate_workload(
        WorkloadSpec(
            gpu_ids=tuple(range(16)),
            logical_tuples_per_gpu=512 * 1024 * 1024,
            real_tuples_per_gpu=1 << 13,
        )
    )
    result = MGJoin(two_node).run(workload)
    assert result.breakdown.distribution_share < 0.15


def test_ring_for_more_nodes():
    four = multi_node_dgx1(4)
    # Node 0 reaches node 2 by staging over two IB hops or the ring;
    # the direct path must still exist and cross IB.
    path = four.direct_path(0, 16)
    assert any(link.link_type is LinkType.INFINIBAND for link in path)
