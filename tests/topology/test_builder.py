"""TopologyBuilder validation and wiring."""

import pytest

from repro.topology import LinkType, TopologyBuilder
from repro.topology.machine import TopologyError


def test_build_minimal_machine(tiny_machine):
    assert tiny_machine.num_gpus == 2
    assert tiny_machine.nvlink_between(0, 1) is not None


def test_bidirectional_links_created(tiny_machine):
    forward = tiny_machine.nvlink_between(0, 1)
    backward = tiny_machine.nvlink_between(1, 0)
    assert forward is not None and backward is not None
    assert forward.link_id != backward.link_id


def test_duplicate_node_rejected():
    builder = TopologyBuilder("dup")
    builder.add_gpus(1)
    with pytest.raises(TopologyError):
        builder.add_gpus(1)


def test_link_before_node_rejected():
    builder = TopologyBuilder("early")
    builder.add_gpus(1)
    with pytest.raises(TopologyError):
        builder.add_nvlink(0, 1)


def test_disconnected_gpu_rejected():
    builder = TopologyBuilder("island")
    builder.add_gpus(3)
    builder.add_switch(0, socket=0)
    builder.attach_gpu_to_switch(0, 0)
    builder.attach_gpu_to_switch(1, 0)
    # GPU 2 has no link at all.
    with pytest.raises(TopologyError):
        builder.build()


def test_switch_auto_creates_socket():
    builder = TopologyBuilder("auto")
    builder.add_gpus(2)
    builder.add_switch(0, socket=0)
    builder.attach_gpu_to_switch(0, 0)
    builder.attach_gpu_to_switch(1, 0)
    machine = builder.build()
    uplinks = [
        link for link in machine.links
        if link.link_type is LinkType.PCIE and link.src.is_switch
    ]
    assert uplinks  # switch -> cpu uplink exists


def test_empty_topology_rejected():
    with pytest.raises(TopologyError):
        TopologyBuilder("empty").build()


def test_cross_socket_machine_needs_qpi():
    builder = TopologyBuilder("two-socket")
    builder.add_gpus(2)
    builder.add_switch(0, socket=0)
    builder.add_switch(1, socket=1)
    builder.attach_gpu_to_switch(0, 0)
    builder.attach_gpu_to_switch(1, 1)
    with pytest.raises(TopologyError):
        builder.build()  # no QPI: GPUs cannot reach each other
    builder.add_qpi(0, 1)
    machine = builder.build()
    path = machine.direct_path(0, 1)
    assert any(link.link_type is LinkType.QPI for link in path)
