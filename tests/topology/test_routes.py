"""Route enumeration and route-level metrics."""

import pytest

from repro.topology import Route, RouteEnumerator
from repro.topology.machine import TopologyError
from repro.topology.routes import (
    physical_links,
    route_link_count,
    route_min_bandwidth,
    route_static_latency,
)


def test_route_needs_two_gpus():
    with pytest.raises(ValueError):
        Route((3,))


def test_route_rejects_cycles():
    with pytest.raises(ValueError):
        Route((0, 1, 0))


def test_route_accessors():
    route = Route((0, 4, 7))
    assert route.src == 0
    assert route.dst == 7
    assert route.intermediates == (4,)
    assert route.num_hops == 2
    assert not route.is_direct
    assert route.hops() == ((0, 4), (4, 7))
    assert route.next_gpu_after(0) == 4
    assert route.next_gpu_after(4) == 7


def test_next_gpu_after_destination_fails():
    with pytest.raises(ValueError):
        Route((0, 4)).next_gpu_after(4)


def test_direct_route_always_first(dgx1):
    enumerator = RouteEnumerator(dgx1)
    routes = enumerator.routes(0, 7)
    assert routes[0] == Route((0, 7))


def test_multi_hop_routes_are_all_nvlink(dgx1):
    enumerator = RouteEnumerator(dgx1)
    for route in enumerator.routes(0, 7)[1:]:
        for a, b in route.hops():
            assert dgx1.nvlink_between(a, b) is not None


def test_intermediate_cap_respected(dgx1):
    enumerator = RouteEnumerator(dgx1, max_intermediates=1)
    for route in enumerator.routes(0, 7):
        assert len(route.intermediates) <= 1


def test_allowed_gpus_restrict_relays(dgx1):
    enumerator = RouteEnumerator(dgx1, allowed_gpus=(0, 3, 7))
    for route in enumerator.routes(0, 7):
        assert set(route.intermediates) <= {3}


def test_unknown_gpu_rejected(dgx1):
    with pytest.raises(TopologyError):
        RouteEnumerator(dgx1, allowed_gpus=(0, 99))


def test_route_count_scales_with_cap(dgx1):
    short = RouteEnumerator(dgx1, max_intermediates=1)
    long = RouteEnumerator(dgx1, max_intermediates=3)
    assert len(long.routes(0, 7)) > len(short.routes(0, 7))


def test_physical_links_concatenate_hops(dgx1):
    route = Route((0, 4, 7))
    links = physical_links(dgx1, route)
    assert len(links) == 2  # both hops NVLink
    assert links[0].src.index == 0 and links[-1].dst.index == 7


def test_route_metrics_on_staged_vs_relay(dgx1):
    staged = Route((0, 5))
    relay = Route((0, 1, 5))
    assert route_link_count(dgx1, staged) == 5
    assert route_link_count(dgx1, relay) == 2
    assert route_min_bandwidth(dgx1, relay) > route_min_bandwidth(dgx1, staged)
    assert route_static_latency(dgx1, relay) < route_static_latency(dgx1, staged)


def test_paper_route_counts_ballpark(dgx1):
    """§4.2: 'there are 64 possible routes without cycles' — our
    NVLink-only enumeration with <=3 relays finds dozens per pair."""
    enumerator = RouteEnumerator(dgx1)
    for src, dst in ((0, 7), (0, 5), (2, 4)):
        count = len(enumerator.routes(src, dst))
        assert 10 <= count <= 80


class TestFailedLinks:
    """Route invalidation when physical links die (repro.faults)."""

    def _nvlink_ids(self, dgx1, src, dst):
        ids = []
        for a, b in ((src, dst), (dst, src)):
            spec = dgx1.nvlink_between(a, b)
            if spec is not None:
                ids.append(spec.link_id)
        return ids

    def test_fail_link_filters_candidates(self, dgx1):
        enumerator = RouteEnumerator(dgx1)
        before = enumerator.routes(0, 1)
        for link_id in self._nvlink_ids(dgx1, 0, 1):
            enumerator.fail_link(link_id)
        after = enumerator.routes(0, 1)
        assert len(after) < len(before)
        direct = Route((0, 1))
        assert direct in before and direct not in after

    def test_restore_link_brings_routes_back(self, dgx1):
        enumerator = RouteEnumerator(dgx1)
        before = enumerator.routes(0, 1)
        ids = self._nvlink_ids(dgx1, 0, 1)
        for link_id in ids:
            enumerator.fail_link(link_id)
        for link_id in ids:
            enumerator.restore_link(link_id)
        assert enumerator.routes(0, 1) == before
        assert not enumerator.failed_links

    def test_version_bumps_on_every_change(self, dgx1):
        enumerator = RouteEnumerator(dgx1)
        v0 = enumerator.version
        enumerator.fail_link(0)
        v1 = enumerator.version
        enumerator.restore_link(0)
        v2 = enumerator.version
        assert v0 < v1 < v2

    def test_all_paths_dead_raises_unroutable(self, dgx1):
        from repro.topology.routes import UnroutableError, physical_links

        enumerator = RouteEnumerator(dgx1, allowed_gpus=(0, 1))
        for route in enumerator.routes(0, 1):
            for spec in physical_links(dgx1, route):
                enumerator.fail_link(spec.link_id)
        with pytest.raises(UnroutableError):
            enumerator.routes(0, 1)

    def test_unroutable_is_a_topology_error(self):
        from repro.topology.machine import TopologyError
        from repro.topology.routes import UnroutableError

        assert issubclass(UnroutableError, TopologyError)
