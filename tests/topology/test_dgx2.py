"""The DGX-2 NVSwitch machine (negative control for multi-hop gains)."""

import pytest

from repro.routing import AdaptiveArmPolicy, DirectPolicy
from repro.sim import FlowMatrix, ShuffleSimulator
from repro.topology import LinkType, RouteEnumerator, dgx2_topology
from repro.topology.dgx2 import nvswitch_plane

MB = 1024 * 1024


@pytest.fixture(scope="module")
def dgx2():
    return dgx2_topology()


def test_sixteen_gpus(dgx2):
    assert dgx2.num_gpus == 16


def test_no_gpu_to_gpu_nvlink(dgx2):
    for a in dgx2.gpu_ids:
        assert dgx2.nvlink_neighbors(a) == ()


def test_direct_path_goes_through_nvswitch(dgx2):
    path = dgx2.direct_path(0, 7)  # same baseboard
    assert len(path) == 2
    assert all(link.link_type is LinkType.NVLINK for link in path)
    assert path[0].dst == nvswitch_plane(0)


def test_cross_board_path_uses_trunk(dgx2):
    path = dgx2.direct_path(0, 15)
    assert [str(link.dst) for link in path[:-1]] == ["sw100", "sw101"]
    assert path[1].lanes == 48


def test_gpu_port_bandwidth(dgx2):
    port = dgx2.direct_path(0, 7)[0]
    assert port.bandwidth == pytest.approx(6 * 25e9)


def test_bisection_far_above_dgx1(dgx2):
    # Trunk-dominated: ~1.2 TB/s per direction vs the DGX-1's 175 GB/s.
    assert dgx2.bisection_bandwidth() > 1e12


def test_no_multi_hop_routes_exist(dgx2):
    enumerator = RouteEnumerator(dgx2)
    for src, dst in ((0, 1), (0, 15), (3, 12)):
        routes = enumerator.routes(src, dst)
        assert len(routes) == 1 and routes[0].is_direct


def test_adaptive_degenerates_to_direct(dgx2):
    """On a crossbar there is nothing to adapt: same routes, same time —
    MG-Join's advantage is specific to point-to-point meshes."""
    flows = FlowMatrix.all_to_all(tuple(range(16)), 16 * MB)
    sim = ShuffleSimulator(dgx2)
    direct = sim.run(flows, DirectPolicy())
    adaptive = sim.run(flows, AdaptiveArmPolicy())
    assert adaptive.elapsed == pytest.approx(direct.elapsed)
    assert adaptive.average_hops == 1.0


def test_join_still_exact_on_dgx2(dgx2):
    from repro.core import MGJoin

    from helpers import make_workload

    workload = make_workload(num_gpus=16, real=512)
    result = MGJoin(dgx2).run(workload)
    assert result.matches_real == workload.r.num_tuples
