"""The Dinic max-flow solver used for bisection capacities."""

import itertools
import random

import pytest

from repro.topology.maxflow import FlowNetwork


def test_single_edge():
    net = FlowNetwork(2)
    net.add_edge(0, 1, 10.0)
    assert net.max_flow(0, 1) == pytest.approx(10.0)


def test_series_bottleneck():
    net = FlowNetwork(3)
    net.add_edge(0, 1, 10.0)
    net.add_edge(1, 2, 4.0)
    assert net.max_flow(0, 2) == pytest.approx(4.0)


def test_parallel_paths_sum():
    net = FlowNetwork(4)
    net.add_edge(0, 1, 3.0)
    net.add_edge(1, 3, 3.0)
    net.add_edge(0, 2, 5.0)
    net.add_edge(2, 3, 5.0)
    assert net.max_flow(0, 3) == pytest.approx(8.0)


def test_classic_augmenting_path_case():
    """Cross edge requiring flow rerouting (textbook diamond)."""
    net = FlowNetwork(4)
    net.add_edge(0, 1, 10)
    net.add_edge(0, 2, 10)
    net.add_edge(1, 2, 1)
    net.add_edge(1, 3, 10)
    net.add_edge(2, 3, 10)
    assert net.max_flow(0, 3) == pytest.approx(20.0)


def test_no_path_is_zero():
    net = FlowNetwork(3)
    net.add_edge(0, 1, 5.0)
    assert net.max_flow(0, 2) == 0.0


def test_source_equals_sink_rejected():
    net = FlowNetwork(2)
    with pytest.raises(ValueError):
        net.max_flow(1, 1)


def test_negative_capacity_rejected():
    net = FlowNetwork(2)
    with pytest.raises(ValueError):
        net.add_edge(0, 1, -1.0)


def _brute_force_min_cut(n, edges, source, sink):
    """Minimum s-t cut by subset enumeration (max-flow = min-cut)."""
    best = float("inf")
    others = [v for v in range(n) if v not in (source, sink)]
    for r in range(len(others) + 1):
        for chosen in itertools.combinations(others, r):
            side = {source, *chosen}
            cut = sum(cap for u, v, cap in edges if u in side and v not in side)
            best = min(best, cut)
    return best


@pytest.mark.parametrize("seed", range(12))
def test_random_graphs_match_brute_force_min_cut(seed):
    """Property check of the flat-array Dinic: on random small graphs
    the computed flow equals the brute-force minimum cut."""
    rng = random.Random(seed)
    n = rng.randint(2, 8)
    edges = []
    net = FlowNetwork(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < 0.45:
                cap = rng.choice([1.0, 2.0, 5.0, 12.5, 100.0])
                net.add_edge(u, v, cap)
                edges.append((u, v, cap))
    source, sink = 0, n - 1
    assert net.max_flow(source, sink) == pytest.approx(
        _brute_force_min_cut(n, edges, source, sink)
    )


def test_repeated_query_is_stable():
    """A second query on the same (now saturated) network finds no new
    augmenting path — residual flows stay consistent."""
    net = FlowNetwork(3)
    net.add_edge(0, 1, 10.0)
    net.add_edge(1, 2, 4.0)
    assert net.max_flow(0, 2) == pytest.approx(4.0)
    assert net.max_flow(0, 2) == 0.0
