"""The Dinic max-flow solver used for bisection capacities."""

import pytest

from repro.topology.maxflow import FlowNetwork


def test_single_edge():
    net = FlowNetwork(2)
    net.add_edge(0, 1, 10.0)
    assert net.max_flow(0, 1) == pytest.approx(10.0)


def test_series_bottleneck():
    net = FlowNetwork(3)
    net.add_edge(0, 1, 10.0)
    net.add_edge(1, 2, 4.0)
    assert net.max_flow(0, 2) == pytest.approx(4.0)


def test_parallel_paths_sum():
    net = FlowNetwork(4)
    net.add_edge(0, 1, 3.0)
    net.add_edge(1, 3, 3.0)
    net.add_edge(0, 2, 5.0)
    net.add_edge(2, 3, 5.0)
    assert net.max_flow(0, 3) == pytest.approx(8.0)


def test_classic_augmenting_path_case():
    """Cross edge requiring flow rerouting (textbook diamond)."""
    net = FlowNetwork(4)
    net.add_edge(0, 1, 10)
    net.add_edge(0, 2, 10)
    net.add_edge(1, 2, 1)
    net.add_edge(1, 3, 10)
    net.add_edge(2, 3, 10)
    assert net.max_flow(0, 3) == pytest.approx(20.0)


def test_no_path_is_zero():
    net = FlowNetwork(3)
    net.add_edge(0, 1, 5.0)
    assert net.max_flow(0, 2) == 0.0


def test_source_equals_sink_rejected():
    net = FlowNetwork(2)
    with pytest.raises(ValueError):
        net.max_flow(1, 1)


def test_negative_capacity_rejected():
    net = FlowNetwork(2)
    with pytest.raises(ValueError):
        net.add_edge(0, 1, -1.0)
