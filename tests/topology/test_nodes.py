"""Node value-object semantics."""

import pytest

from repro.topology import Node, NodeKind, cpu, gpu, switch


def test_constructors_set_kind():
    assert gpu(3).kind is NodeKind.GPU
    assert switch(1).kind is NodeKind.SWITCH
    assert cpu(0).kind is NodeKind.CPU


def test_value_equality_and_hashing():
    assert gpu(2) == gpu(2)
    assert gpu(2) != gpu(3)
    assert gpu(2) != switch(2)
    assert len({gpu(1), gpu(1), switch(1)}) == 2


def test_string_form():
    assert str(gpu(5)) == "gpu5"
    assert str(switch(0)) == "sw0"
    assert str(cpu(1)) == "cpu1"


def test_kind_predicates():
    assert gpu(0).is_gpu and not gpu(0).is_cpu and not gpu(0).is_switch
    assert cpu(0).is_cpu
    assert switch(0).is_switch


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        gpu(-1)


def test_nodes_are_orderable():
    assert sorted([gpu(2), gpu(0), gpu(1)]) == [gpu(0), gpu(1), gpu(2)]
