"""The DGX-1 machine matches the published hybrid cube-mesh."""

from repro.topology import LinkType, dgx1_topology
from repro.topology.dgx1 import DGX1_NVLINKS


def test_every_gpu_uses_six_nvlink_ports():
    """Each V100 in the DGX-1 has exactly six NVLink links in use."""
    lanes_per_gpu = {g: 0 for g in range(8)}
    for a, b, lanes in DGX1_NVLINKS:
        lanes_per_gpu[a] += lanes
        lanes_per_gpu[b] += lanes
    assert all(count == 6 for count in lanes_per_gpu.values())


def test_each_quad_is_an_nvlink_clique():
    machine = dgx1_topology()
    for quad in ((0, 1, 2, 3), (4, 5, 6, 7)):
        for a in quad:
            for b in quad:
                if a != b:
                    assert machine.nvlink_between(a, b) is not None


def test_four_cross_board_links():
    machine = dgx1_topology()
    cross = [
        (a, b)
        for a in range(4)
        for b in range(4, 8)
        if machine.nvlink_between(a, b) is not None
    ]
    assert sorted(cross) == [(0, 4), (1, 5), (2, 6), (3, 7)]


def test_twelve_of_28_pairs_are_staged():
    """§2.2: PCIe is involved in the direct routes of 12 GPU pairs."""
    machine = dgx1_topology()
    staged = [
        (a, b)
        for a in range(8)
        for b in range(a + 1, 8)
        if machine.nvlink_between(a, b) is None
    ]
    assert len(staged) == 12


def test_pcie_switches_shared_by_gpu_pairs():
    machine = dgx1_topology()
    # GPUs 0 and 1 reach the same switch: their staged paths to GPU 6
    # (no NVLink from either) start at the same uplink hardware.
    path_0 = machine.direct_path(0, 6)
    path_1 = machine.direct_path(1, 6)
    assert path_0[1].src == path_1[1].src  # shared sw0
    assert path_0[1].link_type is LinkType.PCIE


def test_topology_is_cached():
    assert dgx1_topology() is dgx1_topology()
