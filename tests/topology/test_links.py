"""Link specs and the effective-bandwidth curve (Figure 4's physics)."""

import pytest

from repro.topology.links import (
    KB,
    MB,
    NVLINK_BANDWIDTH,
    PCIE_BANDWIDTH,
    LinkSpec,
    LinkType,
    bottleneck_bandwidth,
    effective_bandwidth,
    transfer_time,
)
from repro.topology.nodes import gpu, switch


def nvlink(lanes=1):
    return LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK, lanes=lanes)


def pcie():
    return LinkSpec(1, gpu(0), switch(0), LinkType.PCIE)


def test_default_bandwidths_applied():
    assert nvlink().bandwidth == pytest.approx(NVLINK_BANDWIDTH)
    assert pcie().bandwidth == pytest.approx(PCIE_BANDWIDTH)


def test_double_link_doubles_bandwidth():
    assert nvlink(lanes=2).bandwidth == pytest.approx(2 * NVLINK_BANDWIDTH)


def test_invalid_lanes_rejected():
    with pytest.raises(ValueError):
        nvlink(lanes=0)


def test_transfer_time_is_latency_plus_wire_time():
    link = nvlink()
    expected = link.latency + 1_000_000 / link.bandwidth
    assert transfer_time(link, 1_000_000) == pytest.approx(expected)


def test_transfer_time_rejects_negative_bytes():
    with pytest.raises(ValueError):
        transfer_time(nvlink(), -1)


def test_effective_bandwidth_small_packets_degrade_heavily():
    """Figure 4: ~20x degradation at 2 KB packets."""
    link = nvlink()
    degradation = link.bandwidth / effective_bandwidth(link, 2 * KB)
    assert 10 <= degradation <= 30


def test_effective_bandwidth_saturates_by_12mb():
    """Figure 4: links saturate around 12 MB and gain nothing beyond."""
    link = nvlink()
    at_12mb = effective_bandwidth(link, 12 * MB)
    at_16mb = effective_bandwidth(link, 16 * MB)
    assert at_12mb >= 0.97 * link.bandwidth
    assert (at_16mb - at_12mb) / link.bandwidth < 0.01


def test_effective_bandwidth_monotone_in_size():
    link = pcie()
    sizes = [2 * KB * (2**i) for i in range(14)]
    values = [effective_bandwidth(link, s) for s in sizes]
    assert values == sorted(values)


def test_effective_bandwidth_zero_bytes():
    assert effective_bandwidth(nvlink(), 0) == 0.0


def test_bottleneck_is_slowest_link():
    fast = nvlink(lanes=2)
    slow = pcie()
    size = 2 * MB
    assert bottleneck_bandwidth([fast, slow], size) == pytest.approx(
        effective_bandwidth(slow, size)
    )


def test_bottleneck_requires_links():
    with pytest.raises(ValueError):
        bottleneck_bandwidth([], 1024)


def test_nvlink_faster_than_pcie_at_all_sizes():
    for size in (2 * KB, 64 * KB, 2 * MB, 16 * MB):
        assert effective_bandwidth(nvlink(), size) > effective_bandwidth(
            pcie(), size
        )
