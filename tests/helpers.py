"""Helpers shared across test modules (importable via pythonpath)."""

from __future__ import annotations

from repro.workloads import WorkloadSpec, generate_workload


def make_workload(
    num_gpus: int = 4,
    real: int = 2048,
    logical: int | None = None,
    placement_zipf: float = 0.0,
    key_zipf: float = 0.0,
    seed: int = 42,
):
    """Small deterministic workload for functional tests."""
    spec = WorkloadSpec(
        gpu_ids=tuple(range(num_gpus)),
        logical_tuples_per_gpu=logical if logical is not None else real,
        real_tuples_per_gpu=real,
        placement_zipf=placement_zipf,
        key_zipf=key_zipf,
        seed=seed,
    )
    return generate_workload(spec)
