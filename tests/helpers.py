"""Helpers shared across test modules (importable via pythonpath)."""

from __future__ import annotations

from repro.workloads import WorkloadSpec, generate_workload


def solo_join(machine, request, policy_factory=None):
    """Reference result for a serve request: joined alone, healthy."""
    from repro.core.config import MGJoinConfig
    from repro.core.mgjoin import MGJoin
    from repro.routing import AdaptiveArmPolicy
    from repro.serve import workload_for

    factory = policy_factory or AdaptiveArmPolicy
    return MGJoin(
        machine,
        config=MGJoinConfig(materialize=True),
        policy=factory(),
    ).run(workload_for(machine, request))


def healthy_latency(machine, request):
    """Simulated seconds a serve request takes alone and healthy."""
    from repro.routing import AdaptiveArmPolicy
    from repro.serve import QueryScheduler

    report = QueryScheduler(
        machine, [request], policy_factory=AdaptiveArmPolicy
    ).run()
    return report.outcome(request.name).latency


def make_workload(
    num_gpus: int = 4,
    real: int = 2048,
    logical: int | None = None,
    placement_zipf: float = 0.0,
    key_zipf: float = 0.0,
    seed: int = 42,
):
    """Small deterministic workload for functional tests."""
    spec = WorkloadSpec(
        gpu_ids=tuple(range(num_gpus)),
        logical_tuples_per_gpu=logical if logical is not None else real,
        real_tuples_per_gpu=real,
        placement_zipf=placement_zipf,
        key_zipf=key_zipf,
        seed=seed,
    )
    return generate_workload(spec)
