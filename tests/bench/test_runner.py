"""The parallel benchmark runner and the on-disk workload cache."""

import json

import pytest

from repro.bench import harness, run_benchmarks
from repro.bench.runner import RUN_MANIFEST
from repro.workloads import WorkloadSpec, generate_workload


def test_unknown_figure_rejected(tmp_path):
    with pytest.raises(ValueError, match="fig99"):
        run_benchmarks(figures=["fig99"], out_dir=tmp_path)


def test_zero_jobs_rejected(tmp_path):
    with pytest.raises(ValueError):
        run_benchmarks(figures=["fig04"], jobs=0, out_dir=tmp_path)


def test_runner_records_self_time_and_manifest(tmp_path):
    # fig04 is analytic (no simulation), so this stays fast.
    bench = run_benchmarks(figures=["fig04"], jobs=1, out_dir=tmp_path)
    assert bench.ok
    run = bench.figures[0]
    assert run.figure == "fig04"
    assert run.self_time_seconds >= 0.0
    assert run.rows > 0

    manifest = json.loads((tmp_path / RUN_MANIFEST).read_text())
    entry = manifest["figures"]["fig04"]
    assert entry["self_time_seconds"] == run.self_time_seconds
    assert entry["error"] is None
    assert manifest["wall_time_seconds"] > 0.0
    assert manifest["self_time_total_seconds"] == run.self_time_seconds

    # The per-figure artifact carries the same self-time, so the bench
    # JSON alone documents how expensive each figure was to regenerate.
    artifact = json.loads((tmp_path / "figure_4.json").read_text())
    assert artifact["perf"]["self_time_seconds"] == run.self_time_seconds


def test_failed_figure_surfaces_in_manifest(tmp_path, monkeypatch):
    from repro.bench import runner

    def explode():
        raise RuntimeError("boom")

    monkeypatch.setitem(runner.ALL_FIGURES, "fig04", explode)
    bench = run_benchmarks(figures=["fig04"], jobs=1, out_dir=tmp_path)
    assert not bench.ok
    assert "RuntimeError: boom" in bench.figures[0].error
    assert "FAILED" in bench.render()


def _tiny_spec():
    return WorkloadSpec(
        gpu_ids=(0, 1),
        logical_tuples_per_gpu=1 << 20,
        real_tuples_per_gpu=1 << 10,
        seed=7,
    )


def test_disk_cache_round_trips_workloads(tmp_path, monkeypatch):
    spec = _tiny_spec()
    first = harness._disk_cached_workload(spec, tmp_path)
    entries = list(tmp_path.glob("workload-*.pkl"))
    assert len(entries) == 1

    # Second call must come from disk: generating again would explode.
    monkeypatch.setattr(
        harness,
        "generate_workload",
        lambda spec: pytest.fail("cache miss regenerated the workload"),
    )
    second = harness._disk_cached_workload(spec, tmp_path)
    assert second.real_tuples == first.real_tuples


def test_disk_cache_recovers_from_corrupt_entry(tmp_path):
    spec = _tiny_spec()
    harness._disk_cached_workload(spec, tmp_path)
    entry = next(tmp_path.glob("workload-*.pkl"))
    entry.write_bytes(b"not a pickle")
    workload = harness._disk_cached_workload(spec, tmp_path)
    assert workload.real_tuples == generate_workload(spec).real_tuples


def test_bench_workload_uses_env_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(harness.WORKLOAD_CACHE_ENV, str(tmp_path))
    harness.bench_workload.cache_clear()  # defeat the in-process layer
    harness.bench_workload((0, 1), real_tuples_per_gpu=1 << 10)
    assert list(tmp_path.glob("workload-*.pkl"))
    harness.bench_workload.cache_clear()


def test_run_id_inherited_by_multiprocessing_workers(tmp_path):
    from repro.obs.meta import run_scope

    # Two work items force the Pool path; fig04 is analytic, so both
    # workers stay fast.  The figure artifact and the manifest must both
    # carry the parent's run ID even though workers may be spawned.
    with run_scope("join-cafe0123feed"):
        bench = run_benchmarks(
            figures=["fig04", "fig04"], jobs=2, out_dir=tmp_path
        )
    assert bench.ok
    artifact = json.loads((tmp_path / "figure_4.json").read_text())
    assert artifact["run"]["run_id"] == "join-cafe0123feed"
    manifest = json.loads((tmp_path / RUN_MANIFEST).read_text())
    assert manifest["run"]["run_id"] == "join-cafe0123feed"


def test_artifacts_unstamped_outside_a_run_scope(tmp_path, monkeypatch):
    from repro.obs.meta import RUN_ID_ENV

    monkeypatch.delenv(RUN_ID_ENV, raising=False)
    run_benchmarks(figures=["fig04"], jobs=1, out_dir=tmp_path)
    artifact = json.loads((tmp_path / "figure_4.json").read_text())
    assert "run_id" not in artifact["run"]
