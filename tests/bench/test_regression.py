"""The perf-regression gate: baselines, directions, tolerance."""

import json

import pytest

from repro.bench import regression


@pytest.fixture(scope="module")
def committed_baseline():
    path = regression.baseline_path()
    assert path.name == "BENCH_dgx1-8gpu.json"
    assert path.exists(), "committed perf baseline is missing"
    return regression.load_baseline(path)


def test_committed_baseline_is_well_formed(committed_baseline):
    metrics = committed_baseline["metrics"]
    assert set(metrics) == set(regression.METRIC_DIRECTIONS)
    assert committed_baseline["directions"] == regression.METRIC_DIRECTIONS
    run = committed_baseline["run"]
    assert run["topology"] == "dgx1"
    assert run["num_gpus"] == 8
    assert "repro_version" in run
    assert metrics["shuffle.throughput_gbps"] > 0
    # The committed numbers must themselves witness the paper's claim:
    # adaptive routing leaves far less regret than direct routing.
    assert metrics["arm.mean_regret_us"] < metrics["arm.direct_mean_regret_us"]


def test_identical_metrics_pass(committed_baseline):
    result = regression.compare(
        committed_baseline["metrics"], dict(committed_baseline["metrics"])
    )
    assert result.ok
    assert result.regressions == []
    assert all(c.change == 0.0 for c in result.comparisons)
    assert "PASS" in result.render()


def test_injected_throughput_regression_fails(committed_baseline):
    """The acceptance scenario: a >10% throughput drop must gate."""
    metrics = committed_baseline["metrics"]
    degraded = dict(metrics)
    degraded["shuffle.throughput_gbps"] = metrics["shuffle.throughput_gbps"] * 0.85
    result = regression.compare(metrics, degraded)
    assert not result.ok
    assert [c.name for c in result.regressions] == ["shuffle.throughput_gbps"]
    rendered = result.render()
    assert "FAIL" in rendered and "REGRESSION" in rendered


def test_lower_is_better_metrics_gate_on_increase(committed_baseline):
    metrics = committed_baseline["metrics"]
    worse = dict(metrics)
    worse["arm.mean_regret_us"] = metrics["arm.mean_regret_us"] * 1.2
    result = regression.compare(metrics, worse)
    assert [c.name for c in result.regressions] == ["arm.mean_regret_us"]
    # A large *decrease* of a lower-is-better metric is an improvement.
    better = dict(metrics)
    better["shuffle.elapsed_ms"] = metrics["shuffle.elapsed_ms"] * 0.5
    assert regression.compare(metrics, better).ok


def test_changes_within_tolerance_pass(committed_baseline):
    metrics = committed_baseline["metrics"]
    wobble = dict(metrics)
    wobble["shuffle.throughput_gbps"] = metrics["shuffle.throughput_gbps"] * 0.91
    wobble["arm.mean_regret_us"] = metrics["arm.mean_regret_us"] * 1.09
    assert regression.compare(metrics, wobble).ok
    # ... until the tolerance tightens.
    assert not regression.compare(metrics, wobble, tolerance=0.05).ok


def test_track_metrics_never_gate(committed_baseline):
    metrics = committed_baseline["metrics"]
    shifted = dict(metrics)
    shifted["shuffle.bisection_utilization_ab"] = 0.0
    shifted["arm.direct_mean_regret_us"] = metrics["arm.direct_mean_regret_us"] * 10
    assert regression.compare(metrics, shifted).ok


def test_missing_gated_metric_fails(committed_baseline):
    metrics = committed_baseline["metrics"]
    partial = {
        k: v for k, v in metrics.items() if k != "join.throughput_btps"
    }
    result = regression.compare(metrics, partial)
    assert not result.ok
    assert result.missing == ["join.throughput_btps"]
    assert "MISSING" in result.render()
    # A missing track-only metric is fine.
    no_track = {
        k: v for k, v in metrics.items() if k != "arm.direct_mean_regret_us"
    }
    assert regression.compare(metrics, no_track).ok


def test_zero_baseline_edge_cases():
    directions = {"m": "higher"}
    assert regression.compare({"m": 0.0}, {"m": 0.0}, directions=directions).ok
    grown = regression.compare({"m": 0.0}, {"m": 1.0}, directions=directions)
    assert grown.ok  # infinite improvement, not a regression
    assert grown.comparisons[0].change == float("inf")


def test_baseline_round_trip(tmp_path):
    metrics = {"shuffle.throughput_gbps": 123.4, "custom.metric": 1.0}
    path = regression.write_baseline(
        tmp_path / "BENCH_test.json", metrics, {"topology": "tiny"}
    )
    payload = regression.load_baseline(path)
    assert payload["metrics"] == metrics
    assert payload["run"] == {"topology": "tiny"}
    assert payload["directions"]["shuffle.throughput_gbps"] == "higher"
    assert payload["directions"]["custom.metric"] == "track"


def test_load_rejects_non_baseline(tmp_path):
    bogus = tmp_path / "BENCH_bogus.json"
    bogus.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError):
        regression.load_baseline(bogus)


def test_run_gate_with_supplied_metrics(committed_baseline):
    """run_gate honours baseline-embedded directions and tolerance."""
    current = dict(committed_baseline["metrics"])
    result = regression.run_gate(regression.baseline_path(), current=current)
    assert result.ok
    current["shuffle.throughput_gbps"] *= 0.5
    result = regression.run_gate(regression.baseline_path(), current=current)
    assert not result.ok


def test_run_gate_from_store(tmp_path):
    from repro.experiments import ResultsStore, StoreError

    store = ResultsStore(tmp_path / "exp")
    with pytest.raises(StoreError, match="no 'perf' baseline"):
        regression.run_gate_from_store(store, current={})

    metrics = {"shuffle.throughput_gbps": 100.0, "custom.metric": 1.0}
    path = regression.write_baseline(
        tmp_path / "BENCH_test.json", metrics, {"topology": "tiny"}
    )
    record = store.ingest(path)
    result, baseline_run = regression.run_gate_from_store(
        store, current=dict(metrics)
    )
    assert result.ok
    assert baseline_run == record.run_id

    # Record-embedded directions win: the baseline tagged custom.metric
    # as "track", so halving it never gates...
    degraded = dict(metrics, **{"custom.metric": 0.5})
    assert regression.run_gate_from_store(store, current=degraded)[0].ok
    # ...while a gated metric regressing still fails.
    degraded = dict(metrics, **{"shuffle.throughput_gbps": 50.0})
    result, _ = regression.run_gate_from_store(store, current=degraded)
    assert not result.ok

    # An explicit run ID (prefix allowed) selects the baseline record.
    result, named = regression.run_gate_from_store(
        store, run_id=record.run_id[:9], current=dict(metrics)
    )
    assert named == record.run_id and result.ok
