"""The ARM metric (Eq. 2-4) and the adaptive policy's behaviour."""

import pytest

from repro.routing import AdaptiveArmPolicy, CentralizedPolicy
from repro.routing.adaptive import arm_value
from repro.routing.base import RoutingContext
from repro.sim import Engine, LinkChannel, LinkStateBoard
from repro.topology import Route, RouteEnumerator
from repro.topology.links import bottleneck_bandwidth
from repro.topology.routes import physical_links

PACKET = 2 * 1024 * 1024


@pytest.fixture
def context(dgx1):
    engine = Engine()
    board = LinkStateBoard(engine, broadcast_latency=0.0, quantum=1e-9)
    links = {
        spec.link_id: LinkChannel(engine, spec, board) for spec in dgx1.links
    }
    return RoutingContext(
        engine=engine,
        machine=dgx1,
        enumerator=RouteEnumerator(dgx1),
        links=links,
        board=board,
        num_gpus=8,
    )


def test_arm_on_idle_network_is_static_cost(context):
    """With empty queues, ARM(R,P) = T_R + sum(L_i) exactly (Eq. 2-4)."""
    route = Route((0, 4))
    links = physical_links(context.machine, route)
    expected = PACKET / bottleneck_bandwidth(list(links), PACKET) + sum(
        link.latency for link in links
    )
    assert arm_value(context, route, PACKET) == pytest.approx(expected)


def test_arm_multi_hop_sums_link_latencies(context):
    direct = arm_value(context, Route((0, 4)), PACKET)
    relay = arm_value(context, Route((0, 1, 5)), PACKET)
    # Two links, two latencies, similar bottleneck: relay costs more idle.
    assert relay > direct


def test_arm_grows_with_own_link_congestion(context):
    route = Route((0, 4))
    idle = arm_value(context, route, PACKET, viewer_gpu=0)
    link = context.links[physical_links(context.machine, route)[0].link_id]
    link.commit(64 * 1024 * 1024)
    congested = arm_value(context, route, PACKET, viewer_gpu=0)
    assert congested > idle


def test_remote_congestion_visible_only_after_broadcast(context):
    """The deciding GPU sees other GPUs' links via the delayed board."""
    route = Route((1, 5))  # link owned by GPU 1
    viewer_0_before = arm_value(context, route, PACKET, viewer_gpu=0)
    link = context.links[physical_links(context.machine, route)[0].link_id]
    link.commit(64 * 1024 * 1024)
    # Exact view (GPU 1's own link) updates instantly:
    assert arm_value(context, route, PACKET, viewer_gpu=1) > viewer_0_before
    # Remote view updates after the broadcast is processed:
    context.engine.run()
    assert arm_value(context, route, PACKET, viewer_gpu=0) > viewer_0_before


def test_policy_picks_minimum_arm(context):
    policy = AdaptiveArmPolicy()
    route = policy.choose_route(context, 0, 7, PACKET, PACKET)
    best = min(
        arm_value(context, r, PACKET, viewer_gpu=0)
        for r in context.enumerator.routes(0, 7)
    )
    assert arm_value(context, route, PACKET, viewer_gpu=0) == pytest.approx(best)


def test_policy_reroutes_around_congestion(context):
    policy = AdaptiveArmPolicy()
    first = policy.choose_route(context, 0, 7, PACKET, PACKET)
    for spec in physical_links(context.machine, first):
        context.links[spec.link_id].commit(256 * 1024 * 1024)
    context.engine.run()
    second = policy.choose_route(context, 0, 7, PACKET, PACKET)
    assert second != first


def test_exact_state_flag(context):
    """exact=True reads ground truth regardless of broadcasts."""
    route = Route((1, 5))
    link = context.links[physical_links(context.machine, route)[0].link_id]
    link.commit(64 * 1024 * 1024)
    # No engine.run(): the broadcast has not landed.
    stale = arm_value(context, route, PACKET, viewer_gpu=0)
    exact = arm_value(context, route, PACKET, exact=True)
    assert exact > stale


def test_spread_tolerance_rotates_equal_routes(context):
    policy = AdaptiveArmPolicy(spread_tolerance=1.0)
    routes = {
        tuple(policy.choose_route(context, 0, 7, PACKET, PACKET).gpus)
        for _ in range(8)
    }
    assert len(routes) > 1


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError):
        AdaptiveArmPolicy(spread_tolerance=-0.1)


class TestCentralized:
    def test_batch_overhead_scales_with_gpus(self, context):
        policy = CentralizedPolicy(per_gpu_sync_latency=10e-6)
        assert policy.batch_overhead(context) == pytest.approx(
            2 * 10e-6 * 7
        )

    def test_zero_sync_variant(self, context):
        assert CentralizedPolicy(0.0).batch_overhead(context) == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            CentralizedPolicy(per_gpu_sync_latency=-1e-6)

    def test_uses_exact_state(self, context):
        policy = CentralizedPolicy()
        route = Route((1, 5))
        link = context.links[physical_links(context.machine, route)[0].link_id]
        link.commit(1 << 30)
        # Without running the engine, only exact state sees this; the
        # centralized policy must avoid the congested direct route.
        chosen = policy.choose_route(context, 1, 5, PACKET, PACKET)
        assert chosen != route


def test_sweeps_do_not_retain_dead_machines():
    """Regression: route evaluation caches live on the machine object.

    The transmission-time cache used to be a module-level
    ``lru_cache`` keyed on the machine, so a parameter sweep creating a
    topology per configuration pinned every one of them in memory
    forever.  Two back-to-back sweeps must leave their machines
    collectable."""
    import gc
    import weakref

    from repro.routing import DirectPolicy
    from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator
    from repro.topology import dgx1_topology

    graveyard = []
    for _ in range(2):  # two sweeps: caches from sweep 1 must not pin
        # Bypass the factory's own deliberate maxsize=1 memo so every
        # sweep really owns a distinct machine object.
        machine = dgx1_topology.__wrapped__()
        flows = FlowMatrix.all_to_all((0, 1, 2, 3), 4 * 1024 * 1024)
        config = ShuffleConfig(injection_rate=None, consume_rate=None)
        for policy in (AdaptiveArmPolicy(), DirectPolicy()):
            ShuffleSimulator(machine, (0, 1, 2, 3), config).run(flows, policy)
        graveyard.append(weakref.ref(machine))
        del machine
    gc.collect()
    assert [ref() for ref in graveyard] == [None, None]
