"""Static routing policies pick the routes their metric implies."""

import pytest

from repro.routing import (
    BandwidthPolicy,
    DirectPolicy,
    HopCountPolicy,
    LatencyPolicy,
)
from repro.routing.base import RoutingContext
from repro.sim import Engine, LinkChannel, LinkStateBoard
from repro.topology import RouteEnumerator
from repro.topology.routes import (
    Route,
    physical_links,
    route_link_count,
    route_min_bandwidth,
)


@pytest.fixture
def context(dgx1):
    engine = Engine()
    board = LinkStateBoard(engine)
    links = {
        spec.link_id: LinkChannel(engine, spec, board) for spec in dgx1.links
    }
    return RoutingContext(
        engine=engine,
        machine=dgx1,
        enumerator=RouteEnumerator(dgx1),
        links=links,
        board=board,
        num_gpus=8,
    )


PACKET = 2 * 1024 * 1024


def test_direct_policy_never_relays(context):
    policy = DirectPolicy()
    for src, dst in ((0, 5), (0, 4), (3, 6)):
        route = policy.choose_route(context, src, dst, PACKET, PACKET)
        assert route.is_direct


def test_bandwidth_policy_maximizes_bottleneck(context):
    policy = BandwidthPolicy()
    route = policy.choose_route(context, 0, 7, PACKET, PACKET)
    chosen = route_min_bandwidth(context.machine, route)
    for candidate in context.enumerator.routes(0, 7):
        assert chosen >= route_min_bandwidth(context.machine, candidate)


def test_bandwidth_policy_prefers_double_links(context):
    # 0 -> 4 -> 7 is all double-NVLink (50 GB/s bottleneck).
    route = BandwidthPolicy().choose_route(context, 0, 7, PACKET, PACKET)
    assert route_min_bandwidth(context.machine, route) == pytest.approx(50e9)


def test_hop_count_policy_avoids_staged_paths(context):
    route = HopCountPolicy().choose_route(context, 0, 5, PACKET, PACKET)
    # Two NVLink links beat the five-link staged path.
    assert route_link_count(context.machine, route) == 2


def test_hop_count_policy_takes_direct_nvlink(context):
    route = HopCountPolicy().choose_route(context, 0, 4, PACKET, PACKET)
    assert route == Route((0, 4))


def test_latency_policy_minimizes_static_latency(context):
    from repro.topology.routes import route_static_latency

    route = LatencyPolicy().choose_route(context, 2, 7, PACKET, PACKET)
    chosen = route_static_latency(context.machine, route)
    for candidate in context.enumerator.routes(2, 7):
        assert chosen <= route_static_latency(context.machine, candidate) + 1e-12


def test_static_choices_are_deterministic(context):
    for policy in (BandwidthPolicy(), HopCountPolicy(), LatencyPolicy()):
        first = policy.choose_route(context, 1, 6, PACKET, PACKET)
        second = policy.choose_route(context, 1, 6, PACKET, PACKET)
        assert first == second


def test_static_policies_ignore_congestion(context):
    policy = BandwidthPolicy()
    before = policy.choose_route(context, 0, 7, PACKET, PACKET)
    # Saturate every link on the chosen route...
    for spec in physical_links(context.machine, before):
        context.links[spec.link_id].commit(1 << 30)
    after = policy.choose_route(context, 0, 7, PACKET, PACKET)
    # ...and the static policy does not care.
    assert after == before
