"""Route enumeration and route-level cost primitives.

A *route* is the GPU-level itinerary of a packet: the source GPU, up to
three intermediate relay GPUs (the paper's cap, §4.2.2) and the
destination GPU.  Consecutive GPUs on a multi-hop route must be NVLink
adjacent — relaying over a staged PCIe hop would be strictly worse than
the staged direct route.  The direct route itself (single hop; NVLink if
available, staged otherwise) is always a candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.links import LinkSpec, bottleneck_bandwidth
from repro.topology.machine import MachineTopology, TopologyError


class UnroutableError(TopologyError):
    """Every candidate route between two GPUs crosses a failed link."""


@dataclass(frozen=True)
class Route:
    """A GPU-level itinerary ``(src, *intermediates, dst)``."""

    gpus: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.gpus) < 2:
            raise ValueError("a route needs at least a source and a destination")
        if len(set(self.gpus)) != len(self.gpus):
            raise ValueError(f"route {self.gpus} contains a cycle")

    @property
    def src(self) -> int:
        return self.gpus[0]

    @property
    def dst(self) -> int:
        return self.gpus[-1]

    @property
    def intermediates(self) -> tuple[int, ...]:
        return self.gpus[1:-1]

    @property
    def num_hops(self) -> int:
        """Number of GPU-level hops (1 for a direct route)."""
        return len(self.gpus) - 1

    @property
    def is_direct(self) -> bool:
        return self.num_hops == 1

    def hops(self) -> tuple[tuple[int, int], ...]:
        """Consecutive (src_gpu, dst_gpu) pairs along the route."""
        return tuple(zip(self.gpus[:-1], self.gpus[1:]))

    def next_gpu_after(self, gpu_id: int) -> int:
        """The next relay/destination after ``gpu_id`` on this route."""
        position = self.gpus.index(gpu_id)
        if position == len(self.gpus) - 1:
            raise ValueError(f"gpu{gpu_id} is the final destination of {self}")
        return self.gpus[position + 1]

    def __str__(self) -> str:
        return "->".join(str(g) for g in self.gpus)


class RouteCache:
    """Per-machine cache of the static quantities of every route seen.

    Route evaluation (the ARM metric, Eq. 2) splits into a static part —
    the physical link list, the summed link latencies and the
    transmission time ``T_R`` per packet size — and a dynamic part (the
    per-link queue delays).  The static part depends only on the
    immutable topology, so it is computed once per (route[, packet
    size]) and looked up afterwards.

    One cache hangs off each :class:`MachineTopology` instance (see
    :func:`route_cache`), so it dies with the machine instead of leaking
    across benchmark sweeps the way a module-level ``lru_cache`` keyed
    on the machine object would.  :meth:`invalidate` drops everything;
    it is wired to :meth:`RouteEnumerator.fail_link` and the fault
    broadcasts so that chaos runs can never serve a stale static view
    even if link specs ever become mutable.
    """

    __slots__ = ("_machine", "_links", "_static_latency", "_transmission")

    def __init__(self, machine: MachineTopology) -> None:
        self._machine = machine
        self._links: dict[Route, tuple[LinkSpec, ...]] = {}
        self._static_latency: dict[Route, float] = {}
        self._transmission: dict[tuple[Route, int], float] = {}

    @property
    def machine(self) -> MachineTopology:
        return self._machine

    def links(self, route: Route) -> tuple[LinkSpec, ...]:
        """Physical links traversed by ``route``, in traversal order."""
        cached = self._links.get(route)
        if cached is None:
            expanded: list[LinkSpec] = []
            for src, dst in route.hops():
                expanded.extend(self._machine.hop_path(src, dst))
            cached = self._links[route] = tuple(expanded)
        return cached

    def static_latency(self, route: Route) -> float:
        """Sum of static link latencies along ``route``, seconds."""
        cached = self._static_latency.get(route)
        if cached is None:
            cached = self._static_latency[route] = sum(
                link.latency for link in self.links(route)
            )
        return cached

    def transmission_time(self, route: Route, packet_bytes: int) -> float:
        """Static ``T_R`` of Eq. 3 for one packet size over ``route``."""
        key = (route, packet_bytes)
        cached = self._transmission.get(key)
        if cached is None:
            links = self.links(route)
            cached = self._transmission[key] = packet_bytes / (
                bottleneck_bandwidth(list(links), packet_bytes)
            )
        return cached

    def invalidate(self) -> None:
        """Drop every cached quantity (link failure / fault broadcast)."""
        self._links.clear()
        self._static_latency.clear()
        self._transmission.clear()


def route_cache(machine: MachineTopology) -> RouteCache:
    """The :class:`RouteCache` owned by ``machine`` (created on demand)."""
    cache = machine.__dict__.get("_route_cache")
    if cache is None:
        cache = RouteCache(machine)
        object.__setattr__(machine, "_route_cache", cache)
    return cache


def physical_links(machine: MachineTopology, route: Route) -> tuple[LinkSpec, ...]:
    """Expand a GPU-level route into the physical links it traverses."""
    return route_cache(machine).links(route)


def route_min_bandwidth(machine: MachineTopology, route: Route) -> float:
    """Bottleneck (minimum) link bandwidth along the route, bytes/s."""
    return min(link.bandwidth for link in physical_links(machine, route))


def route_link_count(machine: MachineTopology, route: Route) -> int:
    """Number of physical links traversed (the 'hop count' metric).

    Counted over physical links rather than GPU hops so that a staged
    direct route (which crosses up to five links) is correctly seen as
    longer than a two-hop NVLink relay.
    """
    return len(physical_links(machine, route))


def route_static_latency(machine: MachineTopology, route: Route) -> float:
    """Sum of static link latencies along the route, seconds."""
    return route_cache(machine).static_latency(route)


class RouteEnumerator:
    """Enumerates candidate routes between GPU pairs on one machine.

    Args:
        machine: The topology to enumerate over.
        allowed_gpus: GPUs that may appear on routes (defaults to all).
            Only GPUs participating in the join relay packets, because
            relaying requires routing-buffer memory on the relay GPU.
        max_intermediates: Cap on relay GPUs per route (paper: 3).
    """

    def __init__(
        self,
        machine: MachineTopology,
        allowed_gpus: tuple[int, ...] | None = None,
        max_intermediates: int = 3,
    ) -> None:
        if max_intermediates < 0:
            raise ValueError("max_intermediates must be non-negative")
        self._machine = machine
        self._allowed = tuple(
            sorted(allowed_gpus if allowed_gpus is not None else machine.gpu_ids)
        )
        unknown = set(self._allowed) - set(machine.gpu_ids)
        if unknown:
            raise TopologyError(f"unknown GPUs in allowed set: {sorted(unknown)}")
        self._max_intermediates = max_intermediates
        #: Static-quantity cache shared with every other enumerator on
        #: the same machine instance (see :func:`route_cache`).
        self._cache = route_cache(machine)
        #: Link ids declared permanently failed; routes crossing any of
        #: them are excluded from enumeration.
        self._failed: set[int] = set()
        #: GPUs declared dead; they may not source, relay or terminate
        #: any route (survivor-only enumeration during crash recovery).
        self._dead_gpus: set[int] = set()
        #: Bumped whenever the failed-link set changes, so callers that
        #: cache per-(src, dst) winners (the static policies) can key
        #: their caches on it and never serve a stale route.
        self._version = 0
        self._memo: dict[tuple[int, int], tuple[Route, ...]] = {}
        self._raw_memo: dict[tuple[int, int], tuple[Route, ...]] = {}
        self._direct: dict[tuple[int, int], Route] = {}

    @property
    def machine(self) -> MachineTopology:
        return self._machine

    @property
    def cache(self) -> RouteCache:
        """Static route-quantity cache for this enumerator's machine."""
        return self._cache

    @property
    def allowed_gpus(self) -> tuple[int, ...]:
        return self._allowed

    @property
    def version(self) -> int:
        return self._version

    @property
    def failed_links(self) -> frozenset[int]:
        return frozenset(self._failed)

    def fail_link(self, link_id: int) -> None:
        """Invalidate every route crossing ``link_id`` (dead edge)."""
        if link_id not in self._failed:
            self._failed.add(link_id)
            self._version += 1
            self._memo.clear()
            self._cache.invalidate()

    def restore_link(self, link_id: int) -> None:
        """Re-admit routes crossing a previously failed link."""
        if link_id in self._failed:
            self._failed.discard(link_id)
            self._version += 1
            self._memo.clear()
            self._cache.invalidate()

    @property
    def dead_gpus(self) -> frozenset[int]:
        return frozenset(self._dead_gpus)

    def fail_gpu(self, gpu_id: int) -> None:
        """Remove a dead GPU from the allowed set entirely.

        Unlike :meth:`fail_link` — which only excludes routes crossing
        specific edges — a failed GPU may not appear on any route at
        all: not as a relay, not as an endpoint.  The raw enumeration
        memo is cleared too because the adjacency graph itself changed.
        """
        if gpu_id in self._dead_gpus:
            return
        self._dead_gpus.add(gpu_id)
        self._allowed = tuple(g for g in self._allowed if g != gpu_id)
        self._version += 1
        self._memo.clear()
        self._raw_memo.clear()
        self._cache.invalidate()

    def routes(self, src: int, dst: int) -> tuple[Route, ...]:
        """All candidate routes from ``src`` to ``dst``.

        The direct route comes first, followed by multi-hop all-NVLink
        routes ordered by increasing hop count.  Routes crossing a link
        marked failed via :meth:`fail_link` are excluded; when *every*
        candidate does, :class:`UnroutableError` is raised so callers
        can fall back (host staging) instead of hanging.
        """
        key = (src, dst)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        candidates = self._enumerate(src, dst)
        if self._failed:
            usable = tuple(
                route
                for route in candidates
                if not any(
                    link.link_id in self._failed
                    for link in physical_links(self._machine, route)
                )
            )
        else:
            usable = candidates
        if not usable:
            raise UnroutableError(
                f"no route from gpu{src} to gpu{dst} avoids the failed "
                f"links {sorted(self._failed)}"
            )
        self._memo[key] = usable
        return usable

    def _enumerate(self, src: int, dst: int) -> tuple[Route, ...]:
        if src == dst:
            raise ValueError("source and destination GPUs must differ")
        for gpu_id in (src, dst):
            if gpu_id in self._dead_gpus:
                raise UnroutableError(f"gpu{gpu_id} was declared dead")
            if gpu_id not in self._allowed:
                raise TopologyError(f"gpu{gpu_id} is not in the allowed set")
        cached = self._raw_memo.get((src, dst))
        if cached is not None:
            return cached
        found: list[Route] = [Route((src, dst))]
        allowed = set(self._allowed)
        adjacency = {
            g: [n for n in self._machine.nvlink_neighbors(g) if n in allowed]
            for g in self._allowed
        }

        def extend(path: list[int]) -> None:
            if len(path) - 1 > self._max_intermediates:
                return
            for neighbor in adjacency[path[-1]]:
                if neighbor in path:
                    continue
                if neighbor == dst:
                    if len(path) > 1:  # direct NVLink route already added
                        found.append(Route(tuple(path) + (dst,)))
                    continue
                path.append(neighbor)
                extend(path)
                path.pop()

        extend([src])
        multi_hop = sorted(found[1:], key=lambda r: (r.num_hops, r.gpus))
        result = (found[0], *multi_hop)
        self._raw_memo[(src, dst)] = result
        return result

    def direct_route(self, src: int, dst: int) -> Route:
        key = (src, dst)
        cached = self._direct.get(key)
        if cached is None:
            cached = self._direct[key] = Route(key)
        return cached
