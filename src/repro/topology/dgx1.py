"""The NVIDIA DGX-1 (V100) topology used throughout the paper.

Eight V100 GPUs in a *hybrid cube mesh*: the four GPUs on each baseboard
form an NVLink clique, four NVLink links cross between the boards, and
some pairs are double-linked.  The adjacency below is the nvidia-smi
``topo -m`` matrix for the DGX-1V (NV1 = single link, NV2 = bonded
double link); every GPU uses all six of its NVLink 2.0 ports.

PCIe: the machine has four PCIe switches, each shared by two GPUs, two
switches per CPU socket; the sockets are joined by QPI.  GPU pairs
without an NVLink link must *stage* through CPU memory (§2.2), which is
why 12 of the 28 GPU pairs ride the slow shared PCIe/QPI path and why
direct-routing joins congest.
"""

from __future__ import annotations

from functools import lru_cache

from repro.topology.builder import TopologyBuilder
from repro.topology.machine import MachineTopology

#: NVLink adjacency of the DGX-1V: (gpu_a, gpu_b, lanes).
DGX1_NVLINKS: tuple[tuple[int, int, int], ...] = (
    (0, 1, 1),
    (0, 2, 1),
    (0, 3, 2),
    (0, 4, 2),
    (1, 2, 2),
    (1, 3, 1),
    (1, 5, 2),
    (2, 3, 2),
    (2, 6, 1),
    (3, 7, 1),
    (4, 5, 1),
    (4, 6, 1),
    (4, 7, 2),
    (5, 6, 2),
    (5, 7, 1),
    (6, 7, 2),
)

#: PCIe switch membership: switch id -> (socket, GPUs behind it).
DGX1_PCIE_SWITCHES: tuple[tuple[int, int, tuple[int, int]], ...] = (
    (0, 0, (0, 1)),
    (1, 0, (2, 3)),
    (2, 1, (4, 5)),
    (3, 1, (6, 7)),
)


@lru_cache(maxsize=1)
def dgx1_topology() -> MachineTopology:
    """Build the 8-GPU DGX-1 machine of Figure 2."""
    builder = TopologyBuilder("dgx-1")
    builder.add_gpus(8)
    for switch_id, socket, gpus in DGX1_PCIE_SWITCHES:
        builder.add_switch(switch_id, socket=socket)
        for gpu_id in gpus:
            builder.attach_gpu_to_switch(gpu_id, switch_id)
    builder.add_qpi(0, 1)
    for gpu_a, gpu_b, lanes in DGX1_NVLINKS:
        builder.add_nvlink(gpu_a, gpu_b, lanes=lanes)
    return builder.build()
