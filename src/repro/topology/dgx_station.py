"""The NVIDIA DGX-Station topology (secondary machine in §5.1).

Four V100 GPUs, fully connected over NVLink (each pair by a single
link), all hanging off one PCIe switch on a single socket.  The paper
uses it to show the techniques generalize beyond the DGX-1.
"""

from __future__ import annotations

import itertools
from functools import lru_cache

from repro.topology.builder import TopologyBuilder
from repro.topology.machine import MachineTopology


@lru_cache(maxsize=1)
def dgx_station_topology() -> MachineTopology:
    """Build the 4-GPU DGX-Station machine."""
    builder = TopologyBuilder("dgx-station")
    builder.add_gpus(4)
    builder.add_switch(0, socket=0)
    for gpu_id in range(4):
        builder.attach_gpu_to_switch(gpu_id, 0)
    for gpu_a, gpu_b in itertools.combinations(range(4), 2):
        builder.add_nvlink(gpu_a, gpu_b, lanes=1)
    return builder.build()
