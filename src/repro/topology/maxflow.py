"""A small max-flow solver (Dinic's algorithm).

Used to compute cut capacities between GPU subsets when deriving the
bisection bandwidth of a machine configuration.  The graphs involved
are tiny (tens of nodes), but the bisection search solves *thousands*
of them — ``C(16, 8) / 2`` candidate bipartitions on a 16-GPU machine —
so the residual graph lives in flat parallel lists (edge-indexed
capacities and flows plus per-node adjacency index lists) instead of
per-edge objects, and the blocking-flow search runs iteratively.

Equivalence to the straightforward object/recursive formulation is
load-bearing: edges are visited in insertion order, augmenting-path
limits are ``min`` chains over residuals (no arithmetic), and the
per-phase flow totals accumulate in the same order — so computed flows
are bit-identical to the original implementation.
"""

from __future__ import annotations

from collections import deque

#: Residual capacities at or below this are treated as saturated.
_EPS = 1e-12


class FlowNetwork:
    """Directed flow network over integer node ids.

    Edges are stored as index pairs: the forward edge of
    :meth:`add_edge` gets an even id and its implied zero-capacity
    reverse edge the next odd id, so ``edge ^ 1`` is always the
    residual partner.
    """

    __slots__ = ("num_nodes", "_edge_dst", "_edge_cap", "_edge_flow", "_adjacency")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError("network needs at least one node")
        self.num_nodes = num_nodes
        self._edge_dst: list[int] = []
        self._edge_cap: list[float] = []
        self._edge_flow: list[float] = []
        self._adjacency: list[list[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, src: int, dst: int, capacity: float) -> None:
        """Add a directed edge; a zero-capacity reverse edge is implied."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        edge_id = len(self._edge_dst)
        self._edge_dst.extend((dst, src))
        self._edge_cap.extend((capacity, 0.0))
        self._edge_flow.extend((0.0, 0.0))
        self._adjacency[src].append(edge_id)
        self._adjacency[dst].append(edge_id + 1)

    def max_flow(self, source: int, sink: int) -> float:
        """Compute the maximum flow from ``source`` to ``sink``."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(source, sink)
            if levels[sink] < 0:
                return total
            iterators = [0] * self.num_nodes
            while True:
                pushed = self._augment(source, sink, levels, iterators)
                if pushed <= 0:
                    break
                total += pushed

    def _bfs_levels(self, source: int, sink: int) -> list[int]:
        dst = self._edge_dst
        cap = self._edge_cap
        flow = self._edge_flow
        levels = [-1] * self.num_nodes
        levels[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            next_level = levels[node] + 1
            for edge in self._adjacency[node]:
                target = dst[edge]
                if levels[target] < 0 and cap[edge] - flow[edge] > _EPS:
                    levels[target] = next_level
                    queue.append(target)
        return levels

    def _augment(
        self, source: int, sink: int, levels: list[int], iterators: list[int]
    ) -> float:
        """Push one augmenting path through the level graph.

        Iterative version of the classic recursive search: the explicit
        ``path`` / ``limits`` stacks replay exactly the recursion's edge
        order — a node's iterator parks on the edge an augmentation used
        (so the next path re-examines it) and advances past dead ends.
        """
        dst = self._edge_dst
        cap = self._edge_cap
        flow = self._edge_flow
        adjacency = self._adjacency
        path: list[int] = []
        limits: list[float] = []
        node = source
        limit = float("inf")
        while True:
            if node == sink:
                for edge in path:
                    flow[edge] += limit
                    flow[edge ^ 1] -= limit
                return limit
            edges = adjacency[node]
            count = len(edges)
            index = iterators[node]
            advanced = False
            while index < count:
                edge = edges[index]
                residual = cap[edge] - flow[edge]
                if residual > _EPS and levels[dst[edge]] == levels[node] + 1:
                    iterators[node] = index
                    path.append(edge)
                    limits.append(limit)
                    if residual < limit:
                        limit = residual
                    node = dst[edge]
                    advanced = True
                    break
                index += 1
            if advanced:
                continue
            iterators[node] = index
            if not path:
                return 0.0
            edge = path.pop()
            limit = limits.pop()
            node = dst[edge ^ 1]
            iterators[node] += 1
