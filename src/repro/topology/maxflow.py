"""A small max-flow solver (Dinic's algorithm).

Used to compute cut capacities between GPU subsets when deriving the
bisection bandwidth of a machine configuration.  The graphs involved are
tiny (tens of nodes), so clarity is preferred over micro-optimization.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class _Edge:
    dst: int
    capacity: float
    flow: float = 0.0
    reverse_index: int = -1

    @property
    def residual(self) -> float:
        return self.capacity - self.flow


@dataclass
class FlowNetwork:
    """Directed flow network over integer node ids."""

    num_nodes: int
    _adjacency: list[list[_Edge]] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("network needs at least one node")
        self._adjacency = [[] for _ in range(self.num_nodes)]

    def add_edge(self, src: int, dst: int, capacity: float) -> None:
        """Add a directed edge; a zero-capacity reverse edge is implied."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        forward = _Edge(dst=dst, capacity=capacity)
        backward = _Edge(dst=src, capacity=0.0)
        forward.reverse_index = len(self._adjacency[dst])
        backward.reverse_index = len(self._adjacency[src])
        self._adjacency[src].append(forward)
        self._adjacency[dst].append(backward)

    def max_flow(self, source: int, sink: int) -> float:
        """Compute the maximum flow from ``source`` to ``sink``."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(source, sink)
            if levels[sink] < 0:
                return total
            iterators = [0] * self.num_nodes
            while True:
                pushed = self._dfs_push(source, sink, float("inf"), levels, iterators)
                if pushed <= 0:
                    break
                total += pushed

    def _bfs_levels(self, source: int, sink: int) -> list[int]:
        levels = [-1] * self.num_nodes
        levels[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge in self._adjacency[node]:
                if edge.residual > 1e-12 and levels[edge.dst] < 0:
                    levels[edge.dst] = levels[node] + 1
                    queue.append(edge.dst)
        return levels

    def _dfs_push(
        self,
        node: int,
        sink: int,
        limit: float,
        levels: list[int],
        iterators: list[int],
    ) -> float:
        if node == sink:
            return limit
        edges = self._adjacency[node]
        while iterators[node] < len(edges):
            edge = edges[iterators[node]]
            if edge.residual > 1e-12 and levels[edge.dst] == levels[node] + 1:
                pushed = self._dfs_push(
                    edge.dst, sink, min(limit, edge.residual), levels, iterators
                )
                if pushed > 0:
                    edge.flow += pushed
                    reverse = self._adjacency[edge.dst][edge.reverse_index]
                    reverse.flow -= pushed
                    return pushed
            iterators[node] += 1
        return 0.0
