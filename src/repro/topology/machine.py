"""The machine topology graph and its structural queries.

A :class:`MachineTopology` is an immutable description of one scale-up
server: which GPUs exist, how they hang off PCIe switches and CPU
sockets, and which NVLink links connect them directly.  It answers the
structural questions the join and routing layers need:

* the *direct route* between two GPUs — NVLink if present, otherwise the
  staged PCIe(/QPI) path through switches and CPU memory (§2.2),
* NVLink adjacency for multi-hop route enumeration (§4.1),
* bisection bandwidth of a GPU subset, used for the utilization metric
  of Figure 8.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.topology.links import LinkSpec, LinkType
from repro.topology.maxflow import FlowNetwork
from repro.topology.nodes import Node, gpu


class TopologyError(ValueError):
    """Raised for malformed topologies or impossible path queries."""


@dataclass(frozen=True)
class MachineTopology:
    """An immutable interconnect graph for one multi-GPU server.

    Build instances through :class:`repro.topology.TopologyBuilder` or
    the canned factories (:func:`repro.topology.dgx1_topology`,
    :func:`repro.topology.dgx_station_topology`).
    """

    name: str
    nodes: tuple[Node, ...]
    links: tuple[LinkSpec, ...]

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise TopologyError("duplicate nodes in topology")
        ids = [link.link_id for link in self.links]
        if len(set(ids)) != len(ids):
            raise TopologyError("duplicate link ids in topology")
        for link in self.links:
            if link.src not in node_set or link.dst not in node_set:
                raise TopologyError(f"link {link} references unknown node")
        # Structural queries and routing layers look things up keyed on
        # the (immutable) topology millions of times per simulated
        # shuffle, so the hash is computed once and every derived index
        # lives on the instance — dying with it — instead of in
        # module-level ``lru_cache`` slots that would both rehash the
        # whole graph per lookup and keep dead machines alive across
        # benchmark sweeps.
        object.__setattr__(self, "_hash", hash((self.name, self.nodes, self.links)))
        object.__setattr__(self, "_link_index_cache", None)
        object.__setattr__(self, "_outgoing_index_cache", None)
        object.__setattr__(self, "_nvlink_adjacency_cache", None)
        object.__setattr__(self, "_direct_paths", {})
        object.__setattr__(self, "_cut_capacity_cache", {})
        object.__setattr__(self, "_bisection_cut_cache", {})

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def gpu_ids(self) -> tuple[int, ...]:
        """Indices of all GPUs, sorted."""
        return tuple(sorted(n.index for n in self.nodes if n.is_gpu))

    @property
    def num_gpus(self) -> int:
        return len(self.gpu_ids)

    def links_between(self, src: Node, dst: Node) -> tuple[LinkSpec, ...]:
        """All directed links from ``src`` to ``dst``."""
        return self._link_index().get((src, dst), ())

    def nvlink_between(self, src_gpu: int, dst_gpu: int) -> LinkSpec | None:
        """The NVLink link from one GPU to another, if they are adjacent.

        Bonded (double) links appear as a single spec with ``lanes=2``.
        """
        for link in self.links_between(gpu(src_gpu), gpu(dst_gpu)):
            if link.link_type is LinkType.NVLINK:
                return link
        return None

    def nvlink_neighbors(self, gpu_id: int) -> tuple[int, ...]:
        """GPU indices directly reachable from ``gpu_id`` over NVLink."""
        return self._nvlink_adjacency().get(gpu_id, ())

    def outgoing_links(self, node: Node) -> tuple[LinkSpec, ...]:
        return self._outgoing_index().get(node, ())

    # ------------------------------------------------------------------
    # Direct routes
    # ------------------------------------------------------------------

    def direct_path(self, src_gpu: int, dst_gpu: int) -> tuple[LinkSpec, ...]:
        """Physical links of the *direct route* between two GPUs.

        The direct route is what single-hop implementations (DPRJ, NCCL
        P2P) use: the NVLink link when the pair is NVLink-adjacent, and
        otherwise the staged path over PCIe switches (and QPI when the
        GPUs live on different sockets).  Staged transfers count as
        direct per the paper because no intermediate *GPU* is involved.
        """
        return self._direct_path_cached(src_gpu, dst_gpu)

    def hop_path(self, src_gpu: int, dst_gpu: int) -> tuple[LinkSpec, ...]:
        """Physical links for one GPU-level hop of a multi-hop route.

        Identical to :meth:`direct_path`; named separately because the
        routing layer composes hops out of these.
        """
        return self.direct_path(src_gpu, dst_gpu)

    def _direct_path_cached(self, src_gpu: int, dst_gpu: int):
        cache = self._direct_paths
        key = (src_gpu, dst_gpu)
        path = cache.get(key)
        if path is None:
            path = cache[key] = self._compute_direct_path(src_gpu, dst_gpu)
        return path

    def _compute_direct_path(
        self, src_gpu: int, dst_gpu: int
    ) -> tuple[LinkSpec, ...]:
        if src_gpu == dst_gpu:
            raise TopologyError(f"no path from gpu{src_gpu} to itself")
        nvlink = self.nvlink_between(src_gpu, dst_gpu)
        if nvlink is not None:
            return (nvlink,)
        return self._staged_path(gpu(src_gpu), gpu(dst_gpu))

    def _staged_path(self, src: Node, dst: Node) -> tuple[LinkSpec, ...]:
        """Cheapest path that relays through no other GPU (Dijkstra).

        On point-to-point machines (DGX-1) this walks the PCIe tree up
        from the source GPU, across QPI if the sockets differ, and back
        down to the destination — the driver's staging behaviour of
        §2.2.  On NVSwitch machines (DGX-2) it goes through the switch
        fabric's NVLink ports instead.  GPU-to-GPU NVLink links are
        excluded: using one would mean relaying through a GPU, which is
        multi-hop routing, not a direct route.
        """
        best_cost: dict[Node, float] = {src: 0.0}
        best_link: dict[Node, LinkSpec] = {}
        heap: list[tuple[float, int, Node]] = [(0.0, 0, src)]
        tiebreak = itertools.count(1)
        visited: set[Node] = set()
        while heap:
            cost, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for link in self.outgoing_links(node):
                if (
                    link.link_type is LinkType.NVLINK
                    and link.src.is_gpu
                    and link.dst.is_gpu
                ):
                    continue  # a GPU-GPU hop is not a direct route
                if link.dst.is_gpu and link.dst != dst:
                    continue
                next_cost = cost + 1.0 / link.bandwidth + link.latency
                if next_cost < best_cost.get(link.dst, float("inf")):
                    best_cost[link.dst] = next_cost
                    best_link[link.dst] = link
                    heapq.heappush(heap, (next_cost, next(tiebreak), link.dst))
        if dst not in best_link:
            raise TopologyError(f"no staged path from {src} to {dst}")
        path: list[LinkSpec] = []
        node = dst
        while node != src:
            link = best_link[node]
            path.append(link)
            node = link.src
        path.reverse()
        return tuple(path)

    # ------------------------------------------------------------------
    # Bisection bandwidth (Figure 8 metric)
    # ------------------------------------------------------------------

    def bisection_bandwidth(self, gpu_ids: tuple[int, ...] | None = None) -> float:
        """Bisection bandwidth (bytes/s, one direction) of a GPU subset.

        Defined as the minimum, over all balanced bipartitions of the
        participating GPUs, of the max-flow capacity from one half to
        the other through the full link graph.  Shared PCIe uplinks and
        the QPI link are therefore counted once, not per GPU pair.
        """
        ids = tuple(sorted(gpu_ids if gpu_ids is not None else self.gpu_ids))
        if len(ids) < 2:
            raise TopologyError("bisection bandwidth needs at least 2 GPUs")
        half = len(ids) // 2
        best = float("inf")
        seen: set[frozenset[int]] = set()
        for side_a in itertools.combinations(ids, half):
            key = frozenset(side_a)
            complement = frozenset(ids) - key
            if frozenset(complement) in seen:
                continue
            seen.add(key)
            side_b = tuple(sorted(complement))
            best = min(best, self._cut_capacity(side_a, side_b))
        return best

    def _cut_capacity(
        self, side_a: tuple[int, ...], side_b: tuple[int, ...]
    ) -> float:
        """Max-flow capacity from ``side_a`` to ``side_b``.

        Only the GPUs in the two sides participate; links touching any
        other GPU are excluded, because a non-participating GPU cannot
        relay traffic for the configuration being measured.

        Results are memoized per instance: the topology is immutable,
        and the bisection search of a 16-GPU machine prices thousands
        of bipartitions that recur across every report built on the
        same machine (perf harness, figures, chaos sweeps).
        """
        cache: dict = self._cut_capacity_cache
        cache_key = (side_a, side_b)
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        participating = set(side_a) | set(side_b)
        index = {node: i for i, node in enumerate(self.nodes)}
        source = len(index)
        sink = len(index) + 1
        network = FlowNetwork(len(index) + 2)
        infinite = sum(link.bandwidth for link in self.links) + 1.0
        for link in self.links:
            if (link.src.is_gpu and link.src.index not in participating) or (
                link.dst.is_gpu and link.dst.index not in participating
            ):
                continue
            network.add_edge(index[link.src], index[link.dst], link.bandwidth)
        for gpu_id in side_a:
            network.add_edge(source, index[gpu(gpu_id)], infinite)
        for gpu_id in side_b:
            network.add_edge(index[gpu(gpu_id)], sink, infinite)
        capacity = network.max_flow(source, sink)
        cache[cache_key] = capacity
        return capacity

    # ------------------------------------------------------------------
    # Internal caches (per instance: a machine's indexes die with it)
    # ------------------------------------------------------------------

    def _link_index(self) -> dict[tuple[Node, Node], tuple[LinkSpec, ...]]:
        cached = self._link_index_cache
        if cached is None:
            index: dict[tuple[Node, Node], list[LinkSpec]] = {}
            for link in self.links:
                index.setdefault((link.src, link.dst), []).append(link)
            cached = {key: tuple(value) for key, value in index.items()}
            object.__setattr__(self, "_link_index_cache", cached)
        return cached

    def _outgoing_index(self) -> dict[Node, tuple[LinkSpec, ...]]:
        cached = self._outgoing_index_cache
        if cached is None:
            index: dict[Node, list[LinkSpec]] = {}
            for link in self.links:
                index.setdefault(link.src, []).append(link)
            cached = {key: tuple(value) for key, value in index.items()}
            object.__setattr__(self, "_outgoing_index_cache", cached)
        return cached

    def _nvlink_adjacency(self) -> dict[int, tuple[int, ...]]:
        cached = self._nvlink_adjacency_cache
        if cached is None:
            adjacency: dict[int, list[int]] = {g: [] for g in self.gpu_ids}
            for link in self.links:
                if (
                    link.link_type is LinkType.NVLINK
                    and link.src.is_gpu
                    and link.dst.is_gpu
                ):
                    adjacency[link.src.index].append(link.dst.index)
            cached = {
                key: tuple(sorted(value)) for key, value in adjacency.items()
            }
            object.__setattr__(self, "_nvlink_adjacency_cache", cached)
        return cached

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> dict:
        # Derived caches are cheap to rebuild and ``_hash`` is only
        # valid within one interpreter (string hashing is salted), so
        # pickles carry the structural fields alone.
        return {
            "name": self.name,
            "nodes": self.nodes,
            "links": self.links,
        }

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        self.__post_init__()
