"""Interconnect link types and their bandwidth/latency characteristics.

The constants here are the calibration anchors of the whole reproduction
(see DESIGN.md §6).  They follow the paper's §2.2 description of the
DGX-1 fabric:

* **NVLink 2.0** — exclusive point-to-point GPU-GPU links, 25 GB/s per
  link per direction.  Pairs may be connected by a *double* link
  (50 GB/s), which we model as a single ``LinkSpec`` with ``lanes=2``.
* **PCIe 3.0 x16** — 16 GB/s per direction, but the switch uplink is
  *shared* by the GPUs behind the same switch, which is exactly the
  congestion the paper calls out.
* **QPI** — 25.6 GB/s socket-to-socket; staged transfers between GPUs on
  different sockets cross it.

Effective bandwidth as a function of transfer size follows the classic
latency/bandwidth model ``t(s) = t0 + s / B``, i.e.
``B_E(s) = s / (t0 + s / B) = B * s / (s + B * t0)``.  With the
per-link-type ``t0`` values below this reproduces the paper's Figure 4:
roughly 20x degradation at 2 KB packets and saturation past ~12 MB.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.topology.nodes import Node

GB = 1_000_000_000  # bytes; link vendors quote decimal gigabytes
MB = 1_048_576
KB = 1024

#: Peak per-direction bandwidth per link, bytes/second.
NVLINK_BANDWIDTH = 25 * GB
PCIE_BANDWIDTH = 16 * GB
QPI_BANDWIDTH = 25.6 * GB
#: EDR InfiniBand (100 Gb/s) for the rack-scale extension (paper §7).
INFINIBAND_BANDWIDTH = 12.5 * GB

#: Per-transfer launch + wire latency (the ``t0`` of the size/bandwidth
#: curve).  Chosen so 2 KB packets see roughly 16-20x degradation,
#: matching Figure 4.
NVLINK_LATENCY = 1.3e-6
PCIE_LATENCY = 2.5e-6
QPI_LATENCY = 0.6e-6
INFINIBAND_LATENCY = 1.5e-6


class LinkType(enum.Enum):
    """Interconnect family, ordered roughly by efficiency."""

    NVLINK = "nvlink"
    PCIE = "pcie"
    QPI = "qpi"
    INFINIBAND = "infiniband"

    @property
    def default_bandwidth(self) -> float:
        return _DEFAULT_BANDWIDTH[self]

    @property
    def default_latency(self) -> float:
        return _DEFAULT_LATENCY[self]


_DEFAULT_BANDWIDTH = {
    LinkType.NVLINK: float(NVLINK_BANDWIDTH),
    LinkType.PCIE: float(PCIE_BANDWIDTH),
    LinkType.QPI: float(QPI_BANDWIDTH),
    LinkType.INFINIBAND: float(INFINIBAND_BANDWIDTH),
}

_DEFAULT_LATENCY = {
    LinkType.NVLINK: NVLINK_LATENCY,
    LinkType.PCIE: PCIE_LATENCY,
    LinkType.QPI: QPI_LATENCY,
    LinkType.INFINIBAND: INFINIBAND_LATENCY,
}


@dataclass(frozen=True)
class LinkSpec:
    """One *directed* physical link between two topology nodes.

    Bidirectional interconnects are modelled as two independent
    ``LinkSpec`` instances (NVLink/PCIe/QPI all have one sub-link per
    direction, so the directions genuinely do not contend).

    Attributes:
        link_id: Unique id within a topology; stable across runs.
        src, dst: Endpoints.
        link_type: Interconnect family.
        lanes: Number of parallel links bonded together (NVLink pairs on
            the DGX-1 may be double-linked).
        bandwidth: Peak bandwidth in bytes/second *including* lanes.
        latency: Per-transfer launch + propagation latency in seconds.
    """

    link_id: int
    src: Node
    dst: Node
    link_type: LinkType
    lanes: int = 1
    bandwidth: float = field(default=0.0)
    latency: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")
        if self.bandwidth <= 0.0:
            object.__setattr__(
                self, "bandwidth", self.link_type.default_bandwidth * self.lanes
            )
        if self.latency <= 0.0:
            object.__setattr__(self, "latency", self.link_type.default_latency)

    def __str__(self) -> str:
        lanes = f" x{self.lanes}" if self.lanes > 1 else ""
        return f"{self.src}->{self.dst} [{self.link_type.value}{lanes}]"


def transfer_time(link: LinkSpec, nbytes: float) -> float:
    """Uncontended time to move ``nbytes`` over ``link``.

    This is the service time of one transfer: launch latency plus wire
    time.  Queueing on a busy link is added by the simulator, not here.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return link.latency + nbytes / link.bandwidth


def effective_bandwidth(link: LinkSpec, nbytes: float) -> float:
    """Achieved bandwidth ``B_E(s)`` for a transfer of ``nbytes``.

    This is the paper's ``B_E(||P||)`` from Equation 3: the bandwidth an
    isolated transfer of this size actually sees, accounting for the
    fixed launch overhead that makes small packets inefficient
    (Figure 4).
    """
    if nbytes <= 0:
        return 0.0
    return nbytes / transfer_time(link, nbytes)


def bottleneck_bandwidth(links: list[LinkSpec], nbytes: float) -> float:
    """Effective bandwidth of a pipelined transfer across ``links``.

    Per the paper (§4.2.2), a pipelined multi-link transfer is limited by
    its slowest constituent link.
    """
    if not links:
        raise ValueError("a route must contain at least one link")
    return min(effective_bandwidth(link, nbytes) for link in links)
