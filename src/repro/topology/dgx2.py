"""The NVIDIA DGX-2: 16 V100s on an NVSwitch crossbar.

The paper's introduction points at machines with "up to 20" GPUs; the
DGX-2 is the 16-GPU instance.  Unlike the DGX-1's point-to-point cube
mesh, every DGX-2 GPU drives its six NVLink ports into a *switch
fabric* (12 NVSwitch chips, 6 per baseboard, bridged between boards),
giving every GPU pair a full-bandwidth non-blocking path.

We model each baseboard's switch plane as one NVSwitch node: every GPU
attaches with its aggregate 6-link port (150 GB/s per direction), and
the two planes are bridged by the inter-board trunk (48 links,
1200 GB/s per direction).  PCIe and QPI exist for host staging exactly
as on the DGX-1.

This machine is deliberately *boring* for MG-Join: with a crossbar, the
direct route already achieves full bandwidth, there are no GPU-relay
routes to exploit, and adaptive routing degenerates gracefully to
direct routing — a useful negative control for the claim that
MG-Join's gains come from point-to-point topologies.
"""

from __future__ import annotations

from functools import lru_cache

from repro.topology.builder import TopologyBuilder
from repro.topology.machine import MachineTopology
from repro.topology.nodes import switch

#: Index of the first NVSwitch plane node (after the 4 PCIe switches).
_NVSWITCH_BASE = 100


@lru_cache(maxsize=1)
def dgx2_topology() -> MachineTopology:
    """Build the 16-GPU DGX-2 machine."""
    builder = TopologyBuilder("dgx-2")
    builder.add_gpus(16)
    # PCIe: four switches of four GPUs each, two per socket.
    for switch_id in range(4):
        builder.add_switch(switch_id, socket=switch_id // 2)
        for gpu_id in range(switch_id * 4, switch_id * 4 + 4):
            builder.attach_gpu_to_switch(gpu_id, switch_id)
    builder.add_qpi(0, 1)
    # NVSwitch planes: one per baseboard of 8 GPUs.
    for plane in (0, 1):
        builder.add_switch(_NVSWITCH_BASE + plane)
        for gpu_id in range(plane * 8, plane * 8 + 8):
            builder.add_nvlink_to_switch(
                gpu_id, _NVSWITCH_BASE + plane, lanes=6
            )
    # Inter-board trunk: 48 NVLink lanes between the planes.
    builder.add_nvlink_between_switches(
        _NVSWITCH_BASE, _NVSWITCH_BASE + 1, lanes=48
    )
    return builder.build()


def nvswitch_plane(plane: int):
    """The NVSwitch node of one baseboard (for tests/diagnostics)."""
    if plane not in (0, 1):
        raise ValueError("the DGX-2 has two NVSwitch planes: 0 and 1")
    return switch(_NVSWITCH_BASE + plane)
