"""Rack-scale machines: multiple DGX nodes bridged by RDMA NICs.

The paper's conclusion names this as future work: "high performance
network interconnects such as RDMA can be an opportunity to further
improve the scale of multi-GPU architectures for huge data sets" (§7).
This module builds that machine: N single-node topologies (DGX-1 by
default) with their CPU sockets joined by InfiniBand links, so the
whole MG-Join stack — route enumeration, adaptive routing, the join
itself — runs unchanged across nodes.

Cross-node transfers stage through host memory and the NIC, exactly
like cross-socket PCIe staging but over a longer, thinner pipe; within
a node, everything behaves as before.  Multi-hop GPU relays never cross
node boundaries (relay hops require GPU-GPU NVLink), so the adaptive
policy's job becomes spreading intra-node traffic while the inter-node
links carry what they must — which is exactly how rack-scale GPU joins
behave in practice.
"""

from __future__ import annotations

from functools import lru_cache

from repro.topology.builder import TopologyBuilder
from repro.topology.dgx1 import DGX1_NVLINKS, DGX1_PCIE_SWITCHES
from repro.topology.machine import MachineTopology


def multi_node_dgx1(
    num_nodes: int = 2, ib_lanes: int = 4
) -> MachineTopology:
    """``num_nodes`` DGX-1 boxes joined by an InfiniBand ring.

    GPUs of node ``n`` are numbered ``8n .. 8n+7``.  Each node exposes
    ``ib_lanes`` bonded IB ports from its socket-0 CPU; nodes are
    joined pairwise around a ring (both neighbours for >2 nodes).
    """
    if num_nodes < 2:
        raise ValueError("a multi-node machine needs at least 2 nodes")
    if ib_lanes < 1:
        raise ValueError("ib_lanes must be >= 1")
    return _build(num_nodes, ib_lanes)


@lru_cache(maxsize=8)
def _build(num_nodes: int, ib_lanes: int) -> MachineTopology:
    builder = TopologyBuilder(f"dgx1-x{num_nodes}")
    builder.add_gpus(8 * num_nodes)
    for node in range(num_nodes):
        gpu_base = 8 * node
        switch_base = 4 * node
        cpu_base = 2 * node
        for switch_offset, socket_offset, gpus in DGX1_PCIE_SWITCHES:
            builder.add_switch(
                switch_base + switch_offset, socket=cpu_base + socket_offset
            )
            for gpu_id in gpus:
                builder.attach_gpu_to_switch(
                    gpu_base + gpu_id, switch_base + switch_offset
                )
        builder.add_qpi(cpu_base, cpu_base + 1)
        for gpu_a, gpu_b, lanes in DGX1_NVLINKS:
            builder.add_nvlink(gpu_base + gpu_a, gpu_base + gpu_b, lanes=lanes)
    # InfiniBand ring between the nodes' socket-0 CPUs.
    pairs = (
        [(node, (node + 1) % num_nodes) for node in range(num_nodes)]
        if num_nodes > 2
        else [(0, 1)]
    )
    for node_a, node_b in pairs:
        builder.add_infiniband(2 * node_a, 2 * node_b, lanes=ib_lanes)
    return builder.build()


def node_of(gpu_id: int, gpus_per_node: int = 8) -> int:
    """Which node a GPU belongs to."""
    if gpu_id < 0:
        raise ValueError("gpu_id must be non-negative")
    return gpu_id // gpus_per_node
