"""Fluent construction of :class:`MachineTopology` instances.

The builder adds *bidirectional* interconnects (every NVLink/PCIe/QPI
attachment creates one directed link per direction, matching the
sub-link-per-direction hardware design described in §2.2) and validates
the result: every GPU must reach every other GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.links import LinkSpec, LinkType
from repro.topology.machine import MachineTopology, TopologyError
from repro.topology.nodes import Node, cpu, gpu, switch


@dataclass
class TopologyBuilder:
    """Incrementally assemble a machine topology.

    Example — two GPUs behind one PCIe switch plus an NVLink pair::

        builder = TopologyBuilder("toy")
        builder.add_gpus(2)
        builder.add_switch(0, socket=0)
        builder.attach_gpu_to_switch(0, 0)
        builder.attach_gpu_to_switch(1, 0)
        builder.add_nvlink(0, 1, lanes=2)
        machine = builder.build()
    """

    name: str
    _nodes: list[Node] = field(default_factory=list)
    _links: list[LinkSpec] = field(default_factory=list)
    _next_link_id: int = 0

    # -- nodes ----------------------------------------------------------

    def add_gpus(self, count: int) -> "TopologyBuilder":
        for index in range(count):
            self._add_node(gpu(index))
        return self

    def add_cpu(self, index: int) -> "TopologyBuilder":
        self._add_node(cpu(index))
        return self

    def add_switch(self, index: int, socket: int | None = None) -> "TopologyBuilder":
        """Add a PCIe switch, optionally pre-wired to a CPU socket uplink."""
        self._add_node(switch(index))
        if socket is not None:
            if cpu(socket) not in self._nodes:
                self.add_cpu(socket)
            self._add_bidirectional(switch(index), cpu(socket), LinkType.PCIE)
        return self

    def _add_node(self, node: Node) -> None:
        if node in self._nodes:
            raise TopologyError(f"node {node} added twice")
        self._nodes.append(node)

    # -- links ----------------------------------------------------------

    def add_nvlink(
        self, gpu_a: int, gpu_b: int, lanes: int = 1
    ) -> "TopologyBuilder":
        self._add_bidirectional(gpu(gpu_a), gpu(gpu_b), LinkType.NVLINK, lanes)
        return self

    def add_nvlink_to_switch(
        self, gpu_id: int, switch_id: int, lanes: int = 1
    ) -> "TopologyBuilder":
        """Attach a GPU's NVLink port(s) to an NVSwitch node (DGX-2)."""
        self._add_bidirectional(gpu(gpu_id), switch(switch_id), LinkType.NVLINK, lanes)
        return self

    def add_nvlink_between_switches(
        self, switch_a: int, switch_b: int, lanes: int = 1
    ) -> "TopologyBuilder":
        """NVLink trunk between two NVSwitch planes (DGX-2 baseboards)."""
        self._add_bidirectional(
            switch(switch_a), switch(switch_b), LinkType.NVLINK, lanes
        )
        return self

    def attach_gpu_to_switch(self, gpu_id: int, switch_id: int) -> "TopologyBuilder":
        self._add_bidirectional(gpu(gpu_id), switch(switch_id), LinkType.PCIE)
        return self

    def add_qpi(self, cpu_a: int, cpu_b: int) -> "TopologyBuilder":
        self._add_bidirectional(cpu(cpu_a), cpu(cpu_b), LinkType.QPI)
        return self

    def add_infiniband(
        self, cpu_a: int, cpu_b: int, lanes: int = 1
    ) -> "TopologyBuilder":
        """RDMA NIC pair between two nodes' CPU sockets (rack scale)."""
        self._add_bidirectional(cpu(cpu_a), cpu(cpu_b), LinkType.INFINIBAND, lanes)
        return self

    def _add_bidirectional(
        self, node_a: Node, node_b: Node, link_type: LinkType, lanes: int = 1
    ) -> None:
        for src, dst in ((node_a, node_b), (node_b, node_a)):
            if src not in self._nodes or dst not in self._nodes:
                raise TopologyError(f"add nodes before linking {src}->{dst}")
            self._links.append(
                LinkSpec(
                    link_id=self._next_link_id,
                    src=src,
                    dst=dst,
                    link_type=link_type,
                    lanes=lanes,
                )
            )
            self._next_link_id += 1

    # -- finalization ----------------------------------------------------

    def build(self) -> MachineTopology:
        machine = MachineTopology(
            name=self.name, nodes=tuple(self._nodes), links=tuple(self._links)
        )
        self._validate_connectivity(machine)
        return machine

    @staticmethod
    def _validate_connectivity(machine: MachineTopology) -> None:
        ids = machine.gpu_ids
        if len(ids) < 1:
            raise TopologyError("topology contains no GPUs")
        for src in ids:
            for dst in ids:
                if src != dst:
                    machine.direct_path(src, dst)  # raises if unreachable
