"""Machine topology models for scale-up multi-GPU servers.

This package models the interconnect fabric of machines like the NVIDIA
DGX-1 at the level the paper reasons about: GPUs, PCIe switches and CPU
sockets as nodes, and NVLink / PCIe / QPI links as directed edges with
individual bandwidth and latency characteristics.

The topology layer is purely structural — it answers questions like
"which physical links does a transfer from GPU 0 to GPU 5 traverse?" and
"what is the bisection bandwidth of this GPU subset?".  Time-domain
behaviour (queueing, congestion) lives in :mod:`repro.sim`.
"""

from repro.topology.links import (
    LinkSpec,
    LinkType,
    effective_bandwidth,
    transfer_time,
)
from repro.topology.nodes import Node, NodeKind, cpu, gpu, switch
from repro.topology.machine import MachineTopology
from repro.topology.builder import TopologyBuilder
from repro.topology.dgx1 import dgx1_topology
from repro.topology.dgx2 import dgx2_topology
from repro.topology.dgx_station import dgx_station_topology
from repro.topology.multinode import multi_node_dgx1, node_of
from repro.topology.routes import Route, RouteEnumerator

__all__ = [
    "LinkSpec",
    "LinkType",
    "MachineTopology",
    "Node",
    "NodeKind",
    "Route",
    "RouteEnumerator",
    "TopologyBuilder",
    "cpu",
    "dgx1_topology",
    "dgx2_topology",
    "dgx_station_topology",
    "effective_bandwidth",
    "gpu",
    "multi_node_dgx1",
    "node_of",
    "switch",
    "transfer_time",
]
