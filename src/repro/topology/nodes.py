"""Node identities for the machine topology graph.

A node is one of three kinds of hardware endpoints the paper's data
transfers touch:

* ``GPU`` — a compute device with its own global memory,
* ``SWITCH`` — a PCIe switch/bridge shared by a group of GPUs,
* ``CPU`` — a CPU socket whose main memory is used for *staged*
  transfers between GPUs that sit on different sockets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class NodeKind(enum.Enum):
    """The hardware role a topology node plays."""

    GPU = "gpu"
    SWITCH = "sw"
    CPU = "cpu"


@dataclass(frozen=True, order=True)
class Node:
    """An endpoint in the interconnect graph.

    Nodes are value objects: two ``Node(NodeKind.GPU, 3)`` instances are
    interchangeable, hashable and usable as dict keys.
    """

    kind: NodeKind
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"node index must be non-negative, got {self.index}")

    @property
    def is_gpu(self) -> bool:
        return self.kind is NodeKind.GPU

    @property
    def is_switch(self) -> bool:
        return self.kind is NodeKind.SWITCH

    @property
    def is_cpu(self) -> bool:
        return self.kind is NodeKind.CPU

    def __str__(self) -> str:
        return f"{self.kind.value}{self.index}"

    def __repr__(self) -> str:
        return str(self)


def gpu(index: int) -> Node:
    """Shorthand constructor for a GPU node."""
    return Node(NodeKind.GPU, index)


def switch(index: int) -> Node:
    """Shorthand constructor for a PCIe switch node."""
    return Node(NodeKind.SWITCH, index)


def cpu(index: int) -> Node:
    """Shorthand constructor for a CPU-socket node."""
    return Node(NodeKind.CPU, index)
