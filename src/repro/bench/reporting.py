"""Rendering and persisting figure results."""

from __future__ import annotations

import json
import pathlib

from repro.bench.harness import FigureResult
from repro.obs.meta import run_metadata


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_markdown_table(rows: list[dict]) -> str:
    """Render homogeneous dict rows as a GitHub-flavoured table."""
    if not rows:
        return "(no rows)\n"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(_format_value(row.get(c, "")) for c in columns)
            + " |"
        )
    return "\n".join(lines) + "\n"


def save_figure_result(
    result: FigureResult, directory: str | pathlib.Path = "bench_results"
) -> pathlib.Path:
    """Persist a figure's rows as JSON + markdown for EXPERIMENTS.md."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = (
        result.figure.lower()
        .replace(" ", "_")
        .replace(".", "")
        .replace("/", "-")
    )
    payload = {
        "figure": result.figure,
        "title": result.title,
        # Self-describing artifact: version/python and — when a sweep
        # or bench run is in scope — the inherited run_id stamp.
        "run": run_metadata(),
        "rows": result.rows,
        "notes": result.notes,
    }
    if result.self_time_seconds is not None:
        payload["perf"] = {"self_time_seconds": result.self_time_seconds}
    if result.metric_snapshots:
        payload["metrics"] = result.metric_snapshots
    json_path = out_dir / f"{stem}.json"
    json_path.write_text(json.dumps(payload, indent=2, default=str))
    (out_dir / f"{stem}.md").write_text(result.to_markdown())
    return json_path
