"""One entry point per figure of the paper's evaluation (§5).

Every function reruns the corresponding experiment on the simulated
DGX-1 and returns a :class:`FigureResult` whose rows mirror the
figure's series.  Absolute numbers come from our calibrated simulator;
the *shapes* (who wins, by what factor, where the crossovers are) are
the reproduction targets, and the benchmark drivers assert them.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import DPRJJoin, UMJJoin
from repro.bench.harness import (
    BENCH_REAL_TUPLES,
    PAPER_TUPLES_PER_GPU,
    FigureResult,
    bench_workload,
    run_observed,
)
from repro.core import MGJoin, MGJoinConfig
from repro.core.assignment import assign_partitions
from repro.core.compression import build_compression_model
from repro.core.global_partition import plan_flows
from repro.core.histogram import build_histograms, max_partitions, partition_of
from repro.relational import (
    DPRJQueryEngine,
    MGJoinQueryEngine,
    OmnisciCpuEngine,
    OmnisciGpuEngine,
)
from repro.relational.tpch import generate_tpch, run_query
from repro.routing import (
    AdaptiveArmPolicy,
    BandwidthPolicy,
    CentralizedPolicy,
    DirectPolicy,
    HopCountPolicy,
    LatencyPolicy,
)
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator
from repro.sim.compute import V100
from repro.topology import dgx1_topology
from repro.topology.links import KB, MB, LinkSpec, LinkType, effective_bandwidth

STATIC_POLICIES = (BandwidthPolicy, HopCountPolicy, LatencyPolicy)
TUPLE_BYTES = 8


def _machine():
    return dgx1_topology()


def _uniform_flows(gpu_ids: tuple[int, ...], tuples_per_gpu: int) -> FlowMatrix:
    """The distribution step's traffic under uniform data: each GPU
    holds 2 x ``tuples_per_gpu`` tuples and keeps 1/G of them."""
    num_gpus = len(gpu_ids)
    total_bytes_per_gpu = 2 * tuples_per_gpu * TUPLE_BYTES
    per_flow = total_bytes_per_gpu // num_gpus
    return FlowMatrix.all_to_all(gpu_ids, per_flow)


def _assignment_flows(
    gpu_ids: tuple[int, ...],
    placement_zipf: float = 0.0,
    logical_tuples_per_gpu: int = PAPER_TUPLES_PER_GPU,
    real_tuples_per_gpu: int = BENCH_REAL_TUPLES,
    compression: bool = True,
) -> FlowMatrix:
    """Distribution flows as MG-Join would actually plan them."""
    machine = _machine()
    workload = bench_workload(
        gpu_ids,
        logical_tuples_per_gpu=logical_tuples_per_gpu,
        real_tuples_per_gpu=real_tuples_per_gpu,
        placement_zipf=placement_zipf,
    )
    partitions = max_partitions(V100)
    histograms = build_histograms(workload.r, workload.s, partitions)
    assignment = assign_partitions(histograms, machine)
    shard = workload.r.shard(gpu_ids[0])
    order = np.argsort(partition_of(shard.keys, partitions), kind="stable")
    model = build_compression_model(compression, partitions, shard.ids[order])
    return plan_flows(histograms, assignment, model, workload.logical_scale)


# ---------------------------------------------------------------------------
# Figure 1 — motivation: UMJ / DPRJ cycles per tuple, 1-8 GPUs
# ---------------------------------------------------------------------------

def fig01_motivation(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 1",
        "Join performance and execution-time breakdown of partitioned "
        "hash joins on the DGX-1 (GPU cycles / tuple)",
    )
    machine = _machine()
    for num_gpus in (1, 2, 4, 8):
        workload = bench_workload(
            tuple(range(num_gpus)), real_tuples_per_gpu=real_tuples
        )
        for algo in (DPRJJoin(machine), UMJJoin(machine)):
            run = algo.run(workload)
            transfer_share = run.breakdown.distribution_share
            result.add(
                algorithm=run.algorithm,
                gpus=num_gpus,
                cycles_per_tuple=run.cycles_per_tuple,
                transfer_cycles=run.cycles_per_tuple * transfer_share,
                compute_cycles=run.cycles_per_tuple * (1 - transfer_share),
                transfer_share=transfer_share,
            )
    result.note(
        "Paper: both baselines scale poorly; DPRJ's transfer share grows "
        "to ~66%, UMJ on 8 GPUs is slower than on 1."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 4 — link throughput vs packet size
# ---------------------------------------------------------------------------

def fig04_packet_size() -> FigureResult:
    result = FigureResult(
        "Figure 4", "NVLink / PCIe throughput for varying packet sizes"
    )
    from repro.topology.nodes import gpu, switch

    nvlink = LinkSpec(0, gpu(0), gpu(1), LinkType.NVLINK)
    pcie = LinkSpec(1, gpu(0), switch(0), LinkType.PCIE)
    size = 2 * KB
    while size <= 16 * MB:
        result.add(
            packet_kb=size // KB,
            nvlink_gbps=effective_bandwidth(nvlink, size) / 1e9,
            pcie_gbps=effective_bandwidth(pcie, size) / 1e9,
        )
        size *= 2
    result.note(
        "Paper: both links degrade up to ~20x for tiny packets and "
        "saturate around 12 MB."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 5 — static routing policies vs configuration / packet size / skew
# ---------------------------------------------------------------------------

def fig05a_hw_config(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 5a", "Static-policy distribution cost vs hardware configuration"
    )
    machine = _machine()
    total_logical = 1024 * 1024 * 1024  # 1B tuples total (|R|=|S|=512M)
    for config in ((0, 3, 4), (0, 3, 4, 7), (0, 1, 2, 3, 4)):
        per_gpu = total_logical // (2 * len(config))
        flows = _uniform_flows(config, per_gpu)
        for policy_cls in STATIC_POLICIES:
            policy = policy_cls()
            report = ShuffleSimulator(machine, config).run(flows, policy)
            result.add(
                config="{" + ",".join(map(str, config)) + "}",
                policy=policy.name,
                time_ms=report.elapsed * 1e3,
                throughput_gbps=report.throughput / 1e9,
            )
    result.note("Paper: the winning static metric flips between configs.")
    return result


def fig05b_packet_skew(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 5b",
        "Static-policy distribution cost vs packet size and data skew "
        "(GPUs {0,3,4,7})",
    )
    machine = _machine()
    config = (0, 3, 4, 7)
    for packet_kb in (128, 512, 2048):
        for zipf in (0.0, 0.5, 1.0):
            flows = _assignment_flows(config, placement_zipf=zipf,
                                      real_tuples_per_gpu=real_tuples)
            shuffle_config = ShuffleConfig(packet_size=packet_kb * KB)
            for policy_cls in STATIC_POLICIES:
                policy = policy_cls()
                report = ShuffleSimulator(machine, config, shuffle_config).run(
                    flows, policy
                )
                result.add(
                    packet_kb=packet_kb,
                    zipf=zipf,
                    policy=policy.name,
                    time_ms=report.elapsed * 1e3,
                )
    result.note("Paper: no static policy wins across packet sizes and skews.")
    return result


# ---------------------------------------------------------------------------
# Figure 6 — multi-hop vs direct routing throughput
# ---------------------------------------------------------------------------

def fig06_multihop(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 6",
        "Distribution throughput: MG-Join multi-hop vs DPRJ direct routing",
    )
    machine = _machine()
    for num_gpus in range(2, 9):
        gpu_ids = tuple(range(num_gpus))
        flows = _uniform_flows(gpu_ids, PAPER_TUPLES_PER_GPU)
        for policy in (DirectPolicy(), AdaptiveArmPolicy()):
            report = ShuffleSimulator(machine, gpu_ids).run(flows, policy)
            result.add(
                gpus=num_gpus,
                policy="dprj-direct" if policy.name == "direct" else "mg-join",
                throughput_gbps=report.throughput / 1e9,
                elapsed_ms=report.elapsed * 1e3,
            )
    result.note("Paper: multi-hop beats direct by up to 2.35x at 8 GPUs.")
    return result


# ---------------------------------------------------------------------------
# Figure 7 — adaptive vs static routing throughput
# ---------------------------------------------------------------------------

def fig07_adaptive(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 7", "Distribution throughput: adaptive vs static policies"
    )
    machine = _machine()
    for num_gpus in range(2, 9):
        gpu_ids = tuple(range(num_gpus))
        flows = _uniform_flows(gpu_ids, PAPER_TUPLES_PER_GPU)
        for policy in (
            BandwidthPolicy(),
            HopCountPolicy(),
            LatencyPolicy(),
            AdaptiveArmPolicy(),
        ):
            report = ShuffleSimulator(machine, gpu_ids).run(flows, policy)
            result.add(
                gpus=num_gpus,
                policy=policy.name,
                throughput_gbps=report.throughput / 1e9,
            )
    result.note(
        "Paper: adaptive routing beats bandwidth/hop-count/latency "
        "statics by up to 5.37x / 3.45x / 2.64x as GPUs increase."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 8 — bisection-bandwidth utilization
# ---------------------------------------------------------------------------

def fig08_utilization(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 8", "Interconnect bisection-bandwidth utilization"
    )
    machine = _machine()
    for num_gpus in (4, 6, 8):
        gpu_ids = tuple(range(num_gpus))
        flows = _uniform_flows(gpu_ids, PAPER_TUPLES_PER_GPU)
        for label, policy in (
            ("dprj", DirectPolicy()),
            ("mg-join", AdaptiveArmPolicy()),
        ):
            report = ShuffleSimulator(machine, gpu_ids).run(flows, policy)
            result.add(
                algorithm=label,
                gpus=num_gpus,
                utilization_pct=report.bisection_utilization * 100.0,
            )
    result.note(
        "Paper: DPRJ drops toward 30% as GPUs grow; MG-Join reaches ~97%."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 9 — routing policies under placement skew
# ---------------------------------------------------------------------------

def fig09_skew(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 9",
        "Normalized distribution performance under Zipf placement skew "
        "(8 GPUs)",
    )
    machine = _machine()
    gpu_ids = tuple(range(8))
    policies = (
        BandwidthPolicy(),
        HopCountPolicy(),
        LatencyPolicy(),
        AdaptiveArmPolicy(),
    )
    baseline: dict[str, float] = {}
    for zipf in (0.0, 0.25, 0.5, 0.75, 1.0):
        flows = _assignment_flows(
            gpu_ids, placement_zipf=zipf, real_tuples_per_gpu=real_tuples
        )
        for policy in policies:
            report = ShuffleSimulator(machine, gpu_ids).run(flows, policy)
            throughput = report.throughput
            if zipf == 0.0:
                baseline[policy.name] = throughput
            result.add(
                zipf=zipf,
                policy=policy.name,
                throughput_gbps=throughput / 1e9,
                normalized=throughput / baseline[policy.name],
            )
    result.note(
        "Paper: statics degrade up to 3x with skew; adaptive degrades least."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 10 — decentralized adaptive vs centralized (MGJ-Baseline)
# ---------------------------------------------------------------------------

def fig10_centralized(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 10",
        "Distribution cost per tuple: MG-Join vs centralized MGJ-Baseline",
    )
    machine = _machine()
    for num_gpus in (2, 4, 8):
        gpu_ids = tuple(range(num_gpus))
        flows = _assignment_flows(gpu_ids, real_tuples_per_gpu=real_tuples)
        logical_tuples = 2 * PAPER_TUPLES_PER_GPU * num_gpus
        simulator = ShuffleSimulator(machine, gpu_ids)
        adaptive = simulator.run(flows, AdaptiveArmPolicy())
        transfer_only = simulator.run(flows, CentralizedPolicy(0.0))
        full = simulator.run(flows, CentralizedPolicy())
        to_ps = 1e12 / logical_tuples
        result.add(
            gpus=num_gpus,
            mg_join_ps=adaptive.elapsed * to_ps,
            baseline_transfer_ps=transfer_only.elapsed * to_ps,
            baseline_sync_ps=max(0.0, full.elapsed - transfer_only.elapsed)
            * to_ps,
            baseline_total_ps=full.elapsed * to_ps,
        )
    result.note(
        "Paper: centralized transfer is up to ~3% better, but sync makes "
        "it up to 1.5x worse overall."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 11 — end-to-end join throughput, 1-8 GPUs
# ---------------------------------------------------------------------------

def fig11_join_throughput(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 11", "Join throughput of UMJ / DPRJ / MG-Join (B tuples/s)"
    )
    machine = _machine()
    for num_gpus in range(1, 9):
        workload = bench_workload(
            tuple(range(num_gpus)), real_tuples_per_gpu=real_tuples
        )
        for algo in (UMJJoin(machine), DPRJJoin(machine), MGJoin(machine)):
            run = algo.run(workload)
            result.add(
                algorithm=run.algorithm,
                gpus=num_gpus,
                throughput_btps=run.throughput / 1e9,
                total_ms=run.total_time * 1e3,
            )
    result.note(
        "Paper: MG-Join scales near-linearly (7.2x at 8 GPUs) and beats "
        "DPRJ by up to 2.5x and UMJ by ~10x."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 12 — execution-time breakdown
# ---------------------------------------------------------------------------

def fig12_breakdown(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    result = FigureResult(
        "Figure 12",
        "Execution-time breakdown (data distribution vs computation)",
    )
    machine = _machine()
    for num_gpus in range(2, 9):
        workload = bench_workload(
            tuple(range(num_gpus)), real_tuples_per_gpu=real_tuples
        )
        for algo in (DPRJJoin(machine), MGJoin(machine)):
            if num_gpus == 8:
                # Keep the full-machine runs' telemetry (per-link bytes,
                # route decisions, skew handling) next to the figure.
                run, observer = run_observed(algo, workload)
                result.attach_metrics(f"{algo.algorithm}-8gpus", observer)
            else:
                run = algo.run(workload)
            share = run.breakdown.distribution_share
            result.add(
                algorithm=run.algorithm,
                gpus=num_gpus,
                distribution_pct=share * 100.0,
                computation_pct=(1 - share) * 100.0,
            )
    result.note(
        "Paper: DPRJ spends up to 72% of its time moving data; MG-Join "
        "at most ~35% and <20% at 8 GPUs."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 13 — throughput vs total input size on 8 GPUs
# ---------------------------------------------------------------------------

def fig13_input_size(real_tuples: int = 1 << 15) -> FigureResult:
    result = FigureResult(
        "Figure 13", "Join throughput vs total input size on 8 GPUs"
    )
    machine = _machine()
    gpu_ids = tuple(range(8))
    for total_m in (512, 1024, 1536, 2048, 3072, 4096):
        per_gpu_per_relation = total_m * 1024 * 1024 // 16
        workload = bench_workload(
            gpu_ids,
            logical_tuples_per_gpu=per_gpu_per_relation,
            real_tuples_per_gpu=real_tuples,
        )
        for algo in (UMJJoin(machine), DPRJJoin(machine), MGJoin(machine)):
            run = algo.run(workload)
            result.add(
                algorithm=run.algorithm,
                total_m_tuples=total_m,
                throughput_btps=run.throughput / 1e9,
            )
    result.note(
        "Paper: MG-Join wins at every size; overall 10.2x over UMJ and "
        "3.6x over DPRJ."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 14 — TPC-H at SF 250
# ---------------------------------------------------------------------------

def fig14_tpch(
    real_scale_factor: float = 0.01, logical_scale_factor: float = 250.0
) -> FigureResult:
    result = FigureResult(
        "Figure 14",
        f"TPC-H queries at SF {logical_scale_factor:.0f}: OmniSci CPU/GPU "
        "vs DPRJ vs MG-Join (seconds)",
    )
    machine = _machine()
    database = generate_tpch(scale_factor=real_scale_factor)
    scale = logical_scale_factor / real_scale_factor
    engines = (
        OmnisciCpuEngine(machine, logical_scale=scale),
        OmnisciGpuEngine(machine, logical_scale=scale),
        DPRJQueryEngine(machine, logical_scale=scale),
        MGJoinQueryEngine(machine, logical_scale=scale),
    )
    for query in ("q3", "q5", "q10", "q12", "q14", "q19"):
        row: dict = {"query": query}
        for engine in engines:
            outcome = run_query(query, engine, database)
            row[engine.name] = "NA" if outcome.is_na else round(outcome.seconds, 3)
        result.add(**row)
    result.note(
        "Paper: OmniSci GPU fails (NA) on Q3/Q5/Q10/Q12 at SF 250; "
        "MG-Join beats OmniSci GPU by up to 4.5x and OmniSci CPU by ~25x."
    )
    return result


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md §5)
# ---------------------------------------------------------------------------

def ablation_packet_batch(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    """Packet-size x batch-size sweep around the paper's 2 MB / 8 choice."""
    result = FigureResult(
        "Ablation packet/batch", "Distribution time vs packet and batch size"
    )
    machine = _machine()
    gpu_ids = tuple(range(8))
    flows = _uniform_flows(gpu_ids, PAPER_TUPLES_PER_GPU // 4)
    for packet_kb in (256, 1024, 2048, 8192):
        for batch in (1, 4, 8, 16):
            config = ShuffleConfig(
                packet_size=packet_kb * KB,
                batch_size=batch,
                buffer_slots=max(64, batch),
            )
            report = ShuffleSimulator(machine, gpu_ids, config).run(
                flows, AdaptiveArmPolicy()
            )
            result.add(
                packet_kb=packet_kb, batch=batch, time_ms=report.elapsed * 1e3
            )
    return result


def ablation_dma_engines(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    """How many concurrent copy engines the design needs."""
    result = FigureResult(
        "Ablation DMA", "Distribution time vs per-GPU DMA engines"
    )
    machine = _machine()
    gpu_ids = tuple(range(8))
    flows = _uniform_flows(gpu_ids, PAPER_TUPLES_PER_GPU // 4)
    for dma in (1, 2, 3, 6, 8):
        config = ShuffleConfig(dma_engines=dma)
        report = ShuffleSimulator(machine, gpu_ids, config).run(
            flows, AdaptiveArmPolicy()
        )
        result.add(dma_engines=dma, time_ms=report.elapsed * 1e3)
    return result


def ablation_route_cap(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    """Effect of the <=3 intermediate-hop cap (paper §4.2.2)."""
    result = FigureResult(
        "Ablation route cap", "Distribution time vs max intermediate hops"
    )
    machine = _machine()
    gpu_ids = tuple(range(8))
    flows = _uniform_flows(gpu_ids, PAPER_TUPLES_PER_GPU // 4)
    for cap in (0, 1, 2, 3):
        config = ShuffleConfig(max_intermediates=cap)
        report = ShuffleSimulator(machine, gpu_ids, config).run(
            flows, AdaptiveArmPolicy()
        )
        result.add(
            max_intermediates=cap,
            time_ms=report.elapsed * 1e3,
            average_hops=report.average_hops,
        )
    return result


def ablation_compression(real_tuples: int = BENCH_REAL_TUPLES) -> FigureResult:
    """Traffic compression on/off (paper §5.1: 1.3x-2x ratios)."""
    result = FigureResult(
        "Ablation compression", "End-to-end join with compression on/off"
    )
    machine = _machine()
    workload = bench_workload(tuple(range(8)), real_tuples_per_gpu=real_tuples)
    for enabled in (True, False):
        config = MGJoinConfig(compression=enabled)
        run = MGJoin(machine, config).run(workload)
        result.add(
            compression=enabled,
            throughput_btps=run.throughput / 1e9,
            compression_ratio=run.compression_ratio,
            distribution_ms=(
                run.shuffle_report.elapsed * 1e3 if run.shuffle_report else 0.0
            ),
        )
    return result


def ablation_histogram_partitions(
    real_tuples: int = BENCH_REAL_TUPLES,
) -> FigureResult:
    """P_max vs smaller partition counts (paper §3.2, Eq. 1 discussion)."""
    result = FigureResult(
        "Ablation partitions", "End-to-end join vs global partition count"
    )
    machine = _machine()
    workload = bench_workload(tuple(range(8)), real_tuples_per_gpu=real_tuples)
    for partitions in (256, 1024, 4096):
        config = MGJoinConfig(num_partitions=partitions)
        run = MGJoin(machine, config).run(workload)
        result.add(
            partitions=partitions,
            throughput_btps=run.throughput / 1e9,
            local_passes=run.local_passes,
        )
    return result


def engine_ops() -> FigureResult:
    """Batch-engine kernel micro-benchmarks (see bench/engine_ops.py)."""
    from repro.bench.engine_ops import engine_ops as _engine_ops

    return _engine_ops()


ALL_FIGURES = {
    "fig01": fig01_motivation,
    "fig04": fig04_packet_size,
    "fig05a": fig05a_hw_config,
    "fig05b": fig05b_packet_skew,
    "fig06": fig06_multihop,
    "fig07": fig07_adaptive,
    "fig08": fig08_utilization,
    "fig09": fig09_skew,
    "fig10": fig10_centralized,
    "fig11": fig11_join_throughput,
    "fig12": fig12_breakdown,
    "fig13": fig13_input_size,
    "fig14": fig14_tpch,
    "engine-ops": engine_ops,
}
