"""Benchmark harness: regenerate every table and figure of the paper.

Each ``fig*`` function in :mod:`repro.bench.figures` reruns one
experiment of the paper's §5 and returns a :class:`FigureResult` whose
rows mirror the figure's series.  The pytest-benchmark drivers under
``benchmarks/`` call these, print the tables and assert the paper's
qualitative claims (who wins, by roughly what factor).
"""

from repro.bench.harness import FigureResult, bench_workload
from repro.bench import figures
from repro.bench.regression import (
    GateResult,
    MetricComparison,
    collect_perf_metrics,
    compare,
    load_baseline,
    run_gate,
    run_gate_from_store,
    write_baseline,
)
from repro.bench.reporting import format_markdown_table, save_figure_result
from repro.bench.runner import BenchRun, FigureRun, run_benchmarks

__all__ = [
    "BenchRun",
    "FigureResult",
    "FigureRun",
    "GateResult",
    "MetricComparison",
    "bench_workload",
    "collect_perf_metrics",
    "compare",
    "figures",
    "format_markdown_table",
    "load_baseline",
    "run_benchmarks",
    "run_gate",
    "run_gate_from_store",
    "save_figure_result",
    "write_baseline",
]
