"""Micro-benchmarks of the batch engine's kernel operations.

Times the three array operations behind the
:class:`~repro.sim.batch.BatchEngine` hot path *in isolation* — each
on synthetic inputs shaped like real calendars, for every available
kernel backend:

* **ready-batch extraction** — cohort-boundary search at the head of a
  sorted run with realistic duplicate-timestamp cohorts,
* **heap drain** — the ``(time, seq)`` lexsort merge that folds the
  append buffer into the sorted run,
* **link-queue drain** — the FIFO service-time forecast over one
  link's queued transfer sizes.

A fourth row set drains a live :class:`BatchEngine` calendar
end-to-end (schedule ``n`` timers, run to completion), capturing the
per-event overhead everything above amortizes.  Results ride the
standard figure pipeline: ``repro bench`` stamps the self-time into
``bench_run.json`` and the row tables land in ``bench_results/``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import FigureResult
from repro.sim import kernels

#: Input sizes swept per operation.
SIZES = (1024, 16384, 131072)

#: Deterministic input seed (inputs, not timings, are reproducible).
SEED = 42


def _backends() -> list[kernels.KernelBackend]:
    resolved = [kernels.resolve_backend("numpy")]
    if kernels.numba_available():
        resolved.append(kernels.resolve_backend("numba"))
    return resolved


def _calendar(rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
    """A sorted run with duplicate-heavy timestamps (mean cohort ~4)."""
    times = np.sort(rng.integers(0, max(n // 4, 1), size=n).astype(np.float64))
    seqs = np.arange(n, dtype=np.int64)
    return times, seqs


def _time_op(op, repeats: int = 5) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``op``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        op()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _bench_cohort_extraction(result: FigureResult, backend, n: int) -> None:
    rng = np.random.default_rng(SEED)
    times, _ = _calendar(rng, n)
    heads = rng.integers(0, n, size=256)

    def op():
        for head in heads:
            backend.cohort_end(times, int(head), n)

    seconds = _time_op(op)
    result.add(
        op="ready-batch-extraction",
        backend=backend.name,
        n=n,
        calls=len(heads),
        ns_per_call=seconds / len(heads) * 1e9,
    )


def _bench_heap_drain(result: FigureResult, backend, n: int) -> None:
    rng = np.random.default_rng(SEED)
    run_times, run_seqs = _calendar(rng, n)
    buf_times = rng.integers(0, max(n // 4, 1), size=n // 4).astype(np.float64)
    buf_seqs = np.arange(n, n + len(buf_times), dtype=np.int64)
    times = np.concatenate([run_times, buf_times])
    seqs = np.concatenate([run_seqs, buf_seqs])

    seconds = _time_op(lambda: backend.merge_order(times, seqs))
    result.add(
        op="heap-drain-merge",
        backend=backend.name,
        n=len(times),
        calls=1,
        ns_per_element=seconds / len(times) * 1e9,
    )


def _bench_link_drain(result: FigureResult, backend, n: int) -> None:
    rng = np.random.default_rng(SEED)
    sizes = rng.integers(1 << 16, 2 << 20, size=n).astype(np.float64)

    seconds = _time_op(
        lambda: backend.link_drain(sizes, 0.0, 1e-3, 5e-6, 1.0 / 25e9)
    )
    result.add(
        op="link-queue-drain",
        backend=backend.name,
        n=n,
        calls=1,
        ns_per_element=seconds / n * 1e9,
    )


def _bench_engine_drain(result: FigureResult, backend_name: str, n: int) -> None:
    from repro.sim.batch import BatchEngine

    rng = np.random.default_rng(SEED)
    delays = rng.random(n) * 1e-3

    def op():
        engine = BatchEngine(backend=backend_name)
        sink = (lambda: None)
        for delay in delays:
            engine.schedule(float(delay), sink)
        engine.run()

    seconds = _time_op(op, repeats=3)
    result.add(
        op="engine-calendar-drain",
        backend=backend_name,
        n=n,
        calls=1,
        ns_per_element=seconds / n * 1e9,
    )


def engine_ops() -> FigureResult:
    """Run the kernel micro-benchmark suite over all backends."""
    result = FigureResult(
        figure="engine-ops",
        title="Batch-engine kernel micro-benchmarks (per-op cost)",
    )
    backends = _backends()
    for backend in backends:
        for n in SIZES:
            _bench_cohort_extraction(result, backend, n)
            _bench_heap_drain(result, backend, n)
            _bench_link_drain(result, backend, n)
            _bench_engine_drain(result, backend.name, n)
    result.note(
        "backends available: "
        + ", ".join(backend.name for backend in backends)
        + ("" if kernels.numba_available() else " (numba not installed)")
    )
    result.note(
        "timings are wall-clock (best-of-N); inputs are seeded and"
        " deterministic, timings are not gated"
    )
    return result
