"""Shared infrastructure for the figure benchmarks."""

from __future__ import annotations

import os
import pathlib
import pickle
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.relation import JoinWorkload
from repro.obs import Observer
from repro.obs.meta import config_hash
from repro.workloads import WorkloadSpec, generate_workload

#: Environment variable naming a directory for the on-disk workload
#: cache.  When set, generated workloads are pickled there keyed by a
#: hash of their spec, so every parallel bench worker (and every later
#: run) loads a sweep's inputs instead of regenerating them.
WORKLOAD_CACHE_ENV = "REPRO_WORKLOAD_CACHE"

#: The paper's per-GPU input: 512M tuples per relation (§5.1).
PAPER_TUPLES_PER_GPU = 512 * 1024 * 1024
#: Real tuples materialized per GPU in bench runs; large enough for
#: smooth histograms, small enough to keep a full figure under minutes.
BENCH_REAL_TUPLES = 1 << 16


@dataclass
class FigureResult:
    """Rows of one regenerated figure, ready for printing/saving."""

    figure: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Optional per-run metric snapshots (label -> registry snapshot),
    #: persisted next to the rows by ``save_figure_result``.
    metric_snapshots: dict[str, dict] = field(default_factory=dict)
    #: Wall-clock seconds this figure took to regenerate (*self-time*,
    #: as opposed to the simulated seconds inside the rows).  Stamped
    #: by the parallel runner; ``None`` when nobody timed the run.
    self_time_seconds: float | None = None

    def add(self, **row) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def attach_metrics(self, label: str, observer: Observer) -> None:
        """Keep one observed run's metrics under ``label``.

        The snapshot rides into ``bench_results/<figure>.json``, so a
        regenerated figure carries the telemetry that explains it.
        """
        self.metric_snapshots[label] = observer.metrics.snapshot()

    def series(self, key: str, value) -> list[dict]:
        """Rows whose ``key`` column equals ``value``."""
        return [row for row in self.rows if row.get(key) == value]

    def column(self, name: str, where: dict | None = None) -> list:
        rows = self.rows
        if where:
            rows = [
                row
                for row in rows
                if all(row.get(k) == v for k, v in where.items())
            ]
        return [row[name] for row in rows]

    def to_markdown(self) -> str:
        from repro.bench.reporting import format_markdown_table

        header = f"### {self.figure}: {self.title}\n\n"
        body = format_markdown_table(self.rows)
        notes = "".join(f"\n> {note}" for note in self.notes)
        return header + body + notes


def run_observed(algorithm, workload: JoinWorkload):
    """Run one join under a fresh :class:`Observer`.

    Returns ``(JoinResult, Observer)``; the algorithm's previous
    observer (usually ``None``) is restored afterwards, so benchmark
    loops can observe individual runs without paying the recording
    cost on the others.
    """
    observer = Observer()
    previous = algorithm.observer
    algorithm.observer = observer
    try:
        result = algorithm.run(workload)
    finally:
        algorithm.observer = previous
    return result, observer


@lru_cache(maxsize=32)
def bench_workload(
    gpu_ids: tuple[int, ...],
    logical_tuples_per_gpu: int = PAPER_TUPLES_PER_GPU,
    real_tuples_per_gpu: int = BENCH_REAL_TUPLES,
    placement_zipf: float = 0.0,
    key_zipf: float = 0.0,
    seed: int = 42,
) -> JoinWorkload:
    """Cached workload generation so figures sharing inputs reuse them.

    Two layers: an in-process ``lru_cache`` (keyed on these primitive
    arguments — machine objects never key this cache, so nothing leaks
    across sweeps) and, when :data:`WORKLOAD_CACHE_ENV` names a
    directory, an on-disk pickle cache keyed by the spec's config hash
    that parallel bench workers share.
    """
    spec = WorkloadSpec(
        gpu_ids=gpu_ids,
        logical_tuples_per_gpu=logical_tuples_per_gpu,
        real_tuples_per_gpu=real_tuples_per_gpu,
        placement_zipf=placement_zipf,
        key_zipf=key_zipf,
        seed=seed,
    )
    cache_dir = os.environ.get(WORKLOAD_CACHE_ENV)
    if not cache_dir:
        return generate_workload(spec)
    return _disk_cached_workload(spec, pathlib.Path(cache_dir))


def _disk_cached_workload(
    spec: WorkloadSpec, cache_dir: pathlib.Path
) -> JoinWorkload:
    # The engine descriptor (fast / reference / batch+backend) joins the
    # key so cache entries never cross kernel modes: a cache shared
    # between engine-matrix CI legs must attribute any divergence to
    # the engines themselves, not to one leg reading pickles the other
    # produced.
    from repro.sim.engine import engine_descriptor

    tag = engine_descriptor().replace("+", "-")
    path = cache_dir / f"workload-{config_hash(spec)}-{tag}.pkl"
    if path.exists():
        try:
            return pickle.loads(path.read_bytes())
        except Exception:
            pass  # corrupt / truncated entry: regenerate below
    workload = generate_workload(spec)
    cache_dir.mkdir(parents=True, exist_ok=True)
    # Write-then-rename so concurrent workers racing on one entry never
    # read a half-written pickle.
    fd, tmp_name = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(workload, handle)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
    return workload
