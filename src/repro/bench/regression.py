"""Perf-regression gate: committed baselines, 10% tolerance.

The reproduction's headline numbers — distribution throughput,
bisection utilization, ARM decision regret, end-to-end join
throughput — are all produced by a deterministic simulation, so any
drift between two commits is a *code* change, not noise.  This module
turns that into a CI gate:

* :func:`collect_perf_metrics` runs the canonical workload (a skewed
  8-GPU shuffle on the DGX-1 plus a small end-to-end MG-Join) and
  returns the metric dict.
* :func:`write_baseline` persists it as a ``BENCH_<name>.json`` file
  (committed to the repository) with a run-metadata header.
* :func:`compare` diffs a fresh collection against the committed
  baseline and flags any **gated** metric that moved in its bad
  direction by more than ``tolerance`` (default 10%).

Metrics carry a direction tag: ``higher`` is better (throughput),
``lower`` is better (elapsed time, regret), and ``track`` is recorded
for trend visibility but never fails the gate (e.g. per-direction
bisection splits, whose "good" value depends on the workload shape).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.obs import Observer, run_metadata
from repro.obs.analyze import LinkTimelineSampler, audit_decisions
from repro.routing import AdaptiveArmPolicy, DirectPolicy
from repro.sim import FlowMatrix, ShuffleSimulator

#: Default tolerance: a gated metric may move up to this fraction in
#: its bad direction before the gate fails (issue: ">10% regression").
DEFAULT_TOLERANCE = 0.10

#: Direction tag per metric.  ``higher``/``lower`` gate; ``track`` is
#: informational only.
METRIC_DIRECTIONS: dict[str, str] = {
    "shuffle.throughput_gbps": "higher",
    "shuffle.elapsed_ms": "lower",
    "shuffle.bisection_utilization": "higher",
    "shuffle.bisection_utilization_ab": "track",
    "shuffle.bisection_utilization_ba": "track",
    "arm.mean_regret_us": "lower",
    "arm.p50_regret_us": "lower",
    "arm.p95_regret_us": "lower",
    "arm.p99_regret_us": "lower",
    "arm.optimal_share": "higher",
    "arm.direct_mean_regret_us": "track",
    "join.throughput_btps": "higher",
    "perf.self_time_seconds": "lower",
    "conformance.count": "track",
    "conformance.drift_ratio": "lower",
    "conformance.residual_mean_us": "track",
    "conformance.residual_p50_us": "track",
    "conformance.residual_p95_us": "track",
    "conformance.residual_p99_us": "track",
    "conformance.abs_residual_p95_us": "lower",
    "conformance.underprediction_share": "track",
}

#: Per-metric tolerance overrides.  Wall-clock self-time is the one
#: metric that is *not* deterministic simulation output, so it gets a
#: generous 50% band — wide enough that shared-CI noise never flakes
#: the gate, tight enough to catch a real hot-path regression.
METRIC_TOLERANCES: dict[str, float] = {
    "perf.self_time_seconds": 0.50,
    # Tail-regret percentiles interpolate between few decision samples,
    # so tiny decision-order shifts move them more than the mean; give
    # the tails a wider (but still gating) band than the default 10%.
    "arm.p50_regret_us": 0.25,
    "arm.p99_regret_us": 0.25,
}

MB = 1024 * 1024


@dataclass(frozen=True)
class PerfWorkload:
    """One canonical perf-gate workload (topology + scale + baseline).

    Every workload runs the same metric collection — adaptive/direct
    audited shuffles plus a small end-to-end MG-Join — on its own
    machine, and gates against its own committed ``BENCH_<name>.json``
    baseline with an independent ``perf.self_time_seconds`` budget.
    """

    name: str
    #: Key into the topology factory table below.
    topology: str
    num_gpus: int
    seed: int = 42


def _perf_machine(workload: "PerfWorkload"):
    from repro.topology import dgx1_topology, dgx2_topology, multi_node_dgx1

    factories = {
        "dgx1": dgx1_topology,
        "dgx2": dgx2_topology,
        "dgx1x2": lambda: multi_node_dgx1(2),
    }
    return factories[workload.topology]()


#: The gated perf workloads.  ``dgx1-8gpu`` is the historical default;
#: ``dgx2-16gpu`` exercises the NVSwitch fabric and ``multinode`` the
#: two-box NIC path, both at 16 GPUs where the batch engine's wide
#: same-instant cohorts actually occur.
PERF_WORKLOADS: dict[str, PerfWorkload] = {
    "dgx1-8gpu": PerfWorkload(name="dgx1-8gpu", topology="dgx1", num_gpus=8),
    "dgx2-16gpu": PerfWorkload(name="dgx2-16gpu", topology="dgx2", num_gpus=16),
    "multinode": PerfWorkload(name="multinode", topology="dgx1x2", num_gpus=16),
}


def skewed_flows(gpu_ids: tuple[int, ...], hot_gpu: int | None = None,
                 hot_bytes: int = 48 * MB, base_bytes: int = 8 * MB) -> FlowMatrix:
    """All-to-all traffic with one hot receiver (paper §5.2 skew shape)."""
    if hot_gpu is None:
        hot_gpu = gpu_ids[0]
    flows = FlowMatrix()
    for src in gpu_ids:
        for dst in gpu_ids:
            if src == dst:
                continue
            flows.add(src, dst, hot_bytes if dst == hot_gpu else base_bytes)
    return flows


def _shuffle_with_audit(machine, gpu_ids, policy, conformance=None):
    observer = Observer()
    observer.conformance = conformance
    sampler = LinkTimelineSampler()
    simulator = ShuffleSimulator(machine, gpu_ids, observer=observer,
                                 sampler=sampler)
    report = simulator.run(skewed_flows(gpu_ids), policy)
    audit = audit_decisions(machine, observer, sampler)
    return report, audit


def collect_perf_metrics(
    num_gpus: int | None = None,
    seed: int | None = None,
    include_self_time: bool = True,
    workload: str | PerfWorkload = "dgx1-8gpu",
) -> dict[str, float]:
    """Run one canonical perf workload and return the metric dict.

    ``workload`` names an entry of :data:`PERF_WORKLOADS` (or is one);
    ``num_gpus`` / ``seed`` default to the workload's own values, and
    the historical ``dgx1-8gpu`` defaults produce exactly the metric
    dict this function always produced.

    Everything downstream of the RNG seed is deterministic, so two
    collections on the same code produce identical values — except
    ``perf.self_time_seconds``, the wall-clock cost of this collection
    itself, which gates hot-path performance (with a wide tolerance)
    rather than simulation output.  Pass ``include_self_time=False``
    for a fully deterministic dict.
    """
    import time

    from repro.core import MGJoin
    from repro.workloads import WorkloadSpec, generate_workload

    if isinstance(workload, str):
        try:
            workload = PERF_WORKLOADS[workload]
        except KeyError:
            raise ValueError(
                f"unknown perf workload {workload!r};"
                f" have {sorted(PERF_WORKLOADS)}"
            ) from None
    if num_gpus is None:
        num_gpus = workload.num_gpus
    if seed is None:
        seed = workload.seed

    started = time.perf_counter()
    machine = _perf_machine(workload)
    gpu_ids = tuple(machine.gpu_ids[:num_gpus])

    from repro.obs.conformance import ConformanceProbe

    conformance = ConformanceProbe()
    adaptive_report, adaptive_audit = _shuffle_with_audit(
        machine, gpu_ids, AdaptiveArmPolicy(), conformance=conformance
    )
    _, direct_audit = _shuffle_with_audit(machine, gpu_ids, DirectPolicy())

    workload = generate_workload(
        WorkloadSpec(
            gpu_ids=gpu_ids,
            logical_tuples_per_gpu=512 * MB,
            real_tuples_per_gpu=64 * 1024,
            key_zipf=0.5,
            seed=seed,
        )
    )
    join_result = MGJoin(machine, policy=AdaptiveArmPolicy()).run(workload)

    metrics = {
        "shuffle.throughput_gbps": adaptive_report.throughput / 1e9,
        "shuffle.elapsed_ms": adaptive_report.elapsed * 1e3,
        "shuffle.bisection_utilization": adaptive_report.bisection_utilization,
        "shuffle.bisection_utilization_ab": adaptive_report.bisection_utilization_ab,
        "shuffle.bisection_utilization_ba": adaptive_report.bisection_utilization_ba,
        "arm.mean_regret_us": adaptive_audit.mean_regret * 1e6,
        "arm.p50_regret_us": adaptive_audit.percentile_regret(50) * 1e6,
        "arm.p95_regret_us": adaptive_audit.percentile_regret(95) * 1e6,
        "arm.p99_regret_us": adaptive_audit.percentile_regret(99) * 1e6,
        "arm.optimal_share": adaptive_audit.optimal_share,
        "arm.direct_mean_regret_us": direct_audit.mean_regret * 1e6,
        "join.throughput_btps": join_result.throughput / 1e9,
    }
    # Cost-model conformance over the canonical adaptive shuffle: gated
    # on drift_ratio / |residual| p95, tracked on the residual shape.
    drift = conformance.summary()
    metrics.update(
        {
            "conformance.count": float(drift["count"]),
            "conformance.drift_ratio": drift["drift_ratio"],
            "conformance.residual_mean_us": drift["residual_mean_us"],
            "conformance.residual_p50_us": drift["residual_p50_us"],
            "conformance.residual_p95_us": drift["residual_p95_us"],
            "conformance.residual_p99_us": drift["residual_p99_us"],
            "conformance.abs_residual_p95_us": drift["abs_residual_p95_us"],
            "conformance.underprediction_share": drift["underprediction_share"],
        }
    )
    if include_self_time:
        metrics["perf.self_time_seconds"] = time.perf_counter() - started
    return metrics


# ---------------------------------------------------------------------------
# Baseline files
# ---------------------------------------------------------------------------


def baseline_path(name: str = "dgx1-8gpu",
                  root: str | pathlib.Path | None = None) -> pathlib.Path:
    """``BENCH_<name>.json`` under ``root`` (default: repository root)."""
    if root is None:
        root = pathlib.Path(__file__).resolve().parents[3]
    return pathlib.Path(root) / f"BENCH_{name}.json"


def write_baseline(
    path: str | pathlib.Path,
    metrics: dict[str, float],
    metadata: dict | None = None,
) -> pathlib.Path:
    path = pathlib.Path(path)
    payload = {
        "run": metadata if metadata is not None else run_metadata(),
        "directions": {
            name: METRIC_DIRECTIONS.get(name, "track") for name in sorted(metrics)
        },
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def load_baseline(path: str | pathlib.Path) -> dict:
    payload = json.loads(pathlib.Path(path).read_text())
    if "metrics" not in payload or not isinstance(payload["metrics"], dict):
        raise ValueError(f"{path}: not a BENCH baseline (no 'metrics' object)")
    return payload


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricComparison:
    """One metric's baseline-vs-current verdict."""

    name: str
    direction: str
    baseline: float
    current: float
    #: Per-metric tolerance override; ``None`` = use the gate default.
    tolerance: float | None = None

    @property
    def change(self) -> float:
        """Signed relative change; +0.2 means current is 20% above."""
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)

    def regressed(self, tolerance: float) -> bool:
        if self.tolerance is not None:
            tolerance = self.tolerance
        if self.direction == "higher":
            return self.change < -tolerance
        if self.direction == "lower":
            return self.change > tolerance
        return False  # "track" never gates


@dataclass
class GateResult:
    """Outcome of one baseline-vs-current gate run."""

    tolerance: float
    comparisons: list[MetricComparison] = field(default_factory=list)
    #: Gated metrics in the baseline but missing from the collection
    #: (a silent drop must fail the gate, not pass by omission).
    missing: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricComparison]:
        return [c for c in self.comparisons if c.regressed(self.tolerance)]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def render(self) -> str:
        lines = [
            f"perf gate (tolerance {self.tolerance:.0%}):"
            f" {'PASS' if self.ok else 'FAIL'}"
        ]
        width = max((len(c.name) for c in self.comparisons), default=10)
        for comp in self.comparisons:
            change = comp.change
            flag = "  REGRESSION" if comp.regressed(self.tolerance) else ""
            tag = "" if comp.direction != "track" else " (track)"
            if comp.tolerance is not None:
                tag += f" (tol {comp.tolerance:.0%})"
            lines.append(
                f"  {comp.name:<{width}}  {comp.baseline:12.4f} ->"
                f" {comp.current:12.4f}  {change:+8.1%}{tag}{flag}"
            )
        for name in self.missing:
            lines.append(f"  {name:<{width}}  MISSING from current collection")
        return "\n".join(lines) + "\n"


def compare(
    baseline_metrics: dict[str, float],
    current_metrics: dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    directions: dict[str, str] | None = None,
    tolerances: dict[str, float] | None = None,
) -> GateResult:
    """Diff current metrics against the baseline under the tolerance.

    ``tolerances`` maps metric names to per-metric tolerance overrides
    (default :data:`METRIC_TOLERANCES`): wall-clock metrics get a wider
    band than deterministic simulation outputs.
    """
    if directions is None:
        directions = METRIC_DIRECTIONS
    if tolerances is None:
        tolerances = METRIC_TOLERANCES
    result = GateResult(tolerance=tolerance)
    for name in sorted(baseline_metrics):
        direction = directions.get(name, "track")
        if name not in current_metrics:
            if direction != "track":
                result.missing.append(name)
            continue
        result.comparisons.append(
            MetricComparison(
                name=name,
                direction=direction,
                baseline=float(baseline_metrics[name]),
                current=float(current_metrics[name]),
                tolerance=tolerances.get(name),
            )
        )
    return result


def run_gate(
    path: str | pathlib.Path | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    current: dict[str, float] | None = None,
    workload: str | PerfWorkload = "dgx1-8gpu",
) -> GateResult:
    """Collect fresh metrics and gate them against the baseline file."""
    if path is None:
        path = baseline_path(
            workload if isinstance(workload, str) else workload.name
        )
    payload = load_baseline(path)
    if current is None:
        current = collect_perf_metrics(workload=workload)
    directions = dict(METRIC_DIRECTIONS)
    directions.update(payload.get("directions", {}))
    return compare(
        payload["metrics"], current, tolerance=tolerance, directions=directions
    )


def run_gate_from_store(
    store,
    run_id: str | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    current: dict[str, float] | None = None,
    workload: str | PerfWorkload = "dgx1-8gpu",
) -> tuple[GateResult, str]:
    """Gate fresh metrics against a baseline read *through the store*.

    ``store`` is a :class:`repro.experiments.ResultsStore`; the
    baseline is ``run_id`` (prefixes allowed) or the latest ``perf``
    record in the ledger.  The committed ``BENCH_*.json`` file joins
    the ledger via ``repro experiments ingest``, making the file one
    view over the store rather than the gate's private input.  Returns
    ``(result, baseline_run_id)``.
    """
    from repro.experiments.store import StoreError

    if run_id is not None:
        record = store.get(run_id)
    else:
        record = store.latest(kind="perf")
        if record is None:
            raise StoreError(
                f"no 'perf' baseline record in store {store.root}; run"
                " 'repro experiments ingest BENCH_*.json' or"
                " 'repro perf --update --store ...' first"
            )
    if current is None:
        current = collect_perf_metrics(workload=workload)
    directions = dict(METRIC_DIRECTIONS)
    directions.update(record.directions)
    result = compare(
        record.metrics, current, tolerance=tolerance, directions=directions
    )
    return result, record.run_id
