"""Parallel benchmark orchestrator (``repro bench``).

The 14 figure generators are independent, deterministic simulations, so
regenerating the evaluation is embarrassingly parallel.  This module
fans the selected figures out over a :mod:`multiprocessing` pool, stamps
every :class:`~repro.bench.harness.FigureResult` with its wall-clock
*self-time* (how long the generator took to run, as opposed to the
simulated seconds inside its rows), persists the usual per-figure
JSON/markdown artifacts plus one ``bench_run.json`` manifest, and can
feed the collected perf metrics straight into the
:mod:`repro.bench.regression` gate.

Workers share the on-disk workload cache
(:data:`repro.bench.harness.WORKLOAD_CACHE_ENV`): the first worker that
needs a given workload spec generates and pickles it; everyone else —
including later runs — just loads it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import time
from dataclasses import dataclass, field

from repro.bench.figures import ALL_FIGURES
from repro.bench.harness import WORKLOAD_CACHE_ENV
from repro.bench.reporting import save_figure_result
from repro.obs.meta import RUN_ID_ENV, current_run_id, run_metadata

#: Manifest file written next to the per-figure artifacts.
RUN_MANIFEST = "bench_run.json"


@dataclass
class FigureRun:
    """One figure's outcome inside a bench run."""

    figure: str
    title: str
    self_time_seconds: float
    rows: int
    artifact: str
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BenchRun:
    """A whole ``repro bench`` invocation's outcome."""

    jobs: int
    wall_time_seconds: float
    figures: list[FigureRun] = field(default_factory=list)
    workload_cache: str | None = None

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.figures)

    @property
    def self_time_total_seconds(self) -> float:
        """Sum of per-figure self-times (serial-equivalent cost)."""
        return sum(run.self_time_seconds for run in self.figures)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time."""
        if self.wall_time_seconds <= 0:
            return 1.0
        return self.self_time_total_seconds / self.wall_time_seconds

    def to_dict(self) -> dict:
        return {
            "run": run_metadata(workload="figure-suite"),
            "jobs": self.jobs,
            "workload_cache": self.workload_cache,
            "wall_time_seconds": self.wall_time_seconds,
            "self_time_total_seconds": self.self_time_total_seconds,
            "parallel_speedup": self.speedup,
            "figures": {
                run.figure: {
                    "title": run.title,
                    "self_time_seconds": run.self_time_seconds,
                    "rows": run.rows,
                    "artifact": run.artifact,
                    "error": run.error,
                }
                for run in self.figures
            },
        }

    def render(self) -> str:
        lines = [
            f"bench run: {len(self.figures)} figures, {self.jobs} jobs,"
            f" wall {self.wall_time_seconds:.1f}s,"
            f" serial-equivalent {self.self_time_total_seconds:.1f}s"
            f" ({self.speedup:.1f}x)"
        ]
        width = max((len(run.figure) for run in self.figures), default=6)
        for run in sorted(self.figures, key=lambda r: r.figure):
            status = "FAILED: " + run.error if run.error else run.artifact
            lines.append(
                f"  {run.figure:<{width}}  {run.self_time_seconds:7.2f}s"
                f"  {run.rows:4d} rows  {status}"
            )
        return "\n".join(lines) + "\n"


def _run_one(
    name: str,
    out_dir: str,
    workload_cache: str | None,
    run_id: str | None = None,
) -> dict:
    """Worker entry point: regenerate one figure, timed. Top-level so
    it pickles under every multiprocessing start method."""
    if workload_cache:
        os.environ[WORKLOAD_CACHE_ENV] = workload_cache
    if run_id:
        # Re-assert the parent's run ID: fork inherits it through the
        # environment, but spawn workers start from a fresh interpreter
        # whose environment may have been scrubbed by the pool setup.
        os.environ[RUN_ID_ENV] = run_id
    started = time.perf_counter()
    try:
        result = ALL_FIGURES[name]()
    except Exception as exc:  # surfaced in the manifest, fails the run
        return {
            "figure": name,
            "title": "",
            "self_time_seconds": time.perf_counter() - started,
            "rows": 0,
            "artifact": "",
            "error": f"{type(exc).__name__}: {exc}",
        }
    result.self_time_seconds = time.perf_counter() - started
    artifact = save_figure_result(result, out_dir)
    return {
        "figure": name,
        "title": result.title,
        "self_time_seconds": result.self_time_seconds,
        "rows": len(result.rows),
        "artifact": str(artifact),
        "error": None,
    }


def run_benchmarks(
    figures: list[str] | None = None,
    jobs: int | None = None,
    out_dir: str | pathlib.Path = "bench_results",
    workload_cache: str | pathlib.Path | None = None,
) -> BenchRun:
    """Regenerate ``figures`` (default: all) across ``jobs`` processes.

    Returns the :class:`BenchRun`; the same information is persisted as
    ``<out_dir>/bench_run.json``.
    """
    names = list(figures) if figures else sorted(ALL_FIGURES)
    unknown = [name for name in names if name not in ALL_FIGURES]
    if unknown:
        raise ValueError(
            f"unknown figures {unknown}; have {sorted(ALL_FIGURES)}"
        )
    if jobs is None:
        jobs = min(len(names), os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    cache = str(workload_cache) if workload_cache is not None else None
    run_id = current_run_id()
    work = [(name, str(out_dir), cache, run_id) for name in names]
    started = time.perf_counter()
    if jobs == 1 or len(names) == 1:
        records = [_run_one(*item) for item in work]
    else:
        with multiprocessing.Pool(processes=jobs) as pool:
            records = pool.starmap(_run_one, work)
    bench = BenchRun(
        jobs=jobs,
        wall_time_seconds=time.perf_counter() - started,
        figures=[FigureRun(**record) for record in records],
        workload_cache=cache,
    )
    manifest = out_dir / RUN_MANIFEST
    manifest.write_text(json.dumps(bench.to_dict(), indent=1) + "\n")
    return bench
