"""The results store: every run as a self-describing ledger record.

Bench, chaos and ablation runs used to land as ad-hoc JSON scattered
over ``bench_results/`` and ``chaos_report.json`` files — no shared
schema, no cross-run identity, no way to ask "how did dgx1/adaptive
trend over the last ten runs?".  A :class:`ResultsStore` fixes the
identity problem first: a run's ID is **deterministic**
(``<kind>-<config hash>``, see :func:`repro.obs.meta.run_id_for`), so
re-running the same configuration overwrites its record (bumping
``revision``) instead of piling up near-duplicates, and two ledgers
produced on different machines agree on which runs are "the same
experiment".

On disk a store is::

    <root>/
      runs/<run_id>.json    one full RunRecord per run (canonical JSON)
      ledger.jsonl          append-only summary, one line per put

The ``ledger.jsonl`` is the cheap queryable index — :meth:`
ResultsStore.index` reads it and keeps the *last* line per run ID, so
listing never loads full records.  It is also self-healing: when the
index is missing or stale, :meth:`ResultsStore.rebuild` reconstructs
it from the run files, which remain the source of truth.

Records serialize through :meth:`RunRecord.to_dict` with sorted keys
and the metrics registry's stable float formatting, so ``git diff``
between two records of the same experiment reads as a metric diff,
not as serialization noise.
"""

from __future__ import annotations

import json
import pathlib
import warnings
from dataclasses import dataclass, field

from repro.obs.meta import run_id_for, run_metadata
from repro.obs.metrics import stable_float

#: Environment variable naming the default store directory.
RESULTS_STORE_ENV = "REPRO_RESULTS_STORE"

#: Default store root (relative to the working directory).
DEFAULT_STORE_DIR = "experiments"

#: Ledger index filename under the store root.
LEDGER_NAME = "ledger.jsonl"

#: Summary fields copied into each ledger line beyond identity.
_SUMMARY_METRICS = (
    "join.throughput_btps",
    "join.total_time_ms",
    "shuffle.throughput_gbps",
    "shuffle.elapsed_ms",
    "chaos.throughput_retention",
    "perf.self_time_seconds",
)


class StoreError(RuntimeError):
    """A record was malformed or a run ID could not be resolved."""


@dataclass
class RunRecord:
    """One run, fully described: identity, provenance, measurements.

    ``metrics`` is the flat comparable surface (name -> float) that
    :mod:`repro.experiments.observatory` diffs between runs;
    ``directions`` tags each metric ``higher``/``lower``/``track`` so
    comparisons are direction-aware.  ``phases`` holds the span-derived
    exclusive per-phase seconds, ``links`` the busiest-link breakdown,
    and ``telemetry`` fault/recovery accounting — together they let a
    regression in a headline metric be attributed back to the phase or
    link that moved (see ``observatory.attribute_regression``).
    """

    run_id: str
    kind: str
    config: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    directions: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    links: list = field(default_factory=list)
    telemetry: dict = field(default_factory=dict)
    #: Full MetricsRegistry snapshot (optional, can be large).
    snapshot: dict = field(default_factory=dict)
    #: Ledger position, assigned by :meth:`ResultsStore.put`.
    sequence: int = 0
    #: How many times this run ID has been written (1 = first put).
    revision: int = 1

    def __post_init__(self) -> None:
        if not self.run_id:
            raise StoreError("RunRecord needs a run_id")
        if "/" in self.run_id or "\\" in self.run_id:
            raise StoreError(f"run_id {self.run_id!r} must not contain path separators")

    @classmethod
    def build(
        cls,
        kind: str,
        config: dict,
        metrics: dict,
        *,
        directions: dict | None = None,
        meta: dict | None = None,
        **extras,
    ) -> "RunRecord":
        """A record with its deterministic ID derived from the config."""
        return cls(
            run_id=run_id_for(kind, config),
            kind=kind,
            config=dict(config),
            meta=dict(meta) if meta is not None else run_metadata(),
            metrics={name: stable_float(float(value)) for name, value in metrics.items()},
            directions=dict(directions or {}),
            **extras,
        )

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "sequence": self.sequence,
            "revision": self.revision,
            "config": self.config,
            "meta": self.meta,
            "metrics": {
                name: stable_float(value) if isinstance(value, float) else value
                for name, value in self.metrics.items()
            },
            "directions": self.directions,
            "phases": {
                name: stable_float(value) for name, value in self.phases.items()
            },
            "links": self.links,
            "telemetry": self.telemetry,
            "snapshot": self.snapshot,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        try:
            return cls(
                run_id=payload["run_id"],
                kind=payload["kind"],
                config=payload.get("config", {}),
                meta=payload.get("meta", {}),
                metrics=payload.get("metrics", {}),
                directions=payload.get("directions", {}),
                phases=payload.get("phases", {}),
                links=payload.get("links", []),
                telemetry=payload.get("telemetry", {}),
                snapshot=payload.get("snapshot", {}),
                sequence=payload.get("sequence", 0),
                revision=payload.get("revision", 1),
            )
        except KeyError as exc:
            raise StoreError(f"record missing required field {exc}") from exc

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, stable floats, trailing newline."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def summary(self) -> dict:
        """The ledger line: identity plus a few headline metrics."""
        line = {
            "run_id": self.run_id,
            "kind": self.kind,
            "sequence": self.sequence,
            "revision": self.revision,
            "topology": self.meta.get("topology") or self.config.get("topology"),
            "policy": self.meta.get("policy") or self.config.get("policy"),
            "num_gpus": self.meta.get("num_gpus") or self.config.get("scale"),
            "repro_version": self.meta.get("repro_version"),
        }
        for name in _SUMMARY_METRICS:
            if name in self.metrics:
                line[name] = self.metrics[name]
        return line


class ResultsStore:
    """On-disk ledger of :class:`RunRecord` files under one root."""

    def __init__(self, root: str | pathlib.Path = DEFAULT_STORE_DIR) -> None:
        self.root = pathlib.Path(root)
        self.runs_dir = self.root / "runs"

    @property
    def ledger_path(self) -> pathlib.Path:
        return self.root / LEDGER_NAME

    def _record_path(self, run_id: str) -> pathlib.Path:
        return self.runs_dir / f"{run_id}.json"

    # -- writing -----------------------------------------------------------

    def put(self, record: RunRecord) -> RunRecord:
        """Persist a record, assigning its ledger position.

        A new run ID gets the next sequence number; an existing one
        keeps its identity but moves to the ledger's tail (sequence
        advances, ``revision`` increments) — re-running an experiment
        makes it the most recent observation of that configuration.
        """
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        index = self.index()
        previous = index.get(record.run_id)
        record.sequence = (
            max((line["sequence"] for line in index.values()), default=0) + 1
        )
        record.revision = (previous["revision"] + 1) if previous else 1
        self._record_path(record.run_id).write_text(record.to_json())
        with self.ledger_path.open("a") as ledger:
            ledger.write(json.dumps(record.summary(), sort_keys=True) + "\n")
        return record

    def rebuild(self) -> int:
        """Reconstruct ``ledger.jsonl`` from the run files.

        Returns the number of records indexed.  Run files are the
        source of truth; this recovers from a deleted or corrupt index.
        A truncated or otherwise unreadable run file (e.g. a write torn
        by a crash — the very situation rebuild exists for) is skipped
        with a warning instead of aborting the whole recovery.
        """
        records = []
        for path in self.runs_dir.glob("*.json"):
            try:
                records.append(RunRecord.from_dict(json.loads(path.read_text())))
            except (json.JSONDecodeError, StoreError, KeyError, TypeError,
                    ValueError) as exc:
                warnings.warn(
                    f"rebuild: skipping corrupt run file {path.name}: {exc}",
                    stacklevel=2,
                )
        records.sort(key=lambda record: (record.sequence, record.run_id))
        self.root.mkdir(parents=True, exist_ok=True)
        with self.ledger_path.open("w") as ledger:
            for record in records:
                ledger.write(json.dumps(record.summary(), sort_keys=True) + "\n")
        return len(records)

    # -- reading -----------------------------------------------------------

    def history(self) -> list[dict]:
        """Every ledger line in append order, superseded revisions too.

        This is the trend substrate: re-running a configuration adds a
        line, so a run ID's metric trajectory across revisions survives
        even though ``runs/<run_id>.json`` only keeps the latest.
        """
        entries: list[dict] = []
        if not self.ledger_path.exists():
            return entries
        for line in self.ledger_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line: ignore, rebuild() can heal
            if "run_id" in entry:
                entries.append(entry)
        return entries

    def index(self) -> dict:
        """Last ledger line per run ID, keyed by run ID."""
        return {entry["run_id"]: entry for entry in self.history()}

    def __len__(self) -> int:
        return len(self.index())

    def __contains__(self, run_id: str) -> bool:
        return self._record_path(run_id).exists()

    def run_ids(self) -> list[str]:
        """All run IDs in ledger (= recency) order."""
        entries = sorted(self.index().values(), key=lambda e: e["sequence"])
        return [entry["run_id"] for entry in entries]

    def get(self, run_id: str) -> RunRecord:
        """Load one full record; prefixes resolve when unambiguous."""
        path = self._record_path(run_id)
        if not path.exists():
            matches = [
                known for known in self.index() if known.startswith(run_id)
            ]
            if len(matches) == 1:
                path = self._record_path(matches[0])
            elif matches:
                raise StoreError(
                    f"run ID prefix {run_id!r} is ambiguous: {sorted(matches)}"
                )
            else:
                raise StoreError(f"no run {run_id!r} in store {self.root}")
        return RunRecord.from_dict(json.loads(path.read_text()))

    def select(self, kind: str | None = None, **filters) -> list[dict]:
        """Ledger summaries matching the filters, in ledger order.

        ``filters`` match summary fields (``topology="dgx1"``,
        ``policy="adaptive"``, ...); ``None``-valued summary fields
        never match a filter.
        """
        entries = sorted(self.index().values(), key=lambda e: e["sequence"])
        out = []
        for entry in entries:
            if kind is not None and entry.get("kind") != kind:
                continue
            if any(entry.get(key) != value for key, value in filters.items()):
                continue
            out.append(entry)
        return out

    def latest(self, kind: str | None = None, **filters) -> RunRecord | None:
        """The most recently put record matching the filters."""
        entries = self.select(kind=kind, **filters)
        if not entries:
            return None
        return self.get(entries[-1]["run_id"])

    # -- ingestion of pre-store artifacts ----------------------------------

    def ingest(self, path: str | pathlib.Path) -> RunRecord:
        """Import a legacy artifact (BENCH baseline / chaos report).

        The artifact's shape is sniffed: a ``BENCH_*.json`` perf
        baseline (``metrics`` + ``directions``) becomes a ``perf``
        record and a ``chaos_report.json`` becomes a ``chaos`` record —
        so historical hand-committed files join the ledger and the perf
        gate can read its baseline *through the store*.
        """
        path = pathlib.Path(path)
        payload = json.loads(path.read_text())
        if "metrics" in payload and "directions" in payload:
            record = RunRecord.build(
                "perf",
                config=dict(payload.get("run", {})),
                metrics=payload["metrics"],
                directions=payload["directions"],
                meta=payload.get("run", {}),
            )
        elif "throughput_retention" in payload and "plan" in payload:
            record = chaos_record(payload)
        else:
            raise StoreError(
                f"{path}: unrecognized artifact shape (expected a BENCH"
                " baseline or a chaos report)"
            )
        return self.put(record)


def chaos_record(payload: dict) -> RunRecord:
    """A ``chaos_report.json`` payload as a store record."""
    metrics = {
        "chaos.throughput_retention": payload["throughput_retention"],
        "chaos.healthy_seconds": payload["healthy_seconds"],
        "chaos.faulted_seconds": payload["faulted_seconds"],
        "chaos.correct": 1.0 if payload.get("correct") else 0.0,
    }
    directions = {
        "chaos.throughput_retention": "higher",
        "chaos.healthy_seconds": "lower",
        "chaos.faulted_seconds": "lower",
        "chaos.correct": "higher",
    }
    for name, value in payload.get("counters", {}).items():
        metrics[f"chaos.{name}"] = float(value)
        directions[f"chaos.{name}"] = "track"
    telemetry = {
        key: payload.get(key)
        for key in ("recovery_telemetry", "retry", "recovery")
        if payload.get(key) is not None
    }
    telemetry["digest_match"] = (
        payload.get("healthy_digest") == payload.get("faulted_digest")
    )
    alerts = payload.get("alerts")
    if alerts is not None:
        # Fired SLO alerts ride along so the observatory can trend them.
        telemetry["alerts"] = alerts
        metrics["chaos.alerts_fired"] = float(len(alerts))
        directions["chaos.alerts_fired"] = "lower"
        critical = sum(1 for alert in alerts if alert.get("severity") == "critical")
        metrics["chaos.alerts_critical"] = float(critical)
        directions["chaos.alerts_critical"] = "lower"
    meta = dict(payload.get("run", {}))
    config = {
        "scenario": payload.get("plan", {}).get("name"),
        "topology": meta.get("topology"),
        "num_gpus": meta.get("num_gpus"),
        "seed": meta.get("seed"),
        "policy": meta.get("policy"),
    }
    return RunRecord.build(
        "chaos",
        config=config,
        metrics=metrics,
        directions=directions,
        meta=meta,
        telemetry=telemetry,
    )


def serve_chaos_record(payload: dict) -> RunRecord:
    """A ``serve_chaos_report.json`` payload as a store record.

    Per-query verdicts (status, digest vs the solo reference, crashed
    GPUs) ride in the telemetry blob so a broken concurrency-identity
    gate is diagnosable from the ledger alone.
    """
    serve = payload.get("serve", {})
    metrics = {
        "serve.chaos_correct": 1.0 if payload.get("correct") else 0.0,
        "serve.in_flight_peak": float(payload.get("in_flight_peak", 0)),
        "serve.completed": float(serve.get("completed", 0)),
        "serve.rejected": float(serve.get("rejected", 0)),
        "serve.failed": float(serve.get("failed", 0)),
        "serve.elapsed_ms": float(serve.get("elapsed", 0.0)) * 1e3,
        "serve.recovered_queries": float(
            len(payload.get("recovered_queries", ()))
        ),
    }
    directions = {
        "serve.chaos_correct": "higher",
        "serve.in_flight_peak": "track",
        "serve.completed": "higher",
        "serve.rejected": "track",
        "serve.failed": "lower",
        "serve.elapsed_ms": "lower",
        "serve.recovered_queries": "track",
    }
    telemetry = {
        "queries": payload.get("queries", {}),
        "mismatches": payload.get("mismatches", []),
        "recovered_queries": list(payload.get("recovered_queries", ())),
    }
    alerts = payload.get("alerts")
    if alerts is not None:
        telemetry["alerts"] = alerts
        metrics["serve.alerts_fired"] = float(len(alerts))
        directions["serve.alerts_fired"] = "lower"
    meta = dict(payload.get("run", {}))
    config = {
        "scenario": payload.get("plan"),
        "seed": payload.get("seed"),
        "min_in_flight": payload.get("min_in_flight"),
        "topology": meta.get("topology"),
        "num_gpus": meta.get("num_gpus"),
        "queries": meta.get("queries"),
        "policy": meta.get("policy"),
    }
    return RunRecord.build(
        "serve-chaos",
        config=config,
        metrics=metrics,
        directions=directions,
        meta=meta,
        telemetry=telemetry,
    )


def fuzz_record(payload: dict) -> RunRecord:
    """A ``fuzz_report.json`` payload as a store record.

    Failures (with their minimized reproducer plans) ride in the
    telemetry blob so a red fuzz campaign is diagnosable from the
    ledger alone.
    """
    failures = payload.get("failures", [])
    metrics = {
        "fuzz.plans_run": float(payload.get("plans_run", 0)),
        "fuzz.failures": float(len(failures)),
        "fuzz.ok": 1.0 if payload.get("ok") else 0.0,
    }
    directions = {
        "fuzz.plans_run": "track",
        "fuzz.failures": "lower",
        "fuzz.ok": "higher",
    }
    meta = dict(payload.get("run", {}))
    config = {
        "seed": payload.get("seed"),
        "budget": payload.get("budget"),
        "topology": meta.get("topology"),
        "num_gpus": meta.get("num_gpus"),
        "policy": meta.get("policy"),
        "verify": meta.get("verify"),
    }
    return RunRecord.build(
        "chaos-fuzz",
        config=config,
        metrics=metrics,
        directions=directions,
        meta=meta,
        telemetry={"failures": failures},
    )
