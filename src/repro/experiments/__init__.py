"""The experiment farm: results store, sweep harness, observatory.

Three layers (the ``run_one`` / ``run_batch`` / ``ResultsStore``
decomposition):

* :mod:`repro.experiments.store` — :class:`ResultsStore`, an on-disk
  ledger of self-describing :class:`RunRecord` files with
  deterministic run IDs (``<kind>-<config hash>``).
* :mod:`repro.experiments.sweep` — :func:`run_one` / :func:`run_batch`
  fan parameterized batches (topology x policy x fault plan x scale)
  over a process pool into the store, with live progress events.
* :mod:`repro.experiments.observatory` — cross-run metric diffs,
  per-topology trend lines over the ledger, and regression
  attribution joining a failing metric back to the offending run's
  phase/link breakdown.

CLI: ``repro experiments run | list | compare | report | ingest``.
"""

from repro.experiments.observatory import (
    attribute_regression,
    diff_records,
    render_compare,
    render_trends,
    sparkline,
    trend_rows,
)
from repro.experiments.store import (
    DEFAULT_STORE_DIR,
    RESULTS_STORE_ENV,
    ResultsStore,
    RunRecord,
    StoreError,
)
from repro.experiments.sweep import (
    SweepError,
    SweepPoint,
    parse_sweep,
    run_batch,
    run_one,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "RESULTS_STORE_ENV",
    "ResultsStore",
    "RunRecord",
    "StoreError",
    "SweepError",
    "SweepPoint",
    "attribute_regression",
    "diff_records",
    "parse_sweep",
    "render_compare",
    "render_trends",
    "run_batch",
    "run_one",
    "sparkline",
    "trend_rows",
]
