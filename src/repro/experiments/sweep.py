"""The sweep harness: parameterized batches into the results store.

MG-Join's evaluation (Figs. 4-14) is one big topology x policy x
scale sweep; the chaos matrix adds a fault-plan axis.  This module
gives those a shared engine:

* :class:`SweepPoint` — one fully specified run (topology, routing
  policy, GPU count, optional fault preset, workload knobs).
* :func:`parse_sweep` — ``key=value[,value...]`` tokens (the CLI's
  ``--sweep topology=dgx1 policy=adaptive,static scale=2``) expanded
  into the cartesian product of points.
* :func:`run_one` — execute one point under a fresh observer inside
  its deterministic :func:`~repro.obs.meta.run_scope`, derive the
  record (metrics + directions + span self-time phases + busiest
  links + fault telemetry) and persist it.
* :func:`run_batch` — fan points over a :mod:`multiprocessing` pool
  (sharing the bench runner's on-disk workload cache), emitting
  structured progress events while the sweep is live; records are
  committed to the store by the parent, in completion order.

Workers return record payloads instead of writing to the store
directly, so ledger appends are single-writer and progress events
stream from one place.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable

from repro.experiments.store import ResultsStore, RunRecord
from repro.obs import Observer
from repro.obs.export import record_self_time_gauges
from repro.obs.meta import run_id_for, run_metadata, run_scope

#: Links kept in a record's busiest-link breakdown.
TOP_LINKS = 12

#: Sweepable axes and their parsers; everything else is rejected so a
#: typo (``topolgy=dgx1``) fails fast instead of silently sweeping
#: nothing.
_AXIS_PARSERS: dict[str, Callable[[str], object]] = {
    "topology": str,
    "policy": str,
    "scale": int,
    "faults": lambda text: None if text in ("none", "") else text,
    "tuples_per_gpu": int,
    "real_tuples": int,
    "seed": int,
    "queries": int,
    "arrival": float,
}

#: Fault presets the serving layer cannot host (verified transport is a
#: per-run facility, not a shared-fabric one) — mirror the check in
#: :meth:`repro.serve.fabric.ServeFabric.bind_faults` so a serve sweep
#: fails at parse/validate time, not mid-batch.
_SERVE_UNSUPPORTED_PRESETS = ("payload-corrupt", "packet-dup", "packet-reorder")


class SweepError(ValueError):
    """A sweep specification could not be parsed or validated."""


@dataclass(frozen=True)
class SweepPoint:
    """One fully specified experiment in a sweep."""

    topology: str = "dgx1"
    policy: str = "adaptive"
    scale: int = 8
    faults: str | None = None
    tuples_per_gpu: int = 64 * 1024 * 1024
    real_tuples: int = 32 * 1024
    seed: int = 42
    #: > 1 turns the point into a serving-layer run: ``queries``
    #: concurrent joins multiplexed over one shared fabric, separated
    #: by ``arrival`` seconds (0 = all at the same instant).
    queries: int = 1
    arrival: float = 0.0

    def config(self) -> dict:
        """The JSON-able configuration that defines this point's ID."""
        return dataclasses.asdict(self)

    @property
    def run_kind(self) -> str:
        if self.queries > 1:
            return "serve"
        return "chaos" if self.faults else "join"

    @property
    def run_id(self) -> str:
        return run_id_for(self.run_kind, self.config())

    @property
    def label(self) -> str:
        parts = [self.topology, self.policy, f"{self.scale}gpu"]
        if self.queries > 1:
            parts.append(f"{self.queries}q")
        if self.faults:
            parts.append(self.faults)
        return "/".join(parts)


def parse_sweep(
    tokens: list[str], defaults: SweepPoint | None = None
) -> list[SweepPoint]:
    """``key=value[,value...]`` tokens -> the cartesian product of points.

    Axes not named keep the default point's value; repeated keys are
    rejected.  The expansion order is deterministic (itertools.product
    over the token order), so a sweep's point list — and therefore its
    run IDs — is reproducible from the command line alone.
    """
    defaults = defaults or SweepPoint()
    axes: dict[str, list] = {}
    for token in tokens:
        key, sep, values = token.partition("=")
        key = key.strip().replace("-", "_")
        if not sep or not values:
            raise SweepError(f"bad sweep token {token!r}; want key=v1[,v2,...]")
        if key not in _AXIS_PARSERS:
            raise SweepError(
                f"unknown sweep axis {key!r}; have {sorted(_AXIS_PARSERS)}"
            )
        if key in axes:
            raise SweepError(f"sweep axis {key!r} given twice")
        parser = _AXIS_PARSERS[key]
        try:
            axes[key] = [parser(value.strip()) for value in values.split(",")]
        except ValueError as exc:
            raise SweepError(f"bad value in {token!r}: {exc}") from exc
    if not axes:
        raise SweepError("empty sweep: name at least one axis (key=value)")
    keys = list(axes)
    points = [
        dataclasses.replace(defaults, **dict(zip(keys, combo)))
        for combo in itertools.product(*axes.values())
    ]
    seen: set[str] = set()
    unique = []
    for point in points:
        if point.run_id not in seen:
            seen.add(point.run_id)
            unique.append(point)
    return unique


# ---------------------------------------------------------------------------
# Running one point
# ---------------------------------------------------------------------------


def _machines() -> dict:
    from repro.cli import MACHINES

    return MACHINES


def _policies() -> dict:
    from repro.cli import POLICIES
    from repro.routing import BandwidthPolicy

    # "static" is the paper's shorthand for the static multi-hop
    # comparison policy (Figure 7); alias it to BandwidthPolicy.
    return {**POLICIES, "static": BandwidthPolicy}


def validate_point(point: SweepPoint) -> None:
    """Fail fast on a point naming an unknown machine/policy/preset."""
    machines, policies = _machines(), _policies()
    if point.topology not in machines:
        raise SweepError(
            f"unknown topology {point.topology!r}; have {sorted(machines)}"
        )
    if point.policy not in policies:
        raise SweepError(
            f"unknown policy {point.policy!r}; have {sorted(policies)}"
        )
    if point.faults is not None:
        from repro.faults.plan import PRESET_NAMES

        if point.faults not in PRESET_NAMES:
            raise SweepError(
                f"unknown fault preset {point.faults!r}; have {PRESET_NAMES}"
            )
    if point.scale < 1:
        raise SweepError("scale (GPU count) must be >= 1")
    if point.queries < 1:
        raise SweepError("queries must be >= 1")
    if point.arrival < 0.0:
        raise SweepError("arrival (inter-arrival spacing, seconds) must be >= 0")
    if point.queries > 1 and point.faults in _SERVE_UNSUPPORTED_PRESETS:
        raise SweepError(
            f"fault preset {point.faults!r} is not supported with queries > 1 "
            f"(corruption faults need per-query verified transport)"
        )


def _build_workload(point: SweepPoint, gpu_ids: tuple[int, ...]):
    from repro.bench.harness import bench_workload

    logical = max(point.tuples_per_gpu, point.real_tuples)
    logical = (logical // point.real_tuples) * point.real_tuples
    return bench_workload(
        gpu_ids,
        logical_tuples_per_gpu=logical,
        real_tuples_per_gpu=point.real_tuples,
        seed=point.seed,
    )


def _link_breakdown(shuffle_report, top: int = TOP_LINKS) -> list[dict]:
    if shuffle_report is None:
        return []
    ranked = sorted(
        shuffle_report.link_stats.values(),
        key=lambda stats: stats.busy_time,
        reverse=True,
    )[:top]
    return [
        {
            "link": str(stats.spec),
            "bytes_sent": stats.bytes_sent,
            "busy_seconds": stats.busy_time,
            "transfers": stats.transfers,
        }
        for stats in ranked
    ]


def _join_metrics(result) -> tuple[dict, dict]:
    """Flat (metrics, directions) from one JoinResult."""
    metrics = {
        "join.throughput_btps": result.throughput / 1e9,
        "join.total_time_ms": result.total_time * 1e3,
        "join.matches_logical": float(result.matches_logical),
        "join.cycles_per_tuple": result.cycles_per_tuple,
    }
    directions = {
        "join.throughput_btps": "higher",
        "join.total_time_ms": "lower",
        "join.matches_logical": "track",
        "join.cycles_per_tuple": "lower",
    }
    for phase, seconds in result.breakdown.as_dict().items():
        name = f"phase.{phase}_ms"
        metrics[name] = seconds * 1e3
        directions[name] = "lower"
    report = result.shuffle_report
    if report is not None:
        metrics.update(
            {
                "shuffle.throughput_gbps": report.throughput / 1e9,
                "shuffle.elapsed_ms": report.elapsed * 1e3,
                "shuffle.bisection_utilization": report.bisection_utilization,
                "shuffle.average_hops": report.average_hops,
            }
        )
        directions.update(
            {
                "shuffle.throughput_gbps": "higher",
                "shuffle.elapsed_ms": "lower",
                "shuffle.bisection_utilization": "higher",
                "shuffle.average_hops": "track",
            }
        )
    return metrics, directions


def _run_serve_point(
    point: SweepPoint, machine, policy_cls, observer, telemetry: dict
) -> tuple[dict, dict]:
    """Execute a ``queries > 1`` point through the serving layer."""
    from repro.serve import QueryScheduler, run_serve_chaos, synthetic_requests

    requests = synthetic_requests(
        point.queries,
        gpus=point.scale,
        tuples=point.real_tuples,
        arrival_spacing=point.arrival,
        seed=point.seed,
    )
    chaos = None
    if point.faults is None:
        report = QueryScheduler(
            machine,
            requests,
            policy_factory=policy_cls,
            max_in_flight=point.queries,
            observer=observer,
        ).run()
    else:
        chaos = run_serve_chaos(
            machine,
            requests,
            point.faults,
            policy_factory=policy_cls,
            seed=point.seed,
            # Staggered arrivals legitimately lower the concurrency
            # peak, so only the all-at-once case gates on it.
            min_in_flight=point.queries if point.arrival == 0.0 else 1,
            observer=observer,
            strict=False,
        )
        report = chaos.serve
    latencies = [o.latency for o in report.outcomes if o.latency is not None]
    waits = [o.queue_wait for o in report.outcomes if o.queue_wait is not None]
    admitted = report.completed + report.failed
    metrics = {
        "serve.elapsed_ms": report.elapsed * 1e3,
        "serve.completed": float(report.completed),
        "serve.rejected": float(report.rejected),
        "serve.failed": float(report.failed),
        "serve.in_flight_peak": float(report.in_flight_peak),
        "serve.queue_peak": float(report.queue_peak),
        "serve.latency_max_ms": max(latencies, default=0.0) * 1e3,
        "serve.queue_wait_max_ms": max(waits, default=0.0) * 1e3,
        "serve.retention_ratio": (
            report.completed / admitted if admitted else 1.0
        ),
    }
    directions = {
        "serve.elapsed_ms": "lower",
        "serve.completed": "higher",
        "serve.rejected": "track",
        "serve.failed": "lower",
        "serve.in_flight_peak": "track",
        "serve.queue_peak": "track",
        "serve.latency_max_ms": "lower",
        "serve.queue_wait_max_ms": "lower",
        "serve.retention_ratio": "higher",
    }
    if chaos is not None:
        metrics["chaos.correct"] = 1.0 if chaos.correct else 0.0
        metrics["chaos.recovered_queries"] = float(len(chaos.recovered_queries))
        directions["chaos.correct"] = "higher"
        directions["chaos.recovered_queries"] = "track"
    telemetry["serve"] = {
        "statuses": {o.name: o.status for o in report.outcomes},
        "arbitration": report.arbitration,
    }
    return metrics, directions


def run_one(
    point: SweepPoint, store: ResultsStore | None = None
) -> RunRecord:
    """Execute one sweep point and build (optionally persist) its record.

    The run happens inside ``run_scope(point.run_id)``, so every
    artifact it produces — traces, figure JSON, anything a child
    process writes — carries the same deterministic run ID.
    """
    validate_point(point)
    machine = _machines()[point.topology]()
    if point.scale > machine.num_gpus:
        raise SweepError(
            f"scale {point.scale} exceeds {point.topology}'s"
            f" {machine.num_gpus} GPUs"
        )
    gpu_ids = tuple(machine.gpu_ids[: point.scale])
    policy_cls = _policies()[point.policy]
    # Serve points size their tenants from the request stream instead of
    # one bench workload, so skip the (cached but large) build.
    workload = None if point.queries > 1 else _build_workload(point, gpu_ids)
    observer = Observer()
    telemetry: dict = {}
    started = time.perf_counter()
    result = None
    with run_scope(point.run_id):
        if point.queries > 1:
            metrics, directions = _run_serve_point(
                point, machine, policy_cls, observer, telemetry
            )
        elif point.faults is None:
            from repro.core import MGJoin

            result = MGJoin(
                machine, policy=policy_cls(), observer=observer
            ).run(workload)
            metrics, directions = _join_metrics(result)
        else:
            from repro.faults import run_chaos

            report = run_chaos(
                machine,
                workload,
                point.faults,
                policy=policy_cls(),
                seed=point.seed,
                observer=observer,
                strict=False,
            )
            result = report.faulted
            metrics, directions = _join_metrics(result)
            metrics["chaos.throughput_retention"] = report.throughput_retention
            metrics["chaos.correct"] = 1.0 if report.correct else 0.0
            directions["chaos.throughput_retention"] = "higher"
            directions["chaos.correct"] = "higher"
            for name, value in report.fault_counters.items():
                metrics[f"chaos.{name}"] = float(value)
                directions[f"chaos.{name}"] = "track"
            telemetry["digest_match"] = (
                report.healthy.match_digest == report.faulted.match_digest
            )
            if result.recovery is not None:
                rec = result.recovery
                telemetry["recovery"] = {
                    "dead_gpus": list(rec.dead_gpus),
                    "survivors": list(rec.survivors),
                    "detection_latency_seconds": rec.max_detection_latency,
                    "partitions_reassigned": rec.partitions_reassigned,
                    "reshuffled_bytes": rec.reshuffled_bytes,
                    "host_resent_bytes": rec.host_resent_bytes,
                    "recovery_elapsed_seconds": rec.recovery_elapsed,
                }
        metrics["perf.self_time_seconds"] = time.perf_counter() - started
        directions["perf.self_time_seconds"] = "lower"
        record_self_time_gauges(observer)
        meta = run_metadata(
            topology=point.topology,
            num_gpus=len(gpu_ids),
            seed=point.seed,
            config=point.config(),
            policy=point.policy,
            scenario=point.faults,
        )
    record = RunRecord.build(
        point.run_kind,
        config=point.config(),
        metrics=metrics,
        directions=directions,
        meta=meta,
        phases=observer.spans.self_times(),
        links=_link_breakdown(result.shuffle_report if result is not None else None),
        telemetry=telemetry,
        snapshot=observer.metrics.snapshot(),
    )
    assert record.run_id == point.run_id
    if store is not None:
        store.put(record)
    return record


# ---------------------------------------------------------------------------
# Running a batch
# ---------------------------------------------------------------------------


def _run_point_worker(config: dict, workload_cache: str | None) -> dict:
    """Pool entry point: run one point, return its record payload.

    Top-level so it pickles under every start method; errors come back
    as data so one broken point never tears down the whole sweep.
    """
    if workload_cache:
        from repro.bench.harness import WORKLOAD_CACHE_ENV

        os.environ[WORKLOAD_CACHE_ENV] = workload_cache
    point = SweepPoint(**config)
    try:
        record = run_one(point)
    except Exception as exc:  # surfaced as a failed point event
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "label": point.label,
            "run_id": point.run_id,
        }
    return {"record": record.to_dict(), "label": point.label}


def run_batch(
    points: list[SweepPoint],
    store: ResultsStore,
    jobs: int | None = None,
    workload_cache: str | None = None,
    progress: Callable[[dict], None] | None = None,
    stream=None,
) -> list[RunRecord]:
    """Fan ``points`` over a process pool and commit records in order
    of completion.

    ``progress`` receives structured events while the sweep is live:
    ``sweep_started``, then one ``point_finished`` / ``point_failed``
    per point (with run ID, label, wall seconds and headline metric),
    then ``sweep_finished``.  Raises :class:`SweepError` at the end if
    any point failed, after committing every point that succeeded.

    ``stream`` (a :class:`repro.obs.stream.TelemetryStream`) mirrors the
    same progress as wall-clock ``sweep.*`` NDJSON events, so a sweep
    can be watched live with ``repro top``.
    """
    if not points:
        raise SweepError("run_batch needs at least one point")
    for point in points:
        validate_point(point)
    base_emit = progress or (lambda event: None)
    _STREAM_TYPES = {
        "sweep_started": "sweep.started",
        "point_finished": "sweep.point",
        "point_failed": "sweep.failed",
        "sweep_finished": "sweep.finished",
    }

    def emit(event: dict) -> None:
        base_emit(event)
        if stream is not None:
            fields = {k: v for k, v in event.items() if k != "event"}
            if event["event"] == "sweep_finished":
                fields["finished"] = event["points"] - event["failed"]
            stream.emit(
                _STREAM_TYPES[event["event"]],
                t=stream.wall(),
                clock="wall",
                **fields,
            )
            stream.flush()
    if jobs is None:
        jobs = min(len(points), os.cpu_count() or 1)
    if jobs < 1:
        raise SweepError("jobs must be >= 1")
    emit(
        {
            "event": "sweep_started",
            "points": len(points),
            "jobs": jobs,
            "store": str(store.root),
        }
    )
    work = [(point.config(), workload_cache) for point in points]
    started = time.perf_counter()
    records: list[RunRecord] = []
    failures: list[str] = []

    def _commit(payload: dict) -> None:
        if "error" in payload:
            failures.append(f"{payload['label']}: {payload['error']}")
            emit(
                {
                    "event": "point_failed",
                    "run_id": payload["run_id"],
                    "label": payload["label"],
                    "error": payload["error"],
                }
            )
            return
        record = RunRecord.from_dict(payload["record"])
        store.put(record)
        records.append(record)
        emit(
            {
                "event": "point_finished",
                "run_id": record.run_id,
                "label": payload["label"],
                "seconds": record.metrics.get("perf.self_time_seconds"),
                "throughput_btps": record.metrics.get("join.throughput_btps"),
                "completed": len(records) + len(failures),
                "points": len(points),
            }
        )

    if jobs == 1 or len(points) == 1:
        for item in work:
            _commit(_run_point_worker(*item))
    else:
        with multiprocessing.Pool(processes=jobs) as pool:
            for payload in pool.imap_unordered(_star_worker, work):
                _commit(payload)
    emit(
        {
            "event": "sweep_finished",
            "points": len(points),
            "failed": len(failures),
            "wall_seconds": time.perf_counter() - started,
            "store": str(store.root),
        }
    )
    if failures:
        raise SweepError(
            f"{len(failures)} of {len(points)} sweep point(s) failed: "
            + "; ".join(failures)
        )
    return records


def _star_worker(item: tuple) -> dict:
    return _run_point_worker(*item)
