"""The cross-run observatory: diffs, trends, regression attribution.

Once runs live in a :class:`~repro.experiments.store.ResultsStore`,
three questions become cheap:

* **What changed between these two runs?**  :func:`diff_records`
  reuses the perf gate's direction-aware comparison
  (:mod:`repro.bench.regression`) over any two records' metric
  surfaces, so "regression" means the same thing in CI and in an
  ad-hoc A/B.
* **How has this configuration trended?**  :func:`trend_rows` walks
  the append-only ledger history — every put of every revision — and
  :func:`render_trends` draws per-metric sparkline trajectories
  grouped by topology/policy.
* **Why did it regress?**  :func:`attribute_regression` joins a
  failing metric back to the offending run's span-derived per-phase
  self-times and busiest-link breakdown, ranking the phases and links
  whose deltas explain the movement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.regression import DEFAULT_TOLERANCE, GateResult, compare
from repro.experiments.store import ResultsStore, RunRecord

#: Sparkline glyphs, low to high.
_SPARKS = "▁▂▃▄▅▆▇█"


def diff_records(
    baseline: RunRecord,
    current: RunRecord,
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateResult:
    """Direction-aware metric diff between two store records.

    Directions come from the records themselves (baseline's tags win
    on conflict), so chaos records gate on retention and join records
    on throughput without any global registry knowing about either.
    """
    directions = dict(current.directions)
    directions.update(baseline.directions)
    return compare(
        baseline.metrics,
        current.metrics,
        tolerance=tolerance,
        directions=directions,
    )


def render_compare(
    baseline: RunRecord,
    current: RunRecord,
    result: GateResult,
) -> str:
    """The ``repro experiments compare`` report."""
    lines = [
        f"baseline : {baseline.run_id}  ({_describe(baseline)})",
        f"current  : {current.run_id}  ({_describe(current)})",
        "",
        result.render().rstrip("\n"),
    ]
    if result.regressions:
        lines.append("")
        lines.append(attribute_regression(baseline, current, result))
    return "\n".join(lines) + "\n"


def _describe(record: RunRecord) -> str:
    parts = [record.kind]
    for key in ("topology", "policy", "num_gpus", "repro_version"):
        value = record.meta.get(key)
        if value is None:
            value = record.config.get(key)
        if value is not None:
            parts.append(f"{key}={value}")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# Regression attribution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Contributor:
    """One phase or link whose cost moved between two runs."""

    name: str
    baseline_seconds: float
    current_seconds: float

    @property
    def delta(self) -> float:
        return self.current_seconds - self.baseline_seconds


def _phase_deltas(baseline: RunRecord, current: RunRecord) -> list[Contributor]:
    names = set(baseline.phases) | set(current.phases)
    out = [
        Contributor(
            name=name,
            baseline_seconds=float(baseline.phases.get(name, 0.0)),
            current_seconds=float(current.phases.get(name, 0.0)),
        )
        for name in names
    ]
    return sorted(out, key=lambda c: abs(c.delta), reverse=True)


def _link_deltas(baseline: RunRecord, current: RunRecord) -> list[Contributor]:
    def busy(record: RunRecord) -> dict[str, float]:
        return {
            entry["link"]: float(entry.get("busy_seconds", 0.0))
            for entry in record.links
        }

    base, cur = busy(baseline), busy(current)
    out = [
        Contributor(
            name=link,
            baseline_seconds=base.get(link, 0.0),
            current_seconds=cur.get(link, 0.0),
        )
        for link in set(base) | set(cur)
    ]
    return sorted(out, key=lambda c: abs(c.delta), reverse=True)


def attribute_regression(
    baseline: RunRecord,
    current: RunRecord,
    result: GateResult,
    top: int = 3,
) -> str:
    """Join each regressed metric back to phase / link movement.

    The offending run's span-derived per-phase self-times and
    busiest-link busy-seconds are diffed against the baseline's; the
    largest movers are the attribution.  This is the bridge between
    "the gate failed" and "go look at the drain phase on link X".
    """
    lines = ["regression attribution:"]
    phases = _phase_deltas(baseline, current)
    links = _link_deltas(baseline, current)
    for comparison in result.regressions:
        lines.append(
            f"  {comparison.name}: {comparison.baseline:.4f} ->"
            f" {comparison.current:.4f} ({comparison.change:+.1%})"
        )
        movers = [c for c in phases if abs(c.delta) > 0][:top]
        if movers:
            lines.append("    phase self-time movement:")
            for contributor in movers:
                lines.append(
                    f"      {contributor.name:<24}"
                    f" {contributor.baseline_seconds * 1e3:9.3f} ->"
                    f" {contributor.current_seconds * 1e3:9.3f} ms"
                    f"  ({contributor.delta * 1e3:+.3f} ms)"
                )
        movers = [c for c in links if abs(c.delta) > 0][:top]
        if movers:
            lines.append("    link busy-time movement:")
            for contributor in movers:
                lines.append(
                    f"      {contributor.name:<28}"
                    f" {contributor.baseline_seconds * 1e3:9.3f} ->"
                    f" {contributor.current_seconds * 1e3:9.3f} ms"
                    f"  ({contributor.delta * 1e3:+.3f} ms)"
                )
        if not phases and not links:
            lines.append(
                "    (no phase/link breakdown stored for these runs)"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Trends over the ledger
# ---------------------------------------------------------------------------


def trend_rows(
    store: ResultsStore,
    metric: str,
    kind: str | None = None,
    topology: str | None = None,
) -> dict[tuple, list[tuple[int, float]]]:
    """Metric trajectories over the full ledger history.

    Every ledger line — including superseded revisions of a run ID —
    contributes one ``(sequence, value)`` sample, keyed by
    ``(topology, policy, run_id)``.  The append-only ledger is what
    makes this a *trend*: re-running a configuration adds a new sample
    instead of erasing the old one.
    """
    series: dict[tuple, list[tuple[int, float]]] = {}
    for entry in store.history():
        if kind is not None and entry.get("kind") != kind:
            continue
        if topology is not None and entry.get("topology") != topology:
            continue
        value = entry.get(metric)
        if value is None:
            continue
        key = (
            entry.get("topology") or "?",
            entry.get("policy") or "?",
            entry["run_id"],
        )
        series.setdefault(key, []).append((entry["sequence"], float(value)))
    for samples in series.values():
        samples.sort()
    return series


def sparkline(values: list[float]) -> str:
    """A unicode sparkline; constant series render flat."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARKS[3] * len(values)
    scale = (len(_SPARKS) - 1) / (hi - lo)
    return "".join(_SPARKS[int((v - lo) * scale)] for v in values)


def render_trends(
    store: ResultsStore,
    metrics: list[str] | None = None,
    kind: str | None = None,
    topology: str | None = None,
) -> str:
    """Per-topology trend lines for ``repro experiments report``."""
    if metrics is None:
        metrics = ["join.throughput_btps", "shuffle.throughput_gbps"]
    lines: list[str] = []
    for metric in metrics:
        series = trend_rows(store, metric, kind=kind, topology=topology)
        if not series:
            continue
        lines.append(f"{metric}:")
        for (topo, policy, run_id), samples in sorted(series.items()):
            values = [value for _, value in samples]
            label = f"{topo}/{policy}"
            lines.append(
                f"  {label:<24} {sparkline(values)}  "
                f"latest {values[-1]:.4f}"
                + (
                    f"  (from {values[0]:.4f}, {len(values)} samples)"
                    if len(values) > 1
                    else ""
                )
                + f"  [{run_id[:20]}]"
            )
    if not lines:
        return "(no matching runs in the ledger)\n"
    return "\n".join(lines) + "\n"
