"""The six TPC-H query plans of the paper's §5.4.

Each query is a hand-written physical plan against the engine API —
scan (projection + filter pushdown), repartition hash joins, group-by
aggregation, sort/limit — mirroring how the paper implements "GPU
versions of 6 TPC-H queries that make use of MG-Join".

Every plan runs on any engine (MG-Join, DPRJ, OmniSci CPU/GPU), since
the engines share the functional operators; only the charged time and
memory feasibility differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.engine import MGJoinQueryEngine, QueryReport
from repro.relational.omnisci import QueryOutOfMemory
from repro.relational.operators import Aggregate
from repro.relational.table import Table
from repro.relational.tpch.datagen import TpchDatabase
from repro.relational.tpch.dates import date_to_days


@dataclass
class QueryResult:
    """One query execution: answer table + cost report (or NA)."""

    query: str
    engine: str
    table: Table | None
    report: QueryReport | None
    na_reason: str | None = None

    @property
    def is_na(self) -> bool:
        return self.na_reason is not None

    @property
    def seconds(self) -> float | None:
        return self.report.total_seconds if self.report else None


def _dict_mask(table: Table, column: str, predicate) -> np.ndarray:
    """Boolean mask from a predicate over a dictionary column's values."""
    matching = np.array(
        [i for i, v in enumerate(table.dictionaries[column]) if predicate(v)],
        dtype=np.int64,
    )
    return np.isin(table[column], matching)


def _revenue(table: Table) -> np.ndarray:
    return table["l_extendedprice"] * (1.0 - table["l_discount"])


def q3(engine: MGJoinQueryEngine, db: TpchDatabase) -> Table:
    """Shipping priority: revenue of undelivered BUILDING orders."""
    segment = db.customer.encode("c_mktsegment", "BUILDING")
    cutoff = date_to_days(1995, 3, 15)
    customer = engine.scan(
        db.customer,
        ("c_custkey", "c_mktsegment"),
        lambda t: t["c_mktsegment"] == segment,
    )
    orders = engine.scan(
        db.orders,
        ("o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"),
        lambda t: t["o_orderdate"] < cutoff,
    )
    lineitem = engine.scan(
        db.lineitem,
        ("l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"),
        lambda t: t["l_shipdate"] > cutoff,
    )
    joined = engine.join(customer, orders, "c_custkey", "o_custkey")
    joined = engine.join(joined, lineitem, "o_orderkey", "l_orderkey")
    aggregated = engine.aggregate(
        joined,
        ("l_orderkey", "o_orderdate", "o_shippriority"),
        (Aggregate("revenue", "sum", expression=_revenue),),
    )
    return engine.sort_limit(
        aggregated, ("revenue", "o_orderdate"), (False, True), limit=10
    )


def q5(engine: MGJoinQueryEngine, db: TpchDatabase) -> Table:
    """Local supplier volume in ASIA, 1994."""
    asia = db.region.encode("r_name", "ASIA")
    start, end = date_to_days(1994, 1, 1), date_to_days(1995, 1, 1)
    region = engine.scan(
        db.region, ("r_regionkey", "r_name"), lambda t: t["r_name"] == asia
    )
    nation = engine.scan(db.nation, ("n_nationkey", "n_name", "n_regionkey"))
    supplier = engine.scan(db.supplier, ("s_suppkey", "s_nationkey"))
    customer = engine.scan(db.customer, ("c_custkey", "c_nationkey"))
    orders = engine.scan(
        db.orders,
        ("o_orderkey", "o_custkey", "o_orderdate"),
        lambda t: (t["o_orderdate"] >= start) & (t["o_orderdate"] < end),
    )
    lineitem = engine.scan(
        db.lineitem,
        ("l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"),
    )
    nation = engine.join(nation, region, "n_regionkey", "r_regionkey")
    supplier = engine.join(supplier, nation, "s_nationkey", "n_nationkey")
    joined = engine.join(lineitem, supplier, "l_suppkey", "s_suppkey")
    joined = engine.join(joined, orders, "l_orderkey", "o_orderkey")
    joined = engine.join(joined, customer, "o_custkey", "c_custkey")
    # Local suppliers only: the customer and supplier share a nation.
    joined = joined.take(joined["c_nationkey"] == joined["s_nationkey"])
    aggregated = engine.aggregate(
        joined, ("n_name",), (Aggregate("revenue", "sum", expression=_revenue),)
    )
    return engine.sort_limit(aggregated, ("revenue",), (False,))


def q10(engine: MGJoinQueryEngine, db: TpchDatabase) -> Table:
    """Returned-item reporting, Q4 1993."""
    start, end = date_to_days(1993, 10, 1), date_to_days(1994, 1, 1)
    returned = db.lineitem.encode("l_returnflag", "R")
    customer = engine.scan(
        db.customer,
        (
            "c_custkey", "c_name", "c_acctbal", "c_phone",
            "c_nationkey", "c_address", "c_comment",
        ),
    )
    orders = engine.scan(
        db.orders,
        ("o_orderkey", "o_custkey", "o_orderdate"),
        lambda t: (t["o_orderdate"] >= start) & (t["o_orderdate"] < end),
    )
    lineitem = engine.scan(
        db.lineitem,
        ("l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"),
        lambda t: t["l_returnflag"] == returned,
    )
    nation = engine.scan(db.nation, ("n_nationkey", "n_name"))
    joined = engine.join(customer, orders, "c_custkey", "o_custkey")
    joined = engine.join(joined, lineitem, "o_orderkey", "l_orderkey")
    joined = engine.join(joined, nation, "c_nationkey", "n_nationkey")
    aggregated = engine.aggregate(
        joined,
        (
            "c_custkey", "c_name", "c_acctbal", "c_phone",
            "n_name", "c_address", "c_comment",
        ),
        (Aggregate("revenue", "sum", expression=_revenue),),
    )
    return engine.sort_limit(aggregated, ("revenue",), (False,), limit=20)


def q12(engine: MGJoinQueryEngine, db: TpchDatabase) -> Table:
    """Shipping-mode and order-priority, 1994, MAIL + SHIP."""
    start, end = date_to_days(1994, 1, 1), date_to_days(1995, 1, 1)
    mail = db.lineitem.encode("l_shipmode", "MAIL")
    ship = db.lineitem.encode("l_shipmode", "SHIP")
    lineitem = engine.scan(
        db.lineitem,
        ("l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate"),
        lambda t: (
            ((t["l_shipmode"] == mail) | (t["l_shipmode"] == ship))
            & (t["l_commitdate"] < t["l_receiptdate"])
            & (t["l_shipdate"] < t["l_commitdate"])
            & (t["l_receiptdate"] >= start)
            & (t["l_receiptdate"] < end)
        ),
    )
    orders = engine.scan(db.orders, ("o_orderkey", "o_orderpriority"))
    joined = engine.join(orders, lineitem, "o_orderkey", "l_orderkey")
    urgent = joined.encode("o_orderpriority", "1-URGENT")
    high = joined.encode("o_orderpriority", "2-HIGH")

    def high_lines(t: Table) -> np.ndarray:
        return (
            (t["o_orderpriority"] == urgent) | (t["o_orderpriority"] == high)
        ).astype(np.int64)

    def low_lines(t: Table) -> np.ndarray:
        return 1 - high_lines(t)

    aggregated = engine.aggregate(
        joined,
        ("l_shipmode",),
        (
            Aggregate("high_line_count", "sum", expression=high_lines),
            Aggregate("low_line_count", "sum", expression=low_lines),
        ),
    )
    return engine.sort_limit(aggregated, ("l_shipmode",))


def q14(engine: MGJoinQueryEngine, db: TpchDatabase) -> Table:
    """Promotion effect, September 1995."""
    start, end = date_to_days(1995, 9, 1), date_to_days(1995, 10, 1)
    lineitem = engine.scan(
        db.lineitem,
        ("l_partkey", "l_extendedprice", "l_discount", "l_shipdate"),
        lambda t: (t["l_shipdate"] >= start) & (t["l_shipdate"] < end),
    )
    part = engine.scan(db.part, ("p_partkey", "p_type"))
    joined = engine.join(lineitem, part, "l_partkey", "p_partkey")
    promo_mask = _dict_mask(joined, "p_type", lambda v: v.startswith("PROMO"))

    def promo_revenue(t: Table) -> np.ndarray:
        return _revenue(t) * promo_mask

    aggregated = engine.aggregate(
        joined,
        (),
        (
            Aggregate("promo", "sum", expression=promo_revenue),
            Aggregate("total", "sum", expression=_revenue),
        ),
    )
    promo = aggregated["promo"]
    total = aggregated["total"]
    return aggregated.with_columns(
        {"promo_revenue": 100.0 * promo / np.maximum(total, 1e-9)}
    )


#: Q19's three disjunctive branches: (brand, containers, qty_lo, qty_hi,
#: max size).
_Q19_BRANCHES = (
    ("Brand#12", ("SM CASE", "SM BOX", "SM PACK", "SM PKG"), 1, 11, 5),
    ("Brand#23", ("MED BAG", "MED BOX", "MED PKG", "MED PACK"), 10, 20, 10),
    ("Brand#34", ("LG CASE", "LG BOX", "LG PACK", "LG PKG"), 20, 30, 15),
)


def q19(engine: MGJoinQueryEngine, db: TpchDatabase) -> Table:
    """Discounted revenue for hand-delivered air shipments."""
    air = db.lineitem.encode("l_shipmode", "AIR")
    reg_air = db.lineitem.encode("l_shipmode", "REG AIR")
    in_person = db.lineitem.encode("l_shipinstruct", "DELIVER IN PERSON")
    lineitem = engine.scan(
        db.lineitem,
        (
            "l_partkey", "l_quantity", "l_extendedprice",
            "l_discount", "l_shipmode", "l_shipinstruct",
        ),
        lambda t: (
            ((t["l_shipmode"] == air) | (t["l_shipmode"] == reg_air))
            & (t["l_shipinstruct"] == in_person)
        ),
    )
    part = engine.scan(db.part, ("p_partkey", "p_brand", "p_container", "p_size"))
    joined = engine.join(lineitem, part, "l_partkey", "p_partkey")
    mask = np.zeros(joined.num_rows, dtype=bool)
    for brand, containers, qty_lo, qty_hi, max_size in _Q19_BRANCHES:
        brand_code = joined.encode("p_brand", brand)
        container_mask = _dict_mask(
            joined, "p_container", lambda v, cs=containers: v in cs
        )
        mask |= (
            (joined["p_brand"] == brand_code)
            & container_mask
            & (joined["l_quantity"] >= qty_lo)
            & (joined["l_quantity"] <= qty_hi)
            & (joined["p_size"] >= 1)
            & (joined["p_size"] <= max_size)
        )
    filtered = joined.take(mask)
    return engine.aggregate(
        filtered, (), (Aggregate("revenue", "sum", expression=_revenue),)
    )


QUERIES = {"q3": q3, "q5": q5, "q10": q10, "q12": q12, "q14": q14, "q19": q19}


def run_query(
    name: str, engine: MGJoinQueryEngine, db: TpchDatabase
) -> QueryResult:
    """Run one query, handling shared-nothing out-of-memory as NA."""
    if name not in QUERIES:
        raise KeyError(f"unknown query {name!r}; have {sorted(QUERIES)}")
    engine.begin()
    try:
        table = QUERIES[name](engine, db)
    except QueryOutOfMemory as oom:
        return QueryResult(
            query=name,
            engine=engine.name,
            table=None,
            report=None,
            na_reason=str(oom),
        )
    return QueryResult(
        query=name, engine=engine.name, table=table, report=engine.report
    )
