"""Date handling: TPC-H dates as int32 days since 1992-01-01."""

from __future__ import annotations

import datetime

EPOCH = datetime.date(1992, 1, 1)
#: TPC-H order dates span 1992-01-01 .. 1998-08-02.
LAST_ORDER_DATE = datetime.date(1998, 8, 2)


def date_to_days(year: int, month: int, day: int) -> int:
    """Encode a calendar date as days since the TPC-H epoch."""
    return (datetime.date(year, month, day) - EPOCH).days


def days_to_date(days: int) -> datetime.date:
    """Decode an encoded day count back into a calendar date."""
    return EPOCH + datetime.timedelta(days=int(days))


MAX_ORDER_DAYS = (LAST_ORDER_DATE - EPOCH).days
