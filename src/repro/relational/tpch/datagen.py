"""A self-contained TPC-H data generator (dbgen equivalent).

Generates the eight TPC-H tables with dbgen's cardinalities and the
value distributions the six evaluated queries are sensitive to:
uniform order dates over 1992-1998, lineitem ship/commit/receipt dates
offset from the order date, the official dictionaries for segments,
priorities, ship modes, instructions, return flags, brands, containers
and part types, and prices derived the dbgen way.

The generator is deterministic per (scale_factor, seed).  It is not a
byte-for-byte dbgen clone — comments and names are synthesized — but
every column the evaluated queries touch follows the spec's
distribution closely enough that predicate selectivities land where
TPC-H intends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.table import Table
from repro.relational.tpch.dates import MAX_ORDER_DAYS

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
]
RETURN_FLAGS = ["R", "A", "N"]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

PART_TYPES = [
    f"{a} {b} {c}"
    for a in TYPE_SYLLABLE_1
    for b in TYPE_SYLLABLE_2
    for c in TYPE_SYLLABLE_3
]
CONTAINERS = [
    f"{a} {b}" for a in CONTAINER_SYLLABLE_1 for b in CONTAINER_SYLLABLE_2
]
BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]


@dataclass
class TpchDatabase:
    """The eight generated tables plus the generation parameters."""

    scale_factor: float
    region: Table
    nation: Table
    supplier: Table
    customer: Table
    part: Table
    partsupp: Table
    orders: Table
    lineitem: Table

    def table(self, name: str) -> Table:
        try:
            return getattr(self, name)
        except AttributeError:
            raise KeyError(f"unknown TPC-H table {name!r}") from None

    @property
    def tables(self) -> dict[str, Table]:
        return {
            name: getattr(self, name)
            for name in (
                "region", "nation", "supplier", "customer",
                "part", "partsupp", "orders", "lineitem",
            )
        }


def generate_tpch(scale_factor: float = 0.01, seed: int = 7) -> TpchDatabase:
    """Generate all eight tables at the given scale factor."""
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    rng = np.random.default_rng(seed)
    num_customers = max(1, int(150_000 * scale_factor))
    num_orders = num_customers * 10
    num_parts = max(1, int(200_000 * scale_factor))
    num_suppliers = max(1, int(10_000 * scale_factor))

    region = Table(
        name="region",
        columns={
            "r_regionkey": np.arange(len(REGIONS), dtype=np.int32),
            "r_name": np.arange(len(REGIONS), dtype=np.int8),
        },
        dictionaries={"r_name": list(REGIONS)},
    )
    nation = Table(
        name="nation",
        columns={
            "n_nationkey": np.arange(len(NATIONS), dtype=np.int32),
            "n_name": np.arange(len(NATIONS), dtype=np.int8),
            "n_regionkey": np.array([r for _, r in NATIONS], dtype=np.int32),
        },
        dictionaries={"n_name": [n for n, _ in NATIONS]},
    )
    supplier = Table(
        name="supplier",
        columns={
            "s_suppkey": np.arange(1, num_suppliers + 1, dtype=np.int32),
            "s_nationkey": rng.integers(
                0, len(NATIONS), num_suppliers, dtype=np.int32
            ),
            "s_acctbal": rng.uniform(-999.99, 9999.99, num_suppliers).round(2),
        },
    )
    customer = _generate_customer(num_customers, rng)
    part = _generate_part(num_parts, rng)
    partsupp = _generate_partsupp(num_parts, num_suppliers, rng)
    orders = _generate_orders(num_orders, num_customers, rng)
    lineitem = _generate_lineitem(orders, num_parts, num_suppliers, rng)
    return TpchDatabase(
        scale_factor=scale_factor,
        region=region,
        nation=nation,
        supplier=supplier,
        customer=customer,
        part=part,
        partsupp=partsupp,
        orders=orders,
        lineitem=lineitem,
    )


def _generate_customer(count: int, rng: np.random.Generator) -> Table:
    keys = np.arange(1, count + 1, dtype=np.int32)
    names = [f"Customer#{k:09d}" for k in keys]
    addresses = [f"Address-{k}" for k in keys]
    phones = [f"{10 + k % 25}-{k % 1000:03d}-{k % 10000:04d}" for k in keys]
    comments = [f"customer comment {k % 97}" for k in keys]
    return Table(
        name="customer",
        columns={
            "c_custkey": keys,
            "c_name": np.arange(count, dtype=np.int32),
            "c_address": np.arange(count, dtype=np.int32),
            "c_phone": np.arange(count, dtype=np.int32),
            "c_comment": np.arange(count, dtype=np.int32),
            "c_acctbal": rng.uniform(-999.99, 9999.99, count).round(2),
            "c_mktsegment": rng.integers(0, len(SEGMENTS), count, dtype=np.int8),
            "c_nationkey": rng.integers(0, len(NATIONS), count, dtype=np.int32),
        },
        dictionaries={
            "c_name": names,
            "c_address": addresses,
            "c_phone": phones,
            "c_comment": comments,
            "c_mktsegment": list(SEGMENTS),
        },
    )


def _generate_part(count: int, rng: np.random.Generator) -> Table:
    return Table(
        name="part",
        columns={
            "p_partkey": np.arange(1, count + 1, dtype=np.int32),
            "p_brand": rng.integers(0, len(BRANDS), count, dtype=np.int8),
            "p_type": rng.integers(0, len(PART_TYPES), count, dtype=np.int16),
            "p_size": rng.integers(1, 51, count, dtype=np.int32),
            "p_container": rng.integers(0, len(CONTAINERS), count, dtype=np.int8),
            "p_retailprice": (
                900.0 + (np.arange(1, count + 1) % 1000) / 10.0
            ).round(2),
        },
        dictionaries={
            "p_brand": list(BRANDS),
            "p_type": list(PART_TYPES),
            "p_container": list(CONTAINERS),
        },
    )


def _generate_partsupp(
    num_parts: int, num_suppliers: int, rng: np.random.Generator
) -> Table:
    # dbgen: four suppliers per part.
    partkeys = np.repeat(np.arange(1, num_parts + 1, dtype=np.int32), 4)
    count = len(partkeys)
    suppkeys = (
        rng.integers(0, num_suppliers, count, dtype=np.int32) + 1
    )
    return Table(
        name="partsupp",
        columns={
            "ps_partkey": partkeys,
            "ps_suppkey": suppkeys,
            "ps_availqty": rng.integers(1, 10_000, count, dtype=np.int32),
            "ps_supplycost": rng.uniform(1.0, 1000.0, count).round(2),
        },
    )


def _generate_orders(
    count: int, num_customers: int, rng: np.random.Generator
) -> Table:
    # dbgen leaves the last ~151 days without orders so every lineitem
    # date stays in range.
    dates = rng.integers(0, MAX_ORDER_DAYS - 151, count, dtype=np.int32)
    return Table(
        name="orders",
        columns={
            "o_orderkey": np.arange(1, count + 1, dtype=np.int64),
            "o_custkey": rng.integers(1, num_customers + 1, count, dtype=np.int32),
            "o_orderdate": dates,
            "o_shippriority": np.zeros(count, dtype=np.int32),
            "o_orderpriority": rng.integers(
                0, len(PRIORITIES), count, dtype=np.int8
            ),
            "o_totalprice": rng.uniform(850.0, 560_000.0, count).round(2),
        },
        dictionaries={"o_orderpriority": list(PRIORITIES)},
    )


def _generate_lineitem(
    orders: Table, num_parts: int, num_suppliers: int, rng: np.random.Generator
) -> Table:
    # dbgen: 1-7 lineitems per order, average 4.
    per_order = rng.integers(1, 8, orders.num_rows)
    orderkeys = np.repeat(orders["o_orderkey"], per_order)
    orderdates = np.repeat(orders["o_orderdate"], per_order)
    count = len(orderkeys)
    partkeys = rng.integers(1, num_parts + 1, count, dtype=np.int32)
    quantity = rng.integers(1, 51, count).astype(np.float64)
    # dbgen: extendedprice = quantity * retailprice(partkey).
    retail = 900.0 + (partkeys % 1000) / 10.0
    shipdate = orderdates + rng.integers(1, 122, count, dtype=np.int32)
    commitdate = orderdates + rng.integers(30, 91, count, dtype=np.int32)
    receiptdate = shipdate + rng.integers(1, 31, count, dtype=np.int32)
    # dbgen: returnflag is R/A for items received before 1995-06-17.
    returnable = receiptdate < 1264
    flag_roll = rng.integers(0, 2, count)
    returnflag = np.where(returnable, flag_roll, 2).astype(np.int8)
    return Table(
        name="lineitem",
        columns={
            "l_orderkey": orderkeys.astype(np.int64),
            "l_partkey": partkeys,
            "l_suppkey": rng.integers(1, num_suppliers + 1, count, dtype=np.int32),
            "l_quantity": quantity,
            "l_extendedprice": (quantity * retail).round(2),
            "l_discount": rng.integers(0, 11, count) / 100.0,
            "l_tax": rng.integers(0, 9, count) / 100.0,
            "l_returnflag": returnflag,
            "l_shipdate": shipdate,
            "l_commitdate": commitdate,
            "l_receiptdate": receiptdate,
            "l_shipmode": rng.integers(0, len(SHIP_MODES), count, dtype=np.int8),
            "l_shipinstruct": rng.integers(
                0, len(SHIP_INSTRUCTIONS), count, dtype=np.int8
            ),
        },
        dictionaries={
            "l_returnflag": list(RETURN_FLAGS),
            "l_shipmode": list(SHIP_MODES),
            "l_shipinstruct": list(SHIP_INSTRUCTIONS),
        },
    )
