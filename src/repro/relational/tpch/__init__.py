"""TPC-H substrate: schema, generator, and the paper's six queries.

The paper evaluates "all the six queries in TPC-H which do not contain
sub-queries (Q3, Q5, Q10, Q12, Q14 and Q19) and have at least one join
operation" at scale factor 250 (§5.4).
"""

from repro.relational.tpch.datagen import TpchDatabase, generate_tpch
from repro.relational.tpch.dates import date_to_days, days_to_date
from repro.relational.tpch.queries import QUERIES, QueryResult, run_query

__all__ = [
    "QUERIES",
    "QueryResult",
    "TpchDatabase",
    "date_to_days",
    "days_to_date",
    "generate_tpch",
    "run_query",
]
