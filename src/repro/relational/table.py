"""Columnar tables over numpy, with dictionary-encoded strings.

Numeric columns are plain numpy arrays.  String columns are stored as
integer *codes* plus a per-column dictionary (list of distinct values),
the standard encoding for analytical engines — equality predicates
against literals become integer comparisons, which is also how the
byte-width accounting stays honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Table:
    """An immutable-by-convention columnar table."""

    name: str
    columns: dict[str, np.ndarray] = field(default_factory=dict)
    #: Dictionaries for encoded string columns: column -> values, where
    #: the column array holds indices into the list.
    dictionaries: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(col) for col in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns in table {self.name!r}: {lengths}")

    # -- shape ------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self.columns)

    def column_bytes(self, name: str) -> int:
        column = self.columns[name]
        return int(column.nbytes)

    def row_width(self, names: tuple[str, ...] | None = None) -> int:
        """Bytes per row over the given (default: all) columns."""
        names = names if names is not None else self.column_names
        return sum(self.columns[n].dtype.itemsize for n in names)

    @property
    def total_bytes(self) -> int:
        return sum(col.nbytes for col in self.columns.values())

    # -- access -----------------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        return self.columns[name]

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    def encode(self, column: str, value: str) -> int:
        """Dictionary code of ``value`` in an encoded string column.

        Returns -1 when the value does not occur (so comparisons are
        simply never true, like a selective predicate).
        """
        dictionary = self.dictionaries[column]
        try:
            return dictionary.index(value)
        except ValueError:
            return -1

    def decode(self, column: str, codes: np.ndarray) -> list[str]:
        dictionary = self.dictionaries[column]
        return [dictionary[int(code)] for code in codes]

    # -- derivation --------------------------------------------------------

    def select(self, names: tuple[str, ...]) -> "Table":
        """Keep only the named columns (projection pushdown)."""
        missing = set(names) - set(self.columns)
        if missing:
            raise KeyError(f"unknown columns in {self.name!r}: {sorted(missing)}")
        return Table(
            name=self.name,
            columns={n: self.columns[n] for n in names},
            dictionaries={
                n: d for n, d in self.dictionaries.items() if n in names
            },
        )

    def take(self, mask_or_indices: np.ndarray) -> "Table":
        """Row subset by boolean mask or index array."""
        return Table(
            name=self.name,
            columns={n: col[mask_or_indices] for n, col in self.columns.items()},
            dictionaries=dict(self.dictionaries),
        )

    def with_columns(self, new_columns: dict[str, np.ndarray]) -> "Table":
        merged = dict(self.columns)
        merged.update(new_columns)
        return Table(
            name=self.name, columns=merged, dictionaries=dict(self.dictionaries)
        )

    def renamed(self, mapping: dict[str, str]) -> "Table":
        return Table(
            name=self.name,
            columns={mapping.get(n, n): col for n, col in self.columns.items()},
            dictionaries={
                mapping.get(n, n): d for n, d in self.dictionaries.items()
            },
        )

    def head(self, limit: int) -> "Table":
        return self.take(np.arange(min(limit, self.num_rows)))
