"""A columnar relational engine for the TPC-H evaluation (Figure 14).

The paper implements GPU versions of six TPC-H queries on top of
MG-Join and compares them against OmniSci's CPU and multi-GPU
(shared-nothing) execution.  This package provides the substrate:

* :mod:`repro.relational.table` — dictionary-encoded columnar tables,
* :mod:`repro.relational.operators` — exact numpy implementations of
  scan/filter, hash join, group-by aggregation and sort/limit,
* :mod:`repro.relational.engine` — execution engines that run the
  operators functionally while accounting simulated time on the
  machine topology (MG-Join-backed multi-GPU, DPRJ-backed multi-GPU),
* :mod:`repro.relational.omnisci` — the OmniSci CPU and shared-nothing
  GPU cost models, including the out-of-memory behaviour that produces
  the paper's "NA" entries,
* :mod:`repro.relational.tpch` — schema, data generator and the six
  query plans (Q3, Q5, Q10, Q12, Q14, Q19).
"""

from repro.relational.table import Table
from repro.relational.engine import (
    DPRJQueryEngine,
    MGJoinQueryEngine,
    QueryReport,
)
from repro.relational.omnisci import (
    OmnisciCpuEngine,
    OmnisciGpuEngine,
    QueryOutOfMemory,
)

__all__ = [
    "DPRJQueryEngine",
    "MGJoinQueryEngine",
    "OmnisciCpuEngine",
    "OmnisciGpuEngine",
    "QueryOutOfMemory",
    "QueryReport",
    "Table",
]
