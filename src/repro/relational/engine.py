"""Query execution engines: functional operators + simulated time.

All engines run the same exact numpy operators; they differ only in how
each operator's *time* is charged:

* :class:`MGJoinQueryEngine` — data lives partitioned across the GPUs;
  every join repartitions both inputs with MG-Join's machinery
  (compressed packets, adaptive multi-hop routing, transfer/compute
  overlap) via a real :class:`~repro.sim.shuffle.ShuffleSimulator` run.
* :class:`DPRJQueryEngine` — same shape, but direct routes, no
  compression and no overlap, matching the DPRJ baseline.

Row counts are multiplied by ``logical_scale`` for the cost model, so a
small generated dataset can stand in for TPC-H SF 250 (the functional
answers are exact at the generated scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.relational import operators
from repro.relational.table import Table
from repro.routing.adaptive import AdaptiveArmPolicy
from repro.routing.base import RoutingPolicy
from repro.routing.static import DirectPolicy
from repro.sim.compute import GpuComputeModel
from repro.sim.shuffle import FlowMatrix, ShuffleConfig, ShuffleSimulator
from repro.topology.links import PCIE_BANDWIDTH
from repro.topology.machine import MachineTopology


@dataclass
class OperatorCost:
    """One operator's contribution to the query runtime."""

    operator: str
    detail: str
    seconds: float
    logical_bytes: float = 0.0


@dataclass
class QueryReport:
    """Accumulated cost of one query execution."""

    engine: str
    operators: list[OperatorCost] = field(default_factory=list)

    def charge(
        self, operator: str, detail: str, seconds: float, logical_bytes: float = 0.0
    ) -> None:
        if seconds < 0:
            raise ValueError("operator time must be non-negative")
        self.operators.append(OperatorCost(operator, detail, seconds, logical_bytes))

    @property
    def total_seconds(self) -> float:
        return sum(op.seconds for op in self.operators)

    def seconds_by_operator(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for op in self.operators:
            totals[op.operator] = totals.get(op.operator, 0.0) + op.seconds
        return totals


class MGJoinQueryEngine:
    """Multi-GPU query execution backed by MG-Join data movement."""

    name = "mg-join"
    #: Routing + shuffle behaviour knobs that subclasses override.
    compression_ratio = 1.6
    overlap = True
    scan_efficiency = 0.80
    aggregate_efficiency = 0.50
    #: Per-query setup: plan construction, kernel-launch chains, final
    #: host synchronization.  Charged once per query.
    fixed_overhead_seconds = 0.35

    def __init__(
        self,
        machine: MachineTopology,
        gpu_ids: tuple[int, ...] | None = None,
        logical_scale: float = 1.0,
        compute: GpuComputeModel | None = None,
        policy: RoutingPolicy | None = None,
        shuffle_config: ShuffleConfig | None = None,
    ) -> None:
        if logical_scale < 1.0:
            raise ValueError("logical_scale must be >= 1")
        self.machine = machine
        self.gpu_ids = tuple(sorted(gpu_ids if gpu_ids is not None else machine.gpu_ids))
        self.logical_scale = float(logical_scale)
        self.compute = compute or GpuComputeModel()
        self.policy = policy or AdaptiveArmPolicy()
        self.shuffle_config = shuffle_config or ShuffleConfig()
        self.report = QueryReport(engine=self.name)
        self._base_bytes: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def begin(self) -> None:
        """Reset accounting before a query."""
        self.report = QueryReport(engine=self.name)
        self._base_bytes: dict[str, int] = {}
        if self.fixed_overhead_seconds > 0:
            self.report.charge(
                "startup", "plan setup + kernel launches", self.fixed_overhead_seconds
            )
        if isinstance(self.policy, AdaptiveArmPolicy):
            self.policy._rotation.clear()

    @property
    def num_gpus(self) -> int:
        return len(self.gpu_ids)

    # -- operators -----------------------------------------------------------

    def scan(self, table: Table, columns=None, predicate=None) -> Table:
        """Project + filter, charged as one streaming pass per GPU slice."""
        self._base_bytes[table.name] = table.total_bytes
        projected = table.select(tuple(columns)) if columns is not None else table
        logical_bytes = projected.total_bytes * self.logical_scale
        per_gpu = logical_bytes / self.num_gpus
        seconds = self._stream_seconds(per_gpu, self.scan_efficiency)
        self.report.charge("scan", table.name, seconds, logical_bytes)
        if predicate is not None:
            projected = operators.filter_rows(projected, predicate)
        return projected

    def join(
        self, left: Table, right: Table, left_key: str, right_key: str
    ) -> Table:
        """Repartition join: shuffle both sides, partition, probe."""
        result = operators.hash_join(left, right, left_key, right_key)
        shuffle_seconds = self._charge_shuffle(left, right)
        compute_seconds = self._join_compute_seconds(left, right, result)
        if self.overlap:
            exposed = max(0.0, shuffle_seconds - compute_seconds)
            self.report.charge(
                "join-compute", f"{left.name}⋈{right.name}", compute_seconds
            )
            if exposed > 0:
                self.report.charge(
                    "join-shuffle", f"{left.name}⋈{right.name}", exposed
                )
        else:
            self.report.charge(
                "join-compute", f"{left.name}⋈{right.name}", compute_seconds
            )
            self.report.charge(
                "join-shuffle", f"{left.name}⋈{right.name}", shuffle_seconds
            )
        return result

    def aggregate(self, table: Table, keys, aggregates) -> Table:
        result = operators.group_aggregate(table, tuple(keys), tuple(aggregates))
        logical_bytes = table.total_bytes * self.logical_scale
        seconds = self._stream_seconds(
            logical_bytes / self.num_gpus, self.aggregate_efficiency
        )
        # Partial aggregates merge over the interconnect; group counts
        # are tiny next to the inputs, so charge a collection constant.
        seconds += self._collect_seconds(result.total_bytes)
        self.report.charge("aggregate", table.name, seconds, logical_bytes)
        return result

    def sort_limit(self, table: Table, by, ascending=None, limit=None) -> Table:
        result = operators.sort_rows(table, tuple(by), ascending)
        if limit is not None:
            result = result.head(limit)
        logical_bytes = table.total_bytes * self.logical_scale
        seconds = 2.0 * self._stream_seconds(
            logical_bytes / self.num_gpus, self.aggregate_efficiency
        )
        self.report.charge("sort", table.name, seconds, logical_bytes)
        return result

    # -- cost helpers --------------------------------------------------------

    def _stream_seconds(self, nbytes: float, efficiency: float) -> float:
        spec = self.compute.spec
        if nbytes <= 0:
            return spec.kernel_launch_overhead
        return spec.kernel_launch_overhead + nbytes / (
            efficiency * spec.memory_bandwidth
        )

    def _collect_seconds(self, nbytes: float) -> float:
        """Move a (small) result to the host over PCIe."""
        return 10e-6 + nbytes / PCIE_BANDWIDTH

    def _charge_shuffle(self, left: Table, right: Table) -> float:
        """Simulate the repartitioning of both join inputs."""
        if self.num_gpus < 2:
            return 0.0
        logical_bytes = (
            (left.total_bytes + right.total_bytes)
            * self.logical_scale
            / self.compression_ratio
        )
        if logical_bytes < 1:
            return 0.0
        # Uniformly partitioned inputs: every GPU sends 1/G of its
        # slice to each other GPU.
        per_flow = int(logical_bytes / (self.num_gpus * self.num_gpus))
        if per_flow == 0:
            return 0.0
        flows = FlowMatrix.all_to_all(self.gpu_ids, per_flow)
        config = self.shuffle_config
        if not self.overlap:
            config = replace(config, injection_rate=None, consume_rate=None)
        simulator = ShuffleSimulator(self.machine, self.gpu_ids, config)
        report = simulator.run(flows, self.policy)
        return report.elapsed

    def _join_compute_seconds(
        self, left: Table, right: Table, result: Table
    ) -> float:
        """Partition passes + probe on the worst GPU's slice."""
        rows_left = left.num_rows * self.logical_scale / self.num_gpus
        rows_right = right.num_rows * self.logical_scale / self.num_gpus
        matches = result.num_rows * self.logical_scale / self.num_gpus
        width_left = max(left.row_width(), 1)
        width_right = max(right.row_width(), 1)
        partition = self.compute.partition_time(
            rows_left, width_left, passes=1
        ) + self.compute.partition_time(rows_right, width_right, passes=1)
        probe = self.compute.probe_time(
            rows_left, rows_right, matches, max(width_left, width_right)
        )
        return partition + probe


class DPRJQueryEngine(MGJoinQueryEngine):
    """The same queries with DPRJ-style joins underneath."""

    name = "dprj"
    compression_ratio = 1.0
    overlap = False

    def __init__(self, machine, gpu_ids=None, logical_scale=1.0, **kwargs):
        kwargs.setdefault("policy", DirectPolicy())
        super().__init__(machine, gpu_ids, logical_scale, **kwargs)
