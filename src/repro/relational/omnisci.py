"""OmniSci CPU and multi-GPU baselines for the TPC-H comparison.

The paper compares its MG-Join-backed queries against OmniSci [29], the
state-of-the-art system running on both CPUs and multi-GPU servers.
Two properties of OmniSci's execution model drive the results:

* **Shared-nothing GPUs.**  "When executing on multiple GPUs, OmniSci
  adopts a shared-nothing architecture between GPUs, i.e., each GPU
  processes its own local slice of data" (§5.4).  A join therefore
  replicates the build side to *every* GPU, and big build sides blow
  the 32 GB memory budget — OmniSci "fails to execute [Q3, Q5, Q10,
  Q12] on the multi-GPU system for a scale factor of 250", reported as
  NA.  :class:`OmnisciGpuEngine` raises :class:`QueryOutOfMemory` in
  exactly those situations.
* **A general-purpose CPU engine** that runs the same plans about 25x
  slower than the MG-Join GPU implementation.

Both engines reuse the exact functional operators, so their *answers*
match the MG-Join engine; only time (and memory feasibility) differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational import operators
from repro.relational.engine import MGJoinQueryEngine
from repro.relational.table import Table
from repro.routing.static import DirectPolicy
from repro.sim.compute import GB
from repro.topology.machine import MachineTopology


class QueryOutOfMemory(RuntimeError):
    """A GPU's working set exceeded device memory (reported as NA)."""


class OmnisciGpuEngine(MGJoinQueryEngine):
    """Shared-nothing multi-GPU execution with dimension replication.

    Fact tables (``lineitem``) are sharded; every join's other side is
    treated as a dimension whose *base tables* — unfiltered, full
    width — must be fully replicated on each GPU before the join can
    run locally.  The per-GPU footprint is therefore

        resident slice of all referenced tables / G
        + Σ replicated dimension tables × hash-table factor

    and when it exceeds device memory the query fails, which is what
    the paper reports as "NA" for Q3/Q5/Q10/Q12 at SF 250.
    """

    name = "omnisci-gpu"
    compression_ratio = 1.0
    overlap = False
    #: General-purpose JIT engine: kernels reach a lower fraction of
    #: peak than the hand-tuned join kernels.
    kernel_derating = 0.35
    #: OmniSci JIT-compiles every query before execution.
    fixed_overhead_seconds = 1.5
    #: V100 device memory.
    device_memory_bytes = 32 * GB
    #: Hash tables cost roughly twice the replicated side's payload.
    hash_table_factor = 2.0
    #: The tables sharded (not replicated) across GPUs.
    fact_tables = ("lineitem",)

    def __init__(self, machine, gpu_ids=None, logical_scale=1.0, **kwargs):
        kwargs.setdefault("policy", DirectPolicy())
        super().__init__(machine, gpu_ids, logical_scale, **kwargs)
        self._replicated: dict[str, float] = {}

    def begin(self) -> None:
        super().begin()
        self._replicated = {}

    def join(self, left: Table, right: Table, left_key: str, right_key: str) -> Table:
        """Replicate the dimension side everywhere, then join locally."""
        dimension = self._dimension_side(left, right)
        newly_replicated = 0.0
        for base in self._base_components(dimension):
            if base in self._replicated or base in self.fact_tables:
                continue
            base_bytes = self._base_bytes.get(base, 0) * self.logical_scale
            self._replicated[base] = base_bytes
            newly_replicated += base_bytes
        self._check_memory()
        broadcast_seconds = self._broadcast_seconds(newly_replicated)
        joined = operators.hash_join(left, right, left_key, right_key)
        compute_seconds = self._join_compute_seconds(left, right, joined)
        compute_seconds /= self.kernel_derating
        self.report.charge(
            "join-compute", f"{left.name}⋈{right.name}", compute_seconds
        )
        if broadcast_seconds > 0:
            self.report.charge(
                "join-broadcast", dimension.name, broadcast_seconds, newly_replicated
            )
        return joined

    def _dimension_side(self, left: Table, right: Table) -> Table:
        """The side to replicate: whichever contains no fact table."""
        left_is_fact = any(f in left.name for f in self.fact_tables)
        right_is_fact = any(f in right.name for f in self.fact_tables)
        if left_is_fact and not right_is_fact:
            return right
        if right_is_fact and not left_is_fact:
            return left
        # No fact table involved (dimension x dimension): replicate the
        # smaller side.
        return right if right.total_bytes <= left.total_bytes else left

    @staticmethod
    def _base_components(table: Table) -> tuple[str, ...]:
        """Base tables composing a (possibly intermediate) table."""
        return tuple(part for part in table.name.split("⋈"))

    def _check_memory(self) -> None:
        resident = (
            sum(self._base_bytes.values()) * self.logical_scale / self.num_gpus
        )
        replicated = sum(self._replicated.values()) * self.hash_table_factor
        footprint = resident + replicated
        if footprint > self.device_memory_bytes:
            tables = ", ".join(sorted(self._replicated))
            raise QueryOutOfMemory(
                f"per-GPU footprint {footprint / GB:.1f} GB exceeds "
                f"{self.device_memory_bytes / GB:.0f} GB "
                f"(resident slice {resident / GB:.1f} GB + replicated "
                f"dimensions [{tables}] x{self.hash_table_factor:.0f})"
            )

    def _broadcast_seconds(self, build_logical_bytes: float) -> float:
        """All-gather of the build side over direct routes only."""
        if self.num_gpus < 2:
            return 0.0
        per_gpu_slice = build_logical_bytes / self.num_gpus
        # Each GPU pushes its slice to the other G-1 GPUs; the slowest
        # direct link (shared PCIe + QPI staging included) paces it.
        worst = 0.0
        for src in self.gpu_ids:
            for dst in self.gpu_ids:
                if src == dst:
                    continue
                links = self.machine.direct_path(src, dst)
                bottleneck = min(link.bandwidth for link in links)
                worst = max(worst, per_gpu_slice / bottleneck)
        # G-1 transfers per GPU serialize on its egress interface.
        return worst * (self.num_gpus - 1)

    def _stream_seconds(self, nbytes: float, efficiency: float) -> float:
        return super()._stream_seconds(nbytes, efficiency * self.kernel_derating)


@dataclass(frozen=True)
class CpuSpec:
    """The paper's CPU box: 2x Xeon E5-2698 v4 (§5.1)."""

    sockets: int = 2
    cores: int = 40
    memory_bandwidth: float = 130e9  # aggregate, both sockets
    #: Fraction of peak a general row-at-a-time engine sustains.
    streaming_efficiency: float = 0.22
    #: Random-access cost per hash-join probe/build row.
    per_row_join_ns: float = 14.0


class OmnisciCpuEngine(MGJoinQueryEngine):
    """OmniSci on the dual-socket CPU machine (single node, no GPUs)."""

    name = "omnisci-cpu"
    compression_ratio = 1.0
    overlap = False
    fixed_overhead_seconds = 1.0  # JIT compile (cheaper than the GPU path)

    def __init__(
        self,
        machine: MachineTopology,
        logical_scale: float = 1.0,
        cpu: CpuSpec | None = None,
        **kwargs,
    ) -> None:
        super().__init__(machine, machine.gpu_ids[:1], logical_scale, **kwargs)
        self.cpu = cpu or CpuSpec()

    def _stream_seconds(self, nbytes: float, efficiency: float) -> float:
        # `nbytes` arrives divided by num_gpus (=1 here): whole input.
        if nbytes <= 0:
            return 0.0
        return nbytes / (self.cpu.streaming_efficiency * self.cpu.memory_bandwidth)

    def _charge_shuffle(self, left: Table, right: Table) -> float:
        return 0.0  # single shared-memory node

    def _join_compute_seconds(self, left, right, result) -> float:
        rows = (
            (left.num_rows + right.num_rows + result.num_rows) * self.logical_scale
        )
        random_access = rows * self.cpu.per_row_join_ns * 1e-9
        streamed = self._stream_seconds(
            (left.total_bytes + right.total_bytes) * self.logical_scale, 1.0
        )
        return random_access + streamed

    def _collect_seconds(self, nbytes: float) -> float:
        return 0.0
