"""Exact relational operators over columnar tables.

These are the *functional* kernels the query engines share; timing is
the engines' job.  The hash join reuses the core join machinery
(:func:`repro.core.probe.join_shards`) so the whole repository has a
single, well-tested equi-join implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.probe import join_shards
from repro.core.relation import GpuShard
from repro.relational.table import Table

Predicate = Callable[[Table], np.ndarray]


def filter_rows(table: Table, predicate: Predicate) -> Table:
    """Apply a row filter; the predicate returns a boolean mask."""
    mask = predicate(table)
    if mask.dtype != np.bool_ or len(mask) != table.num_rows:
        raise ValueError("predicate must return a boolean mask over all rows")
    return table.take(mask)


def hash_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    suffixes: tuple[str, str] = ("", "_r"),
) -> Table:
    """Inner equi-join; duplicates on both sides are handled exactly."""
    left_keys = left[left_key]
    right_keys = right[right_key]
    joined = join_shards(
        GpuShard(
            _as_join_key(left_keys), np.arange(left.num_rows, dtype=np.uint32)
        ),
        GpuShard(
            _as_join_key(right_keys), np.arange(right.num_rows, dtype=np.uint32)
        ),
        materialize=True,
    )
    left_rows, right_rows = joined
    columns: dict[str, np.ndarray] = {}
    dictionaries: dict[str, list[str]] = {}
    for name in left.column_names:
        columns[name] = left[name][left_rows]
        if name in left.dictionaries:
            dictionaries[name] = left.dictionaries[name]
    for name in right.column_names:
        out = name if name not in columns else name + suffixes[1]
        columns[out] = right[name][right_rows]
        if name in right.dictionaries:
            dictionaries[out] = right.dictionaries[name]
    return Table(
        name=f"{left.name}⋈{right.name}", columns=columns, dictionaries=dictionaries
    )


def _as_join_key(values: np.ndarray) -> np.ndarray:
    """Join keys must fit the core shard's uint32 key column."""
    if values.dtype == np.uint32:
        return values
    as_uint = values.astype(np.int64)
    if as_uint.min(initial=0) < 0 or as_uint.max(initial=0) > np.iinfo(np.uint32).max:
        raise ValueError("join keys outside the uint32 domain")
    return as_uint.astype(np.uint32)


@dataclass(frozen=True)
class Aggregate:
    """One aggregation: ``out = fn(expr(table))`` per group."""

    out: str
    kind: str  # "sum" | "count" | "mean"
    expression: Callable[[Table], np.ndarray] | None = None
    column: str | None = None

    def values(self, table: Table) -> np.ndarray:
        if self.expression is not None:
            return self.expression(table)
        if self.column is not None:
            return table[self.column]
        if self.kind == "count":
            return np.ones(table.num_rows, dtype=np.int64)
        raise ValueError("aggregate needs an expression or a column")


def group_aggregate(
    table: Table, keys: tuple[str, ...], aggregates: tuple[Aggregate, ...]
) -> Table:
    """Group-by + aggregation, exact, via lexicographic grouping."""
    if table.num_rows == 0:
        columns = {k: table[k][:0] for k in keys}
        for agg in aggregates:
            columns[agg.out] = np.empty(0, dtype=np.float64)
        return Table(name=table.name, columns=columns, dictionaries={
            k: d for k, d in table.dictionaries.items() if k in keys
        })
    key_arrays = [table[k] for k in keys]
    if keys:
        order = np.lexsort(key_arrays[::-1])
        sorted_keys = [arr[order] for arr in key_arrays]
        changed = np.zeros(table.num_rows, dtype=bool)
        changed[0] = True
        for arr in sorted_keys:
            changed[1:] |= arr[1:] != arr[:-1]
        group_ids = np.cumsum(changed) - 1
        starts = np.nonzero(changed)[0]
        num_groups = len(starts)
    else:
        order = np.arange(table.num_rows)
        group_ids = np.zeros(table.num_rows, dtype=np.int64)
        starts = np.array([0])
        num_groups = 1
    columns: dict[str, np.ndarray] = {
        k: arr[starts] for k, arr in zip(keys, sorted_keys)
    } if keys else {}
    for agg in aggregates:
        values = agg.values(table)[order]
        if agg.kind == "sum":
            result = np.bincount(group_ids, weights=values, minlength=num_groups)
        elif agg.kind == "count":
            result = np.bincount(group_ids, minlength=num_groups).astype(np.int64)
        elif agg.kind == "mean":
            sums = np.bincount(group_ids, weights=values, minlength=num_groups)
            counts = np.bincount(group_ids, minlength=num_groups)
            result = sums / np.maximum(counts, 1)
        else:
            raise ValueError(f"unknown aggregate kind {agg.kind!r}")
        columns[agg.out] = result
    return Table(
        name=table.name,
        columns=columns,
        dictionaries={k: d for k, d in table.dictionaries.items() if k in keys},
    )


def sort_rows(
    table: Table, by: tuple[str, ...], ascending: tuple[bool, ...] | None = None
) -> Table:
    """Stable multi-column sort."""
    if ascending is None:
        ascending = tuple(True for _ in by)
    if len(ascending) != len(by):
        raise ValueError("ascending flags must match sort keys")
    arrays = []
    for name, asc in zip(reversed(by), reversed(ascending)):
        column = table[name]
        arrays.append(column if asc else _descending_key(column))
    order = np.lexsort(arrays)
    return table.take(order)


def _descending_key(column: np.ndarray) -> np.ndarray:
    if np.issubdtype(column.dtype, np.floating):
        return -column
    return column.max(initial=0) - column
