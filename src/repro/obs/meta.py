"""Run-metadata stamping for traces and benchmark artifacts.

Every exported artifact (Chrome trace, ``BENCH_*.json`` baseline,
bottleneck report) should be self-describing: which repro version,
topology, GPU count, RNG seed and configuration produced it.  Without
that, a committed baseline silently goes stale the moment a default
changes.  :func:`run_metadata` builds the canonical header dict and
:func:`config_hash` gives a short stable digest of any JSON-able
configuration mapping so two artifacts can be compared for
like-for-like provenance at a glance.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import platform

#: Environment variable carrying the active run ID.  It rides the
#: process environment (not a module global) so multiprocessing workers
#: — fork *or* spawn — stamp the same run ID as the parent that opened
#: the run (see :func:`run_scope` and the parallel bench runner).
RUN_ID_ENV = "REPRO_RUN_ID"


def repro_version() -> str:
    """The package version, looked up lazily.

    ``repro/__init__`` imports ``repro.obs`` (directly and through the
    simulator), so ``repro.obs.meta`` must not import ``repro`` at
    module import time — that would be a cycle.
    """
    import repro

    return repro.__version__


def config_hash(config: object) -> str:
    """Short stable digest of a configuration object.

    Accepts dataclasses, mappings, or anything JSON-serialisable once
    converted; key order never affects the digest.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = dataclasses.asdict(config)
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def run_id_for(kind: str, config: object) -> str:
    """Deterministic run ID: ``<kind>-<config hash>``.

    Two runs of the same kind with the same configuration get the same
    ID, so repeat runs overwrite their ledger record instead of piling
    up near-duplicates — reproducibility is the identity.
    """
    if not kind or any(ch in kind for ch in "/\\ "):
        raise ValueError(f"bad run kind {kind!r}")
    return f"{kind}-{config_hash(config)}"


def current_run_id() -> str | None:
    """The run ID in scope for this process, if any."""
    return os.environ.get(RUN_ID_ENV) or None


@contextlib.contextmanager
def run_scope(run_id: str):
    """Make ``run_id`` the ambient run ID for the ``with`` body.

    Children forked/spawned inside the body inherit it through the
    environment, so every artifact a sweep point produces — including
    ones written by multiprocessing bench workers — carries the same
    ``run_id`` stamp.
    """
    previous = os.environ.get(RUN_ID_ENV)
    os.environ[RUN_ID_ENV] = run_id
    try:
        yield run_id
    finally:
        if previous is None:
            os.environ.pop(RUN_ID_ENV, None)
        else:
            os.environ[RUN_ID_ENV] = previous


def run_metadata(
    *,
    topology: str | None = None,
    num_gpus: int | None = None,
    seed: int | None = None,
    config: object = None,
    **extra,
) -> dict:
    """The canonical artifact header.

    Only the keys that apply to the run are emitted; ``extra`` keyword
    pairs ride along verbatim (e.g. ``policy="mg-join"``).
    """
    # Lazy for the same cycle reason as repro_version(); the descriptor
    # names the event kernel producing the run ("fast", "reference",
    # "batch+numpy", "batch+numba") so artifacts record which engine
    # mode — and compiled backend — stamped them.
    from repro.sim.engine import engine_descriptor

    meta: dict = {
        "repro_version": repro_version(),
        "python": platform.python_version(),
        "engine": engine_descriptor(),
    }
    run_id = current_run_id()
    if run_id is not None:
        meta["run_id"] = run_id
    if topology is not None:
        meta["topology"] = topology
    if num_gpus is not None:
        meta["num_gpus"] = num_gpus
    if seed is not None:
        meta["seed"] = seed
    if config is not None:
        meta["config_hash"] = config_hash(config)
    meta.update(extra)
    return meta
