"""Full-pipeline observability: spans, metrics, trace export.

One :class:`Observer` bundles the two measurement surfaces of a run —
a :class:`~repro.obs.spans.SpanTracer` (where time goes) and a
:class:`~repro.obs.metrics.MetricsRegistry` (how much of what moved) —
and is threaded through the join orchestrator, the shuffle simulator,
the link channels and the routing policies::

    from repro import MGJoin, Observer, dgx1_topology
    from repro.obs.export import write_chrome_trace

    observer = Observer()
    result = MGJoin(machine, observer=observer).run(workload)
    write_chrome_trace(observer, "join.json")   # chrome://tracing / Perfetto

Instrumented code holds an ``observer`` that is either a real
:class:`Observer` or ``None``; the hot paths guard with a plain
``is not None`` check so a run without observability pays only that.
:data:`NULL_OBSERVER` additionally offers no-op ``span()`` /
``instant()`` for call sites that prefer unconditional ``with`` blocks.

Span/metric naming conventions and exporter formats are documented in
``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.meta import (
    RUN_ID_ENV,
    config_hash,
    current_run_id,
    run_id_for,
    run_metadata,
    run_scope,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, stable_float
from repro.obs.spans import (
    PIPELINE_TRACK,
    SIM,
    WALL,
    Instant,
    Span,
    SpanTracer,
)


#: Pipeline phases forwarded to an attached telemetry stream.  Only
#: these well-known names stream, so phase events stay bounded even if
#: callers open many ad-hoc spans.
PHASE_NAMES = frozenset(
    {
        "join",
        "histogram",
        "assignment",
        "global_partition",
        "shuffle",
        "local_partition",
        "probe",
    }
)


class Observer:
    """Bundles one run's span tracer and metrics registry.

    Two optional live surfaces can be attached post-construction:

    * ``stream`` — a :class:`repro.obs.stream.TelemetryStream`; when
      set, pipeline-phase spans and simulator hooks emit NDJSON events
      in real time.
    * ``conformance`` — a
      :class:`repro.obs.conformance.ConformanceProbe`; when set, the
      shuffle simulator instruments every routed transfer with its
      predicted ``T_R``/``D_R``.

    Both default to ``None`` and every hook guards on that, so a run
    without them pays nothing.
    """

    enabled = True

    def __init__(self, max_records: int = 2_000_000) -> None:
        self.spans = SpanTracer(max_records=max_records)
        self.metrics = MetricsRegistry()
        self.stream = None
        self.conformance = None

    # Convenience pass-throughs so instrumented code reads naturally.

    @contextmanager
    def _streamed_span(self, name: str, track: str, attrs: dict):
        import time as _time

        stream = self.stream
        stream.emit("phase", t=_time.time(), clock="wall", name=name, state="begin")
        try:
            with self.spans.span(name, track=track, **attrs) as span:
                yield span
        finally:
            stream.emit("phase", t=_time.time(), clock="wall", name=name, state="end")

    def span(self, name: str, track: str = PIPELINE_TRACK, **attrs):
        if self.stream is not None and name in PHASE_NAMES:
            return self._streamed_span(name, track, attrs)
        return self.spans.span(name, track=track, **attrs)

    def add_span(self, name: str, start: float, end: float, **kwargs):
        return self.spans.add_span(name, start, end, **kwargs)

    def instant(self, name: str, time_s: float, **kwargs):
        return self.spans.instant(name, time_s, **kwargs)

    def counter(self, name: str, **labels) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self.metrics.histogram(name, **labels)


class _NullInstrument:
    """Accepts inc/set/add/observe and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class NullObserver:
    """Do-nothing stand-in so ``with observer.span(...)`` always works."""

    enabled = False
    spans = None
    metrics = None
    stream = None
    conformance = None

    _instrument = _NullInstrument()

    @contextmanager
    def span(self, name: str, track: str = PIPELINE_TRACK, **attrs):
        yield None

    def add_span(self, name: str, start: float, end: float, **kwargs):
        return None

    def instant(self, name: str, time_s: float, **kwargs):
        return None

    def counter(self, name: str, **labels) -> _NullInstrument:
        return self._instrument

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return self._instrument

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return self._instrument


#: Shared no-op observer; ``observer or NULL_OBSERVER`` is the idiom.
NULL_OBSERVER = NullObserver()

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "PHASE_NAMES",
    "PIPELINE_TRACK",
    "RUN_ID_ENV",
    "SIM",
    "Span",
    "SpanTracer",
    "WALL",
    "config_hash",
    "current_run_id",
    "run_id_for",
    "run_metadata",
    "run_scope",
    "stable_float",
]
