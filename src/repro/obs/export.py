"""Exporters: Chrome trace-event JSON, merged CSV, terminal summary.

The Chrome trace export follows the Trace Event Format (the JSON
Object Format variant: ``{"traceEvents": [...]}``) and loads directly
in ``chrome://tracing`` or https://ui.perfetto.dev.  Wall-clock spans
and simulated-clock spans live on two separate "processes" so the two
time axes never interleave:

* pid 1 — ``wall clock (host)``: the pipeline phases as actually
  executed by the reproduction,
* pid 2 — ``simulated time``: the modelled timeline (phase schedule,
  per-link transfers, ARM route decisions as instant events).

Each distinct track (``pipeline``, ``gpu3``, a link label, ...) maps to
one "thread" row within its process.  Metric snapshots ride along under
``otherData`` so one file carries the whole run.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import TYPE_CHECKING

from repro.obs.spans import SIM, WALL, SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observer

_CLOCK_PIDS = {WALL: 1, SIM: 2}
_PID_NAMES = {1: "wall clock (host)", 2: "simulated time"}


def _to_micros(seconds: float) -> float:
    return seconds * 1e6


class _TidAllocator:
    """Stable track-label -> tid mapping, one namespace per pid."""

    def __init__(self) -> None:
        self._tids: dict[tuple[int, str], int] = {}
        self._next: dict[int, int] = {}

    def tid(self, pid: int, track: str) -> int:
        key = (pid, track)
        if key not in self._tids:
            self._next[pid] = self._next.get(pid, 0) + 1
            self._tids[key] = self._next[pid]
        return self._tids[key]

    def metadata_events(self) -> list[dict]:
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
            for pid, name in _PID_NAMES.items()
        ]
        for (pid, track), tid in sorted(self._tids.items(), key=lambda i: i[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return events


def chrome_trace_events(spans: SpanTracer) -> list[dict]:
    """Render a tracer's spans and instants as trace-event dicts."""
    tids = _TidAllocator()
    events: list[dict] = []
    for span in spans.spans:
        pid = _CLOCK_PIDS.get(span.clock, 1)
        args = dict(span.attrs)
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or span.clock,
                "ph": "X",
                "ts": _to_micros(span.start),
                "dur": _to_micros(span.duration),
                "pid": pid,
                "tid": tids.tid(pid, span.track),
                "id": span.span_id,
                "args": args,
            }
        )
    for instant in spans.instants:
        pid = _CLOCK_PIDS.get(instant.clock, 1)
        events.append(
            {
                "name": instant.name,
                "cat": instant.category or instant.clock,
                "ph": "i",
                "s": "t",
                "ts": _to_micros(instant.time),
                "pid": pid,
                "tid": tids.tid(pid, instant.track),
                "args": dict(instant.attrs),
            }
        )
    return tids.metadata_events() + events


def gauge_counter_events(metrics) -> list[dict]:
    """Render every gauge as a Chrome counter ("C") event.

    Gauges are end-of-run snapshot values, so each one becomes a single
    counter sample at ts 0 on the wall-clock process — Perfetto draws
    it as a flat counter track, and the value survives round-trips
    through trace files without digging into ``otherData``.
    """
    from repro.obs.metrics import Gauge

    events = []
    for instrument in sorted(
        metrics.instruments(), key=lambda i: (i.name, sorted(i.labels.items()))
    ):
        if not isinstance(instrument, Gauge):
            continue
        label = ",".join(f"{k}={v}" for k, v in sorted(instrument.labels.items()))
        name = f"{instrument.name}[{label}]" if label else instrument.name
        events.append(
            {
                "name": name,
                "cat": "metric",
                "ph": "C",
                "ts": 0,
                "pid": 1,
                "tid": 0,
                "args": {instrument.name: instrument.value},
            }
        )
    return events


def to_chrome_trace(observer: "Observer", metadata: dict | None = None) -> dict:
    """The full Chrome trace object for one observed run.

    ``metadata`` (see :func:`repro.obs.meta.run_metadata`) rides along
    under ``otherData["run"]`` so a trace file is self-describing:
    which repro version, topology and seed produced it.
    """
    other: dict = {
        "generator": "repro.obs",
        "dropped_records": observer.spans.dropped,
        "metrics": observer.metrics.snapshot(),
    }
    if metadata is not None:
        other["run"] = dict(metadata)
    return {
        "traceEvents": chrome_trace_events(observer.spans)
        + gauge_counter_events(observer.metrics),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    observer: "Observer",
    path: str | pathlib.Path,
    metadata: dict | None = None,
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_chrome_trace(observer, metadata), indent=1))
    return path


#: Phases an "X" (complete) event must carry beyond the common fields.
_COMMON_FIELDS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(trace: object) -> list[str]:
    """Check an object against the Chrome trace-event schema.

    Returns a list of problems (empty means the trace is loadable).
    Used by the test suite and the CI smoke run.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(f"{where}: missing ph")
            continue
        for fname in _COMMON_FIELDS:
            if phase == "M" and fname == "ts":
                continue  # metadata events carry no timestamp
            if fname not in event:
                problems.append(f"{where}: missing {fname!r}")
        for fname in ("ts", "dur"):
            if fname in event and not isinstance(event[fname], (int, float)):
                problems.append(f"{where}: {fname} must be numeric")
        if phase == "X":
            if "dur" not in event:
                problems.append(f"{where}: complete event missing dur")
            elif isinstance(event["dur"], (int, float)) and event["dur"] < 0:
                problems.append(f"{where}: negative dur")
        if phase == "i" and event.get("s") not in ("g", "p", "t", None):
            problems.append(f"{where}: bad instant scope {event.get('s')!r}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter event needs non-empty args")
            elif not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in args.values()
            ):
                problems.append(f"{where}: counter args must be numeric")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


# ---------------------------------------------------------------------------
# Merged CSV
# ---------------------------------------------------------------------------


def to_csv(observer: "Observer") -> str:
    """Spans, instants and metrics merged into one flat CSV.

    ``record`` distinguishes the three; unused columns stay empty, and
    every row keeps (clock, track, name) so the file pivots cleanly.
    """
    out = io.StringIO()
    out.write("record,clock,track,name,start,duration,value,labels\n")

    def _esc(text: str) -> str:
        if any(ch in text for ch in ',"\n'):
            return '"' + text.replace('"', '""') + '"'
        return text

    for span in sorted(observer.spans.spans, key=lambda s: (s.clock, s.start)):
        out.write(
            f"span,{span.clock},{_esc(span.track)},{_esc(span.name)},"
            f"{span.start:.9f},{span.duration:.9f},,"
            f"{_esc(_label_text(span.attrs))}\n"
        )
    for inst in sorted(observer.spans.instants, key=lambda i: (i.clock, i.time)):
        out.write(
            f"instant,{inst.clock},{_esc(inst.track)},{_esc(inst.name)},"
            f"{inst.time:.9f},0,,{_esc(_label_text(inst.attrs))}\n"
        )
    snapshot = observer.metrics.snapshot()
    for kind in ("counters", "gauges"):
        for row in snapshot[kind]:
            out.write(
                f"{kind[:-1]},,,{_esc(row['name'])},,,"
                f"{row['value']},{_esc(_label_text(row['labels']))}\n"
            )
    for row in snapshot["histograms"]:
        stats = {
            k: row[k]
            for k in ("count", "min", "max", "mean", "p50", "p95", "p99")
        }
        out.write(
            f"histogram,,,{_esc(row['name'])},,,"
            f"{row['total']},{_esc(_label_text({**row['labels'], **stats}))}\n"
        )
    return out.getvalue()


def _label_text(labels: dict) -> str:
    return ";".join(f"{key}={value}" for key, value in sorted(labels.items()))


# ---------------------------------------------------------------------------
# Terminal summary
# ---------------------------------------------------------------------------


def record_self_time_gauges(observer: "Observer") -> dict[str, float]:
    """Export per-span exclusive self-times as ``span.*.self_seconds``.

    One gauge per span name (labelled by clock), so metric snapshots —
    and through them the experiments ledger — carry the span-derived
    per-phase timing breakdown without shipping the full trace.
    Returns the wall-clock self-time dict for convenience.
    """
    for clock in (WALL, SIM):
        for name, seconds in observer.spans.self_times(clock=clock).items():
            observer.metrics.gauge(
                f"span.{name}.self_seconds", clock=clock
            ).set(seconds)
    return observer.spans.self_times(clock=WALL)


def summary(observer: "Observer", top: int = 8) -> str:
    """A human-oriented rollup: phase spans, then the busiest metrics."""
    spans = observer.spans
    lines: list[str] = []
    wall = [s for s in spans.spans if s.clock == WALL]
    if wall:
        lines.append("wall-clock spans (aggregated by name, incl/self):")
        by_name: dict[str, tuple[int, float]] = {}
        for span in wall:
            count, total = by_name.get(span.name, (0, 0.0))
            by_name[span.name] = (count + 1, total + span.duration)
        self_times = spans.self_times(clock=WALL)
        width = max(len(name) for name in by_name)
        for name, (count, total) in sorted(
            by_name.items(), key=lambda item: item[1][1], reverse=True
        ):
            lines.append(
                f"  {name:<{width}}  {total * 1e3:10.2f} ms"
                f"  self {self_times.get(name, 0.0) * 1e3:10.2f} ms  x{count}"
            )
    sim = [s for s in spans.spans if s.clock == SIM and s.category == "phase"]
    if sim:
        lines.append("simulated phase schedule:")
        for span in sorted(sim, key=lambda s: s.start):
            lines.append(
                f"  {span.name:<22} {span.start * 1e3:9.2f} ->"
                f" {span.end * 1e3:9.2f} ms on {span.track}"
            )
    decisions = spans.find_instants(category="route")
    if decisions:
        lines.append(f"route decisions: {len(decisions)}")
    snapshot = observer.metrics.snapshot()
    fault_counters = [
        row for row in snapshot["counters"] if row["name"].startswith("faults.")
    ]
    if fault_counters:
        lines.append("fault injection / recovery:")
        for row in sorted(fault_counters, key=lambda r: r["name"]):
            label = _label_text(row["labels"])
            suffix = f" {{{label}}}" if label else ""
            lines.append(f"  {row['name']}{suffix} = {row['value']:g}")
    counters = sorted(
        snapshot["counters"], key=lambda row: row["value"], reverse=True
    )
    if counters:
        lines.append(f"top counters (of {len(counters)}):")
        for row in counters[:top]:
            label = _label_text(row["labels"])
            suffix = f" {{{label}}}" if label else ""
            lines.append(f"  {row['name']}{suffix} = {row['value']:g}")
    histograms = snapshot["histograms"]
    if histograms:
        lines.append(f"histograms ({len(histograms)}):")
    for row in histograms:
        label = _label_text(row["labels"])
        suffix = f" {{{label}}}" if label else ""
        lines.append(
            f"  {row['name']}{suffix}: n={row['count']} mean={row['mean']:.3g}"
            f" max={row['max']:.3g}"
        )
        lines.append(
            f"    p50={row['p50']:.3g}  p95={row['p95']:.3g}"
            f"  p99={row['p99']:.3g}"
        )
    if observer.spans.dropped:
        lines.append(f"WARNING: {observer.spans.dropped} records dropped (cap hit)")
    if not lines:
        return "(no observations recorded)\n"
    return "\n".join(lines) + "\n"
