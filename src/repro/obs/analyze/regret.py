"""ARM decision audit: was each routing choice right, in hindsight?

Every routing policy records one ``arm.decision`` instant per batch
(see :meth:`repro.routing.base.RoutingPolicy.emit_decision`) carrying
the candidate routes it considered.  This module replays each instant
against the *realized* link timelines captured by a
:class:`~repro.obs.analyze.timeline.LinkTimelineSampler`: for every
candidate route it recomputes the ARM cost (Eq. 2) using the queue
delays the links actually had at that instant — the ground truth the
deciding GPU could not see through the delayed broadcast board.

Per-batch **regret** is the realized cost of the chosen route minus
the realized cost of the best candidate.  Regret of zero means the
decision was optimal given what actually happened; the audit also
correlates regret with the link-state board's staleness at decision
time, quantifying how much the broadcast delay costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.analyze.timeline import LinkTimelineSampler
from repro.topology.links import bottleneck_bandwidth
from repro.topology.routes import Route, physical_links

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observer
    from repro.topology.machine import MachineTopology


def parse_route(text: str) -> Route:
    """Inverse of ``str(Route)``: ``"0->3->5"`` -> ``Route((0, 3, 5))``."""
    return Route(tuple(int(part) for part in text.split("->")))


@dataclass(frozen=True)
class DecisionAudit:
    """One replayed routing decision."""

    time: float
    src: int
    dst: int
    policy: str
    chosen: str
    best: str
    #: Realized ARM cost (seconds) of the chosen / best candidate.
    realized_chosen: float
    realized_best: float
    batch_bytes: int
    #: Broadcast-board error (seconds) the decider saw, if recorded.
    staleness: float | None

    @property
    def regret(self) -> float:
        return max(0.0, self.realized_chosen - self.realized_best)

    @property
    def was_optimal(self) -> bool:
        return self.chosen == self.best


@dataclass
class RegretReport:
    """Aggregated audit of every decision in one run."""

    policy: str
    rows: list[DecisionAudit] = field(default_factory=list)

    @property
    def decisions(self) -> int:
        return len(self.rows)

    @property
    def mean_regret(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.regret for row in self.rows) / len(self.rows)

    @property
    def total_regret(self) -> float:
        return sum(row.regret for row in self.rows)

    @property
    def optimal_share(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.was_optimal for row in self.rows) / len(self.rows)

    def percentile_regret(self, q: float) -> float:
        if not self.rows:
            return 0.0
        ordered = sorted(row.regret for row in self.rows)
        index = min(
            len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[index]

    @property
    def staleness_regret_correlation(self) -> float | None:
        """Pearson correlation of board staleness vs regret.

        ``None`` when staleness was not recorded or either series is
        constant (correlation undefined).
        """
        pairs = [
            (row.staleness, row.regret)
            for row in self.rows
            if row.staleness is not None
        ]
        if len(pairs) < 2:
            return None
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
        var_x = sum((x - mean_x) ** 2 for x in xs)
        var_y = sum((y - mean_y) ** 2 for y in ys)
        if var_x <= 0 or var_y <= 0:
            return None
        return cov / math.sqrt(var_x * var_y)

    def worst(self, top: int = 10) -> list[DecisionAudit]:
        return sorted(self.rows, key=lambda row: row.regret, reverse=True)[:top]

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "decisions": self.decisions,
            "mean_regret": self.mean_regret,
            "p95_regret": self.percentile_regret(95),
            "total_regret": self.total_regret,
            "optimal_share": self.optimal_share,
            "staleness_regret_correlation": self.staleness_regret_correlation,
        }


def realized_arm(
    machine: "MachineTopology",
    sampler: LinkTimelineSampler,
    route: Route,
    packet_bytes: int,
    when: float,
) -> float:
    """ARM(R, P) recomputed from the realized link state at ``when``.

    Same form as :func:`repro.routing.adaptive.arm_value` — bottleneck
    transmission time plus per-link queue + latency — but the queue
    delays come from the sampled timeline (strictly before ``when``,
    so a decision's own commits are excluded) instead of the decider's
    broadcast view.
    """
    links = physical_links(machine, route)
    transmission = packet_bytes / bottleneck_bandwidth(list(links), packet_bytes)
    delay = 0.0
    for spec in links:
        delay += sampler.queue_delay_at(spec.link_id, when) + spec.latency
    return transmission + delay


def audit_decisions(
    machine: "MachineTopology",
    observer: "Observer",
    sampler: LinkTimelineSampler,
) -> RegretReport:
    """Replay every recorded ``arm.decision`` against the timelines.

    Decisions recorded without a candidate-route list (telemetry from
    before the observatory landed) are skipped rather than guessed at.
    """
    policy = ""
    rows: list[DecisionAudit] = []
    route_cache: dict[str, Route] = {}
    for instant in observer.spans.find_instants("arm.decision"):
        attrs = instant.attrs
        candidates = attrs.get("routes")
        packet_bytes = attrs.get("packet_bytes")
        if not candidates or not packet_bytes:
            continue
        policy = attrs.get("policy", policy)
        costs: dict[str, float] = {}
        for text in candidates:
            route = route_cache.get(text)
            if route is None:
                route = route_cache.setdefault(text, parse_route(text))
            costs[text] = realized_arm(
                machine, sampler, route, packet_bytes, instant.time
            )
        chosen = attrs["route"]
        best = min(costs, key=lambda text: (costs[text], text != chosen))
        rows.append(
            DecisionAudit(
                time=instant.time,
                src=attrs["src"],
                dst=attrs["dst"],
                policy=attrs.get("policy", ""),
                chosen=chosen,
                best=best,
                realized_chosen=costs[chosen],
                realized_best=costs[best],
                batch_bytes=attrs.get("batch_bytes", 0),
                staleness=attrs.get("staleness"),
            )
        )
    rows.sort(key=lambda row: row.time)
    return RegretReport(policy=policy, rows=rows)
