"""Bottleneck attribution: which link capped which phase, and why.

The paper's whole argument (Figures 8 and 12) is that multi-GPU join
time is governed by how well the minimum bisection's crossing links are
kept busy.  This pass turns a sampled run
(:class:`~repro.obs.analyze.timeline.LinkTimelineSampler`) plus the
machine's :class:`~repro.sim.stats.BisectionCut` into, per pipeline
phase:

* a saturation ranking of the links active in the phase window,
* the share of the phase attributable to the bisection — the busy
  fraction of the most-saturated crossing link, i.e. how much of the
  phase the limiting cut resource was occupied — plus achieved
  per-direction bisection utilization,
* a queueing-vs-transmission split of the phase's link time,

and, across the whole run, a per-flow latency decomposition into
uncontended transmission vs congestion queueing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.analyze.timeline import LinkTimelineSampler
from repro.sim.stats import BisectionCut


@dataclass(frozen=True)
class PhaseWindow:
    """One attribution window ``[start, end)`` on the simulated clock."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


@dataclass(frozen=True)
class LinkSaturation:
    """One link's activity inside one phase window."""

    link_id: int
    label: str
    #: Busy fraction of the window, in [0, 1].
    utilization: float
    bytes: float
    #: Summed FIFO waits of transfers submitted in the window.
    queueing_seconds: float
    #: Wire-busy seconds inside the window.
    transmission_seconds: float
    #: "ab" / "ba" if the link crosses the minimum bisection, else "".
    crossing: str

    @property
    def queueing_share(self) -> float:
        total = self.queueing_seconds + self.transmission_seconds
        if total <= 0:
            return 0.0
        return self.queueing_seconds / total


@dataclass
class PhaseAttribution:
    """Saturation ranking + bisection accounting for one phase."""

    phase: PhaseWindow
    #: Links active in the window, most saturated first.
    links: list[LinkSaturation]
    #: Achieved / capacity over the window, per cut direction.
    bisection_utilization_ab: float
    bisection_utilization_ba: float

    @property
    def bottleneck(self) -> LinkSaturation | None:
        return self.links[0] if self.links else None

    @property
    def bisection_time_share(self) -> float:
        """Fraction of the phase the limiting crossing link was busy.

        This is the "share of shuffle time attributable to the
        minimum bisection": while the busiest crossing link is
        occupied, the cut — not compute — is the scarce resource.
        """
        crossing = [link for link in self.links if link.crossing]
        if not crossing:
            return 0.0
        return max(link.utilization for link in crossing)

    @property
    def queueing_share(self) -> float:
        """Queueing share of all link time spent in this phase."""
        queueing = sum(link.queueing_seconds for link in self.links)
        busy = sum(link.transmission_seconds for link in self.links)
        if queueing + busy <= 0:
            return 0.0
        return queueing / (queueing + busy)


@dataclass(frozen=True)
class FlowLatencyRow:
    """Latency decomposition of one (src, dst) flow."""

    flow_src: int
    flow_dst: int
    packets: int
    mean_latency: float
    mean_queueing: float
    mean_transmission: float

    @property
    def queueing_share(self) -> float:
        if self.mean_latency <= 0:
            return 0.0
        return self.mean_queueing / self.mean_latency


@dataclass
class BottleneckReport:
    """Everything the attribution pass derived from one sampled run."""

    horizon: float
    phases: list[PhaseAttribution] = field(default_factory=list)
    flows: list[FlowLatencyRow] = field(default_factory=list)

    @property
    def worst_flow(self) -> FlowLatencyRow | None:
        if not self.flows:
            return None
        return max(self.flows, key=lambda row: row.mean_latency)

    def to_dict(self) -> dict:
        """JSON-ready rendering (consumed by ``repro analyze --out-dir``)."""
        return {
            "horizon_seconds": self.horizon,
            "phases": [
                {
                    "phase": att.phase.name,
                    "window": [att.phase.start, att.phase.end],
                    "bisection_time_share": att.bisection_time_share,
                    "bisection_utilization_ab": att.bisection_utilization_ab,
                    "bisection_utilization_ba": att.bisection_utilization_ba,
                    "queueing_share": att.queueing_share,
                    "links": [
                        {
                            "link": link.label,
                            "utilization": link.utilization,
                            "bytes": link.bytes,
                            "queueing_seconds": link.queueing_seconds,
                            "transmission_seconds": link.transmission_seconds,
                            "crossing": link.crossing,
                        }
                        for link in att.links
                    ],
                }
                for att in self.phases
            ],
            "flows": [
                {
                    "src": row.flow_src,
                    "dst": row.flow_dst,
                    "packets": row.packets,
                    "mean_latency": row.mean_latency,
                    "mean_queueing": row.mean_queueing,
                    "mean_transmission": row.mean_transmission,
                    "queueing_share": row.queueing_share,
                }
                for row in self.flows
            ],
        }


def attribute_phase(
    sampler: LinkTimelineSampler,
    cut: BisectionCut,
    phase: PhaseWindow,
    top: int | None = None,
) -> PhaseAttribution:
    """Rank links by saturation inside one phase window."""
    duration = phase.duration
    crossing_side = {lid: "ab" for lid in cut.crossing_ab}
    crossing_side.update({lid: "ba" for lid in cut.crossing_ba})
    links: list[LinkSaturation] = []
    active = set(sampler.transfers)
    for link_id in sorted(active):
        busy = sampler.busy_time(link_id, phase.start, phase.end)
        nbytes = sampler.bytes_in_window(link_id, phase.start, phase.end)
        if busy <= 0 and nbytes <= 0:
            continue
        links.append(
            LinkSaturation(
                link_id=link_id,
                label=sampler.labels.get(link_id, str(link_id)),
                utilization=min(1.0, busy / duration) if duration > 0 else 0.0,
                bytes=nbytes,
                queueing_seconds=sampler.queueing_time(
                    link_id, phase.start, phase.end
                ),
                transmission_seconds=busy,
                crossing=crossing_side.get(link_id, ""),
            )
        )
    links.sort(key=lambda link: (link.utilization, link.bytes), reverse=True)
    if top is not None:
        links = links[:top]
    ab_bytes = sum(
        sampler.bytes_in_window(lid, phase.start, phase.end)
        for lid in cut.crossing_ab
    )
    ba_bytes = sum(
        sampler.bytes_in_window(lid, phase.start, phase.end)
        for lid in cut.crossing_ba
    )
    return PhaseAttribution(
        phase=phase,
        links=links,
        bisection_utilization_ab=_rate_utilization(
            ab_bytes, duration, cut.capacity_ab
        ),
        bisection_utilization_ba=_rate_utilization(
            ba_bytes, duration, cut.capacity_ba
        ),
    )


def _rate_utilization(nbytes: float, duration: float, capacity: float) -> float:
    if duration <= 0 or capacity <= 0:
        return 0.0
    return min(1.0, nbytes / duration / capacity)


def flow_latency_rows(sampler: LinkTimelineSampler) -> list[FlowLatencyRow]:
    """Per-flow latency split, worst mean latency first."""
    grouped: dict[tuple[int, int], list] = {}
    for delivery in sampler.deliveries:
        grouped.setdefault((delivery.flow_src, delivery.flow_dst), []).append(
            delivery
        )
    rows = []
    for (src, dst), deliveries in sorted(grouped.items()):
        count = len(deliveries)
        latency = sum(d.latency for d in deliveries) / count
        queueing = sum(d.queueing for d in deliveries) / count
        rows.append(
            FlowLatencyRow(
                flow_src=src,
                flow_dst=dst,
                packets=count,
                mean_latency=latency,
                mean_queueing=queueing,
                mean_transmission=latency - queueing,
            )
        )
    rows.sort(key=lambda row: row.mean_latency, reverse=True)
    return rows


def attribute(
    sampler: LinkTimelineSampler,
    cut: BisectionCut,
    phases: list[PhaseWindow] | None = None,
    top: int | None = None,
) -> BottleneckReport:
    """The full attribution pass over one sampled run.

    ``phases`` defaults to a single window covering the whole run; a
    join-level caller passes the modelled pipeline schedule instead so
    the report names the saturated links *per phase*.
    """
    horizon = sampler.horizon
    if phases is None:
        phases = [PhaseWindow("distribution", 0.0, horizon)]
    report = BottleneckReport(horizon=horizon)
    for phase in phases:
        if phase.duration <= 0:
            continue
        report.phases.append(attribute_phase(sampler, cut, phase, top=top))
    report.flows = flow_latency_rows(sampler)
    return report
