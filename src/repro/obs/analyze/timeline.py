"""Time-resolved link telemetry (the congestion observatory's substrate).

PR 1's `LinkStats` only answers *how much* a link moved over a whole
run.  The :class:`LinkTimelineSampler` answers *when*: it hooks into
:class:`repro.sim.linksim.LinkChannel` (every ``commit`` / ``fulfill``
/ ``transmit`` records a sample on the simulated clock) and into the
:class:`repro.sim.engine.Engine` (a periodic probe samples every link's
queue delay at a fixed interval, so idle stretches are visible too).

Three raw record streams come out of a sampled run:

* **transfers** — per-link ``(submit, start, end, bytes)`` intervals;
  ``start - submit`` is the wire-FIFO wait, ``end - start`` the service
  time,
* **queue samples** — per-link ``(time, delay)`` step function of the
  perceived queueing delay (wire backlog + committed load, the ``Q_i``
  of the paper's Eq. 4),
* **deliveries** — per-flow packet latencies with the route's
  uncontended (ideal) time, so latency splits into queueing vs
  transmission.

:meth:`LinkTimelineSampler.timeline` buckets the streams into a
:class:`LinkTimeline`: per-link utilization and queue-depth
time-series ready for heatmaps and bottleneck attribution.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.sim.gpusim import Packet
    from repro.sim.linksim import LinkChannel


@dataclass(frozen=True)
class TransferSample:
    """One packet's passage over one link."""

    submit: float
    start: float
    end: float
    nbytes: int

    @property
    def wait(self) -> float:
        """Seconds spent queued behind the link's FIFO backlog."""
        return self.start - self.submit

    @property
    def service(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FlowDelivery:
    """One delivered packet, with its uncontended-route reference time."""

    flow_src: int
    flow_dst: int
    route: str
    hops: int
    payload_bytes: int
    created_at: float
    delivered_at: float
    #: Sum of link service times along the route with empty queues.
    ideal_latency: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.created_at

    @property
    def queueing(self) -> float:
        """The latency share not explained by uncontended transmission."""
        return max(0.0, self.latency - self.ideal_latency)


@dataclass
class LinkSeries:
    """One link's bucketed time-series."""

    link_id: int
    label: str
    #: Fraction of each bucket the wire was busy, in [0, 1].
    utilization: list[float]
    #: Max perceived queue delay (seconds) seen in each bucket.
    queue_delay: list[float]
    #: Bytes whose transmission overlapped each bucket (prorated).
    bytes: list[float]

    @property
    def mean_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return sum(self.utilization) / len(self.utilization)

    @property
    def peak_utilization(self) -> float:
        return max(self.utilization, default=0.0)

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes)


@dataclass
class LinkTimeline:
    """Bucketed utilization / queue-depth series for every active link."""

    horizon: float
    num_buckets: int
    series: dict[int, LinkSeries] = field(default_factory=dict)

    @property
    def bucket_width(self) -> float:
        if self.num_buckets == 0:
            return 0.0
        return self.horizon / self.num_buckets

    def ranked(self, top: int | None = None) -> list[LinkSeries]:
        """Series ordered by total busy time, busiest first."""
        ordered = sorted(
            self.series.values(),
            key=lambda s: (sum(s.utilization), s.label),
            reverse=True,
        )
        return ordered if top is None else ordered[:top]


class LinkTimelineSampler:
    """Records per-link busy/queue intervals on the simulated clock.

    Bind one sampler to one simulation run::

        sampler = LinkTimelineSampler()
        report = ShuffleSimulator(machine, gpus, sampler=sampler).run(
            flows, policy
        )
        timeline = sampler.timeline(num_buckets=60)

    ``sample_interval`` controls the periodic engine probe; ``None``
    disables it (event-driven samples from commit/fulfill/transmit are
    still recorded).  The probe stops rescheduling itself once it is
    the only event left, so it never keeps a finished run alive.
    """

    def __init__(self, sample_interval: float | None = 100e-6) -> None:
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError("sample_interval must be positive (or None)")
        self.sample_interval = sample_interval
        self.engine: "Engine | None" = None
        self._links: dict[int, "LinkChannel"] = {}
        self.labels: dict[int, str] = {}
        self.transfers: dict[int, list[TransferSample]] = {}
        #: Per-link (times, delays) parallel arrays, appended in
        #: nondecreasing simulation-time order.
        self._queue_times: dict[int, list[float]] = {}
        self._queue_delays: dict[int, list[float]] = {}
        self.deliveries: list[FlowDelivery] = []
        self.probe_count = 0

    # -- binding -----------------------------------------------------------

    def bind(self, engine: "Engine", links: dict[int, "LinkChannel"]) -> None:
        """Attach to one run's engine and link channels.

        Rebinding (e.g. reusing a sampler for a second run) clears all
        previously recorded data — a sampler holds exactly one run.
        """
        self.engine = engine
        self._links = dict(links)
        self.labels = {lid: str(ch.spec) for lid, ch in links.items()}
        self.transfers = {}
        self._queue_times = {}
        self._queue_delays = {}
        self.deliveries = []
        self.probe_count = 0
        for channel in links.values():
            channel.sampler = self
        if self.sample_interval is not None:
            engine.every(self.sample_interval, self._probe)

    def _probe(self) -> None:
        """Periodic engine hook: sample every link.

        Scheduled through :meth:`Engine.every`, whose housekeeping
        accounting stops the chain once only periodic observers remain
        — a raw ``engine.pending`` check here would deadlock against
        any *other* periodic observer (e.g. the telemetry stream's link
        pump), each seeing the other as pending work.
        """
        self.probe_count += 1
        for channel in self._links.values():
            self.record_queue(channel)

    # -- recording (called from linksim / gpusim hot paths) ----------------

    def record_transfer(
        self,
        channel: "LinkChannel",
        submit: float,
        start: float,
        end: float,
        nbytes: int,
    ) -> None:
        link_id = channel.spec.link_id
        self.transfers.setdefault(link_id, []).append(
            TransferSample(submit=submit, start=start, end=end, nbytes=nbytes)
        )
        self.record_queue(channel)

    def record_queue(self, channel: "LinkChannel") -> None:
        link_id = channel.spec.link_id
        assert self.engine is not None
        self._queue_times.setdefault(link_id, []).append(self.engine.now)
        self._queue_delays.setdefault(link_id, []).append(channel.queue_delay())

    def record_delivery(self, packet: "Packet", delivered_at: float) -> None:
        self.deliveries.append(
            FlowDelivery(
                flow_src=packet.flow_src,
                flow_dst=packet.flow_dst,
                route=str(packet.route),
                hops=packet.route.num_hops,
                payload_bytes=packet.payload_bytes,
                created_at=packet.created_at,
                delivered_at=delivered_at,
                ideal_latency=packet.ideal_latency,
            )
        )

    # -- queries -----------------------------------------------------------

    @property
    def horizon(self) -> float:
        """End of the last recorded transfer (0.0 for an empty run)."""
        return max(
            (samples[-1].end for samples in self.transfers.values() if samples),
            default=0.0,
        )

    def queue_delay_at(self, link_id: int, when: float) -> float:
        """The link's recorded queue delay strictly before ``when``.

        Strictness matters for decision replay: a routing decision and
        the commits it causes share one simulation timestamp, and the
        counterfactual must see the state *before* the batch landed.
        """
        times = self._queue_times.get(link_id)
        if not times:
            return 0.0
        index = bisect.bisect_left(times, when) - 1
        if index < 0:
            return 0.0
        return self._queue_delays[link_id][index]

    def busy_time(self, link_id: int, start: float, end: float) -> float:
        """Wire-busy seconds of ``link_id`` inside ``[start, end)``."""
        total = 0.0
        for sample in self.transfers.get(link_id, ()):
            total += max(0.0, min(sample.end, end) - max(sample.start, start))
        return total

    def bytes_in_window(self, link_id: int, start: float, end: float) -> float:
        """Bytes prorated by each transfer's overlap with the window."""
        total = 0.0
        for sample in self.transfers.get(link_id, ()):
            overlap = max(0.0, min(sample.end, end) - max(sample.start, start))
            if overlap > 0 and sample.service > 0:
                total += sample.nbytes * overlap / sample.service
        return total

    def queueing_time(self, link_id: int, start: float, end: float) -> float:
        """Summed FIFO waits of transfers submitted inside the window."""
        return sum(
            sample.wait
            for sample in self.transfers.get(link_id, ())
            if start <= sample.submit < end
        )

    # -- bucketing ---------------------------------------------------------

    def timeline(
        self, num_buckets: int = 60, horizon: float | None = None
    ) -> LinkTimeline:
        """Bucket all recorded activity into per-link time-series.

        Zero-duration runs (no transfers at all) yield a timeline with
        zero buckets rather than dividing by a zero horizon.
        """
        if num_buckets < 1:
            raise ValueError("num_buckets must be positive")
        span = self.horizon if horizon is None else horizon
        if span <= 0.0:
            return LinkTimeline(horizon=0.0, num_buckets=0)
        width = span / num_buckets
        timeline = LinkTimeline(horizon=span, num_buckets=num_buckets)
        link_ids = set(self.transfers) | set(self._queue_times)
        for link_id in sorted(link_ids):
            utilization = [0.0] * num_buckets
            nbytes = [0.0] * num_buckets
            for sample in self.transfers.get(link_id, ()):
                first = max(0, min(num_buckets - 1, int(sample.start / width)))
                last = max(0, min(num_buckets - 1, int(sample.end / width)))
                for bucket in range(first, last + 1):
                    lo, hi = bucket * width, (bucket + 1) * width
                    overlap = max(0.0, min(sample.end, hi) - max(sample.start, lo))
                    utilization[bucket] += overlap / width
                    if sample.service > 0:
                        nbytes[bucket] += sample.nbytes * overlap / sample.service
            queue = self._bucket_queue(link_id, width, num_buckets)
            timeline.series[link_id] = LinkSeries(
                link_id=link_id,
                label=self.labels.get(link_id, str(link_id)),
                utilization=[min(1.0, u) for u in utilization],
                queue_delay=queue,
                bytes=nbytes,
            )
        return timeline

    def _bucket_queue(
        self, link_id: int, width: float, num_buckets: int
    ) -> list[float]:
        """Per-bucket max of the queue-delay step function.

        Buckets without samples carry the last known value forward, so
        the series reads as the step function it is.
        """
        times = self._queue_times.get(link_id, [])
        delays = self._queue_delays.get(link_id, [])
        out = [0.0] * num_buckets
        seen = [False] * num_buckets
        for when, delay in zip(times, delays):
            bucket = max(0, min(num_buckets - 1, int(when / width)))
            if not seen[bucket] or delay > out[bucket]:
                out[bucket] = delay
                seen[bucket] = True
        last = 0.0
        for bucket in range(num_buckets):
            if seen[bucket]:
                last = out[bucket]
            else:
                out[bucket] = last
        return out
