"""Link congestion observatory: time-resolved analysis of sampled runs.

Built on PR 1's span/metrics layer, this subpackage turns one sampled
simulation run into answers the end-of-run aggregates cannot give:

* :mod:`repro.obs.analyze.timeline` — when each link was busy and how
  deep its queue ran (:class:`LinkTimelineSampler`, bucketed into a
  :class:`LinkTimeline`),
* :mod:`repro.obs.analyze.attribution` — which link capped which
  phase, the minimum-bisection's share of the phase, and per-flow
  queueing-vs-transmission splits (:func:`attribute`),
* :mod:`repro.obs.analyze.regret` — per-batch routing regret from
  replaying ``arm.decision`` telemetry against the realized timelines
  (:func:`audit_decisions`),
* :mod:`repro.obs.analyze.report` — ASCII/CSV/JSON heatmaps and
  terminal reports (:func:`ascii_heatmap`, :func:`write_analysis`).

The CLI front-end is ``python -m repro analyze``; the perf-regression
gate (``repro perf``) persists the headline numbers into committed
``BENCH_*.json`` baselines.
"""

from repro.obs.analyze.attribution import (
    BottleneckReport,
    FlowLatencyRow,
    LinkSaturation,
    PhaseAttribution,
    PhaseWindow,
    attribute,
    attribute_phase,
    flow_latency_rows,
)
from repro.obs.analyze.regret import (
    DecisionAudit,
    RegretReport,
    audit_decisions,
    parse_route,
    realized_arm,
)
from repro.obs.analyze.report import (
    ascii_heatmap,
    heatmap_csv,
    heatmap_json,
    regret_csv,
    render_bottleneck_report,
    render_regret_table,
    write_analysis,
)
from repro.obs.analyze.timeline import (
    FlowDelivery,
    LinkSeries,
    LinkTimeline,
    LinkTimelineSampler,
    TransferSample,
)

__all__ = [
    "BottleneckReport",
    "DecisionAudit",
    "FlowDelivery",
    "FlowLatencyRow",
    "LinkSaturation",
    "LinkSeries",
    "LinkTimeline",
    "LinkTimelineSampler",
    "PhaseAttribution",
    "PhaseWindow",
    "RegretReport",
    "TransferSample",
    "ascii_heatmap",
    "attribute",
    "attribute_phase",
    "audit_decisions",
    "flow_latency_rows",
    "heatmap_csv",
    "heatmap_json",
    "parse_route",
    "realized_arm",
    "regret_csv",
    "render_bottleneck_report",
    "render_regret_table",
    "write_analysis",
]
