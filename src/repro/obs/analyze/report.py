"""Observatory exporters: link×time heatmap (ASCII/CSV/JSON) + reports.

The heatmap answers the question Figure 8 asks — *is the bisection
kept busy over time?* — at link granularity: one row per link, one
column per time bucket, shaded by wire utilization.  The same buckets
export to CSV (for pandas) and JSON (for dashboards), and the
bottleneck / regret reports render as terminal tables.
"""

from __future__ import annotations

import io
import json
import pathlib

from repro.obs.analyze.attribution import BottleneckReport
from repro.obs.analyze.regret import RegretReport
from repro.obs.analyze.timeline import LinkTimeline

#: Shade ramp for utilization 0.0 -> 1.0.
_SHADES = " .:-=+*#%@"


def _shade(value: float) -> str:
    index = min(len(_SHADES) - 1, int(value * len(_SHADES)))
    return _SHADES[index]


def ascii_heatmap(
    timeline: LinkTimeline, top: int = 12, queue: bool = False
) -> str:
    """Link×time utilization heatmap for the terminal.

    Rows are the busiest links; each cell shades one time bucket's
    wire utilization (`` `` idle .. ``@`` saturated).  With ``queue``
    the cells shade queue delay relative to the row's own maximum
    instead — useful to see congestion *waves*.
    """
    ranked = timeline.ranked(top)
    if not ranked or timeline.num_buckets == 0:
        return "(no link activity recorded)\n"
    label_width = max(len(series.label) for series in ranked)
    lines = []
    for series in ranked:
        if queue:
            peak = max(series.queue_delay, default=0.0)
            values = [
                (delay / peak if peak > 0 else 0.0)
                for delay in series.queue_delay
            ]
        else:
            values = series.utilization
        cells = "".join(_shade(value) for value in values)
        mean = series.mean_utilization
        lines.append(f"{series.label:>{label_width}} |{cells}| {mean * 100:5.1f}%")
    scale = (
        f"{'':>{label_width}}  0"
        f"{'':{max(1, timeline.num_buckets - 10)}}"
        f"{timeline.horizon * 1e3:.2f} ms"
    )
    legend = f"{'':>{label_width}}  shade: ' '=idle .. '@'=saturated"
    return "\n".join(lines + [scale, legend]) + "\n"


def heatmap_csv(timeline: LinkTimeline) -> str:
    """Flat CSV: one row per (link, bucket)."""
    out = io.StringIO()
    out.write("link,bucket,start,end,utilization,queue_delay,bytes\n")
    width = timeline.bucket_width
    for series in timeline.ranked():
        for bucket in range(timeline.num_buckets):
            out.write(
                f"{series.label},{bucket},{bucket * width:.9f},"
                f"{(bucket + 1) * width:.9f},"
                f"{series.utilization[bucket]:.6f},"
                f"{series.queue_delay[bucket]:.9f},"
                f"{series.bytes[bucket]:.1f}\n"
            )
    return out.getvalue()


def heatmap_json(timeline: LinkTimeline) -> dict:
    """JSON-ready heatmap: bucket grid plus per-link series."""
    return {
        "horizon_seconds": timeline.horizon,
        "num_buckets": timeline.num_buckets,
        "bucket_seconds": timeline.bucket_width,
        "links": [
            {
                "link": series.label,
                "utilization": [round(u, 6) for u in series.utilization],
                "queue_delay": [round(q, 9) for q in series.queue_delay],
                "bytes": [round(b, 1) for b in series.bytes],
            }
            for series in timeline.ranked()
        ],
    }


def render_bottleneck_report(report: BottleneckReport, top_links: int = 5) -> str:
    """Terminal table: per-phase saturated links + bisection shares."""
    lines = ["bottleneck attribution:"]
    if not report.phases:
        lines.append("  (no phase activity recorded)")
    for attribution in report.phases:
        phase = attribution.phase
        lines.append(
            f"  phase {phase.name!r}  [{phase.start * 1e3:.2f}, "
            f"{phase.end * 1e3:.2f}) ms  "
            f"bisection time share {attribution.bisection_time_share * 100:.1f}%  "
            f"utilization a->b {attribution.bisection_utilization_ab * 100:.1f}% / "
            f"b->a {attribution.bisection_utilization_ba * 100:.1f}%  "
            f"queueing share {attribution.queueing_share * 100:.1f}%"
        )
        for link in attribution.links[:top_links]:
            tag = f" [bisection {link.crossing}]" if link.crossing else ""
            lines.append(
                f"    {link.label:<28} {link.utilization * 100:5.1f}% busy  "
                f"{link.bytes / 1e9:7.2f} GB  "
                f"queue/tx {link.queueing_share * 100:5.1f}%{tag}"
            )
    if report.flows:
        lines.append("slowest flows (queueing vs transmission):")
        for row in report.flows[:5]:
            lines.append(
                f"    gpu{row.flow_src}->gpu{row.flow_dst}  "
                f"{row.packets:4d} pkts  "
                f"latency {row.mean_latency * 1e3:7.3f} ms  "
                f"queueing {row.queueing_share * 100:5.1f}%"
            )
    return "\n".join(lines) + "\n"


def render_regret_table(report: RegretReport, top: int = 10) -> str:
    """Terminal table: audit aggregate + worst per-batch regrets."""
    lines = [
        f"ARM decision audit ({report.policy or 'unknown policy'}):",
        f"  decisions {report.decisions}  "
        f"optimal {report.optimal_share * 100:.1f}%  "
        f"mean regret {report.mean_regret * 1e6:.2f} us  "
        f"p95 {report.percentile_regret(95) * 1e6:.2f} us  "
        f"total {report.total_regret * 1e3:.3f} ms",
    ]
    correlation = report.staleness_regret_correlation
    if correlation is not None:
        lines.append(f"  staleness->regret correlation {correlation:+.3f}")
    worst = report.worst(top)
    if worst:
        lines.append("  worst batches (time, flow, chosen vs best, regret):")
        for row in worst:
            marker = "=" if row.was_optimal else "!"
            lines.append(
                f"    {marker} {row.time * 1e3:9.3f} ms  "
                f"gpu{row.src}->gpu{row.dst}  "
                f"{row.chosen:<14} vs {row.best:<14} "
                f"{row.regret * 1e6:8.2f} us"
            )
    return "\n".join(lines) + "\n"


def regret_csv(report: RegretReport) -> str:
    out = io.StringIO()
    out.write(
        "time,src,dst,policy,chosen,best,realized_chosen,realized_best,"
        "regret,batch_bytes,staleness\n"
    )
    for row in report.rows:
        staleness = "" if row.staleness is None else f"{row.staleness:.9f}"
        out.write(
            f"{row.time:.9f},{row.src},{row.dst},{row.policy},"
            f"{row.chosen},{row.best},{row.realized_chosen:.9f},"
            f"{row.realized_best:.9f},{row.regret:.9f},"
            f"{row.batch_bytes},{staleness}\n"
        )
    return out.getvalue()


def write_analysis(
    out_dir: str | pathlib.Path,
    *,
    timeline: LinkTimeline,
    bottlenecks: BottleneckReport,
    regret: RegretReport | None = None,
    metadata: dict | None = None,
) -> list[pathlib.Path]:
    """Persist every observatory artifact under ``out_dir``.

    Writes ``heatmap.csv``, ``heatmap.json``, ``bottlenecks.json`` and
    (when a regret audit ran) ``regret.csv``; returns the paths.
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []

    def _write(name: str, text: str) -> None:
        path = out / name
        path.write_text(text)
        written.append(path)

    _write("heatmap.csv", heatmap_csv(timeline))
    _write("heatmap.json", json.dumps(heatmap_json(timeline), indent=1))
    payload = bottlenecks.to_dict()
    if metadata:
        payload = {"run": metadata, **payload}
    if regret is not None:
        payload["regret"] = regret.to_dict()
        _write("regret.csv", regret_csv(regret))
    _write("bottlenecks.json", json.dumps(payload, indent=1))
    return written
