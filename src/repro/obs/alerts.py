"""Declarative SLO/alert engine evaluated over the telemetry stream.

Rules are data (threshold, budget, or presence checks against stream
events) so alerting policy can live in config or plan files rather than
code.  The engine subscribes to a :class:`~repro.obs.stream.TelemetryStream`,
writes fired alerts to ``alerts.jsonl``, re-emits them into the stream
(so ``repro top`` sees them from the file alone), and keeps them on
``.fired`` so chaos/experiment records can persist them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from .stream import TelemetryStream

__all__ = ["AlertRule", "AlertEngine", "DEFAULT_RULES", "load_rules"]

_OPS = {
    ">=": lambda value, threshold: value >= threshold,
    ">": lambda value, threshold: value > threshold,
    "<=": lambda value, threshold: value <= threshold,
    "<": lambda value, threshold: value < threshold,
    "==": lambda value, threshold: value == threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule over the event stream.

    Matching: ``event_type`` must equal the event's type and every
    ``where`` pair must match the event's fields.  If ``field`` is set,
    the event's value there must satisfy ``value <op> threshold``.
    ``min_count`` turns the rule into a budget: it fires only once the
    number of matching events reaches the budget.  ``cooldown``
    (event-clock seconds) rate-limits repeat firings.
    """

    name: str
    event_type: str
    where: tuple[tuple[str, object], ...] = ()
    field: str | None = None
    op: str = ">="
    threshold: float | None = None
    min_count: int = 1
    severity: str = "warning"
    cooldown: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}; choose from {sorted(_OPS)}")
        if self.field is not None and self.threshold is None:
            raise ValueError(f"rule {self.name!r}: field without threshold")
        if self.min_count < 1:
            raise ValueError(f"rule {self.name!r}: min_count must be >= 1")

    def matches(self, event: dict) -> bool:
        if event.get("type") != self.event_type:
            return False
        for key, expected in self.where:
            if event.get(key) != expected:
                return False
        if self.field is not None:
            value = event.get(self.field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False
            if not _OPS[self.op](value, self.threshold):
                return False
        return True

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "event_type": self.event_type,
            "severity": self.severity,
        }
        if self.where:
            payload["where"] = dict(self.where)
        if self.field is not None:
            payload.update(field=self.field, op=self.op, threshold=self.threshold)
        if self.min_count != 1:
            payload["min_count"] = self.min_count
        if self.cooldown:
            payload["cooldown"] = self.cooldown
        if self.message:
            payload["message"] = self.message
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AlertRule":
        where = tuple(sorted(payload.get("where", {}).items()))
        return cls(
            name=payload["name"],
            event_type=payload["event_type"],
            where=where,
            field=payload.get("field"),
            op=payload.get("op", ">="),
            threshold=payload.get("threshold"),
            min_count=payload.get("min_count", 1),
            severity=payload.get("severity", "warning"),
            cooldown=payload.get("cooldown", 0.0),
            message=payload.get("message", ""),
        )


#: Default SLO surface: link saturation, blackout, retry budget,
#: straggler presence, cost-model residual drift, verified-transport
#: checksum failures, and the serving layer's shed/SLA signals.
DEFAULT_RULES: tuple[AlertRule, ...] = (
    AlertRule(
        name="link-saturation",
        event_type="links",
        field="max_util",
        op=">=",
        threshold=0.95,
        severity="warning",
        cooldown=0.01,
        message="a link has been >=95% busy over the last sample window",
    ),
    AlertRule(
        name="link-blackout",
        event_type="fault",
        where=(("action", "fault.inject"), ("kind", "link-blackout")),
        severity="critical",
        message="a link blackout fault was injected",
    ),
    AlertRule(
        name="retry-budget",
        event_type="packet.retry",
        min_count=50,
        severity="warning",
        message="retry budget exhausted: >=50 packet retries this run",
    ),
    AlertRule(
        name="straggler-lag",
        event_type="fault",
        where=(("action", "fault.inject"), ("kind", "gpu-straggler")),
        severity="warning",
        message="a GPU straggler fault was injected",
    ),
    AlertRule(
        name="residual-drift",
        event_type="conformance",
        field="drift_ratio",
        op=">=",
        threshold=0.5,
        severity="warning",
        message="routing cost model drifting >=50% from simulated actuals",
    ),
    AlertRule(
        name="checksum-failure",
        event_type="integrity",
        where=(("kind", "checksum-failure"),),
        severity="critical",
        message="verified transport caught a payload checksum mismatch",
    ),
    AlertRule(
        name="admission-shed",
        event_type="query",
        where=(("action", "rejected"),),
        severity="warning",
        message="admission control shed a query (structured rejection)",
    ),
    AlertRule(
        name="sla-breach",
        event_type="query",
        where=(("action", "completed"),),
        field="latency",
        op=">=",
        threshold=1.0,
        severity="critical",
        cooldown=0.0,
        message="a served query's end-to-end latency breached the 1 s SLA",
    ),
)


class AlertEngine:
    """Evaluates rules over a stream; records, persists, and re-emits alerts."""

    def __init__(
        self,
        stream: TelemetryStream,
        rules: "tuple[AlertRule, ...] | list[AlertRule] | None" = None,
        path: "str | Path | None" = None,
    ) -> None:
        self.stream = stream
        self.rules = tuple(DEFAULT_RULES if rules is None else rules)
        self.fired: list[dict] = []
        self._counts: dict[str, int] = {}
        self._last_fired: dict[tuple[str, str], float] = {}
        self._sink = None
        if path is not None:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            self._sink = target.open("w", encoding="utf-8")
        stream.subscribe(self.feed)

    def feed(self, event: dict) -> None:
        if event.get("type") == "alert":
            return  # never alert on alerts
        for rule in self.rules:
            if not rule.matches(event):
                continue
            count = self._counts.get(rule.name, 0) + 1
            self._counts[rule.name] = count
            if count < rule.min_count:
                continue
            t = event.get("t", 0.0)
            clock = event.get("clock", "sim")
            key = (rule.name, clock)
            last = self._last_fired.get(key)
            if last is not None and rule.cooldown and t - last < rule.cooldown:
                continue
            self._last_fired[key] = t
            self._fire(rule, event, t, clock, count)

    def _fire(self, rule: AlertRule, event: dict, t: float, clock: str, count: int) -> None:
        alert = {
            "rule": rule.name,
            "severity": rule.severity,
            "message": rule.message or f"rule {rule.name} matched",
            "t": t,
            "clock": clock,
            "count": count,
            "source": event.get("type"),
        }
        if rule.field is not None:
            alert["value"] = event.get(rule.field)
            alert["threshold"] = rule.threshold
        self.fired.append(alert)
        if self._sink is not None:
            self._sink.write(json.dumps(alert, separators=(",", ":")) + "\n")
            self._sink.flush()
        self.stream.emit(
            "alert",
            t=t,
            clock=clock,
            rule=rule.name,
            severity=rule.severity,
            message=alert["message"],
            count=count,
        )

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def summary(self) -> dict:
        by_severity: dict[str, int] = {}
        for alert in self.fired:
            by_severity[alert["severity"]] = by_severity.get(alert["severity"], 0) + 1
        return {"fired": len(self.fired), "by_severity": by_severity}


def load_rules(path: "str | Path") -> tuple[AlertRule, ...]:
    """Load alert rules from a JSON file (list of rule dicts)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ValueError("alert rules file must hold a JSON list of rules")
    rules = []
    for index, entry in enumerate(payload):
        try:
            rules.append(AlertRule.from_dict(entry))
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(
                f"alert rule #{index} in {path} is malformed: {exc}"
            ) from exc
    return tuple(rules)


def with_threshold(rule: AlertRule, threshold: float) -> AlertRule:
    """Return a copy of ``rule`` with a different threshold."""
    return replace(rule, threshold=threshold)
