"""Cost-model conformance: predicted ``T_R``/``D_R`` vs simulated actuals.

The paper's §3.2/§4.2.2 routing metric prices every candidate route as
``ARM(R, P) = T_R + D_R`` — transmission time over the bottleneck link
plus the sum of perceived queueing + link latencies.  Nothing in the
post-hoc tooling ever checked that prediction against what the
simulator then actually did to the packet.  This probe closes the loop:

* at injection time it re-evaluates the chosen route's ``T_R`` and
  ``D_R`` exactly as the deciding GPU perceived them (own links exact,
  remote links through the last broadcast — *without* the staleness
  histogram side effect of ``RoutingContext.queue_delay_seen_by``),
* at delivery time it measures the realized latency and records the
  residual ``actual - (T_R + D_R)``,
* residuals are attributed to the route's *predicted bottleneck link*
  (the link with the largest perceived queue+latency term), so drift
  can be localized to specific links and, via run metadata, policies.

Everything is bounded: per-link aggregates are O(#links) and the raw
residual reservoir is capped at ``max_samples`` (aggregates keep
counting past the cap).
"""

from __future__ import annotations

from repro.obs.metrics import stable_float

__all__ = ["ConformanceProbe"]


def _percentile(values: list[float], pct: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class ConformanceProbe:
    """Instruments routed transfers with predicted-vs-actual latency."""

    def __init__(self, max_samples: int = 100_000, policy: str = "") -> None:
        self.max_samples = max_samples
        self.policy = policy
        #: id(packet) -> (t_r, d_r, bottleneck_link_id)
        self._pending: dict[int, tuple[float, float, int]] = {}
        self._residuals: list[float] = []
        self._predicted: list[float] = []
        self.count = 0
        self.retried = 0
        self.underpredicted = 0
        self.residual_sum = 0.0
        self.abs_residual_sum = 0.0
        self.predicted_sum = 0.0
        self.actual_sum = 0.0
        #: link_id -> [count, residual_sum, abs_residual_sum]
        self.links: dict[int, list[float]] = {}

    # ------------------------------------------------------------------
    def predict(self, context, src: int, route, packet_bytes: int):
        """Price ``route`` as GPU ``src`` perceives it right now.

        Mirrors :func:`repro.routing.adaptive.arm_value` but reads the
        board/links directly so instrumenting a run never perturbs the
        ``board.staleness_seconds`` histogram the decision audit uses.
        """
        cache = context.enumerator.cache
        t_r = cache.transmission_time(route, packet_bytes)
        d_r = 0.0
        bottleneck = -1
        worst = -1.0
        for spec in cache.links(route):
            if spec.src.is_gpu and spec.src.index == src:
                queue = context.links[spec.link_id].queue_delay()
            else:
                queue = context.board.published_queue_delay(spec.link_id)
            term = queue + spec.latency
            d_r += term
            if term > worst:
                worst = term
                bottleneck = spec.link_id
        return t_r, d_r, bottleneck

    def register(self, packet, prediction: tuple[float, float, int]) -> None:
        """Arm the probe for one injected packet."""
        self._pending[id(packet)] = prediction

    def record_delivery(self, packet, now: float) -> None:
        """Close the loop for a delivered packet (no-op if unregistered)."""
        entry = self._pending.pop(id(packet), None)
        if entry is None:
            return
        t_r, d_r, bottleneck = entry
        predicted = t_r + d_r
        actual = now - packet.created_at
        residual = actual - predicted
        self.count += 1
        if packet.attempts or packet.fallback:
            self.retried += 1
        if residual > 0.0:
            self.underpredicted += 1
        self.residual_sum += residual
        self.abs_residual_sum += abs(residual)
        self.predicted_sum += predicted
        self.actual_sum += actual
        stats = self.links.setdefault(bottleneck, [0, 0.0, 0.0])
        stats[0] += 1
        stats[1] += residual
        stats[2] += abs(residual)
        if len(self._residuals) < self.max_samples:
            self._residuals.append(residual)
            self._predicted.append(predicted)

    # ------------------------------------------------------------------
    @property
    def drift_ratio(self) -> float:
        """Mean |residual| relative to mean predicted latency."""
        if self.predicted_sum <= 0.0:
            return 0.0
        return self.abs_residual_sum / self.predicted_sum

    def summary(self) -> dict:
        """Bounded summary dict (also the ``conformance`` stream event body)."""
        residuals = self._residuals
        return {
            "count": self.count,
            "retried": self.retried,
            "policy": self.policy,
            "drift_ratio": stable_float(self.drift_ratio),
            "residual_mean_us": stable_float(
                (self.residual_sum / self.count) * 1e6 if self.count else 0.0
            ),
            "residual_p50_us": stable_float(_percentile(residuals, 50) * 1e6),
            "residual_p95_us": stable_float(_percentile(residuals, 95) * 1e6),
            "residual_p99_us": stable_float(_percentile(residuals, 99) * 1e6),
            "abs_residual_p95_us": stable_float(
                _percentile([abs(r) for r in residuals], 95) * 1e6
            ),
            "underprediction_share": stable_float(
                self.underpredicted / self.count if self.count else 0.0
            ),
            "worst_links": self.worst_links(),
        }

    def worst_links(self, top: int = 8) -> list[dict]:
        """Links ranked by total |residual| attributed to them."""
        ranked = sorted(
            self.links.items(), key=lambda item: (-item[1][2], item[0])
        )[:top]
        out = []
        for link_id, (count, residual_sum, abs_sum) in ranked:
            out.append(
                {
                    "link": link_id,
                    "count": int(count),
                    "residual_mean_us": stable_float((residual_sum / count) * 1e6),
                    "abs_share": stable_float(
                        abs_sum / self.abs_residual_sum
                        if self.abs_residual_sum > 0.0
                        else 0.0
                    ),
                }
            )
        return out

    def export_metrics(self, observer) -> None:
        """Land direction-tagged ``conformance.*`` gauges in the registry."""
        summary = self.summary()
        gauge = observer.metrics.gauge
        gauge("conformance.count").set(float(summary["count"]))
        gauge("conformance.drift_ratio").set(summary["drift_ratio"])
        gauge("conformance.residual_mean_us").set(summary["residual_mean_us"])
        gauge("conformance.residual_p50_us").set(summary["residual_p50_us"])
        gauge("conformance.residual_p95_us").set(summary["residual_p95_us"])
        gauge("conformance.residual_p99_us").set(summary["residual_p99_us"])
        gauge("conformance.abs_residual_p95_us").set(summary["abs_residual_p95_us"])
        gauge("conformance.underprediction_share").set(
            summary["underprediction_share"]
        )

    def render(self) -> list[str]:
        """Human section for ``repro analyze --conformance``."""
        summary = self.summary()
        lines = ["cost-model conformance (predicted T_R + D_R vs simulated)"]
        if not self.count:
            lines.append("  no routed transfers were instrumented")
            return lines
        policy = f" policy={self.policy}" if self.policy else ""
        lines.append(
            f"  transfers={summary['count']} retried={summary['retried']}"
            f"{policy} drift={summary['drift_ratio'] * 100:.1f}%"
        )
        lines.append(
            "  residual us: mean={:+.1f} p50={:+.1f} p95={:+.1f} p99={:+.1f}"
            " |p95|={:.1f}".format(
                summary["residual_mean_us"],
                summary["residual_p50_us"],
                summary["residual_p95_us"],
                summary["residual_p99_us"],
                summary["abs_residual_p95_us"],
            )
        )
        lines.append(
            f"  underprediction share={summary['underprediction_share'] * 100:.1f}%"
            " (positive residual = model too optimistic)"
        )
        lines.append("  drift by predicted bottleneck link:")
        for entry in summary["worst_links"]:
            lines.append(
                f"    link {entry['link']:>4}  n={entry['count']:<7}"
                f" mean={entry['residual_mean_us']:+9.1f}us"
                f"  share={entry['abs_share'] * 100:5.1f}%"
            )
        return lines
