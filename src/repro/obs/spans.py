"""Span-based execution tracing (the "where does time go" substrate).

A :class:`SpanTracer` records two kinds of records:

* **Spans** — named intervals with a start, an end, a *track* (the
  lane they render on: ``pipeline``, ``gpu3``, a link label, ...) and a
  parent, forming a nesting tree.  Wall-clock spans are opened with the
  :meth:`SpanTracer.span` context manager around real work; simulated
  intervals (whose timestamps live on the discrete-event clock) are
  appended with :meth:`SpanTracer.add_span`.
* **Instants** — zero-duration marker events, e.g. one adaptive-routing
  decision with its ARM terms attached.

Every record carries a ``clock`` tag (``"wall"`` or ``"sim"``) so the
exporters can keep the two time axes on separate Chrome-trace process
rows instead of interleaving incomparable timestamps.

The tracer is bounded: past ``max_records`` additions are counted in
:attr:`SpanTracer.dropped` instead of being stored, and the first drop
emits a :class:`RuntimeWarning` so truncated traces never masquerade as
complete ones.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Clock tags carried by every span/instant.
WALL = "wall"
SIM = "sim"

#: Default lane for pipeline-level wall spans.
PIPELINE_TRACK = "pipeline"


@dataclass
class Span:
    """One named interval on one track of one clock."""

    span_id: int
    name: str
    start: float
    end: float
    track: str = PIPELINE_TRACK
    clock: str = WALL
    #: Free-form grouping tag ("phase", "link", "route", ...).
    category: str = ""
    #: ``span_id`` of the enclosing span, or ``None`` at the root.
    parent_id: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Instant:
    """One zero-duration marker event."""

    name: str
    time: float
    track: str = PIPELINE_TRACK
    clock: str = WALL
    category: str = ""
    attrs: dict = field(default_factory=dict)


class SpanTracer:
    """Collects :class:`Span` and :class:`Instant` records."""

    def __init__(self, max_records: int = 2_000_000) -> None:
        if max_records < 1:
            raise ValueError("max_records must be positive")
        self.max_records = max_records
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        #: Records refused because ``max_records`` was reached.
        self.dropped = 0
        self._warned_drop = False
        self._next_id = 0
        self._stack: list[Span] = []
        #: Wall-clock zero point; wall spans are relative to this.
        self.epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    @property
    def current(self) -> Span | None:
        """The innermost open wall-clock span, if any."""
        return self._stack[-1] if self._stack else None

    def _admit(self) -> bool:
        if len(self) >= self.max_records:
            self.dropped += 1
            if not self._warned_drop:
                self._warned_drop = True
                warnings.warn(
                    f"SpanTracer reached max_records={self.max_records}; "
                    "further records are dropped (see .dropped)",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return False
        return True

    @contextmanager
    def span(self, name: str, track: str = PIPELINE_TRACK, **attrs):
        """Open a wall-clock span around a ``with`` body.

        The span nests under the innermost span already open via this
        method and is recorded even when the body raises.  Yields the
        :class:`Span` so the body may add attributes.
        """
        record = Span(
            span_id=self._next_id,
            name=name,
            start=time.perf_counter() - self.epoch,
            end=0.0,
            track=track,
            clock=WALL,
            category="phase",
            parent_id=self._stack[-1].span_id if self._stack else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = time.perf_counter() - self.epoch
            if self._admit():
                self.spans.append(record)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        track: str = PIPELINE_TRACK,
        clock: str = SIM,
        category: str = "",
        parent_id: int | None = None,
        **attrs,
    ) -> Span | None:
        """Append a pre-timed span (simulated or reconstructed).

        Returns the stored :class:`Span`, or ``None`` if it was dropped
        by the record cap.
        """
        if end < start:
            raise ValueError(f"span {name!r} ends ({end}) before it starts ({start})")
        if not self._admit():
            return None
        record = Span(
            span_id=self._next_id,
            name=name,
            start=start,
            end=end,
            track=track,
            clock=clock,
            category=category,
            parent_id=parent_id,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(record)
        return record

    def instant(
        self,
        name: str,
        time_s: float,
        *,
        track: str = PIPELINE_TRACK,
        clock: str = SIM,
        category: str = "",
        **attrs,
    ) -> Instant | None:
        """Append a marker event; returns ``None`` if dropped."""
        if not self._admit():
            return None
        record = Instant(
            name=name,
            time=time_s,
            track=track,
            clock=clock,
            category=category,
            attrs=dict(attrs),
        )
        self.instants.append(record)
        return record

    # -- queries -----------------------------------------------------------

    def find(
        self,
        name: str | None = None,
        *,
        clock: str | None = None,
        category: str | None = None,
        track: str | None = None,
    ) -> list[Span]:
        """Spans matching every given filter, in record order."""
        return [
            span
            for span in self.spans
            if (name is None or span.name == name)
            and (clock is None or span.clock == clock)
            and (category is None or span.category == category)
            and (track is None or span.track == track)
        ]

    def find_instants(
        self, name: str | None = None, *, category: str | None = None
    ) -> list[Instant]:
        return [
            inst
            for inst in self.instants
            if (name is None or inst.name == name)
            and (category is None or inst.category == category)
        ]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def parent_of(self, span: Span) -> Span | None:
        if span.parent_id is None:
            return None
        for candidate in self.spans:
            if candidate.span_id == span.parent_id:
                return candidate
        return None

    def span_names(self) -> set[str]:
        return {span.name for span in self.spans}

    def total_duration(self, name: str) -> float:
        return sum(span.duration for span in self.find(name))

    def self_times(self, clock: str | None = None) -> dict[str, float]:
        """Exclusive (self) seconds per span name.

        A span's self time is its duration minus the duration of its
        direct children — the time spent *in* that phase rather than in
        a nested one, which is what inclusive durations hide (a ``join``
        span always dominates an inclusive ranking even when all its
        time sits in children).  Aggregated by name; clamped at zero so
        clock jitter between a parent and its children never reports
        negative time.  ``clock`` restricts to one time axis.
        """
        child_time: dict[int, float] = {}
        for span in self.spans:
            if span.parent_id is not None:
                child_time[span.parent_id] = (
                    child_time.get(span.parent_id, 0.0) + span.duration
                )
        out: dict[str, float] = {}
        for span in self.spans:
            if clock is not None and span.clock != clock:
                continue
            exclusive = max(0.0, span.duration - child_time.get(span.span_id, 0.0))
            out[span.name] = out.get(span.name, 0.0) + exclusive
        return out
