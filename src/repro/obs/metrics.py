"""A small labelled-metrics registry (counters, gauges, histograms).

The registry mirrors the shape of Prometheus-style client libraries at
a fraction of the surface: a metric family is a name, an instrument is
``family + frozen label set``, and lookups are get-or-create::

    registry.counter("link.bytes", link="gpu0->gpu1[nvlink]").inc(2 * MB)
    registry.gauge("board.pending").set(3)
    registry.histogram("board.staleness_seconds").observe(4.2e-6)

Hot paths should hold on to the returned instrument instead of
re-looking it up per event — instruments are plain objects with an
``inc``/``set``/``observe`` method and no locking (the simulator is
single-threaded).

``snapshot()`` renders everything into plain dicts, ready for JSON
persistence next to benchmark results.  Snapshots are *diff-stable*:
instruments are emitted in sorted order, label dicts are key-sorted,
and floats are rounded to 12 significant digits so two runs of the
same deterministic simulation serialize byte-identically and textual
diffs between ledger records stay readable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Histograms keep at most this many raw samples for percentiles; the
#: running count/sum/min/max stay exact beyond it.
HISTOGRAM_SAMPLE_CAP = 4096


def stable_float(value: float) -> float:
    """Round to 12 significant digits for diff-stable serialization.

    Accumulation order can perturb the last couple of bits of a float
    sum (e.g. when a parallel run merges in a different order); 12
    significant digits is far below any metric's meaningful precision
    but above that noise floor, so snapshots of equivalent runs
    serialize identically.
    """
    if value != value or value in (float("inf"), float("-inf")):
        return value
    return float(f"{value:.12g}")


def _stable_labels(labels: dict) -> dict:
    """The label dict re-emitted with sorted keys."""
    return {key: labels[key] for key in sorted(labels)}


@dataclass
class Counter:
    """Monotonically increasing value."""

    name: str
    labels: dict
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins value."""

    name: str
    labels: dict
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass
class Histogram:
    """Streaming distribution summary with a bounded raw-sample tail."""

    name: str
    labels: dict
    count: int = 0
    total: float = 0.0
    vmin: float = float("inf")
    vmax: float = float("-inf")
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile over the retained samples."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]


class MetricsRegistry:
    """Get-or-create home for every instrument of one run."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}
        self._kinds: dict[tuple, str] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, kind: str, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._KINDS[kind](name=name, labels=dict(labels))
            self._instruments[key] = instrument
            self._kinds[key] = kind
        elif self._kinds[key] != kind:
            raise ValueError(
                f"metric {name!r}{labels} already registered as "
                f"{self._kinds[key]}, not {kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    # -- views -------------------------------------------------------------

    def instruments(self) -> list:
        return list(self._instruments.values())

    def families(self) -> set[str]:
        return {name for name, _ in self._instruments}

    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge (0.0 when never touched)."""
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            return 0.0
        return instrument.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum of a counter family's values across all label sets."""
        return sum(
            instrument.value
            for (family, _), instrument in self._instruments.items()
            if family == name and isinstance(instrument, Counter)
        )

    def snapshot(self) -> dict:
        """Everything as plain JSON-ready dicts, grouped by kind.

        The output is diff-stable: instruments appear in sorted
        ``(name, labels)`` order, label keys are sorted, and floats are
        normalized via :func:`stable_float`.
        """
        out: dict[str, list[dict]] = {"counters": [], "gauges": [], "histograms": []}
        for key, instrument in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            kind = self._kinds[key]
            if kind == "histogram":
                hist: Histogram = instrument  # type: ignore[assignment]
                out["histograms"].append(
                    {
                        "name": hist.name,
                        "labels": _stable_labels(hist.labels),
                        "count": hist.count,
                        "total": stable_float(hist.total),
                        "min": stable_float(hist.vmin if hist.count else 0.0),
                        "max": stable_float(hist.vmax if hist.count else 0.0),
                        "mean": stable_float(hist.mean),
                        "p50": stable_float(hist.percentile(50)),
                        "p95": stable_float(hist.percentile(95)),
                        "p99": stable_float(hist.percentile(99)),
                    }
                )
            else:
                out[kind + "s"].append(
                    {
                        "name": instrument.name,  # type: ignore[union-attr]
                        "labels": _stable_labels(
                            instrument.labels  # type: ignore[union-attr]
                        ),
                        "value": stable_float(
                            instrument.value  # type: ignore[union-attr]
                        ),
                    }
                )
        return out

    def to_json(self, indent: int | None = 1) -> str:
        """The snapshot as canonical JSON (sorted keys, stable floats).

        Two registries holding equal values serialize to the exact same
        text, so ledger records containing metric snapshots diff
        cleanly across runs.
        """
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
