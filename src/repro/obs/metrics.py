"""A small labelled-metrics registry (counters, gauges, histograms).

The registry mirrors the shape of Prometheus-style client libraries at
a fraction of the surface: a metric family is a name, an instrument is
``family + frozen label set``, and lookups are get-or-create::

    registry.counter("link.bytes", link="gpu0->gpu1[nvlink]").inc(2 * MB)
    registry.gauge("board.pending").set(3)
    registry.histogram("board.staleness_seconds").observe(4.2e-6)

Hot paths should hold on to the returned instrument instead of
re-looking it up per event — instruments are plain objects with an
``inc``/``set``/``observe`` method and no locking (the simulator is
single-threaded).

``snapshot()`` renders everything into plain dicts, ready for JSON
persistence next to benchmark results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Histograms keep at most this many raw samples for percentiles; the
#: running count/sum/min/max stay exact beyond it.
HISTOGRAM_SAMPLE_CAP = 4096


@dataclass
class Counter:
    """Monotonically increasing value."""

    name: str
    labels: dict
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins value."""

    name: str
    labels: dict
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass
class Histogram:
    """Streaming distribution summary with a bounded raw-sample tail."""

    name: str
    labels: dict
    count: int = 0
    total: float = 0.0
    vmin: float = float("inf")
    vmax: float = float("-inf")
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile over the retained samples."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]


class MetricsRegistry:
    """Get-or-create home for every instrument of one run."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}
        self._kinds: dict[tuple, str] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, kind: str, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._KINDS[kind](name=name, labels=dict(labels))
            self._instruments[key] = instrument
            self._kinds[key] = kind
        elif self._kinds[key] != kind:
            raise ValueError(
                f"metric {name!r}{labels} already registered as "
                f"{self._kinds[key]}, not {kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    # -- views -------------------------------------------------------------

    def instruments(self) -> list:
        return list(self._instruments.values())

    def families(self) -> set[str]:
        return {name for name, _ in self._instruments}

    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge (0.0 when never touched)."""
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            return 0.0
        return instrument.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum of a counter family's values across all label sets."""
        return sum(
            instrument.value
            for (family, _), instrument in self._instruments.items()
            if family == name and isinstance(instrument, Counter)
        )

    def snapshot(self) -> dict:
        """Everything as plain JSON-ready dicts, grouped by kind."""
        out: dict[str, list[dict]] = {"counters": [], "gauges": [], "histograms": []}
        for key, instrument in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            kind = self._kinds[key]
            if kind == "histogram":
                hist: Histogram = instrument  # type: ignore[assignment]
                out["histograms"].append(
                    {
                        "name": hist.name,
                        "labels": hist.labels,
                        "count": hist.count,
                        "total": hist.total,
                        "min": hist.vmin if hist.count else 0.0,
                        "max": hist.vmax if hist.count else 0.0,
                        "mean": hist.mean,
                        "p50": hist.percentile(50),
                        "p95": hist.percentile(95),
                        "p99": hist.percentile(99),
                    }
                )
            else:
                out[kind + "s"].append(
                    {
                        "name": instrument.name,  # type: ignore[union-attr]
                        "labels": instrument.labels,  # type: ignore[union-attr]
                        "value": instrument.value,  # type: ignore[union-attr]
                    }
                )
        return out
