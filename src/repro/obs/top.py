"""``repro top`` — live terminal view over a telemetry stream file.

Tails an NDJSON stream (see :mod:`repro.obs.stream`), folds events into
a small model, and renders a text dashboard: phase progress, a per-link
utilization heatmap, the alert feed, and run counters.  Pure text — no
curses dependency — so it works in CI logs and dumb terminals alike.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

__all__ = ["TopModel", "render", "follow"]

_PHASES = (
    "histogram",
    "assignment",
    "global_partition",
    "shuffle",
    "local_partition",
    "probe",
)

_BLOCKS = " ▁▂▃▄▅▆▇█"


class TopModel:
    """Folds stream events into the state ``render`` draws."""

    def __init__(self, max_alerts: int = 12) -> None:
        self.run: dict = {}
        self.finished: dict | None = None
        self.phases: dict[str, str] = {}
        self.current_phase: str | None = None
        self.links: dict[int, dict] = {}
        self.link_history: dict[int, deque] = {}
        self.alerts: deque = deque(maxlen=max_alerts)
        self.sim_time = 0.0
        self.counters = {"retries": 0, "fallbacks": 0, "recovered": 0, "faults": 0}
        self.sweep: dict = {}
        self.conformance: dict | None = None
        #: Serving-layer lanes: query name -> {phase, queue_wait, retries, ...}.
        self.queries: dict[str, dict] = {}
        self.events = 0
        self.invalid = 0

    def ingest_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            self.invalid += 1
            return
        if isinstance(event, dict):
            self.ingest(event)

    def ingest(self, event: dict) -> None:
        self.events += 1
        etype = event.get("type")
        if event.get("clock") == "sim":
            t = event.get("t")
            if isinstance(t, (int, float)):
                self.sim_time = max(self.sim_time, float(t))
        if etype == "run.started":
            self.run = event
        elif etype == "run.finished":
            self.finished = event
        elif etype == "phase":
            name, state = event.get("name"), event.get("state")
            if isinstance(name, str):
                self.phases[name] = state
                if state == "begin":
                    self.current_phase = name
                elif self.current_phase == name:
                    self.current_phase = None
        elif etype == "links":
            for sample in event.get("samples", ()):
                link = sample.get("link")
                if link is None:
                    continue
                self.links[link] = sample
                self.link_history.setdefault(link, deque(maxlen=24)).append(
                    sample.get("util", 0.0)
                )
        elif etype == "alert":
            self.alerts.append(event)
        elif etype == "fault":
            self.counters["faults"] += 1
        elif etype == "packet.retry":
            self.counters["retries"] += 1
        elif etype == "packet.fallback":
            self.counters["fallbacks"] += 1
        elif etype == "packet.recovered":
            self.counters["recovered"] += 1
        elif etype and etype.startswith("sweep."):
            self.sweep[etype] = event
        elif etype == "conformance":
            self.conformance = event
        elif etype == "query":
            name = event.get("query")
            if isinstance(name, str):
                lane = self.queries.setdefault(
                    name, {"phase": "submitted", "queue_wait": 0.0, "retries": 0}
                )
                action = event.get("action")
                if action == "retry":
                    lane["retries"] += 1
                elif isinstance(action, str):
                    lane["phase"] = action
                    if action == "admitted":
                        lane["queue_wait"] = event.get("queue_wait", 0.0)
                    elif action == "completed":
                        lane["latency"] = event.get("latency")


def _phase_bar(model: TopModel) -> str:
    cells = []
    for phase in _PHASES:
        state = model.phases.get(phase)
        if state == "end":
            cells.append("█")
        elif state == "begin":
            cells.append("▶")
        else:
            cells.append("·")
    done = sum(1 for p in _PHASES if model.phases.get(p) == "end")
    label = model.current_phase or ("done" if model.finished else "idle")
    return f"[{''.join(cells)}] {done}/{len(_PHASES)} {label}"


def _sparkline(history: "deque | None") -> str:
    if not history:
        return ""
    return "".join(
        _BLOCKS[min(int(value * (len(_BLOCKS) - 1) + 0.5), len(_BLOCKS) - 1)]
        for value in history
    )


def render(model: TopModel, width: int = 72) -> str:
    """Render the dashboard as one multi-line string."""
    lines = []
    title = "repro top"
    if model.run:
        title += (
            f" — {model.run.get('gpus', '?')} GPUs,"
            f" {model.run.get('links', '?')} links"
        )
    lines.append(title)
    lines.append("=" * min(width, max(len(title), 24)))
    lines.append(f"sim clock {model.sim_time * 1e3:9.3f} ms   phases {_phase_bar(model)}")
    if model.finished:
        lines.append(f"run finished: elapsed {model.finished.get('elapsed', 0) * 1e3:.3f} ms")
    lines.append("")
    lines.append("links (util over last sample, history sparkline)")
    ranked = sorted(
        model.links.items(), key=lambda item: -item[1].get("util", 0.0)
    )[:10]
    if not ranked:
        lines.append("  (no link samples yet)")
    for link_id, sample in ranked:
        util = sample.get("util", 0.0)
        bar_len = int(util * 20 + 0.5)
        state = "" if sample.get("up", True) else " DOWN"
        lines.append(
            f"  link {link_id:>4} |{'#' * bar_len:<20}| {util * 100:5.1f}%"
            f" q={sample.get('queue', 0.0) * 1e6:8.2f}us"
            f" {_sparkline(model.link_history.get(link_id))}{state}"
        )
    if model.queries:
        lines.append("")
        lines.append("queries (serving lanes)")
        for name in sorted(model.queries)[:12]:
            lane = model.queries[name]
            latency = lane.get("latency")
            tail = (
                f" lat={latency * 1e6:9.2f}us"
                if isinstance(latency, (int, float))
                else ""
            )
            lines.append(
                f"  {name:<12} {lane['phase']:<22}"
                f" wait={lane['queue_wait'] * 1e6:9.2f}us"
                f" retries={lane['retries']}{tail}"
            )
        if len(model.queries) > 12:
            lines.append(f"  ... and {len(model.queries) - 12} more")
    lines.append("")
    counts = model.counters
    lines.append(
        f"faults={counts['faults']} retries={counts['retries']}"
        f" fallbacks={counts['fallbacks']} recovered={counts['recovered']}"
        f" events={model.events}"
        + (f" invalid={model.invalid}" if model.invalid else "")
    )
    if model.conformance:
        lines.append(
            "conformance: drift {:.1f}% over {} transfers (p95 residual {:+.1f}us)".format(
                model.conformance.get("drift_ratio", 0.0) * 100,
                model.conformance.get("count", 0),
                model.conformance.get("residual_p95_us", 0.0),
            )
        )
    if model.sweep:
        finished = model.sweep.get("sweep.finished")
        point = model.sweep.get("sweep.point")
        if finished:
            lines.append(
                f"sweep: finished={finished.get('finished')}"
                f" failed={finished.get('failed', 0)}"
            )
        elif point:
            lines.append(
                f"sweep: {point.get('completed', '?')}/{point.get('points', '?')}"
                f" last={point.get('run_id')}"
            )
    lines.append("")
    lines.append("alerts")
    if not model.alerts:
        lines.append("  (none)")
    for alert in list(model.alerts)[-8:]:
        lines.append(
            f"  [{alert.get('severity', '?'):>8}] {alert.get('rule')}:"
            f" {alert.get('message', '')}"
        )
    return "\n".join(lines)


def follow(
    path: "str | Path",
    *,
    interval: float = 0.5,
    iterations: "int | None" = None,
    out=None,
) -> TopModel:
    """Tail ``path``, re-rendering after each poll.

    ``iterations`` bounds the number of polls (``None`` = until the
    stream's ``run.finished``/``sweep.finished`` event arrives).  Used
    with ``iterations=1`` for the one-shot ``repro top`` mode.
    """
    import sys

    out = out or sys.stdout
    model = TopModel()
    target = Path(path)
    offset = 0
    polls = 0
    while True:
        if target.exists():
            with target.open("r", encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
            for line in chunk.splitlines():
                model.ingest_line(line)
        polls += 1
        if iterations is not None and polls >= iterations:
            break
        out.write("\x1b[2J\x1b[H" + render(model) + "\n")
        out.flush()
        if model.finished or "sweep.finished" in model.sweep:
            break
        time.sleep(interval)
    out.write(render(model) + "\n")
    out.flush()
    return model
