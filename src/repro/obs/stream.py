"""Live telemetry stream: bounded NDJSON event bus on the engine clock.

The stream is the real-time counterpart to the post-hoc span/metric
exporters.  Producers (engine pumps, link channels, the fault injector,
the recovery layer, the sweep harness) emit small schema-versioned dict
events; the stream serialises them as NDJSON to a sink and fans them out
to in-process subscribers (e.g. the alert engine, ``repro top``).

Design constraints:

* **Bounded overhead.**  Every hook is guarded by ``observer.stream is
  not None`` so a run without streaming pays nothing.  With streaming
  on, per-link samples are taken on a fixed sim-clock interval by a
  pump built on :meth:`Engine.every` (which self-terminates once only
  housekeeping ticks remain), link samples are truncated to the
  busiest ``top`` links, and the stream stops recording after
  ``max_events`` (counting drops instead of growing without bound).
* **Determinism.**  Pump callbacks are read-only with respect to
  simulator state; with streaming disabled nothing is scheduled, so
  digests stay byte-identical.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path
from typing import Callable, Iterable

__all__ = [
    "STREAM_SCHEMA_VERSION",
    "EVENT_TYPES",
    "TelemetryStream",
    "LinkPump",
    "open_stream",
    "validate_event",
    "read_events",
]

STREAM_SCHEMA_VERSION = 1

#: Known event types and the extra fields each one requires.
EVENT_TYPES: dict[str, tuple[str, ...]] = {
    "run.started": (),
    "run.finished": ("elapsed",),
    "phase": ("name", "state"),
    "links": ("samples", "max_util", "max_queue"),
    "kernel": ("stats",),
    "fault": ("action", "kind"),
    "link.down": ("link",),
    "link.up": ("link",),
    "packet.retry": ("reason",),
    "packet.fallback": ("reason",),
    "packet.recovered": (),
    "integrity": ("kind",),
    "sweep.started": ("points",),
    "sweep.point": ("run_id",),
    "sweep.failed": ("error",),
    "sweep.finished": ("finished",),
    "alert": ("rule", "severity"),
    "conformance": ("count",),
    #: Serving-layer query lifecycle (submitted/queued/admitted/
    #: rejected/delivered/completed/deadline-expired/...).
    "query": ("action", "query"),
}

_CLOCKS = ("sim", "wall")


class TelemetryStream:
    """Schema-versioned NDJSON event bus with bounded memory/IO.

    ``sink`` may be a path (``"-"`` for stdout), an open text file, or
    ``None`` for subscriber-only operation (used by tests and by the
    alert engine when no file is wanted).
    """

    def __init__(
        self,
        sink: "str | Path | io.TextIOBase | None" = None,
        *,
        max_events: int = 1_000_000,
        sample_interval: float = 1e-3,
        top_links: int = 8,
    ) -> None:
        self.max_events = max_events
        self.sample_interval = sample_interval
        self.top_links = top_links
        self.events_emitted = 0
        self.events_dropped = 0
        self._subscribers: list[Callable[[dict], None]] = []
        self._owns_sink = False
        if sink is None:
            self._sink = None
        elif hasattr(sink, "write"):
            self._sink = sink
        elif str(sink) == "-":
            import sys

            self._sink = sys.stdout
        else:
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = path.open("w", encoding="utf-8")
            self._owns_sink = True

    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[dict], None]) -> None:
        """Register ``callback`` to receive every event dict as emitted."""
        self._subscribers.append(callback)

    def emit(self, type: str, *, t: float, clock: str = "sim", **fields) -> None:
        """Emit one event.  Drops (and counts) once ``max_events`` is hit."""
        if self.events_emitted >= self.max_events:
            self.events_dropped += 1
            return
        event = {"v": STREAM_SCHEMA_VERSION, "type": type, "t": t, "clock": clock}
        event.update(fields)
        self.events_emitted += 1
        if self._sink is not None:
            try:
                self._sink.write(json.dumps(event, separators=(",", ":")) + "\n")
            except ValueError:
                # Sink closed under us (e.g. stdout gone); keep subscribers alive.
                self._sink = None
        for callback in self._subscribers:
            callback(event)

    def flush(self) -> None:
        if self._sink is not None:
            try:
                self._sink.flush()
            except ValueError:
                self._sink = None

    def close(self) -> None:
        self.flush()
        if self._owns_sink and self._sink is not None:
            self._sink.close()
        self._sink = None

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        return {
            "events_emitted": self.events_emitted,
            "events_dropped": self.events_dropped,
        }

    def wall(self) -> float:
        """Wall-clock timestamp helper for non-simulated producers."""
        return time.time()


class LinkPump:
    """Periodic per-link utilization/queue sampler bound to an engine.

    Built on :meth:`Engine.every`, so the pump stops rescheduling once
    only housekeeping ticks remain on the engine — it never keeps a
    finished simulation alive, even when multiple periodic probes
    coexist.
    """

    def __init__(self, stream: TelemetryStream, engine, links: dict) -> None:
        self.stream = stream
        self.engine = engine
        self.links = links
        self.interval = stream.sample_interval
        self._busy_prev = {link_id: 0.0 for link_id in links}
        engine.every(self.interval, self.sample)

    def sample(self) -> None:
        now = self.engine.now
        samples = []
        for link_id, link in self.links.items():
            busy = link.busy_time
            util = (busy - self._busy_prev[link_id]) / self.interval
            self._busy_prev[link_id] = busy
            util = min(max(util, 0.0), 1.0)
            queue = link.queue_delay()
            if util > 0.0 or queue > 0.0:
                samples.append(
                    {
                        "link": link_id,
                        "util": round(util, 6),
                        "queue": round(queue, 9),
                        "up": link.up,
                    }
                )
        samples.sort(key=lambda s: (-s["util"], -s["queue"], s["link"]))
        del samples[self.stream.top_links :]
        max_util = max((s["util"] for s in samples), default=0.0)
        max_queue = max((s["queue"] for s in samples), default=0.0)
        self.stream.emit(
            "links",
            t=now,
            clock="sim",
            samples=samples,
            max_util=max_util,
            max_queue=max_queue,
        )


def open_stream(path: "str | Path", **kwargs) -> TelemetryStream:
    """Open an NDJSON telemetry stream at ``path`` (``"-"`` = stdout)."""
    return TelemetryStream(path, **kwargs)


def validate_event(event: object) -> list[str]:
    """Validate one decoded stream event; returns a list of problems."""
    problems: list[str] = []
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, expected object"]
    if event.get("v") != STREAM_SCHEMA_VERSION:
        problems.append(f"schema version {event.get('v')!r} != {STREAM_SCHEMA_VERSION}")
    etype = event.get("type")
    if not isinstance(etype, str):
        problems.append(f"missing/invalid type: {etype!r}")
        return problems
    if etype not in EVENT_TYPES:
        problems.append(f"unknown event type {etype!r}")
        return problems
    t = event.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool):
        problems.append(f"{etype}: t is {t!r}, expected number")
    if event.get("clock") not in _CLOCKS:
        problems.append(f"{etype}: clock {event.get('clock')!r} not in {_CLOCKS}")
    for field in EVENT_TYPES[etype]:
        if field not in event:
            problems.append(f"{etype}: missing field {field!r}")
    if etype == "links":
        samples = event.get("samples")
        if not isinstance(samples, list):
            problems.append("links: samples is not a list")
        else:
            for sample in samples:
                if not isinstance(sample, dict) or "link" not in sample:
                    problems.append(f"links: malformed sample {sample!r}")
                    break
    if etype == "phase" and event.get("state") not in ("begin", "end"):
        problems.append(f"phase: state {event.get('state')!r} not begin/end")
    return problems


def read_events(path: "str | Path") -> Iterable[dict]:
    """Yield decoded events from an NDJSON stream file, skipping torn lines."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue
