"""MG-Join reproduction: scalable joins for multi-GPU machines.

A full implementation of *MG-Join: A Scalable Join for Massively
Parallel Multi-GPU Architectures* (SIGMOD 2021) on a simulated
multi-GPU machine:

* :mod:`repro.topology` — the DGX-1 / DGX-Station interconnects,
* :mod:`repro.sim` — discrete-event link/GPU simulation + kernel costs,
* :mod:`repro.routing` — adaptive multi-hop (ARM), static and
  centralized routing policies,
* :mod:`repro.core` — the MG-Join pipeline (exact numpy execution),
* :mod:`repro.baselines` — DPRJ, UMJ and single-GPU joins,
* :mod:`repro.workloads` — the paper's synthetic workloads,
* :mod:`repro.relational` — columnar engine + TPC-H (Figure 14),
* :mod:`repro.bench` — regenerates every figure of the evaluation,
* :mod:`repro.obs` — observability: spans, metrics, Chrome-trace export.

Quickstart::

    from repro import MGJoin, WorkloadSpec, dgx1_topology, generate_workload

    machine = dgx1_topology()
    workload = generate_workload(WorkloadSpec(gpu_ids=(0, 1, 2, 3)))
    result = MGJoin(machine).run(workload)
    print(f"{result.throughput / 1e9:.1f}B tuples/s,"
          f" {result.matches_logical} matches")
"""

from repro.baselines import DPRJJoin, SingleGpuJoin, UMJJoin
from repro.core import JoinResult, MGJoin, MGJoinConfig
from repro.obs import Observer
from repro.routing import (
    AdaptiveArmPolicy,
    BandwidthPolicy,
    CentralizedPolicy,
    DirectPolicy,
    HopCountPolicy,
    LatencyPolicy,
)
from repro.sim import FlowMatrix, ShuffleConfig, ShuffleSimulator
from repro.topology import (
    MachineTopology,
    TopologyBuilder,
    dgx1_topology,
    dgx_station_topology,
)
from repro.workloads import WorkloadSpec, generate_workload

__version__ = "1.9.0"

__all__ = [
    "AdaptiveArmPolicy",
    "BandwidthPolicy",
    "CentralizedPolicy",
    "DPRJJoin",
    "DirectPolicy",
    "FlowMatrix",
    "HopCountPolicy",
    "JoinResult",
    "LatencyPolicy",
    "MGJoin",
    "MGJoinConfig",
    "MachineTopology",
    "Observer",
    "ShuffleConfig",
    "ShuffleSimulator",
    "SingleGpuJoin",
    "TopologyBuilder",
    "UMJJoin",
    "WorkloadSpec",
    "dgx1_topology",
    "dgx_station_topology",
    "generate_workload",
]
