"""The query scheduler: admission control, deadlines, fault isolation.

:class:`QueryScheduler` multiplexes a stream of
:class:`~repro.serve.requests.QueryRequest` onto one
:class:`~repro.serve.fabric.ServeFabric`.  Its contract:

* **Bounded concurrency** — at most ``max_in_flight`` queries run at
  once; at most ``queue_depth`` more wait in an arrival-ordered queue.
  Anything beyond that is answered *immediately* with a structured
  :class:`~repro.serve.requests.QueryRejected` (reason ``queue-full``,
  or ``no-capacity`` when the scheduler serves nothing at all) — an
  overloaded scheduler sheds load, it never hangs a tenant.
* **Deterministic ordering** — arrivals are scheduled in sorted
  (arrival, name) order before the engine starts, so same-instant
  admissions drain in the same sequence on the reference, fast and
  batch kernels alike.
* **Deadlines** — a query that has not completed by
  ``arrival + deadline`` is cancelled cleanly (queued work dropped,
  link/buffer commitments returned, fault scope detached) and reported
  as ``deadline-expired``.  A query still queued past its deadline
  never starts.
* **Fault isolation** — faults are injected once, on the shared
  fabric; each session carries its own recovery stack, so a GPU crash
  recovers *only* the queries running on that GPU while siblings
  complete untouched, and a query that exhausts its per-query retry
  budget fails alone (``retry-budget-exhausted``).
* **Post-crash admission** — a request whose GPUs include an
  already-crashed GPU is shed with ``gpu-unavailable`` instead of
  being started against dead hardware.

Everything lands in a :class:`ServeReport`: one terminal
:class:`~repro.serve.requests.QueryOutcome` per request, per-tenant SLA
metrics through the observer, and an exit code (0 = served, 1 = at
least one admitted query was lost).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, TYPE_CHECKING

from repro.core.config import MGJoinConfig
from repro.serve.fabric import QuerySession, ServeFabric
from repro.serve.requests import QueryOutcome, QueryRejected, QueryRequest
from repro.workloads.generator import WorkloadSpec, generate_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.relation import JoinWorkload
    from repro.faults.plan import FaultPlan
    from repro.obs import Observer
    from repro.sim.recovery import RecoveryConfig, RetryPolicy
    from repro.topology.machine import MachineTopology

__all__ = ["QueryScheduler", "ServeReport", "resolve_gpu_ids", "workload_for"]


def resolve_gpu_ids(machine: "MachineTopology", request: QueryRequest) -> tuple[int, ...]:
    """Placement: explicit ids validated, else the lowest machine ids.

    Queries deliberately overlap on the low GPUs — contending for the
    same fabric is what the serving layer exists to arbitrate.
    """
    if request.gpu_ids is not None:
        unknown = set(request.gpu_ids) - set(machine.gpu_ids)
        if unknown:
            raise ValueError(
                f"query {request.name!r} references unknown GPUs: "
                f"{sorted(unknown)}"
            )
        return request.gpu_ids
    if request.gpus > len(machine.gpu_ids):
        raise ValueError(
            f"query {request.name!r} wants {request.gpus} GPUs but the "
            f"machine has {len(machine.gpu_ids)}"
        )
    return tuple(sorted(machine.gpu_ids)[: request.gpus])


def workload_for(
    machine: "MachineTopology", request: QueryRequest
) -> "JoinWorkload":
    """The deterministic workload a request stands for.

    Pure function of (machine, request): the serve-chaos harness calls
    this for its solo reference runs, so solo and served executions of
    the same request join byte-identical inputs.
    """
    gpu_ids = resolve_gpu_ids(machine, request)
    logical = (
        request.logical_tuples
        if request.logical_tuples is not None
        else request.tuples
    )
    return generate_workload(
        WorkloadSpec(
            gpu_ids=gpu_ids,
            logical_tuples_per_gpu=logical,
            real_tuples_per_gpu=request.tuples,
            seed=request.seed,
        )
    )


@dataclass
class ServeReport:
    """What one scheduler run did, per query and in aggregate."""

    outcomes: tuple[QueryOutcome, ...]
    elapsed: float
    max_in_flight: int
    queue_depth: int
    in_flight_peak: int = 0
    queue_peak: int = 0
    arbitration: str | None = None
    policy_name: str = ""

    def _count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == status)

    @property
    def completed(self) -> int:
        return self._count("completed")

    @property
    def rejected(self) -> int:
        return self._count("rejected")

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def exit_code(self) -> int:
        """0 = every admitted query completed (rejections are graceful
        shed-load); 1 = an admitted query was lost to a deadline or an
        exhausted retry budget."""
        return 0 if self.failed == 0 else 1

    def outcome(self, name: str) -> QueryOutcome:
        for candidate in self.outcomes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no outcome for query {name!r}")

    def to_dict(self) -> dict:
        return {
            "elapsed": self.elapsed,
            "max_in_flight": self.max_in_flight,
            "queue_depth": self.queue_depth,
            "in_flight_peak": self.in_flight_peak,
            "queue_peak": self.queue_peak,
            "arbitration": self.arbitration,
            "policy": self.policy_name,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "exit_code": self.exit_code,
            "queries": [outcome.to_dict() for outcome in self.outcomes],
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"queries              : {len(self.outcomes)}",
            f"completed            : {self.completed}",
            f"rejected (shed)      : {self.rejected}",
            f"failed               : {self.failed}",
            f"in-flight peak       : {self.in_flight_peak}/{self.max_in_flight}",
            f"queue peak           : {self.queue_peak}/{self.queue_depth}",
            f"serve makespan       : {self.elapsed * 1e3:.3f} ms (sim)",
        ]
        waits = [o.queue_wait for o in self.outcomes if o.admitted_at is not None]
        if waits:
            lines.append(
                f"queue wait max       : {max(waits) * 1e3:.3f} ms (sim)"
            )
        return lines


@dataclass
class _Entry:
    """Scheduler-side lifecycle record of one request."""

    request: QueryRequest
    gpu_ids: tuple[int, ...]
    session: QuerySession | None = None
    outcome: QueryOutcome | None = None
    admitted_at: float | None = None


class QueryScheduler:
    """Admits, supervises and settles a batch of join requests."""

    def __init__(
        self,
        machine: "MachineTopology",
        requests: "tuple[QueryRequest, ...] | list[QueryRequest]",
        *,
        policy_factory: "Callable[[], object]",
        config: MGJoinConfig | None = None,
        max_in_flight: int = 4,
        queue_depth: int = 8,
        arbitration: str | None = "fair",
        faults: "FaultPlan | None" = None,
        retry: "RetryPolicy | None" = None,
        recovery: "RecoveryConfig | None" = None,
        retry_budget: int | None = None,
        engine_factory=None,
        observer: "Observer | None" = None,
    ) -> None:
        if max_in_flight < 0:
            raise ValueError("max_in_flight must be >= 0")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.machine = machine
        self.requests = tuple(
            sorted(requests, key=lambda r: (r.arrival, r.name))
        )
        if not self.requests:
            raise ValueError("need at least one query request")
        names = [r.name for r in self.requests]
        if len(set(names)) != len(names):
            raise ValueError("query names must be unique")
        self.policy_factory = policy_factory
        base = config or MGJoinConfig()
        #: Digests are the serving layer's integrity story: every query
        #: materializes its matches so byte-identity stays checkable.
        self.config = replace(base, materialize=True)
        self.max_in_flight = max_in_flight
        self.queue_depth = queue_depth
        self.arbitration = arbitration
        self.faults = faults
        self.retry = retry
        self.recovery = recovery
        self.retry_budget = retry_budget
        self.engine_factory = engine_factory
        self.observer = observer
        self._entries: dict[str, _Entry] = {}
        self._queue: deque[_Entry] = deque()
        self._in_flight = 0
        self._next_tag = 0
        self._in_flight_peak = 0
        self._queue_peak = 0

    # ------------------------------------------------------------------

    def run(self) -> ServeReport:
        """Serve every request to a terminal outcome and report."""
        for request in self.requests:
            gpu_ids = resolve_gpu_ids(self.machine, request)
            self._entries[request.name] = _Entry(request, gpu_ids)
        if self.faults is not None:
            # Serve-context plan validation: every fault must land on
            # hardware some admitted query can reach.
            self.faults.validate(
                self.machine,
                queries={
                    name: entry.gpu_ids
                    for name, entry in self._entries.items()
                },
            )
        fabric = ServeFabric(
            self.machine,
            engine_factory=self.engine_factory,
            shuffle_config=self.config.shuffle,
            arbitration=self.arbitration,
            observer=self.observer,
        )
        self.fabric = fabric
        if self.faults is not None:
            universe: set[int] = set()
            for entry in self._entries.values():
                universe.update(entry.gpu_ids)
            fabric.bind_faults(self.faults, universe)
        # Sorted pre-scheduling: same-instant arrivals keep list order
        # (the engines' same-time FIFO guarantee), and a fault landing
        # exactly at an admission instant is injected first — its
        # events were scheduled before any arrival.
        for request in self.requests:
            fabric.engine.schedule(request.arrival, self._arrive, request)
        fabric.engine.run()
        for request in self.requests:
            entry = self._entries[request.name]
            if entry.outcome is not None:
                continue
            if entry.session is None or entry.session.state != "delivered":
                raise RuntimeError(
                    f"scheduler drained with query {request.name!r} "
                    f"unsettled; this is a bug"
                )
            self._settle(entry)
            self._emit_query(
                "completed", request.name, latency=entry.outcome.latency
            )
        outcomes = tuple(
            self._entries[request.name].outcome for request in self.requests
        )
        # The drain clock overshoots the serving story: un-fired
        # deadline timers and fault restores keep the engine alive past
        # the last terminal outcome.  Makespan is when serving *ended*.
        elapsed = max(
            (o.finished_at for o in outcomes if o.finished_at is not None),
            default=fabric.engine.now,
        )
        report = ServeReport(
            outcomes=outcomes,
            elapsed=elapsed,
            max_in_flight=self.max_in_flight,
            queue_depth=self.queue_depth,
            in_flight_peak=self._in_flight_peak,
            queue_peak=self._queue_peak,
            arbitration=self.arbitration,
            policy_name=self._policy_name(),
        )
        self._export_metrics(report)
        if self.observer is not None and self.observer.stream is not None:
            self.observer.stream.flush()
        return report

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    def _policy_name(self) -> str:
        probe = self.policy_factory()
        return getattr(probe, "name", type(probe).__name__)

    def _arrive(self, request: QueryRequest) -> None:
        entry = self._entries[request.name]
        self._emit_query("submitted", request.name, gpus=len(entry.gpu_ids))
        if self.max_in_flight == 0:
            self._reject(entry, "no-capacity", "the scheduler admits nothing")
            return
        blocked = set(entry.gpu_ids) & self.fabric.crashed_gpus
        if blocked:
            self._reject(
                entry,
                "gpu-unavailable",
                f"gpu{sorted(blocked)[0]} crashed before admission",
            )
            return
        if self._in_flight < self.max_in_flight:
            self._admit(entry)
            return
        if len(self._queue) < self.queue_depth:
            self._queue.append(entry)
            self._queue_peak = max(self._queue_peak, len(self._queue))
            self._emit_query(
                "queued", request.name, depth=len(self._queue)
            )
            return
        self._reject(
            entry,
            "queue-full",
            f"{self._in_flight} in flight, {len(self._queue)} queued",
        )

    def _reject(self, entry: _Entry, reason: str, message: str) -> None:
        now = self.fabric.engine.now
        rejection = QueryRejected(
            name=entry.request.name,
            reason=reason,
            at=now,
            in_flight=self._in_flight,
            queued=len(self._queue),
            message=message,
        )
        entry.outcome = QueryOutcome(
            name=entry.request.name,
            status="rejected",
            gpu_ids=entry.gpu_ids,
            priority=entry.request.priority,
            arrival=entry.request.arrival,
            finished_at=now,
            latency=now - entry.request.arrival,
            rejection=rejection,
            detail=message,
        )
        self._emit_query("rejected", entry.request.name, reason=reason)
        if self.observer is not None:
            self.observer.metrics.counter("serve.shed", reason=reason).inc()

    def _admit(self, entry: _Entry) -> None:
        request = entry.request
        now = self.fabric.engine.now
        if (
            request.deadline is not None
            and now > request.arrival + request.deadline
        ):
            # Queued past its own deadline: never start it.
            entry.outcome = self._failure_outcome(
                entry, "deadline-expired", now,
                detail="deadline expired while queued",
            )
            self._emit_query("deadline-expired", request.name, queued=True)
            return
        tag = self._next_tag
        self._next_tag += 1
        session = QuerySession(
            self.fabric,
            name=request.name,
            tag=tag,
            workload=workload_for(self.machine, request),
            config=self.config,
            policy=self.policy_factory(),
            faults=self.faults,
            retry=self.retry,
            recovery_config=self.recovery,
            retry_budget=self.retry_budget,
            priority=request.priority,
        )
        session.on_done = self._session_done
        entry.session = session
        entry.admitted_at = now
        self._in_flight += 1
        self._in_flight_peak = max(self._in_flight_peak, self._in_flight)
        session.start()
        self._emit_query(
            "admitted",
            request.name,
            tag=tag,
            queue_wait=now - request.arrival,
            in_flight=self._in_flight,
        )
        if request.deadline is not None:
            remaining = request.arrival + request.deadline - now
            self.fabric.engine.schedule(remaining, self._deadline, entry)

    def _deadline(self, entry: _Entry) -> None:
        session = entry.session
        if session is None or session.state != "running":
            return
        session.cancel("deadline-expired")

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------

    def _session_done(self, session: QuerySession) -> None:
        entry = self._entries[session.name]
        self._in_flight -= 1
        now = self.fabric.engine.now
        if session.state == "delivered":
            self._emit_query(
                "delivered", session.name, elapsed=now - entry.admitted_at
            )
        else:
            entry.outcome = self._failure_outcome(
                entry,
                session.state,
                session.finished_at,
                detail=(
                    f"retry budget ({self.retry_budget}) exhausted"
                    if session.state == "retry-budget-exhausted"
                    else "deadline expired in flight"
                ),
            )
            self._emit_query(session.state, session.name)
        while self._queue and self._in_flight < self.max_in_flight:
            queued = self._queue.popleft()
            blocked = set(queued.gpu_ids) & self.fabric.crashed_gpus
            if blocked:
                self._reject(
                    queued,
                    "gpu-unavailable",
                    f"gpu{sorted(blocked)[0]} crashed while queued",
                )
                continue
            self._admit(queued)

    def _failure_outcome(
        self, entry: _Entry, status: str, finished_at: float, *, detail: str
    ) -> QueryOutcome:
        request = entry.request
        session = entry.session
        return QueryOutcome(
            name=request.name,
            status=status,
            gpu_ids=entry.gpu_ids,
            priority=request.priority,
            arrival=request.arrival,
            admitted_at=entry.admitted_at,
            finished_at=finished_at,
            queue_wait=(
                entry.admitted_at - request.arrival
                if entry.admitted_at is not None
                else finished_at - request.arrival
            ),
            latency=finished_at - request.arrival,
            retries=session.recovery.retries if session and session.recovery else 0,
            fallbacks=(
                session.recovery.fallbacks if session and session.recovery else 0
            ),
            crashed_gpus=(
                tuple(sorted(session.coordinator.crashed_gpus))
                if session is not None and session.coordinator is not None
                else ()
            ),
            detail=detail,
        )

    def _settle(self, entry: _Entry) -> None:
        """Finalize one delivered session into its outcome (off-clock)."""
        session = entry.session
        result = session.finalize()
        request = entry.request
        entry.outcome = QueryOutcome(
            name=request.name,
            status="completed",
            gpu_ids=entry.gpu_ids,
            priority=request.priority,
            arrival=request.arrival,
            admitted_at=entry.admitted_at,
            finished_at=session.finished_at,
            queue_wait=entry.admitted_at - request.arrival,
            latency=session.finished_at - request.arrival,
            join_time=result["join_time"],
            matches=result["matches"],
            match_digest=result["match_digest"],
            retries=session.recovery.retries if session.recovery else 0,
            fallbacks=session.recovery.fallbacks if session.recovery else 0,
            crashed_gpus=result["dead_gpus"],
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _emit_query(self, action: str, name: str, **fields) -> None:
        observer = self.observer
        if observer is None or observer.stream is None:
            return
        observer.stream.emit(
            "query",
            t=self.fabric.engine.now,
            clock="sim",
            action=action,
            query=name,
            **fields,
        )

    def _export_metrics(self, report: ServeReport) -> None:
        observer = self.observer
        if observer is None:
            return
        metrics = observer.metrics
        metrics.gauge("serve.elapsed_seconds").set(report.elapsed)
        metrics.gauge("serve.completed").set(report.completed)
        metrics.gauge("serve.rejected").set(report.rejected)
        metrics.gauge("serve.failed").set(report.failed)
        metrics.gauge("serve.in_flight_peak").set(report.in_flight_peak)
        metrics.gauge("serve.queue_peak").set(report.queue_peak)
        admitted = [o for o in report.outcomes if o.admitted_at is not None]
        if admitted:
            metrics.gauge("serve.retention_ratio").set(
                sum(1 for o in admitted if o.status == "completed")
                / len(admitted)
            )
        for outcome in report.outcomes:
            if outcome.latency is not None:
                metrics.gauge(
                    "serve.latency_seconds", query=outcome.name
                ).set(outcome.latency)
            metrics.gauge(
                "serve.queue_wait_seconds", query=outcome.name
            ).set(outcome.queue_wait)
