"""Multi-query serving: many concurrent MG-Joins on one shared machine.

The paper runs one join at a time; a real deployment multiplexes many.
This package adds the serving layer on top of the simulated fabric:

* :mod:`repro.serve.requests` — request/outcome structures, request
  files and deterministic synthetic streams;
* :mod:`repro.serve.fabric` — the shared fabric (one clock, one set of
  link channels, optional per-link bandwidth arbitration, one fault
  injector) and the per-query session that keeps routing, recovery and
  retry budgets isolated per tenant;
* :mod:`repro.serve.scheduler` — admission control (bounded in-flight
  queries + bounded queue, structured shed-load rejections), deadlines
  with clean cancellation, and per-tenant SLA telemetry;
* :mod:`repro.serve.chaos` — the chaos-under-concurrency gate: a GPU
  crash with >= N queries in flight must leave every query's canonical
  match digest byte-identical to its solo healthy run.
"""

from repro.serve.chaos import ServeChaosReport, run_serve_chaos
from repro.serve.fabric import BudgetedRecoveryManager, QuerySession, ServeFabric
from repro.serve.requests import (
    REJECT_REASONS,
    TERMINAL_STATUSES,
    QueryOutcome,
    QueryRejected,
    QueryRequest,
    load_requests,
    synthetic_requests,
)
from repro.serve.scheduler import (
    QueryScheduler,
    ServeReport,
    resolve_gpu_ids,
    workload_for,
)

__all__ = [
    "BudgetedRecoveryManager",
    "QueryOutcome",
    "QueryRejected",
    "QueryRequest",
    "QueryScheduler",
    "QuerySession",
    "REJECT_REASONS",
    "ServeChaosReport",
    "ServeFabric",
    "ServeReport",
    "TERMINAL_STATUSES",
    "load_requests",
    "resolve_gpu_ids",
    "run_serve_chaos",
    "synthetic_requests",
    "workload_for",
]
