"""Request/response structures of the serving layer.

A :class:`QueryRequest` describes one join a tenant wants executed on
the shared machine: when it arrives, how many GPUs it needs (or which
exact ones), its workload shape, an optional completion deadline and a
bandwidth-arbitration priority.  The scheduler answers each request
with exactly one of

* a :class:`QueryOutcome` with ``status="completed"`` (plus digest,
  matches, latency and the usual join accounting),
* a structured :class:`QueryRejected` shed-load response (admission
  control refused the query; nothing ran, nothing hangs), or
* a failure outcome (``deadline-expired`` / ``retry-budget-exhausted``)
  when the query was admitted but could not finish.

Requests can be loaded from a JSON file (``repro serve requests.json``)
or generated deterministically (``repro serve --synthetic N``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "QueryRequest",
    "QueryRejected",
    "QueryOutcome",
    "REJECT_REASONS",
    "TERMINAL_STATUSES",
    "load_requests",
    "synthetic_requests",
]

#: Structured shed-load reasons admission control may answer with.
REJECT_REASONS = (
    "no-capacity",      # max_in_flight == 0: the scheduler serves nothing
    "queue-full",       # in-flight cap reached and the wait queue is full
    "gpu-unavailable",  # a requested GPU already crashed on this fabric
)

#: Every way a request's story can end.
TERMINAL_STATUSES = (
    "completed",
    "rejected",
    "deadline-expired",
    "retry-budget-exhausted",
)


@dataclass(frozen=True)
class QueryRequest:
    """One tenant's join request against the shared machine."""

    name: str
    #: Simulated-clock arrival time (seconds).
    arrival: float = 0.0
    #: Number of GPUs to place the join on (lowest free ids are used)
    #: when ``gpu_ids`` is not given explicitly.
    gpus: int = 2
    #: Explicit placement; overrides ``gpus`` when set.
    gpu_ids: tuple[int, ...] | None = None
    #: Real (materialized) tuples per GPU and the logical scale they
    #: stand for — same semantics as ``repro join --tuples/--real``.
    tuples: int = 2048
    logical_tuples: int | None = None
    #: Bandwidth-arbitration priority (higher wins under ``priority``
    #: arbitration; ignored under ``fair``).
    priority: int = 0
    #: Completion deadline in simulated seconds measured from arrival;
    #: ``None`` = no deadline.
    deadline: float | None = None
    #: Workload RNG seed (keys + placement).
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("query request needs a non-empty name")
        if self.arrival < 0:
            raise ValueError(f"query {self.name!r}: arrival must be >= 0")
        if self.gpu_ids is not None:
            object.__setattr__(self, "gpu_ids", tuple(sorted(self.gpu_ids)))
            if len(set(self.gpu_ids)) != len(self.gpu_ids):
                raise ValueError(f"query {self.name!r}: duplicate gpu_ids")
            if not self.gpu_ids:
                raise ValueError(f"query {self.name!r}: empty gpu_ids")
        elif self.gpus < 1:
            raise ValueError(f"query {self.name!r}: gpus must be >= 1")
        if self.tuples < 1:
            raise ValueError(f"query {self.name!r}: tuples must be >= 1")
        if self.logical_tuples is not None and (
            self.logical_tuples < self.tuples
            or self.logical_tuples % self.tuples != 0
        ):
            raise ValueError(
                f"query {self.name!r}: logical_tuples must be a positive "
                f"multiple of tuples"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"query {self.name!r}: deadline must be > 0")

    @property
    def num_gpus(self) -> int:
        return len(self.gpu_ids) if self.gpu_ids is not None else self.gpus

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "arrival": self.arrival,
            "tuples": self.tuples,
            "seed": self.seed,
        }
        if self.gpu_ids is not None:
            payload["gpu_ids"] = list(self.gpu_ids)
        else:
            payload["gpus"] = self.gpus
        if self.logical_tuples is not None:
            payload["logical_tuples"] = self.logical_tuples
        if self.priority:
            payload["priority"] = self.priority
        if self.deadline is not None:
            payload["deadline"] = self.deadline
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryRequest":
        gpu_ids = payload.get("gpu_ids")
        return cls(
            name=payload["name"],
            arrival=float(payload.get("arrival", 0.0)),
            gpus=int(payload.get("gpus", 2)),
            gpu_ids=tuple(gpu_ids) if gpu_ids is not None else None,
            tuples=int(payload.get("tuples", 2048)),
            logical_tuples=(
                int(payload["logical_tuples"])
                if payload.get("logical_tuples") is not None
                else None
            ),
            priority=int(payload.get("priority", 0)),
            deadline=(
                float(payload["deadline"])
                if payload.get("deadline") is not None
                else None
            ),
            seed=int(payload.get("seed", 42)),
        )


@dataclass(frozen=True)
class QueryRejected:
    """Structured shed-load response: the query never ran.

    Admission control answers immediately — an overloaded scheduler
    sheds queries with one of these instead of queueing forever.
    """

    name: str
    reason: str
    at: float
    in_flight: int
    queued: int
    message: str = ""

    def __post_init__(self) -> None:
        if self.reason not in REJECT_REASONS:
            raise ValueError(
                f"unknown rejection reason {self.reason!r}; "
                f"choose from {REJECT_REASONS}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "reason": self.reason,
            "at": self.at,
            "in_flight": self.in_flight,
            "queued": self.queued,
            "message": self.message,
        }


@dataclass
class QueryOutcome:
    """Everything the scheduler can report about one request."""

    name: str
    status: str
    gpu_ids: tuple[int, ...] = ()
    priority: int = 0
    arrival: float = 0.0
    #: Simulated instant admission happened; ``None`` = never admitted.
    admitted_at: float | None = None
    #: Simulated instant the query reached its terminal status.
    finished_at: float | None = None
    #: Time spent waiting for an admission slot.
    queue_wait: float = 0.0
    #: End-to-end latency (arrival -> terminal), simulated seconds.
    latency: float | None = None
    #: Modelled join runtime at logical scale (PhaseBreakdown total).
    join_time: float | None = None
    matches: int | None = None
    match_digest: str | None = None
    retries: int = 0
    fallbacks: int = 0
    crashed_gpus: tuple[int, ...] = ()
    rejection: QueryRejected | None = None
    #: Human-oriented detail for failure statuses.
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in TERMINAL_STATUSES:
            raise ValueError(
                f"unknown outcome status {self.status!r}; "
                f"choose from {TERMINAL_STATUSES}"
            )

    @property
    def ok(self) -> bool:
        """Rejections are graceful shed-load; only admitted-then-lost
        queries count as serving failures."""
        return self.status in ("completed", "rejected")

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "status": self.status,
            "gpu_ids": list(self.gpu_ids),
            "priority": self.priority,
            "arrival": self.arrival,
            "queue_wait": self.queue_wait,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
        }
        for key in ("admitted_at", "finished_at", "latency", "join_time",
                    "matches", "match_digest"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.crashed_gpus:
            payload["crashed_gpus"] = list(self.crashed_gpus)
        if self.rejection is not None:
            payload["rejection"] = self.rejection.to_dict()
        if self.detail:
            payload["detail"] = self.detail
        return payload


def load_requests(path: "str | Path") -> tuple[QueryRequest, ...]:
    """Load a request file: a JSON list or ``{"requests": [...]}``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(payload, dict):
        payload = payload.get("requests")
    if not isinstance(payload, list):
        raise ValueError(
            f"{path}: expected a JSON list of requests or an object "
            f"with a 'requests' list"
        )
    requests = []
    for index, entry in enumerate(payload):
        try:
            requests.append(QueryRequest.from_dict(entry))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"request #{index} in {path} is malformed: {exc}") from exc
    _check_unique_names(requests)
    return tuple(requests)


def synthetic_requests(
    count: int,
    *,
    gpus: int = 2,
    tuples: int = 2048,
    arrival_spacing: float = 0.0,
    deadline: float | None = None,
    priority_period: int = 0,
    seed: int = 42,
) -> tuple[QueryRequest, ...]:
    """Deterministic synthetic request stream (``repro serve --synthetic``).

    ``arrival_spacing`` seconds separate consecutive arrivals (0 = all
    at the same instant — the admission-ordering stress case);
    ``priority_period > 0`` marks every Nth query high-priority. Each
    query gets its own workload seed so tenants carry distinct data.
    """
    if count < 1:
        raise ValueError("synthetic request count must be >= 1")
    requests = []
    for index in range(count):
        requests.append(
            QueryRequest(
                name=f"q{index:03d}",
                arrival=index * arrival_spacing,
                gpus=gpus,
                tuples=tuples,
                priority=(
                    1 if priority_period and index % priority_period == 0 else 0
                ),
                deadline=deadline,
                seed=seed + index,
            )
        )
    return tuple(requests)


def _check_unique_names(requests: "list[QueryRequest]") -> None:
    seen: set[str] = set()
    for request in requests:
        if request.name in seen:
            raise ValueError(f"duplicate query name {request.name!r}")
        seen.add(request.name)
