"""Chaos under concurrency: crash the fabric while many queries fly.

The serving layer's headline guarantee is *per-query byte-identity
under shared-fabric faults*: crash a GPU while a dozen joins contend
for the same links and every query must still produce exactly the
match digest its solo, healthy run produces — recovered queries via
join-level recovery, unaffected queries by never noticing.

:func:`run_serve_chaos` grades that guarantee end-to-end:

1. every request is first joined **solo and healthy** (one
   :class:`~repro.core.mgjoin.MGJoin` per distinct workload, digests
   cached), establishing the reference digest and the fault horizon;
2. the whole batch is then served **concurrently under the fault
   plan** by a :class:`~repro.serve.scheduler.QueryScheduler`;
3. the gate: the scheduler must actually have had ``min_in_flight``
   queries in flight at once, every query must reach ``completed``
   (shed/failed queries are structured errors, never hangs), and every
   completed digest must equal its solo reference byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.core.config import MGJoinConfig
from repro.core.mgjoin import JoinResult, MGJoin
from repro.faults.chaos import ChaosError, resolve_plan
from repro.serve.requests import QueryRequest
from repro.serve.scheduler import QueryScheduler, ServeReport, workload_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.obs import Observer
    from repro.sim.recovery import RecoveryConfig, RetryPolicy
    from repro.topology.machine import MachineTopology

__all__ = ["ServeChaosReport", "run_serve_chaos"]


@dataclass
class ServeChaosReport:
    """Per-query digest verdicts for one chaos-under-concurrency run."""

    plan: "FaultPlan"
    serve: ServeReport
    solo: dict[str, JoinResult]
    min_in_flight: int

    @property
    def concurrent_enough(self) -> bool:
        return self.serve.in_flight_peak >= self.min_in_flight

    @property
    def mismatches(self) -> list[str]:
        """Queries whose served story diverges from solo healthy."""
        bad = []
        for outcome in self.serve.outcomes:
            if outcome.status != "completed":
                bad.append(f"{outcome.name}: {outcome.status}")
                continue
            reference = self.solo[outcome.name]
            if outcome.match_digest != reference.match_digest:
                bad.append(
                    f"{outcome.name}: digest {outcome.match_digest} != "
                    f"solo {reference.match_digest}"
                )
            elif outcome.matches != reference.matches_real:
                bad.append(
                    f"{outcome.name}: {outcome.matches} matches != "
                    f"solo {reference.matches_real}"
                )
        return bad

    @property
    def correct(self) -> bool:
        return self.concurrent_enough and not self.mismatches

    @property
    def recovered_queries(self) -> tuple[str, ...]:
        return tuple(
            outcome.name
            for outcome in self.serve.outcomes
            if outcome.crashed_gpus
        )

    def summary_lines(self) -> list[str]:
        verdict = "OK" if self.correct else "MISMATCH"
        lines = [
            f"serve-chaos     : {self.plan.name} "
            f"({len(self.plan)} fault(s), seed {self.plan.seed})",
            f"queries         : {len(self.serve.outcomes)} "
            f"({self.serve.completed} completed, "
            f"{self.serve.rejected} shed, {self.serve.failed} failed)",
            f"concurrency     : peak {self.serve.in_flight_peak} in flight "
            f"(gate >= {self.min_in_flight})",
            f"digest identity : {verdict} — every completed query vs its "
            f"solo healthy run",
        ]
        if self.recovered_queries:
            lines.append(
                "recovered       : "
                + ", ".join(sorted(self.recovered_queries))
            )
        for problem in self.mismatches:
            lines.append(f"  DIVERGED {problem}")
        if not self.concurrent_enough:
            lines.append(
                f"  UNDER-CONCURRENT: peak {self.serve.in_flight_peak} "
                f"< required {self.min_in_flight}"
            )
        return lines

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "faults": len(self.plan),
            "correct": self.correct,
            "min_in_flight": self.min_in_flight,
            "in_flight_peak": self.serve.in_flight_peak,
            "mismatches": self.mismatches,
            "recovered_queries": list(self.recovered_queries),
            "queries": {
                outcome.name: {
                    "status": outcome.status,
                    "digest": outcome.match_digest,
                    "solo_digest": self.solo[outcome.name].match_digest,
                    "crashed_gpus": list(outcome.crashed_gpus),
                    "retries": outcome.retries,
                    "latency": outcome.latency,
                }
                for outcome in self.serve.outcomes
            },
            "serve": self.serve.to_dict(),
        }


def run_serve_chaos(
    machine: "MachineTopology",
    requests: "tuple[QueryRequest, ...] | list[QueryRequest]",
    scenario: "str | FaultPlan",
    *,
    policy_factory: "Callable[[], object]",
    config: "MGJoinConfig | None" = None,
    seed: int = 0,
    min_in_flight: int = 12,
    max_in_flight: int | None = None,
    queue_depth: int = 0,
    arbitration: str | None = "fair",
    retry: "RetryPolicy | None" = None,
    recovery: "RecoveryConfig | None" = None,
    retry_budget: int | None = None,
    engine_factory=None,
    observer: "Observer | None" = None,
    strict: bool = True,
) -> ServeChaosReport:
    """Serve ``requests`` concurrently under ``scenario`` and grade it.

    ``max_in_flight`` defaults to admitting the whole batch at once —
    the gate is about faults *under* concurrency, so the default setup
    maximizes it.  With ``strict`` (default) a failed gate raises
    :class:`~repro.faults.chaos.ChaosError`; ``strict=False`` returns
    the report for the caller to grade.
    """
    requests = tuple(requests)
    if len(requests) < min_in_flight:
        raise ValueError(
            f"chaos-under-concurrency needs at least {min_in_flight} "
            f"requests, got {len(requests)}"
        )
    config = replace(config or MGJoinConfig(), materialize=True)
    # Solo healthy references (digest + horizon), cached per distinct
    # workload so 12 identical tenants cost one reference run.
    solo: dict[str, JoinResult] = {}
    cache: dict[tuple, JoinResult] = {}
    horizon = 0.0
    gpu_union: set[int] = set()
    for request in requests:
        workload = workload_for(machine, request)
        gpu_union.update(workload.gpu_ids)
        key = (
            workload.gpu_ids,
            request.tuples,
            request.logical_tuples,
            request.seed,
        )
        if key not in cache:
            cache[key] = MGJoin(
                machine, config=config, policy=policy_factory()
            ).run(workload)
        solo[request.name] = cache[key]
        report = cache[key].shuffle_report
        if report is not None:
            horizon = max(horizon, report.elapsed)
    if horizon <= 0.0:
        raise ChaosError(
            "serve-chaos needs multi-GPU workloads that actually shuffle data"
        )
    plan = resolve_plan(
        scenario, machine, horizon, seed, tuple(sorted(gpu_union))
    )
    scheduler = QueryScheduler(
        machine,
        requests,
        policy_factory=policy_factory,
        config=config,
        max_in_flight=(
            max_in_flight if max_in_flight is not None else len(requests)
        ),
        queue_depth=queue_depth,
        arbitration=arbitration,
        faults=plan,
        retry=retry,
        recovery=recovery,
        retry_budget=retry_budget,
        engine_factory=engine_factory,
        observer=observer,
    )
    serve_report = scheduler.run()
    report = ServeChaosReport(
        plan=plan,
        serve=serve_report,
        solo=solo,
        min_in_flight=min_in_flight,
    )
    if strict and not report.correct:
        problems = report.mismatches
        if not report.concurrent_enough:
            problems = [
                f"in-flight peak {serve_report.in_flight_peak} < "
                f"{min_in_flight}"
            ] + problems
        raise ChaosError(
            f"serve-chaos scenario {plan.name!r} failed the "
            f"concurrency-identity gate: " + "; ".join(problems)
        )
    return report
