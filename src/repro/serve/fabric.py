"""Shared simulated fabric + per-query sessions for the serving layer.

One :class:`ServeFabric` owns everything tenants share — the event
kernel, the link channels (optionally wrapped in per-link
:class:`~repro.sim.linksim.LinkArbiter` instances), the queue-delay
board and the fault injector.  Each admitted query gets its own
:class:`QuerySession` holding everything that must stay isolated: a
route enumerator restricted to the query's GPUs, a fresh routing-policy
instance, its GPU nodes (tagged with the query id), its own retry
budget (:class:`BudgetedRecoveryManager`) and — when the fault plan can
kill GPUs — its own crash coordinator and join-level recovery bridge.

A session splits the join pipeline the same way :class:`~repro.core.
mgjoin.MGJoin.run` composes it, so a query served here produces the
exact digest, match count and phase accounting a solo ``repro join``
would:

* **prepare** (off-clock, at admission): histograms, partition
  assignment, compression model, the flow matrix, and the kernel-paced
  injection/consume rates;
* **on-clock**: only the data-distribution step runs on the shared
  engine, concurrently with every other admitted query;
* **finalize** (off-clock, after the engine drains): per-session byte
  conservation is checked with the same rules as
  :meth:`~repro.sim.shuffle.ShuffleSimulator._build_report`, then the
  functional pass (distribution, local partitioning, probe) runs
  against the final — possibly crash-recovered — assignment.

The match digest is a pure function of the workload and the final
assignment, never of shuffle timing, which is what makes per-query
byte-identity under concurrency + faults provable at all.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.core.global_partition import execute_distribution, plan_flows
from repro.core.histogram import build_histograms, max_partitions
from repro.core.mgjoin import MGJoin, PhaseBreakdown, _single_gpu_assignment
from repro.routing.base import RoutingContext
from repro.sim.engine import SimulationError
from repro.sim.gpusim import GpuNode
from repro.sim.linksim import (
    ARBITRATION_MODES,
    LinkArbiter,
    LinkChannel,
    LinkStateBoard,
)
from repro.sim.recovery import RecoveryConfig, RecoveryManager, RetryPolicy
from repro.topology.routes import RouteEnumerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import MGJoinConfig
    from repro.core.relation import JoinWorkload
    from repro.faults.plan import FaultPlan
    from repro.obs import Observer
    from repro.routing.base import RoutingPolicy
    from repro.sim.engine import Engine

__all__ = ["ServeFabric", "QuerySession", "BudgetedRecoveryManager"]


@dataclass
class BudgetedRecoveryManager(RecoveryManager):
    """Per-query recovery accounting with a hard repair budget.

    Every retry and host fallback spends one unit; once ``budget`` is
    exhausted the session's ``on_exhausted`` callback fires (once, on a
    zero-delay engine event so it never re-enters node coroutines) and
    the scheduler cancels the query with a structured
    ``retry-budget-exhausted`` failure instead of letting a permanent
    fault grind it forever.  ``budget=None`` keeps the legacy unbounded
    behaviour.
    """

    budget: int | None = None
    on_exhausted: Callable[[], None] | None = None
    query: str = ""
    spent: int = 0
    tripped: bool = field(default=False, repr=False)

    def _charge(self) -> None:
        self.spent += 1
        if (
            self.query
            and self.observer is not None
            and self.observer.stream is not None
        ):
            self.observer.stream.emit(
                "query",
                t=self.engine.now,
                clock="sim",
                action="retry",
                query=self.query,
                spent=self.spent,
            )
        if self.tripped or self.budget is None:
            return
        if self.spent > self.budget:
            self.tripped = True
            if self.on_exhausted is not None:
                self.engine.schedule(0.0, self.on_exhausted)

    def record_retry(self, node, packet, *, reason, rerouted) -> None:
        super().record_retry(node, packet, reason=reason, rerouted=rerouted)
        self._charge()

    def fallback(self, node, packet, *, reason) -> None:
        super().fallback(node, packet, reason=reason)
        self._charge()


class ServeFabric:
    """Everything concurrent queries share: clock, links, board, faults."""

    def __init__(
        self,
        machine,
        *,
        engine_factory=None,
        shuffle_config=None,
        arbitration: str | None = None,
        observer: "Observer | None" = None,
        tracer=None,
    ) -> None:
        from repro.sim.engine import engine_factory_for
        from repro.sim.shuffle import ShuffleConfig

        if arbitration is not None and arbitration not in ARBITRATION_MODES:
            raise ValueError(
                f"unknown arbitration mode {arbitration!r}; "
                f"choose from {ARBITRATION_MODES}"
            )
        self.machine = machine
        self.config = shuffle_config or ShuffleConfig()
        self.arbitration = arbitration
        self.observer = observer
        factory = engine_factory if engine_factory is not None else engine_factory_for()
        self.engine: "Engine" = factory()
        self.board = LinkStateBoard(
            self.engine,
            broadcast_latency=self.config.broadcast_latency,
            threshold=self.config.broadcast_threshold,
            quantum=self.config.broadcast_quantum,
            observer=observer,
        )
        self.links: dict[int, LinkChannel] = {
            spec.link_id: LinkChannel(
                self.engine, spec, self.board, tracer, observer=observer
            )
            for spec in machine.links
        }
        if arbitration is not None:
            for channel in self.links.values():
                channel.arbiter = LinkArbiter(channel, mode=arbitration)
        self.injector = None
        self.stream = observer.stream if observer is not None else None
        if self.stream is not None:
            from repro.obs.stream import LinkPump

            LinkPump(self.stream, self.engine, self.links)

    def bind_faults(self, plan: "FaultPlan", gpu_universe: set[int]) -> None:
        """Arm the shared fault injector before any query is admitted.

        Sessions register their recovery scopes as they are admitted;
        ``gpu_universe`` (the union of every request's GPU set) defines
        which GPUs count as valid fault targets.  Corruption-class
        faults need the per-run verified-transport layer, which is not
        shared across tenants — reject them here rather than hang a
        tenant later.
        """
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import CORRUPTION_KINDS

        for event in plan.events:
            if event.kind in CORRUPTION_KINDS:
                raise ValueError(
                    f"plan {plan.name!r}: {event.kind.value} faults are not "
                    f"supported by the serving layer (verified transport is "
                    f"per-query, not a shared-fabric facility)"
                )
        self.injector = FaultInjector(plan)
        self.injector.bind(
            engine=self.engine,
            links=self.links,
            board=self.board,
            nodes={},
            enumerator=None,
            machine=self.machine,
            packet_size=self.config.packet_size,
            observer=self.observer,
            gpu_universe=gpu_universe,
        )

    def set_priority(self, tag: int, priority: int) -> None:
        """Record one query's arbitration priority on every shared link."""
        if priority == 0:
            return
        for channel in self.links.values():
            if channel.arbiter is not None:
                channel.arbiter.priorities[tag] = priority

    @property
    def crashed_gpus(self) -> set[int]:
        return self.injector.crashed_gpus if self.injector is not None else set()


class QuerySession:
    """One admitted query's isolated run against the shared fabric."""

    def __init__(
        self,
        fabric: ServeFabric,
        *,
        name: str,
        tag: int,
        workload: "JoinWorkload",
        config: "MGJoinConfig",
        policy: "RoutingPolicy",
        faults: "FaultPlan | None" = None,
        retry: RetryPolicy | None = None,
        recovery_config: RecoveryConfig | None = None,
        retry_budget: int | None = None,
        priority: int = 0,
    ) -> None:
        self.fabric = fabric
        self.name = name
        self.tag = tag
        self.workload = workload
        self.config = config
        self.policy = policy
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.recovery_config = recovery_config or RecoveryConfig()
        self.retry_budget = retry_budget
        self.priority = priority
        self.gpu_ids = workload.gpu_ids
        #: "pending" -> "running" -> one of the terminal states.
        self.state = "pending"
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.on_done: Callable[["QuerySession"], None] | None = None
        self.nodes: dict[int, GpuNode] = {}
        self.recovery: BudgetedRecoveryManager | None = None
        self.coordinator = None
        self._prepare()

    # ------------------------------------------------------------------
    # Off-clock prepare (mirrors MGJoin.run phases 1-2a)
    # ------------------------------------------------------------------

    def _prepare(self) -> None:
        workload = self.workload
        config = self.config
        compute = config.compute
        gpu_ids = self.gpu_ids
        self.scale = workload.logical_scale
        # The per-query MGJoin instance supplies the template hooks
        # (assignment, compression, recovery bridge, local planning,
        # probe) so serving can never drift from the solo pipeline.
        self.join = MGJoin(
            self.fabric.machine, config, policy=self.policy, faults=self.faults
        )
        self.num_partitions = config.num_partitions or max_partitions(
            compute.spec, config.histogram_entry_bytes, config.thread_blocks_per_sm
        )
        self.histograms = build_histograms(
            workload.r, workload.s, self.num_partitions
        )
        self.histogram_time = max(
            compute.histogram_time(
                workload.logical_tuples_on(g), key_bytes=config.key_bytes
            )
            for g in gpu_ids
        )
        if len(gpu_ids) > 1:
            self.assignment = self.join._make_assignment(self.histograms)
        else:
            self.assignment = _single_gpu_assignment(self.histograms)
        self.compression = self.join._compression_model(
            workload, self.num_partitions
        )
        self.bridge = self.join._make_recovery_bridge(
            self.histograms, self.assignment, self.compression, gpu_ids, self.scale
        )
        self.global_pass_time = max(
            compute.partition_time(
                workload.logical_tuples_on(g), config.tuple_bytes, passes=1
            )
            for g in gpu_ids
        )
        self.flows = plan_flows(
            self.histograms, self.assignment, self.compression, self.scale
        )
        worst_outgoing = max(
            (sum(self.flows.outgoing(g).values()) for g in gpu_ids), default=0
        )
        self.injection_rate = (
            worst_outgoing / self.global_pass_time
            if self.global_pass_time > 0
            else None
        )
        tuples_per_second = (
            compute.partition_efficiency
            * compute.spec.memory_bandwidth
            / (2.0 * config.tuple_bytes)
        )
        self.consume_rate = tuples_per_second * self.compression.bytes_per_tuple
        self.hbm_tax = self.join._hbm_communication_tax(self.flows, gpu_ids)

    # ------------------------------------------------------------------
    # On-clock session (the data-distribution step, shared fabric)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the query's shuffle on the shared engine clock."""
        if self.state != "pending":
            raise RuntimeError(f"session {self.name!r} already {self.state}")
        fabric = self.fabric
        engine = fabric.engine
        config = fabric.config
        self.state = "running"
        self.started_at = engine.now
        fabric.set_priority(self.tag, self.priority)
        if not self.flows.flows:
            # Nothing crosses the fabric (single-GPU query, or the
            # assignment kept every partition local): the distribution
            # step is empty and the query completes this instant.
            self.distribution_elapsed = 0.0
            engine.schedule(0.0, self._session_done)
            return
        self.enumerator = RouteEnumerator(
            fabric.machine,
            allowed_gpus=self.gpu_ids,
            max_intermediates=config.max_intermediates,
        )
        context = RoutingContext(
            engine=engine,
            machine=fabric.machine,
            enumerator=self.enumerator,
            links=fabric.links,
            board=fabric.board,
            num_gpus=len(self.gpu_ids),
            observer=fabric.observer,
            sampler=None,
            conformance=None,
        )
        if self.faults is not None:
            self.recovery = BudgetedRecoveryManager(
                engine,
                policy=self.retry,
                observer=fabric.observer,
                jitter_seed=zlib.crc32(self.faults.name.encode("utf-8"))
                ^ self.faults.seed
                ^ self.tag,
                budget=self.retry_budget,
                on_exhausted=self._on_budget_exhausted,
                query=self.name,
            )
        if self.recovery is not None and self.bridge is not None:
            from repro.sim.recovery import CrashCoordinator

            self.coordinator = CrashCoordinator(
                engine,
                self.recovery_config,
                fabric.board,
                self.enumerator,
                self.recovery,
                packet_size=config.packet_size,
                header_bytes=config.header_bytes,
                bridge=self.bridge,
                observer=fabric.observer,
            )
        for gpu_id in self.gpu_ids:
            self.nodes[gpu_id] = GpuNode(
                engine,
                gpu_id,
                fabric.machine,
                fabric.links,
                self.policy,
                context,
                packet_size=config.packet_size,
                batch_size=config.batch_size,
                header_bytes=config.header_bytes,
                buffer_slots=config.buffer_slots,
                buffer_sync_latency=config.buffer_sync_latency,
                dma_engines=config.dma_engines,
                injection_rate=self.injection_rate,
                consume_rate=self.consume_rate,
                on_delivery=self._on_delivery,
                recovery=self.recovery,
                coordinator=self.coordinator,
                query_tag=self.tag,
            )
        for node in self.nodes.values():
            node.peers = self.nodes
        if self.coordinator is not None:
            self.coordinator.nodes = self.nodes
            self.coordinator.plan(self.gpu_ids, self.flows)
        if fabric.injector is not None:
            fabric.injector.register_group(
                nodes=self.nodes,
                enumerator=self.enumerator,
                coordinator=self.coordinator,
            )
        for gpu_id in self.gpu_ids:
            outgoing = self.flows.outgoing(gpu_id)
            if outgoing:
                self.nodes[gpu_id].start_flows(outgoing)

    def _on_delivery(self, packet) -> None:
        if self.state != "running":
            return
        crashed = (
            self.coordinator.crashed_gpus
            if self.coordinator is not None
            else frozenset()
        )
        if crashed:
            live = sum(
                node.stats.delivered_bytes
                for gpu_id, node in self.nodes.items()
                if gpu_id not in crashed
            )
            if live < self.coordinator.expected_live_bytes():
                return
        else:
            delivered = sum(
                node.stats.delivered_bytes for node in self.nodes.values()
            )
            if delivered < self.flows.total_bytes:
                return
        self._session_done()

    def _session_done(self) -> None:
        if self.state != "running":
            return
        self.state = "delivered"
        engine = self.fabric.engine
        self.finished_at = engine.now
        crashed = (
            self.coordinator.crashed_gpus
            if self.coordinator is not None
            else frozenset()
        )
        self.distribution_elapsed = max(
            (
                node.stats.last_delivery_time - self.started_at
                for gpu_id, node in self.nodes.items()
                if gpu_id not in crashed
            ),
            default=0.0,
        )
        self._detach()
        if self.on_done is not None:
            # Zero-delay hop: slot release / next admission happen as
            # their own engine event, never from inside a node process.
            engine.schedule(0.0, self.on_done, self)

    def _on_budget_exhausted(self) -> None:
        self.cancel("retry-budget-exhausted")

    def cancel(self, state: str) -> None:
        """Stop the query cold: drop queued work, free its commitments.

        Used for deadline expiry and retry-budget exhaustion.  Sibling
        queries are untouched: only this session's nodes are cancelled
        and only its scope is dropped from the fault injector.
        """
        if self.state != "running":
            return
        self.state = state
        self.finished_at = self.fabric.engine.now
        for node in self.nodes.values():
            node.cancel_remaining()
        self._detach()
        if self.on_done is not None:
            self.fabric.engine.schedule(0.0, self.on_done, self)

    def _detach(self) -> None:
        # A finished/cancelled query must never again be touched by
        # fabric faults (a later crash of one of its GPUs belongs to
        # whoever is *still* running there).
        if self.fabric.injector is not None and self.nodes:
            self.fabric.injector.unregister_group(self.nodes)

    # ------------------------------------------------------------------
    # Off-clock finalize (mirrors MGJoin.run phases 2b-4 + composition)
    # ------------------------------------------------------------------

    def finalize(self) -> dict:
        """Check conservation, run the functional pass, compose timings.

        Only meaningful for sessions that reached ``delivered``; raises
        :class:`~repro.sim.engine.SimulationError` if the session lost
        bytes (same rules as the standalone shuffle report).
        """
        if self.state != "delivered":
            raise RuntimeError(
                f"session {self.name!r} cannot finalize from state {self.state!r}"
            )
        crashed = (
            set(self.coordinator.crashed_gpus)
            if self.coordinator is not None
            else set()
        )
        if self.flows.flows:
            delivered = sum(
                node.stats.delivered_bytes for node in self.nodes.values()
            )
            if crashed:
                live = sum(
                    node.stats.delivered_bytes
                    for gpu_id, node in self.nodes.items()
                    if gpu_id not in crashed
                )
                expected = self.coordinator.expected_live_bytes()
                if live < expected:
                    raise SimulationError(
                        f"query {self.name!r}: crash recovery lost data: "
                        f"survivors received {live} of {expected} expected bytes"
                    )
            elif delivered != self.flows.total_bytes:
                raise SimulationError(
                    f"query {self.name!r}: shuffle stalled: delivered "
                    f"{delivered} of {self.flows.total_bytes} bytes"
                )
        workload = self.workload
        assignment = self.assignment
        dead = set(self.bridge.dead_gpus) if self.bridge is not None else set()
        if dead:
            assignment = self.bridge.final_assignment
        data = execute_distribution(
            workload.r, workload.s, self.histograms, assignment
        )
        live_ids = tuple(g for g in self.gpu_ids if g not in dead)
        local_passes, _pass_time, local_total_time = self.join._plan_local(
            data, live_ids, self.num_partitions, self.scale
        )
        matches, per_gpu_matches, probe_time, match_digest = self.join._probe(
            data, live_ids, self.num_partitions, local_passes, self.scale
        )
        for gpu_id in sorted(dead):
            per_gpu_matches[gpu_id] = 0
        compute_chain = self.global_pass_time + local_total_time
        phase23 = max(compute_chain + self.hbm_tax, self.distribution_elapsed)
        breakdown = PhaseBreakdown(
            histogram=self.histogram_time,
            partition_compute=compute_chain,
            distribution_exposed=phase23 - compute_chain,
            probe=probe_time,
        )
        return {
            "matches": matches,
            "per_gpu_matches": per_gpu_matches,
            "match_digest": match_digest,
            "breakdown": breakdown,
            "join_time": breakdown.total,
            "local_passes": local_passes,
            "dead_gpus": tuple(sorted(dead)),
            "distribution_elapsed": self.distribution_elapsed,
        }
