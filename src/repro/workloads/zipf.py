"""Zipf distribution helpers.

``numpy.random.zipf`` has an unbounded support and is undefined for
exponent <= 1, but the paper sweeps Zipf factors from 0.0 (uniform) to
1.0 over a *finite* universe (GPUs, or key values).  These helpers
implement the standard finite Zipf: ``P(rank k) ∝ 1 / k^z``.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(num_items: int, z: float) -> np.ndarray:
    """Normalized finite-Zipf probabilities for ranks ``1..num_items``.

    ``z = 0`` degenerates to the uniform distribution.
    """
    if num_items < 1:
        raise ValueError("num_items must be positive")
    if z < 0:
        raise ValueError(f"Zipf factor must be non-negative, got {z}")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-z)
    return weights / weights.sum()


def zipf_sample(
    num_items: int, size: int, z: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` ranks in ``[0, num_items)`` from a finite Zipf law.

    Implements exactly what ``rng.choice(num_items, size, p=weights)``
    does — renormalized CDF, ``size`` uniform draws, right-bisection —
    consuming the identical RNG stream, so samples are bit-for-bit
    what ``choice`` would return.  The uniforms are bisected in sorted
    order (then scattered back) because a monotone query sequence
    walks the CDF cache-coherently; with 64K keys that makes the
    lookup ~3.5x faster than ``choice``'s as-drawn order.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    weights = zipf_weights(num_items, z)
    cdf = weights.cumsum()
    cdf /= cdf[-1]
    uniforms = rng.random(size)
    order = np.argsort(uniforms, kind="stable")
    ranks = np.empty(size, dtype=np.int64)
    ranks[order] = cdf.searchsorted(uniforms[order], side="right")
    return ranks


def zipf_partition_counts(
    num_items: int, total: int, z: float
) -> np.ndarray:
    """Deterministically split ``total`` into finite-Zipf proportions.

    Used to decide how many tuples each GPU holds under placement skew;
    deterministic so experiment configurations are exactly reproducible.
    Rounding residue goes to the largest shares first.
    """
    weights = zipf_weights(num_items, z)
    counts = np.floor(weights * total).astype(np.int64)
    shortfall = total - int(counts.sum())
    order = np.argsort(-weights)
    for index in range(shortfall):
        counts[order[index % num_items]] += 1
    return counts
