"""Zipf distribution helpers.

``numpy.random.zipf`` has an unbounded support and is undefined for
exponent <= 1, but the paper sweeps Zipf factors from 0.0 (uniform) to
1.0 over a *finite* universe (GPUs, or key values).  These helpers
implement the standard finite Zipf: ``P(rank k) ∝ 1 / k^z``.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(num_items: int, z: float) -> np.ndarray:
    """Normalized finite-Zipf probabilities for ranks ``1..num_items``.

    ``z = 0`` degenerates to the uniform distribution.
    """
    if num_items < 1:
        raise ValueError("num_items must be positive")
    if z < 0:
        raise ValueError(f"Zipf factor must be non-negative, got {z}")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-z)
    return weights / weights.sum()


def zipf_sample(
    num_items: int, size: int, z: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` ranks in ``[0, num_items)`` from a finite Zipf law."""
    if size < 0:
        raise ValueError("size must be non-negative")
    weights = zipf_weights(num_items, z)
    return rng.choice(num_items, size=size, p=weights)


def zipf_partition_counts(
    num_items: int, total: int, z: float
) -> np.ndarray:
    """Deterministically split ``total`` into finite-Zipf proportions.

    Used to decide how many tuples each GPU holds under placement skew;
    deterministic so experiment configurations are exactly reproducible.
    Rounding residue goes to the largest shares first.
    """
    weights = zipf_weights(num_items, z)
    counts = np.floor(weights * total).astype(np.int64)
    shortfall = total - int(counts.sum())
    order = np.argsort(-weights)
    for index in range(shortfall):
        counts[order[index % num_items]] += 1
    return counts
