"""Synthetic workload generation (paper §5.1).

The paper's workload: two relations of 8-byte tuples (4-byte key,
4-byte id), ``|R| = |S|``, keys generated sequentially then shuffled
(so selectivity is 100%: every R tuple matches exactly one S tuple).
Experiments scale the *logical* size up to 4,096M tuples; the generator
materializes a smaller real array and records the scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.relation import (
    ID_DTYPE,
    KEY_DTYPE,
    DistributedRelation,
    GpuShard,
    JoinWorkload,
)
from repro.workloads.zipf import zipf_partition_counts, zipf_sample


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic join input.

    Attributes:
        gpu_ids: GPUs holding the input.
        logical_tuples_per_gpu: Logical |R| (= |S|) tuples per GPU; the
            paper's default is 512M per GPU per relation.
        real_tuples_per_gpu: Tuples actually materialized per GPU per
            relation; must divide the logical count.
        placement_zipf: Zipf factor for how tuples spread over GPUs
            (0 = even).  The *total* input size is unchanged.
        key_zipf: Zipf factor for key values (0 = sequential unique
            keys, >0 = heavy hitters).
        seed: RNG seed; identical specs generate identical workloads.
    """

    gpu_ids: tuple[int, ...]
    logical_tuples_per_gpu: int = 512 * 1024 * 1024
    real_tuples_per_gpu: int = 1 << 17
    placement_zipf: float = 0.0
    key_zipf: float = 0.0
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.gpu_ids:
            raise ValueError("need at least one GPU")
        if len(set(self.gpu_ids)) != len(self.gpu_ids):
            raise ValueError("duplicate GPU ids")
        if self.real_tuples_per_gpu < 1:
            raise ValueError("real_tuples_per_gpu must be positive")
        if self.logical_tuples_per_gpu % self.real_tuples_per_gpu:
            raise ValueError(
                "real_tuples_per_gpu must divide logical_tuples_per_gpu"
            )

    @property
    def logical_scale(self) -> int:
        return self.logical_tuples_per_gpu // self.real_tuples_per_gpu

    @property
    def num_gpus(self) -> int:
        return len(self.gpu_ids)


def generate_workload(spec: WorkloadSpec) -> JoinWorkload:
    """Materialize the workload described by ``spec``."""
    rng = np.random.default_rng(spec.seed)
    total = spec.real_tuples_per_gpu * spec.num_gpus
    relations = {}
    for name, salt in (("R", 0), ("S", 1)):
        keys = _make_keys(total, spec.key_zipf, rng)
        rng.shuffle(keys)
        ids = np.arange(total, dtype=ID_DTYPE)
        relations[name] = _distribute(
            name, keys, ids, spec.gpu_ids, spec.placement_zipf
        )
    return JoinWorkload(
        r=relations["R"], s=relations["S"], logical_scale=spec.logical_scale
    )


def _make_keys(total: int, key_zipf: float, rng: np.random.Generator) -> np.ndarray:
    if key_zipf <= 0.0:
        return np.arange(total, dtype=KEY_DTYPE)
    # Heavy-hitter keys: ranks drawn from a finite Zipf over the key
    # universe.  Rank 0 (the heaviest key) can dominate entire radix
    # partitions, which is what exercises the skew handling.
    return zipf_sample(total, total, key_zipf, rng).astype(KEY_DTYPE)


def _distribute(
    name: str,
    keys: np.ndarray,
    ids: np.ndarray,
    gpu_ids: tuple[int, ...],
    placement_zipf: float,
) -> DistributedRelation:
    counts = zipf_partition_counts(len(gpu_ids), len(keys), placement_zipf)
    shards: dict[int, GpuShard] = {}
    offset = 0
    for gpu_id, count in zip(sorted(gpu_ids), counts):
        end = offset + int(count)
        shards[gpu_id] = GpuShard(keys[offset:end].copy(), ids[offset:end].copy())
        offset = end
    return DistributedRelation(name=name, shards=shards)
