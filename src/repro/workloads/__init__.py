"""Synthetic join workloads (paper §5.1).

Two relations of 8-byte tuples with ``|R| = |S|``; integer keys are
generated sequentially and shuffled, giving 100% join selectivity.
Skew comes in two flavours the paper evaluates separately:

* **placement skew** — tuples are distributed over the GPUs by a Zipf
  law (Figures 5b and 9),
* **key skew** — key *values* follow a Zipf law, creating heavy-hitter
  partitions the assignment phase must handle (§3.2).
"""

from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.zipf import zipf_weights, zipf_sample

__all__ = ["WorkloadSpec", "generate_workload", "zipf_sample", "zipf_weights"]
