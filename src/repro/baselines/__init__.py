"""The joins MG-Join is evaluated against (paper §5).

* :class:`DPRJJoin` — the state-of-the-art distributed GPU partitioned
  join of Guo et al., which shuffles over *direct* CUDA routes with no
  transfer/compute overlap and hash-modulo partition placement.
* :class:`UMJJoin` — the unified-memory join of Paul et al.: no
  explicit shuffle at all; remote tuples arrive through driver-handled
  page faults, which serialize on locked page tables as GPU count grows.
* :class:`SingleGpuJoin` — the classic single-GPU radix join, the
  scalability yardstick of Figures 1 and 11.
"""

from repro.baselines.dprj import DPRJJoin
from repro.baselines.umj import UMJJoin
from repro.baselines.single_gpu import SingleGpuJoin, gather_to_one_gpu

__all__ = ["DPRJJoin", "SingleGpuJoin", "UMJJoin", "gather_to_one_gpu"]
