"""UMJ: the unified-memory join baseline (Paul et al. [31]).

UMJ leans on the CUDA unified-memory feature: input buffers are visible
to every GPU, and whenever a kernel touches a tuple resident on another
GPU the driver services a page fault and migrates the 64 KB page.  No
explicit shuffle exists, so there is nothing for a routing policy to
optimize — the cost sits in the faults themselves, and it grows with
GPU count because concurrent fault handling locks the page tables
(§2.1): "the performance of UMJ on multiple GPUs (from 5 to 8) is even
worse than that of a single GPU" (§5.3).

The functional result is computed with the same exact partition/probe
machinery as MG-Join (modulo placement, since unified memory has no
notion of an optimized assignment); only the cost model differs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.assignment import PartitionAssignment, modulo_assignment
from repro.core.compression import CompressionModel
from repro.core.config import MGJoinConfig
from repro.core.histogram import HistogramSet
from repro.core.mgjoin import MGJoin
from repro.sim.shuffle import FlowMatrix
from repro.sim.stats import ShuffleReport
from repro.topology.machine import MachineTopology


class UMJJoin(MGJoin):
    """Partitioned join over unified memory: page faults, no shuffle."""

    algorithm = "umj"
    overlap_distribution = False

    def __init__(
        self,
        machine: MachineTopology,
        config: MGJoinConfig | None = None,
        observer=None,
    ) -> None:
        base = config or MGJoinConfig()
        if base.compression:
            base = replace(base, compression=False)
        super().__init__(machine, base, policy=None, observer=observer)
        self._last_fault_time = 0.0

    def _make_assignment(self, histograms: HistogramSet) -> PartitionAssignment:
        return modulo_assignment(histograms)

    def _simulate_distribution(
        self,
        flows: FlowMatrix,
        gpu_ids: tuple[int, ...],
        global_pass_time: float,
        compression: CompressionModel,
    ) -> ShuffleReport | None:
        """Replace the routed shuffle with page-fault servicing time.

        Every byte that would have been a flow is instead pulled on
        demand through page faults.  The worst GPU's fault time is the
        exposed "distribution" cost.
        """
        compute = self.config.compute
        num_gpus = len(gpu_ids)
        worst = 0.0
        for gpu_id in gpu_ids:
            pulled = sum(
                nbytes for (_, dst), nbytes in flows.flows.items() if dst == gpu_id
            )
            fault_time = compute.page_fault_time(pulled, num_gpus)
            if self.observer is not None:
                self.observer.metrics.counter("umj.faulted_bytes", gpu=gpu_id).inc(
                    pulled
                )
            worst = max(worst, fault_time)
        self._last_fault_time = worst
        if self.observer is not None:
            self.observer.metrics.gauge("umj.page_fault_seconds").set(worst)
        return _FaultReport(worst) if worst > 0 else None


class _FaultReport(ShuffleReport):
    """Minimal stand-in: UMJ has no links, packets or routes to report."""

    def __init__(self, elapsed: float) -> None:
        super().__init__(
            policy_name="unified-memory",
            num_gpus=0,
            elapsed=elapsed,
            payload_bytes=0,
            delivered_bytes=0,
            wire_bytes=0,
            packets_delivered=0,
            hop_count_total=0,
            link_stats={},
            cut=None,  # type: ignore[arg-type] - no interconnect involved
            buffer_sync_count=0,
            board_broadcast_count=0,
        )

    @property
    def bisection_utilization(self) -> float:
        return 0.0
