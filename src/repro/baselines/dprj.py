"""DPRJ: the direct-route partitioned join baseline (Guo et al. [21]).

DPRJ was designed for RDMA clusters with GPUs; inside one machine it
"simply relies on CUDA communication APIs (which make use of the direct
routes between GPUs) for data transfer" (§6).  Compared to MG-Join it

* places partition ``p`` on GPU ``p mod G`` — data placement is ignored,
* always takes the *direct* route, staging over shared PCIe + QPI for
  the 12 of 28 DGX-1 GPU pairs without an NVLink link,
* transfers and computes in distinct stages (no packet-level overlap),
* sends raw 8-byte tuples (no radix-prefix/delta compression).

Those four differences are exactly the paper's explanation for DPRJ
spending up to 72% of its time moving data (Figure 12).
"""

from __future__ import annotations

from repro.core.assignment import PartitionAssignment, modulo_assignment
from repro.core.config import MGJoinConfig
from repro.core.histogram import HistogramSet
from repro.core.mgjoin import MGJoin
from repro.routing.base import RoutingPolicy
from repro.routing.static import DirectPolicy
from repro.topology.machine import MachineTopology

from dataclasses import replace


class DPRJJoin(MGJoin):
    """Partitioned join with direct routing and no overlap."""

    algorithm = "dprj"
    overlap_distribution = False

    def __init__(
        self,
        machine: MachineTopology,
        config: MGJoinConfig | None = None,
        policy: RoutingPolicy | None = None,
        observer=None,
    ) -> None:
        base = config or MGJoinConfig()
        if base.compression:
            base = replace(base, compression=False)
        super().__init__(machine, base, policy or DirectPolicy(), observer=observer)

    def _make_assignment(self, histograms: HistogramSet) -> PartitionAssignment:
        return modulo_assignment(histograms)
