"""The single-GPU radix hash join baseline.

Figures 1 and 11 anchor every scalability claim against the classic
one-GPU partitioned join (He et al., Rui et al.): histogram, radix
partitioning passes until co-partitions fit in shared memory, then
probe — no interconnect involved.  :class:`SingleGpuJoin` is simply
:class:`~repro.core.mgjoin.MGJoin` run on a one-GPU workload; the
orchestrator already skips assignment and shuffling in that case.
"""

from __future__ import annotations

import numpy as np

from repro.core.mgjoin import JoinResult, MGJoin
from repro.core.relation import DistributedRelation, GpuShard, JoinWorkload


def gather_to_one_gpu(workload: JoinWorkload, gpu_id: int | None = None) -> JoinWorkload:
    """Re-shard a workload so a single GPU holds everything.

    Used to give the single-GPU baseline the same *total* input as a
    multi-GPU run (the paper instead grows input with GPU count; both
    comparisons are exposed by the bench harness).
    """
    target = gpu_id if gpu_id is not None else workload.gpu_ids[0]

    def gather(relation: DistributedRelation) -> DistributedRelation:
        merged = GpuShard(
            np.concatenate([relation.shard(g).keys for g in relation.gpu_ids]),
            np.concatenate([relation.shard(g).ids for g in relation.gpu_ids]),
        )
        return DistributedRelation(name=relation.name, shards={target: merged})

    return JoinWorkload(
        r=gather(workload.r),
        s=gather(workload.s),
        logical_scale=workload.logical_scale,
    )


class SingleGpuJoin(MGJoin):
    """Radix join on one GPU (the paper's 1-GPU data points)."""

    algorithm = "single-gpu"

    def run(self, workload: JoinWorkload) -> JoinResult:
        if len(workload.gpu_ids) != 1:
            workload = gather_to_one_gpu(workload)
        return super().run(workload)
