"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``topology`` — describe a machine (links, bisection, staged pairs).
* ``join`` — run one join (mg-join / dprj / umj) and print the report;
  ``--trace out.json`` captures a Chrome trace of the whole pipeline.
* ``shuffle`` — run one distribution step under a routing policy.
* ``trace`` — run one fully-observed distribution step and export the
  Chrome trace / merged CSV / terminal summary (see
  ``docs/observability.md``).
* ``analyze`` — run one sampled join (or shuffle) and emit the link
  congestion analysis: link x time heatmap, per-phase bottleneck
  attribution and the ARM decision-regret table.
* ``chaos`` — run a join healthy and under a fault scenario (built-in
  preset or YAML/JSON plan), assert the result stayed correct and
  report the throughput retained (see ``docs/robustness.md``);
  ``--serve`` switches to the chaos-under-concurrency gate: many
  queries multiplexed over one shared fabric while the fault fires,
  every query's digest checked against its solo healthy run.
* ``serve`` — multiplex many concurrent joins (a JSON request file or
  ``--synthetic N``) over one shared fabric with admission control,
  deadlines, per-query retry budgets and per-tenant SLA telemetry.
* ``perf`` — collect the canonical perf metrics and gate them against
  a committed ``BENCH_*.json`` baseline (10% tolerance), or against
  the latest ``perf`` record of a results store (``--store``).
* ``experiments`` — the experiment farm (see ``docs/observability.md``):
  ``run`` executes a parameterized sweep (topology x policy x fault
  plan x scale) into the results-store ledger with live progress
  events, ``list`` queries the ledger, ``compare`` renders the
  direction-aware metric diff between two runs (with regression
  attribution down to phases and links), ``report`` draws
  per-topology trend lines over the ledger, and ``ingest`` imports
  legacy artifacts (BENCH baselines, chaos reports) as records.
* ``bench`` — regenerate many figures in parallel over a process pool,
  with per-figure wall-clock self-times and a ``bench_run.json``
  manifest; ``--gate`` chains the perf-regression gate afterwards.
* ``figure`` — regenerate a paper figure (fig01 .. fig14).
* ``tpch`` — run TPC-H queries on a chosen engine.
* ``top`` — live terminal dashboard tailing an NDJSON telemetry
  stream written by ``--stream`` (phase bar, link heatmap, alerts).

Sizes accept suffixes: ``512M``, ``2G``, ``64K``.

Progress/notice output goes through the ``repro`` logger to stderr
(``--log-level``, ``--quiet``), so stdout stays clean for reports and
for ``--stream -`` NDJSON.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Callable

from repro.baselines import DPRJJoin, UMJJoin
from repro.core import MGJoin
from repro.routing import (
    AdaptiveArmPolicy,
    BandwidthPolicy,
    CentralizedPolicy,
    DirectPolicy,
    HopCountPolicy,
    LatencyPolicy,
)
from repro.bench.regression import PERF_WORKLOADS
from repro.sim import ARBITRATION_MODES, ENGINE_MODES, FlowMatrix, ShuffleSimulator

PERF_WORKLOAD_NAMES = tuple(PERF_WORKLOADS)
from repro.topology import (
    dgx1_topology,
    dgx2_topology,
    dgx_station_topology,
    multi_node_dgx1,
)
from repro.workloads import WorkloadSpec, generate_workload

MACHINES: dict[str, Callable] = {
    "dgx1": dgx1_topology,
    "dgx2": dgx2_topology,
    "dgx-station": dgx_station_topology,
    "dgx1x2": lambda: multi_node_dgx1(2),
    "dgx1x4": lambda: multi_node_dgx1(4),
}

POLICIES: dict[str, Callable] = {
    "adaptive": AdaptiveArmPolicy,
    "direct": DirectPolicy,
    "bandwidth": BandwidthPolicy,
    "hop-count": HopCountPolicy,
    "latency": LatencyPolicy,
    "centralized": CentralizedPolicy,
}

ALGORITHMS = {"mg-join": MGJoin, "dprj": DPRJJoin, "umj": UMJJoin}

log = logging.getLogger("repro.cli")

_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3, "b": 1024**3}


def parse_size(text: str) -> int:
    """Parse ``512M``-style sizes into integers."""
    text = text.strip().lower()
    if not text:
        raise argparse.ArgumentTypeError("empty size")
    multiplier = 1
    if text[-1] in _SUFFIXES:
        multiplier = _SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = int(float(text) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError("size must be positive")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MG-Join (SIGMOD 2021) reproduction toolkit",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default="info",
        help="stderr verbosity for progress/notice output (default: info)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="shorthand for --log-level warning",
    )
    parser.add_argument(
        "--engine", dest="engine_mode", choices=ENGINE_MODES, default=None,
        help="event-kernel mode for every simulation in this invocation:"
        " 'fast' (default), 'batch' (array calendar + vectorized cost"
        " kernels; backend via $REPRO_ENGINE_BACKEND), or 'reference'"
        " (bit-exact all-heap kernel); overrides $REPRO_ENGINE",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    topo = commands.add_parser("topology", help="describe a machine")
    topo.add_argument("--machine", choices=sorted(MACHINES), default="dgx1")

    join = commands.add_parser("join", help="run one distributed join")
    join.add_argument("--machine", choices=sorted(MACHINES), default="dgx1")
    join.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="mg-join")
    join.add_argument("--policy", choices=sorted(POLICIES), default="adaptive")
    join.add_argument("--gpus", type=int, default=8)
    join.add_argument(
        "--tuples-per-gpu", type=parse_size, default=parse_size("512M"),
        help="logical tuples per relation per GPU",
    )
    join.add_argument(
        "--real-tuples", type=parse_size, default=parse_size("64K"),
        help="materialized tuples per relation per GPU",
    )
    join.add_argument("--zipf-placement", type=float, default=0.0)
    join.add_argument("--zipf-keys", type=float, default=0.0)
    join.add_argument("--seed", type=int, default=42)
    join.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON of the run (Perfetto-loadable)",
    )
    join.add_argument(
        "--trace-csv", metavar="PATH", default=None,
        help="write the merged spans+metrics CSV of the run",
    )
    join.add_argument(
        "--stream", metavar="PATH", default=None,
        help="write the live NDJSON telemetry stream here ('-' = stdout;"
        " tail it with 'repro top')",
    )

    shuffle = commands.add_parser("shuffle", help="run one distribution step")
    shuffle.add_argument("--machine", choices=sorted(MACHINES), default="dgx1")
    shuffle.add_argument("--policy", choices=sorted(POLICIES), default="adaptive")
    shuffle.add_argument("--gpus", type=int, default=8)
    shuffle.add_argument(
        "--bytes-per-flow", type=parse_size, default=parse_size("1G")
    )

    trace = commands.add_parser(
        "trace", help="run one observed distribution step and export traces"
    )
    trace.add_argument("--machine", choices=sorted(MACHINES), default="dgx1")
    trace.add_argument("--policy", choices=sorted(POLICIES), default="adaptive")
    trace.add_argument("--gpus", type=int, default=8)
    trace.add_argument(
        "--bytes-per-flow", type=parse_size, default=parse_size("256M")
    )
    trace.add_argument(
        "--out", metavar="PATH", default="trace.json",
        help="Chrome trace-event JSON output path",
    )
    trace.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the merged spans+metrics CSV here",
    )
    trace.add_argument(
        "--gantt", action="store_true",
        help="print the terminal Gantt chart of the busiest links",
    )

    analyze = commands.add_parser(
        "analyze",
        help="run one sampled join/shuffle and emit the congestion analysis",
    )
    analyze.add_argument("--machine", choices=sorted(MACHINES), default="dgx1")
    analyze.add_argument("--policy", choices=sorted(POLICIES), default="adaptive")
    analyze.add_argument("--gpus", type=int, default=8)
    analyze.add_argument(
        "--mode", choices=("join", "shuffle"), default="join",
        help="analyze a full MG-Join run or a bare distribution step",
    )
    analyze.add_argument(
        "--bytes-per-flow", type=parse_size, default=parse_size("64M"),
        help="per-flow payload (shuffle mode)",
    )
    analyze.add_argument(
        "--hot-gpu", type=int, default=None, metavar="ID",
        help="skew shuffle-mode traffic toward one hot receiver",
    )
    analyze.add_argument(
        "--tuples-per-gpu", type=parse_size, default=parse_size("512M"),
        help="logical tuples per relation per GPU (join mode)",
    )
    analyze.add_argument(
        "--real-tuples", type=parse_size, default=parse_size("64K"),
        help="materialized tuples per relation per GPU (join mode)",
    )
    analyze.add_argument("--zipf-placement", type=float, default=0.0)
    analyze.add_argument("--zipf-keys", type=float, default=0.5)
    analyze.add_argument("--seed", type=int, default=42)
    analyze.add_argument(
        "--buckets", type=int, default=48,
        help="time buckets across the heatmap's x axis",
    )
    analyze.add_argument(
        "--top", type=int, default=10, help="links/rows shown per section"
    )
    analyze.add_argument(
        "--out-dir", metavar="DIR", default=None,
        help="also write heatmap.csv/json, bottlenecks.json and regret.csv",
    )
    analyze.add_argument(
        "--conformance", action="store_true",
        help="instrument every routed transfer with its predicted"
        " T_R/D_R cost and print the cost-model conformance section",
    )

    from repro.faults.plan import PRESET_NAMES

    analyze.add_argument(
        "--chaos", choices=PRESET_NAMES, default=None, metavar="PRESET",
        help="inject a fault preset into the analyzed run (a healthy run"
        " is made first to size the fault schedule)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="run a join under a fault scenario and grade its survival",
    )
    chaos.add_argument("--machine", choices=sorted(MACHINES), default="dgx1")
    chaos.add_argument("--policy", choices=sorted(POLICIES), default="adaptive")
    chaos.add_argument("--gpus", type=int, default=8)
    chaos.add_argument(
        "--preset", choices=PRESET_NAMES, default=None,
        help="built-in fault scenario (times scale with the healthy run)",
    )
    chaos.add_argument(
        "--plan", metavar="PATH", default=None,
        help="YAML/JSON fault plan with absolute times; overrides --preset",
    )
    chaos.add_argument(
        "--tuples-per-gpu", type=parse_size, default=parse_size("512M"),
        help="logical tuples per relation per GPU",
    )
    chaos.add_argument(
        "--real-tuples", type=parse_size, default=parse_size("32K"),
        help="materialized tuples per relation per GPU",
    )
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument(
        "--min-retention", type=float, default=None, metavar="FRACTION",
        help="fail (exit 1) when faulted/healthy throughput drops below this",
    )
    chaos.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="transmission attempts before host fallback (retry policy;"
        " overrides the plan's baked-in retry section)",
    )
    chaos.add_argument(
        "--acquire-timeout", type=float, default=None, metavar="SECONDS",
        help="wait on remote buffer credits before treating the receiver"
        " as unresponsive (retry policy)",
    )
    chaos.add_argument(
        "--host-bandwidth", type=parse_size, default=None, metavar="BYTES/S",
        help="host-staged fallback relay bandwidth, e.g. 5G (retry policy)",
    )
    chaos.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="SECONDS",
        help="checkpoint per-GPU receive state this often so crash"
        " recovery can restore instead of re-shuffling (default: off)",
    )
    chaos.add_argument(
        "--expect-loss", action="store_true",
        help="require that the scenario actually killed at least one GPU"
        " and that join-level recovery engaged (fail otherwise)",
    )
    chaos.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the faulted run's Chrome trace (fault windows visible)",
    )
    chaos.add_argument(
        "--out-dir", metavar="DIR", default=None,
        help="write chaos artifacts (trace JSON, report JSON) here",
    )
    chaos.add_argument(
        "--store", metavar="DIR", default=None,
        help="also commit the chaos report to this results store"
        " (see 'repro experiments')",
    )
    chaos.add_argument(
        "--stream", metavar="PATH", default=None,
        help="write the faulted run's NDJSON telemetry stream"
        " ('-' = stdout; tail it with 'repro top')",
    )
    chaos.add_argument(
        "--alerts", metavar="PATH", default=None,
        help="write alerts fired over the stream here as JSON lines"
        " (fired alerts also land in the report/store record)",
    )
    chaos.add_argument(
        "--alert-rules", metavar="PATH", default=None,
        help="JSON list of alert rules overriding the built-in defaults",
    )
    chaos.add_argument(
        "--verify", dest="verify", action="store_true", default=None,
        help="force the verified transport on (per-packet checksums,"
        " NACK/retransmit, duplicate suppression)",
    )
    chaos.add_argument(
        "--no-verify", dest="verify", action="store_false",
        help="force the verified transport off; injected corruption is"
        " then *detected* by the end-to-end audit (exit code 3) instead"
        " of repaired (default: on exactly when the plan has"
        " corruption-class faults)",
    )
    chaos.add_argument(
        "--serve", action="store_true",
        help="chaos under concurrency: serve --queries N joins over one"
        " shared fabric while the scenario fires, and gate every query's"
        " match digest against its solo healthy run",
    )
    chaos.add_argument(
        "--queries", type=int, default=12, metavar="N",
        help="synthetic queries served concurrently (--serve; default 12)",
    )
    chaos.add_argument(
        "--min-in-flight", type=int, default=12, metavar="N",
        help="required concurrency peak for the --serve gate (default 12)",
    )
    chaos.add_argument(
        "--arbitration", choices=(*ARBITRATION_MODES, "none"), default="fair",
        help="shared-link bandwidth arbitration between queries (--serve)",
    )
    chaos.add_argument(
        "--retry-budget", type=int, default=None, metavar="N",
        help="per-query repair budget before a structured"
        " retry-budget-exhausted failure (--serve; default unbounded)",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command")
    fuzz = chaos_sub.add_parser(
        "fuzz",
        help="property-based chaos fuzzing: random fault plans, shrunk"
        " reproducers",
    )
    fuzz.add_argument("--machine", choices=sorted(MACHINES), default="dgx1")
    fuzz.add_argument("--policy", choices=sorted(POLICIES), default="adaptive")
    fuzz.add_argument("--gpus", type=int, default=8)
    fuzz.add_argument(
        "--tuples-per-gpu", type=parse_size, default=parse_size("512M"),
        help="logical tuples per relation per GPU",
    )
    fuzz.add_argument(
        "--real-tuples", type=parse_size, default=parse_size("32K"),
        help="materialized tuples per relation per GPU",
    )
    fuzz.add_argument(
        "--seed", type=int, default=42,
        help="fuzz stream seed: same seed + budget = same plan sequence",
    )
    fuzz.add_argument(
        "--budget", type=int, default=25, metavar="N",
        help="number of random fault plans to run (default 25)",
    )
    fuzz.add_argument(
        "--shrink-budget", type=int, default=32, metavar="N",
        help="max extra oracle runs spent minimizing one failure",
    )
    fuzz.add_argument(
        "--verify", dest="verify", action="store_true", default=None,
        help="run every plan with the verified transport forced on",
    )
    fuzz.add_argument(
        "--no-verify", dest="verify", action="store_false",
        help="run every plan with the verified transport forced off",
    )
    fuzz.add_argument(
        "--out-dir", metavar="DIR", default=None,
        help="write fuzz_report.json and minimized reproducer plans here",
    )
    fuzz.add_argument(
        "--store", metavar="DIR", default=None,
        help="also commit the fuzz report to this results store",
    )

    serve = commands.add_parser(
        "serve",
        help="multiplex many concurrent joins over one shared fabric",
    )
    serve.add_argument(
        "requests", nargs="?", metavar="PATH", default=None,
        help="JSON request file: a list of requests or {'requests': [...]}"
        " (each: name, gpus or gpu_ids, tuples, arrival, priority,"
        " deadline, seed)",
    )
    serve.add_argument(
        "--synthetic", type=int, default=None, metavar="N",
        help="serve N deterministic synthetic queries instead of a file",
    )
    serve.add_argument("--machine", choices=sorted(MACHINES), default="dgx1")
    serve.add_argument("--policy", choices=sorted(POLICIES), default="adaptive")
    serve.add_argument(
        "--gpus", type=int, default=2,
        help="GPUs per synthetic query (default 2)",
    )
    serve.add_argument(
        "--tuples", type=parse_size, default=parse_size("2K"),
        help="materialized tuples per relation per GPU for synthetic"
        " queries (default 2K)",
    )
    serve.add_argument(
        "--arrival-spacing", type=float, default=0.0, metavar="SECONDS",
        help="inter-arrival spacing for synthetic queries (0 = all at"
        " the same instant)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-query deadline for synthetic queries (measured from"
        " arrival; expired queries are cancelled cleanly)",
    )
    serve.add_argument(
        "--priority-period", type=int, default=0, metavar="N",
        help="mark every Nth synthetic query high-priority (0 = never)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=4, metavar="N",
        help="admission-control cap on concurrently running queries",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=8, metavar="N",
        help="bounded admission queue; overflow is shed with a"
        " structured rejection, never a hang",
    )
    serve.add_argument(
        "--arbitration", choices=(*ARBITRATION_MODES, "none"), default="fair",
        help="shared-link bandwidth arbitration between queries"
        " (default: fair)",
    )
    serve.add_argument(
        "--retry-budget", type=int, default=None, metavar="N",
        help="per-query repair budget (retries + host fallbacks) before"
        " a structured retry-budget-exhausted failure",
    )
    serve.add_argument(
        "--plan", metavar="PATH", default=None,
        help="YAML/JSON fault plan (absolute times) injected into the"
        " shared fabric; use 'repro chaos --serve' for scaled presets",
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the machine-readable serve report here",
    )
    serve.add_argument(
        "--stream", metavar="PATH", default=None,
        help="write the live NDJSON telemetry stream (per-query lanes)"
        " here ('-' = stdout; tail it with 'repro top')",
    )
    serve.add_argument(
        "--alerts", metavar="PATH", default=None,
        help="write alerts fired over the stream (sla-breach,"
        " admission-shed, ...) here as JSON lines",
    )
    serve.add_argument(
        "--alert-rules", metavar="PATH", default=None,
        help="JSON list of alert rules overriding the built-in defaults",
    )

    perf = commands.add_parser(
        "perf", help="gate current perf metrics against a BENCH baseline"
    )
    perf.add_argument(
        "--workload", choices=sorted(PERF_WORKLOAD_NAMES), default="dgx1-8gpu",
        help="canonical perf workload to collect and gate"
        " (default: dgx1-8gpu; each gates its own BENCH_<name>.json)",
    )
    perf.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="BENCH_*.json baseline file (default: the repo's"
        " BENCH_<workload>.json)",
    )
    perf.add_argument(
        "--store", metavar="DIR", default=None,
        help="read the baseline through a results store (latest 'perf'"
        " record) instead of a BENCH file; see 'repro experiments'",
    )
    perf.add_argument(
        "--baseline-run", metavar="RUN_ID", default=None,
        help="specific store record to gate against (with --store;"
        " unambiguous prefixes allowed)",
    )
    perf.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed relative regression (default 0.10)",
    )
    perf.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current collection and exit"
        " (with --store, also commit it to the ledger)",
    )

    experiments = commands.add_parser(
        "experiments",
        help="experiment farm: sweeps into a results store + observatory",
    )
    exp_sub = experiments.add_subparsers(dest="exp_command", required=True)

    def _store_arg(sub):
        sub.add_argument(
            "--store", metavar="DIR", default=None,
            help="results-store directory (default: $REPRO_RESULTS_STORE"
            " or ./experiments)",
        )

    exp_run = exp_sub.add_parser(
        "run", help="run a parameterized sweep into the store"
    )
    exp_run.add_argument(
        "--sweep", nargs="+", metavar="KEY=V1[,V2,...]", required=True,
        help="axes: topology, policy, scale (GPU count), faults"
        " (preset or 'none'), seed — e.g."
        " --sweep topology=dgx1 policy=adaptive,static scale=2",
    )
    _store_arg(exp_run)
    exp_run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: min(points, CPU count))",
    )
    exp_run.add_argument(
        "--tuples-per-gpu", type=parse_size, default=parse_size("64M"),
        help="logical tuples per relation per GPU for every point",
    )
    exp_run.add_argument(
        "--real-tuples", type=parse_size, default=parse_size("32K"),
        help="materialized tuples per relation per GPU for every point",
    )
    exp_run.add_argument("--seed", type=int, default=42)
    exp_run.add_argument(
        "--workload-cache", metavar="DIR", default=None,
        help="shared on-disk workload cache for the sweep workers",
    )
    exp_run.add_argument(
        "--progress", choices=("human", "jsonl", "quiet"), default="human",
        help="live progress events: one-line-per-point, JSON lines, or off",
    )
    exp_run.add_argument(
        "--stream", metavar="PATH", default=None,
        help="mirror sweep progress into an NDJSON telemetry stream"
        " ('-' = stdout; tail it with 'repro top')",
    )

    exp_list = exp_sub.add_parser("list", help="query the run ledger")
    _store_arg(exp_list)
    exp_list.add_argument("--kind", default=None, help="join / chaos / perf")
    exp_list.add_argument("--topology", default=None)
    exp_list.add_argument("--policy", default=None)

    exp_compare = exp_sub.add_parser(
        "compare", help="direction-aware metric diff between two runs"
    )
    exp_compare.add_argument("baseline_run", metavar="RUN_A")
    exp_compare.add_argument("current_run", metavar="RUN_B")
    _store_arg(exp_compare)
    exp_compare.add_argument(
        "--tolerance", type=float, default=None,
        help="regression-flag threshold (default 0.10)",
    )
    exp_compare.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the rendered report here",
    )

    exp_report = exp_sub.add_parser(
        "report", help="per-topology trend lines over the ledger"
    )
    _store_arg(exp_report)
    exp_report.add_argument(
        "--metric", action="append", default=None, metavar="NAME",
        help="metric(s) to trend (default: join/shuffle throughput)",
    )
    exp_report.add_argument("--kind", default=None)
    exp_report.add_argument("--topology", default=None)

    exp_ingest = exp_sub.add_parser(
        "ingest", help="import BENCH baselines / chaos reports as records"
    )
    exp_ingest.add_argument("paths", nargs="+", metavar="PATH")
    _store_arg(exp_ingest)

    bench = commands.add_parser(
        "bench", help="regenerate figures in parallel with self-time records"
    )
    bench.add_argument(
        "--figures", nargs="*", metavar="NAME", default=None,
        help="figure keys to run (default: the whole suite)",
    )
    bench.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: min(figures, CPU count))",
    )
    bench.add_argument(
        "--out-dir", metavar="DIR", default="bench_results",
        help="artifact directory (per-figure JSON/markdown + bench_run.json)",
    )
    bench.add_argument(
        "--workload-cache", metavar="DIR", default=None,
        help="directory for the shared on-disk workload cache",
    )
    bench.add_argument(
        "--gate", action="store_true",
        help="after the run, gate perf metrics against the BENCH baseline",
    )
    bench.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="BENCH_*.json baseline for --gate (default: repo baseline)",
    )

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", help="fig01, fig04, ..., fig14")
    figure.add_argument("--out", default=None, help="directory for results")

    tpch = commands.add_parser("tpch", help="run TPC-H queries")
    tpch.add_argument("--query", default="all")
    tpch.add_argument(
        "--engine",
        choices=("mg-join", "dprj", "omnisci-gpu", "omnisci-cpu"),
        default="mg-join",
    )
    tpch.add_argument("--scale-factor", type=float, default=250.0)
    tpch.add_argument("--real-scale-factor", type=float, default=0.01)

    top = commands.add_parser(
        "top", help="live dashboard over an NDJSON telemetry stream file"
    )
    top.add_argument(
        "path", metavar="STREAM",
        help="stream file written by a --stream run (may not exist yet)",
    )
    top.add_argument(
        "--follow", action="store_true",
        help="keep tailing until run.finished / sweep.finished arrives"
        " (default: render the current state once and exit)",
    )
    top.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval with --follow (default 0.5)",
    )

    # Accept the global logging flags after the subcommand too
    # (`repro join --quiet` as well as `repro --quiet join`).  The
    # SUPPRESS default keeps an unsupplied subcommand flag from
    # clobbering the value the main parser already set.
    for sub in (
        list(commands.choices.values())
        + list(exp_sub.choices.values())
        + list(chaos_sub.choices.values())
    ):
        sub.add_argument(
            "--log-level", choices=("debug", "info", "warning", "error"),
            default=argparse.SUPPRESS, help=argparse.SUPPRESS,
        )
        sub.add_argument(
            "--quiet", action="store_true",
            default=argparse.SUPPRESS, help=argparse.SUPPRESS,
        )
    return parser


def _configure_logging(args) -> None:
    """Route the ``repro`` logger to *current* stderr at the chosen level.

    Reconfigured per ``main()`` call (handlers replaced, not stacked) so
    repeated in-process invocations — tests, notebooks — never double
    log lines or write to a stale, captured stderr.
    """
    level = "warning" if args.quiet else args.log_level
    logger = logging.getLogger("repro")
    for old in list(logger.handlers):
        logger.removeHandler(old)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    # dest is engine_mode, not engine: subcommands (tpch) own --engine
    # for the *join* engine; the root flag picks the event kernel.
    if getattr(args, "engine_mode", None) is not None:
        # Simulations resolve their kernel through engine_factory_for(),
        # which reads this env var; exporting it also covers worker
        # processes forked by 'repro bench'.
        import os

        from repro.sim.engine import ENGINE_MODE_ENV

        os.environ[ENGINE_MODE_ENV] = args.engine_mode
    handler = {
        "topology": _cmd_topology,
        "join": _cmd_join,
        "shuffle": _cmd_shuffle,
        "trace": _cmd_trace,
        "analyze": _cmd_analyze,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
        "perf": _cmd_perf,
        "bench": _cmd_bench,
        "experiments": _cmd_experiments,
        "figure": _cmd_figure,
        "tpch": _cmd_tpch,
        "top": _cmd_top,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


# ---------------------------------------------------------------------------


def _cmd_topology(args) -> int:
    machine = MACHINES[args.machine]()
    print(f"machine   : {machine.name}")
    print(f"gpus      : {machine.num_gpus}")
    print(f"links     : {len(machine.links)} directed")
    print(f"bisection : {machine.bisection_bandwidth() / 1e9:.1f} GB/s per direction")
    staged = [
        (a, b)
        for a in machine.gpu_ids
        for b in machine.gpu_ids
        if a < b and machine.nvlink_between(a, b) is None
    ]
    print(f"GPU pairs without direct GPU-GPU NVLink: {len(staged)}")
    for gpu_id in machine.gpu_ids:
        neighbors = machine.nvlink_neighbors(gpu_id)
        if neighbors:
            print(f"  gpu{gpu_id}: NVLink to {list(neighbors)}")
    return 0


def _select_gpus(machine, count: int) -> tuple[int, ...]:
    if count < 1 or count > machine.num_gpus:
        raise SystemExit(f"--gpus must be 1..{machine.num_gpus}")
    return tuple(machine.gpu_ids[:count])


def _cmd_join(args) -> int:
    machine = MACHINES[args.machine]()
    gpu_ids = _select_gpus(machine, args.gpus)
    workload = generate_workload(
        WorkloadSpec(
            gpu_ids=gpu_ids,
            logical_tuples_per_gpu=_round_to_multiple(
                args.tuples_per_gpu, args.real_tuples
            ),
            real_tuples_per_gpu=args.real_tuples,
            placement_zipf=args.zipf_placement,
            key_zipf=args.zipf_keys,
            seed=args.seed,
        )
    )
    observer = None
    if args.trace or args.trace_csv or args.stream:
        from repro.obs import Observer

        observer = Observer()
    stream = None
    if args.stream:
        from repro.obs.stream import open_stream

        stream = open_stream(args.stream)
        observer.stream = stream
    algorithm_cls = ALGORITHMS[args.algorithm]
    if args.algorithm == "umj":
        algorithm = algorithm_cls(machine, observer=observer)
    else:
        algorithm = algorithm_cls(
            machine, policy=POLICIES[args.policy](), observer=observer
        )
    try:
        result = algorithm.run(workload)
    finally:
        if stream is not None:
            stream.close()
    # With the stream on stdout the human report moves to the logger so
    # the NDJSON stays machine-parseable.
    say = log.info if args.stream == "-" else print
    say(f"algorithm        : {result.algorithm}")
    say(f"gpus             : {result.num_gpus}")
    say(f"logical tuples   : {result.logical_tuples:,}")
    say(f"matches (logical): {result.matches_logical:,}")
    say(f"total time       : {result.total_time * 1e3:.2f} ms")
    say(f"throughput       : {result.throughput / 1e9:.2f} B tuples/s")
    say(f"cycles / tuple   : {result.cycles_per_tuple:.1f}")
    for phase, seconds in result.breakdown.as_dict().items():
        say(f"  {phase:22s}: {seconds * 1e3:9.2f} ms")
    if args.trace or args.trace_csv:
        from repro.obs import run_metadata

        metadata = run_metadata(
            topology=args.machine,
            num_gpus=len(gpu_ids),
            seed=args.seed,
            algorithm=args.algorithm,
            policy=args.policy,
        )
        _export_observation(observer, args.trace, args.trace_csv, metadata)
    return 0


def _export_observation(observer, trace_path, csv_path, metadata=None) -> None:
    from repro.obs import export

    # Exclusive per-span timings ride every export as span.* gauges.
    export.record_self_time_gauges(observer)
    print()
    if trace_path:
        path = export.write_chrome_trace(observer, trace_path, metadata)
        print(f"chrome trace     : {path} (open in chrome://tracing or Perfetto)")
    if csv_path:
        import pathlib

        pathlib.Path(csv_path).write_text(export.to_csv(observer))
        print(f"merged CSV       : {csv_path}")
    print()
    print(export.summary(observer), end="")


def _round_to_multiple(logical: int, real: int) -> int:
    if logical < real:
        return real
    return (logical // real) * real


def _cmd_shuffle(args) -> int:
    machine = MACHINES[args.machine]()
    gpu_ids = _select_gpus(machine, args.gpus)
    flows = FlowMatrix.all_to_all(gpu_ids, args.bytes_per_flow)
    policy = POLICIES[args.policy]()
    report = ShuffleSimulator(machine, gpu_ids).run(flows, policy)
    print(f"policy               : {report.policy_name}")
    print(f"payload              : {report.payload_bytes / 1e9:.2f} GB")
    print(f"elapsed              : {report.elapsed * 1e3:.2f} ms")
    print(f"throughput           : {report.throughput / 1e9:.1f} GB/s")
    print(f"average hops         : {report.average_hops:.2f}")
    print(f"bisection utilization: {report.bisection_utilization * 100:.1f}%")
    print(
        f"  per direction      : a->b {report.bisection_utilization_ab * 100:.1f}%"
        f"  b->a {report.bisection_utilization_ba * 100:.1f}%"
    )
    busiest = sorted(
        report.link_stats.values(),
        key=lambda stats: stats.busy_time,
        reverse=True,
    )[:5]
    print("busiest links:")
    for stats in busiest:
        print(
            f"  {str(stats.spec):28s} {stats.bytes_sent / 1e9:7.2f} GB "
            f"{stats.utilization(report.elapsed) * 100:5.1f}% busy"
        )
    return 0


def _cmd_trace(args) -> int:
    """One fully-observed shuffle: every exporter exercised."""
    from repro.obs import Observer
    from repro.sim.trace import Tracer

    machine = MACHINES[args.machine]()
    gpu_ids = _select_gpus(machine, args.gpus)
    flows = FlowMatrix.all_to_all(gpu_ids, args.bytes_per_flow)
    policy = POLICIES[args.policy]()
    observer = Observer()
    # Route the per-link trace into the same span store so the Chrome
    # export shows each link's transfers as its own timeline lane.
    tracer = Tracer(spans=observer.spans)
    report = ShuffleSimulator(
        machine, gpu_ids, tracer=tracer, observer=observer
    ).run(flows, policy)
    print(f"policy   : {report.policy_name}")
    print(f"payload  : {report.payload_bytes / 1e9:.2f} GB")
    print(f"elapsed  : {report.elapsed * 1e3:.2f} ms (simulated)")
    print(f"throughput: {report.throughput / 1e9:.1f} GB/s")
    print(
        f"bisection: {report.bisection_utilization * 100:.1f}%"
        f" (a->b {report.bisection_utilization_ab * 100:.1f}%"
        f" / b->a {report.bisection_utilization_ba * 100:.1f}%)"
    )
    if tracer.dropped_events:
        print(f"WARNING  : {tracer.dropped_events} trace events dropped")
    if args.gantt:
        print()
        print(tracer.ascii_gantt(), end="")
    from repro.obs import run_metadata

    metadata = run_metadata(
        topology=args.machine, num_gpus=len(gpu_ids), policy=args.policy
    )
    _export_observation(observer, args.out, args.csv, metadata)
    return 0


def _phase_windows(observer, horizon):
    """Split the shuffle clock at the last route decision: before it
    the global partition pass is still injecting packets, after it the
    network drains into the local partition pass (§4 overlap)."""
    from repro.obs.analyze import PhaseWindow

    decisions = observer.spans.find_instants("arm.decision")
    split = max((instant.time for instant in decisions), default=0.0)
    if 0.0 < split < horizon:
        return [
            PhaseWindow("inject (global partition overlap)", 0.0, split),
            PhaseWindow("drain (local partition overlap)", split, horizon),
        ]
    return None


def _cmd_analyze(args) -> int:
    """One sampled run -> heatmap + bottleneck attribution + regret."""
    from repro.obs import Observer, run_metadata
    from repro.obs.analyze import (
        LinkTimelineSampler,
        ascii_heatmap,
        attribute,
        audit_decisions,
        render_bottleneck_report,
        render_regret_table,
        write_analysis,
    )

    machine = MACHINES[args.machine]()
    gpu_ids = _select_gpus(machine, args.gpus)
    observer = Observer()
    if args.conformance:
        from repro.obs.conformance import ConformanceProbe

        observer.conformance = ConformanceProbe()
    sampler = LinkTimelineSampler()
    if args.mode == "join":
        workload = generate_workload(
            WorkloadSpec(
                gpu_ids=gpu_ids,
                logical_tuples_per_gpu=_round_to_multiple(
                    args.tuples_per_gpu, args.real_tuples
                ),
                real_tuples_per_gpu=args.real_tuples,
                placement_zipf=args.zipf_placement,
                key_zipf=args.zipf_keys,
                seed=args.seed,
            )
        )
        faults = None
        if args.chaos is not None:
            from repro.faults import resolve_plan

            healthy = MGJoin(machine, policy=POLICIES[args.policy]()).run(
                workload
            )
            if healthy.shuffle_report is None:
                print("workload never shuffles; nothing to break")
                return 1
            faults = resolve_plan(
                args.chaos,
                machine,
                healthy.shuffle_report.elapsed,
                args.seed,
                gpu_ids,
            )
        algorithm = MGJoin(
            machine,
            policy=POLICIES[args.policy](),
            observer=observer,
            sampler=sampler,
            faults=faults,
        )
        result = algorithm.run(workload)
        report = result.shuffle_report
        print(f"algorithm : {result.algorithm}  ({len(gpu_ids)} GPUs)")
        print(f"total time: {result.total_time * 1e3:.2f} ms")
    else:
        flows = FlowMatrix()
        for src in gpu_ids:
            for dst in gpu_ids:
                if src != dst:
                    flows.add(src, dst, args.bytes_per_flow)
                    if args.hot_gpu is not None and dst == args.hot_gpu:
                        flows.add(src, dst, 5 * args.bytes_per_flow)
        faults = None
        if args.chaos is not None:
            from repro.faults import resolve_plan

            healthy = ShuffleSimulator(machine, gpu_ids).run(
                flows, POLICIES[args.policy]()
            )
            faults = resolve_plan(
                args.chaos, machine, healthy.elapsed, args.seed, gpu_ids
            )
        report = ShuffleSimulator(
            machine, gpu_ids, observer=observer, sampler=sampler, faults=faults
        ).run(flows, POLICIES[args.policy]())
    if report is None:
        print("no distribution step was simulated; nothing to analyze")
        return 1
    print(
        f"shuffle   : {report.elapsed * 1e3:.2f} ms,"
        f" {report.throughput / 1e9:.1f} GB/s,"
        f" bisection {report.bisection_utilization * 100:.1f}%"
        f" (a->b {report.bisection_utilization_ab * 100:.1f}%"
        f" / b->a {report.bisection_utilization_ba * 100:.1f}%)"
    )
    timeline = sampler.timeline(args.buckets)
    phases = _phase_windows(observer, sampler.horizon)
    bottlenecks = attribute(sampler, report.cut, phases=phases, top=args.top)
    regret = audit_decisions(machine, observer, sampler)
    print()
    print(ascii_heatmap(timeline, top=args.top))
    print()
    print(render_bottleneck_report(bottlenecks, top_links=min(5, args.top)))
    print()
    print(render_regret_table(regret, top=args.top))
    if observer.conformance is not None:
        print()
        print("\n".join(observer.conformance.render()))
    fault_events = observer.spans.find_instants(category="fault")
    if fault_events:
        print()
        print(f"fault / recovery events ({len(fault_events)}):")
        for instant in fault_events[: 2 * args.top]:
            attrs = " ".join(
                f"{key}={value}"
                for key, value in sorted(instant.attrs.items())
            )
            print(
                f"  {instant.time * 1e3:9.3f} ms  {instant.name:<15} {attrs}"
            )
        shown = 2 * args.top
        if len(fault_events) > shown:
            print(f"  ... {len(fault_events) - shown} more")
    if report.recovery is not None:
        rec = report.recovery
        dead = ", ".join(f"gpu{g}" for g in rec.crashed_gpus)
        print()
        print("join-level recovery:")
        print(f"  dead GPUs          : {dead}")
        print(
            f"  detection latency  : {rec.max_detection_latency * 1e3:.3f} ms"
            f" (max over {len(rec.crashed_gpus)} crash(es))"
        )
        print(f"  re-shuffled        : {rec.reshuffled_bytes / 1e6:.2f} MB")
        print(f"  host re-sent       : {rec.host_resent_bytes / 1e6:.2f} MB")
        print(
            f"  checkpoint restored: "
            f"{rec.checkpoint_restored_bytes / 1e6:.2f} MB"
        )
        print(
            f"  recovery elapsed   : {rec.recovery_elapsed * 1e3:.3f} ms"
            f" ({rec.recovery_share(report.elapsed) * 100:.1f}% of the"
            f" shuffle)"
        )
    if args.out_dir:
        metadata = run_metadata(
            topology=args.machine,
            num_gpus=len(gpu_ids),
            seed=args.seed,
            policy=args.policy,
            mode=args.mode,
        )
        paths = write_analysis(
            args.out_dir,
            timeline=timeline,
            bottlenecks=bottlenecks,
            regret=regret,
            metadata=metadata,
        )
        print()
        for path in paths:
            print(f"wrote {path}")
    return 0


def _cmd_chaos(args) -> int:
    """Run one chaos scenario and grade completion + correctness."""
    from dataclasses import asdict

    from repro.core.recovery import RecoveryError
    from repro.faults import FaultPlan, FaultPlanError, run_chaos
    from repro.obs import Observer, run_metadata
    from repro.sim import SimulationError
    from repro.sim.recovery import RecoveryConfig, RetryPolicy

    if getattr(args, "chaos_command", None) == "fuzz":
        return _cmd_chaos_fuzz(args)
    if args.serve:
        return _cmd_chaos_serve(args)
    if args.plan is None and args.preset is None:
        raise SystemExit("chaos needs --preset NAME or --plan PATH")
    machine = MACHINES[args.machine]()
    gpu_ids = _select_gpus(machine, args.gpus)
    workload = generate_workload(
        WorkloadSpec(
            gpu_ids=gpu_ids,
            logical_tuples_per_gpu=_round_to_multiple(
                args.tuples_per_gpu, args.real_tuples
            ),
            real_tuples_per_gpu=args.real_tuples,
            seed=args.seed,
        )
    )
    # Retry knobs: CLI flags win over the plan's baked-in retry section,
    # which wins over RetryPolicy defaults.
    cli_retry = {
        key: value
        for key, value in (
            ("max_attempts", args.max_attempts),
            ("acquire_timeout", args.acquire_timeout),
            ("host_bandwidth", args.host_bandwidth),
        )
        if value is not None
    }
    recovery = (
        RecoveryConfig(checkpoint_interval=args.checkpoint_interval)
        if args.checkpoint_interval is not None
        else None
    )
    stream = None
    alert_engine = None
    try:
        scenario = (
            FaultPlan.from_file(args.plan).validate(machine, gpu_ids)
            if args.plan is not None
            else args.preset
        )
        retry = None
        if cli_retry:
            base = (
                scenario.retry_kwargs
                if isinstance(scenario, FaultPlan)
                else {}
            )
            retry = RetryPolicy(**{**base, **cli_retry})
        observer = Observer()
        if args.stream or args.alerts or args.alert_rules:
            from repro.obs.alerts import AlertEngine, load_rules
            from repro.obs.conformance import ConformanceProbe
            from repro.obs.stream import TelemetryStream, open_stream

            # No --stream file still gets a subscriber-only bus so the
            # alert engine can listen; conformance rides along so the
            # residual-drift rule has events to chew on.
            stream = (
                open_stream(args.stream) if args.stream
                else TelemetryStream(None)
            )
            rules = (
                load_rules(args.alert_rules)
                if args.alert_rules is not None
                else None
            )
            alert_engine = AlertEngine(stream, rules, path=args.alerts)
            observer.stream = stream
            observer.conformance = ConformanceProbe()
        report = run_chaos(
            machine,
            workload,
            scenario,
            policy=POLICIES[args.policy](),
            seed=args.seed,
            observer=observer,
            strict=False,
            retry=retry,
            recovery=recovery,
            verify=args.verify,
        )
    except (FaultPlanError, RecoveryError, SimulationError) as exc:
        print(f"chaos cannot run this scenario: {exc}", file=sys.stderr)
        return 2
    finally:
        if alert_engine is not None:
            alert_engine.close()
        if stream is not None:
            stream.close()
    # With the stream on stdout the human report moves to the logger so
    # the NDJSON stays machine-parseable.
    say = log.info if args.stream == "-" else print
    for line in report.summary_lines():
        say(line)
    if alert_engine is not None:
        fired = alert_engine.summary()
        severities = ", ".join(
            f"{name}={count}"
            for name, count in sorted(fired["by_severity"].items())
        )
        say(
            f"alerts fired   : {fired['fired']}"
            + (f" ({severities})" if severities else "")
        )
    ok = report.correct
    if report.silent_corruption_detected:
        say(
            "FAIL: unverified transport delivered corrupted data; the "
            "end-to-end audit caught it (rerun with --verify to repair)"
        )
    elif not ok:
        say("FAIL: faulted run corrupted the join result")
    if args.expect_loss and report.faulted.recovery is None:
        say(
            "FAIL: --expect-loss was given but no GPU died; join-level "
            "recovery never engaged"
        )
        ok = False
    if (
        args.min_retention is not None
        and report.throughput_retention < args.min_retention
    ):
        say(
            f"FAIL: retention {report.throughput_retention:.3f} below the "
            f"--min-retention floor {args.min_retention:.3f}"
        )
        ok = False
    # The effective knobs (post-precedence) ride in the metadata so a
    # chaos run is reproducible from its JSON artifacts alone.
    effective_retry = retry
    if effective_retry is None:
        effective_retry = RetryPolicy(**report.plan.retry_kwargs)
    effective_recovery = recovery or RecoveryConfig()
    metadata = run_metadata(
        topology=args.machine,
        num_gpus=len(gpu_ids),
        seed=args.seed,
        policy=args.policy,
        scenario=report.plan.name,
        retry=asdict(effective_retry),
        recovery=asdict(effective_recovery),
    )
    trace_path = args.trace
    if args.out_dir is not None or args.store is not None:
        import json
        import pathlib

        recovery_report = report.faulted.recovery
        payload = {
            "plan": report.plan.to_dict(),
            "correct": report.correct,
            "throughput_retention": report.throughput_retention,
            "healthy_seconds": report.healthy.total_time,
            "faulted_seconds": report.faulted.total_time,
            "healthy_digest": report.healthy.match_digest,
            "faulted_digest": report.faulted.match_digest,
            "counters": report.fault_counters,
            "integrity": (
                report.integrity.to_dict()
                if report.integrity is not None
                else None
            ),
            "retry": asdict(effective_retry),
            "recovery": asdict(effective_recovery),
            "recovery_telemetry": (
                {
                    "dead_gpus": list(recovery_report.dead_gpus),
                    "survivors": list(recovery_report.survivors),
                    "detection_latency_seconds": (
                        recovery_report.max_detection_latency
                    ),
                    "partitions_reassigned": (
                        recovery_report.partitions_reassigned
                    ),
                    "reshuffled_bytes": recovery_report.reshuffled_bytes,
                    "host_resent_bytes": recovery_report.host_resent_bytes,
                    "checkpoint_restored_bytes": (
                        recovery_report.checkpoint_restored_bytes
                    ),
                    "bytes_discarded": recovery_report.bytes_discarded,
                    "recovery_elapsed_seconds": (
                        recovery_report.recovery_elapsed
                    ),
                    "recovery_time_share": (
                        recovery_report.recovery_time_share
                    ),
                }
                if recovery_report is not None
                else None
            ),
            "run": dict(metadata),
        }
        if alert_engine is not None:
            payload["alerts"] = alert_engine.fired
        if args.out_dir is not None:
            out_dir = pathlib.Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            if trace_path is None:
                trace_path = str(out_dir / "chaos_trace.json")
            report_path = out_dir / "chaos_report.json"
            report_path.write_text(json.dumps(payload, indent=1))
            say(f"chaos report   : {report_path}")
        if args.store is not None:
            from repro.experiments.store import chaos_record

            record = _resolve_store(args.store).put(chaos_record(payload))
            say(f"ledger record  : {record.run_id} (rev {record.revision})")
    if trace_path is not None:
        _export_observation(observer, trace_path, None, metadata)
    if report.silent_corruption_detected:
        return 3
    return 0 if ok else 1


def _cmd_chaos_fuzz(args) -> int:
    """Fuzz random fault plans against the healthy-digest property."""
    from dataclasses import replace as dc_replace

    from repro.core.config import MGJoinConfig
    from repro.core.recovery import RecoveryError
    from repro.faults import ChaosError, FaultPlanError, run_chaos
    from repro.faults.fuzz import run_fuzz
    from repro.obs import run_metadata
    from repro.sim import SimulationError

    machine = MACHINES[args.machine]()
    gpu_ids = _select_gpus(machine, args.gpus)
    workload = generate_workload(
        WorkloadSpec(
            gpu_ids=gpu_ids,
            logical_tuples_per_gpu=_round_to_multiple(
                args.tuples_per_gpu, args.real_tuples
            ),
            real_tuples_per_gpu=args.real_tuples,
            seed=args.seed,
        )
    )
    # One healthy baseline for the whole campaign; every plan is graded
    # against its digest and scaled to its shuffle duration.
    config = dc_replace(MGJoinConfig(), materialize=True)
    healthy = MGJoin(
        machine, config=config, policy=POLICIES[args.policy]()
    ).run(workload)
    if healthy.shuffle_report is None:
        raise SystemExit("chaos fuzz needs a workload that shuffles data")
    horizon = healthy.shuffle_report.elapsed

    def runner(plan) -> "str | None":
        try:
            chaos = run_chaos(
                machine,
                workload,
                plan,
                config=config,
                policy=POLICIES[args.policy](),
                seed=args.seed,
                strict=False,
                verify=args.verify,
                healthy=healthy,
            )
        except (ChaosError, FaultPlanError, RecoveryError, SimulationError) as exc:
            return f"{type(exc).__name__}: {exc}"
        if chaos.silent_corruption_detected:
            stats = chaos.integrity
            return (
                f"silent corruption: {stats.corrupt_delivered} corrupt, "
                f"{stats.dup_delivered} duplicate deliveries"
            )
        if not chaos.correct:
            return "digest mismatch: faulted join differs from healthy"
        return None

    report = run_fuzz(
        machine,
        horizon,
        runner,
        seed=args.seed,
        budget=args.budget,
        gpu_ids=gpu_ids,
        shrink_budget=args.shrink_budget,
        log=log.info,
    )
    for line in report.summary_lines():
        print(line)
    if args.out_dir is not None or args.store is not None:
        import json
        import pathlib

        metadata = run_metadata(
            topology=args.machine,
            num_gpus=len(gpu_ids),
            seed=args.seed,
            policy=args.policy,
            verify=args.verify,
            budget=args.budget,
        )
        payload = dict(report.to_dict(), run=dict(metadata))
        if args.out_dir is not None:
            out_dir = pathlib.Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            report_path = out_dir / "fuzz_report.json"
            report_path.write_text(json.dumps(payload, indent=1))
            print(f"fuzz report    : {report_path}")
            for failure in report.failures:
                plan_path = out_dir / f"{failure.plan.name}.min.json"
                plan_path.write_text(
                    json.dumps(failure.shrunk.to_dict(), indent=1)
                )
                print(f"reproducer     : {plan_path}")
        if args.store is not None:
            from repro.experiments.store import fuzz_record

            record = _resolve_store(args.store).put(fuzz_record(payload))
            print(f"ledger record  : {record.run_id} (rev {record.revision})")
    return 0 if report.ok else 1


def _serve_observability(args):
    """(observer, stream, alert_engine) for the serving-layer commands."""
    from repro.obs import Observer

    observer = Observer()
    stream = None
    alert_engine = None
    if args.stream or args.alerts or args.alert_rules:
        from repro.obs.alerts import AlertEngine, load_rules
        from repro.obs.stream import TelemetryStream, open_stream

        stream = (
            open_stream(args.stream) if args.stream else TelemetryStream(None)
        )
        rules = (
            load_rules(args.alert_rules)
            if args.alert_rules is not None
            else None
        )
        alert_engine = AlertEngine(stream, rules, path=args.alerts)
        observer.stream = stream
    return observer, stream, alert_engine


def _say_alert_summary(say, alert_engine) -> None:
    if alert_engine is None:
        return
    fired = alert_engine.summary()
    severities = ", ".join(
        f"{name}={count}"
        for name, count in sorted(fired["by_severity"].items())
    )
    say(
        f"alerts fired         : {fired['fired']}"
        + (f" ({severities})" if severities else "")
    )


def _cmd_serve(args) -> int:
    """Serve a request batch (file or synthetic) over one shared fabric."""
    import json

    from repro.faults import FaultPlan, FaultPlanError
    from repro.serve import QueryScheduler, load_requests, synthetic_requests
    from repro.sim import SimulationError

    if (args.requests is None) == (args.synthetic is None):
        raise SystemExit("serve needs a request file or --synthetic N (not both)")
    machine = MACHINES[args.machine]()
    try:
        if args.synthetic is not None:
            requests = synthetic_requests(
                args.synthetic,
                gpus=args.gpus,
                tuples=args.tuples,
                arrival_spacing=args.arrival_spacing,
                deadline=args.deadline,
                priority_period=args.priority_period,
                seed=args.seed,
            )
        else:
            requests = load_requests(args.requests)
        plan = FaultPlan.from_file(args.plan) if args.plan is not None else None
    except (FaultPlanError, OSError, ValueError) as exc:
        print(f"serve cannot load its inputs: {exc}", file=sys.stderr)
        return 2
    observer, stream, alert_engine = _serve_observability(args)
    try:
        report = QueryScheduler(
            machine,
            requests,
            policy_factory=POLICIES[args.policy],
            max_in_flight=args.max_in_flight,
            queue_depth=args.queue_depth,
            arbitration=(
                None if args.arbitration == "none" else args.arbitration
            ),
            faults=plan,
            retry_budget=args.retry_budget,
            observer=observer,
        ).run()
    except (FaultPlanError, SimulationError, ValueError) as exc:
        print(f"serve cannot run: {exc}", file=sys.stderr)
        return 2
    finally:
        if alert_engine is not None:
            alert_engine.close()
        if stream is not None:
            stream.close()
    say = log.info if args.stream == "-" else print
    for line in report.summary_lines():
        say(line)
    _say_alert_summary(say, alert_engine)
    if args.json is not None:
        import pathlib

        pathlib.Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=1)
        )
        say(f"serve report         : {args.json}")
    return report.exit_code


def _cmd_chaos_serve(args) -> int:
    """Chaos under concurrency: crash the fabric under many queries."""
    import json
    from dataclasses import asdict

    from repro.core.recovery import RecoveryError
    from repro.faults import ChaosError, FaultPlan, FaultPlanError
    from repro.obs import run_metadata
    from repro.serve import run_serve_chaos, synthetic_requests
    from repro.sim import SimulationError
    from repro.sim.recovery import RecoveryConfig, RetryPolicy

    if args.plan is None and args.preset is None:
        raise SystemExit("chaos --serve needs --preset NAME or --plan PATH")
    machine = MACHINES[args.machine]()
    requests = synthetic_requests(
        args.queries,
        gpus=args.gpus,
        tuples=args.real_tuples,
        seed=args.seed,
    )
    cli_retry = {
        key: value
        for key, value in (
            ("max_attempts", args.max_attempts),
            ("acquire_timeout", args.acquire_timeout),
            ("host_bandwidth", args.host_bandwidth),
        )
        if value is not None
    }
    recovery = (
        RecoveryConfig(checkpoint_interval=args.checkpoint_interval)
        if args.checkpoint_interval is not None
        else None
    )
    observer, stream, alert_engine = _serve_observability(args)
    try:
        scenario = (
            FaultPlan.from_file(args.plan)
            if args.plan is not None
            else args.preset
        )
        retry = None
        if cli_retry:
            base = (
                scenario.retry_kwargs
                if isinstance(scenario, FaultPlan)
                else {}
            )
            retry = RetryPolicy(**{**base, **cli_retry})
        report = run_serve_chaos(
            machine,
            requests,
            scenario,
            policy_factory=POLICIES[args.policy],
            seed=args.seed,
            min_in_flight=args.min_in_flight,
            arbitration=(
                None if args.arbitration == "none" else args.arbitration
            ),
            retry=retry,
            recovery=recovery,
            retry_budget=args.retry_budget,
            observer=observer,
            strict=False,
        )
    except (
        ChaosError,
        FaultPlanError,
        RecoveryError,
        SimulationError,
        ValueError,
    ) as exc:
        print(f"chaos --serve cannot run this scenario: {exc}", file=sys.stderr)
        return 2
    finally:
        if alert_engine is not None:
            alert_engine.close()
        if stream is not None:
            stream.close()
    say = log.info if args.stream == "-" else print
    for line in report.summary_lines():
        say(line)
    _say_alert_summary(say, alert_engine)
    if not report.correct:
        say("FAIL: concurrency-identity gate broken (see DIVERGED lines)")
    if args.out_dir is not None or args.store is not None:
        import pathlib

        effective_retry = retry or RetryPolicy(**report.plan.retry_kwargs)
        metadata = run_metadata(
            topology=args.machine,
            num_gpus=args.gpus,
            seed=args.seed,
            policy=args.policy,
            scenario=report.plan.name,
            queries=args.queries,
            retry=asdict(effective_retry),
            recovery=asdict(recovery or RecoveryConfig()),
        )
        payload = dict(report.to_dict(), run=dict(metadata))
        if alert_engine is not None:
            payload["alerts"] = alert_engine.fired
        if args.out_dir is not None:
            out_dir = pathlib.Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            report_path = out_dir / "serve_chaos_report.json"
            report_path.write_text(json.dumps(payload, indent=1))
            say(f"serve-chaos report: {report_path}")
        if args.store is not None:
            from repro.experiments.store import serve_chaos_record

            record = _resolve_store(args.store).put(serve_chaos_record(payload))
            say(f"ledger record  : {record.run_id} (rev {record.revision})")
    return 0 if report.correct else 1


def _resolve_store(path: str | None):
    """A ResultsStore at ``path``, $REPRO_RESULTS_STORE, or ./experiments."""
    import os

    from repro.experiments import DEFAULT_STORE_DIR, RESULTS_STORE_ENV, ResultsStore

    return ResultsStore(
        path or os.environ.get(RESULTS_STORE_ENV) or DEFAULT_STORE_DIR
    )


def _cmd_perf(args) -> int:
    """Collect perf metrics, gate against (or refresh) the baseline."""
    from repro.bench import regression
    from repro.obs import run_metadata

    workload = regression.PERF_WORKLOADS[args.workload]
    path = args.baseline or regression.baseline_path(workload.name)
    current = regression.collect_perf_metrics(workload=workload)
    if args.update:
        metadata = run_metadata(
            topology=workload.topology, num_gpus=workload.num_gpus,
            seed=workload.seed, policy="adaptive",
            workload=f"skewed-shuffle+mg-join:{workload.name}",
        )
        regression.write_baseline(path, current, metadata)
        print(f"baseline updated: {path}")
        if args.store is not None:
            record = _resolve_store(args.store).ingest(path)
            print(f"ledger record   : {record.run_id} (rev {record.revision})")
        return 0
    tolerance = (
        args.tolerance if args.tolerance is not None
        else regression.DEFAULT_TOLERANCE
    )
    if args.store is not None:
        from repro.experiments import StoreError

        try:
            result, baseline_run = regression.run_gate_from_store(
                _resolve_store(args.store),
                run_id=args.baseline_run,
                tolerance=tolerance,
                current=current,
            )
        except StoreError as exc:
            print(f"perf gate cannot read the store: {exc}", file=sys.stderr)
            return 2
        print(f"baseline via store: {baseline_run}")
    else:
        result = regression.run_gate(path, tolerance=tolerance, current=current)
    print(result.render(), end="")
    return 0 if result.ok else 1


def _cmd_experiments(args) -> int:
    """Dispatch ``repro experiments run|list|compare|report|ingest``."""
    return {
        "run": _cmd_experiments_run,
        "list": _cmd_experiments_list,
        "compare": _cmd_experiments_compare,
        "report": _cmd_experiments_report,
        "ingest": _cmd_experiments_ingest,
    }[args.exp_command](args)


def _cmd_experiments_run(args) -> int:
    import json

    from repro.experiments import SweepError, SweepPoint, parse_sweep, run_batch

    defaults = SweepPoint(
        tuples_per_gpu=_round_to_multiple(args.tuples_per_gpu, args.real_tuples),
        real_tuples=args.real_tuples,
        seed=args.seed,
    )
    try:
        points = parse_sweep(args.sweep, defaults=defaults)
    except SweepError as exc:
        raise SystemExit(str(exc)) from exc
    store = _resolve_store(args.store)

    # Human progress rides the logger (stderr) so stdout stays free for
    # --progress jsonl and --stream - machine output.
    def emit_human(event: dict) -> None:
        kind = event["event"]
        if kind == "sweep_started":
            log.info(
                "sweep: %d point(s), %d job(s) -> %s",
                event["points"], event["jobs"], event["store"],
            )
        elif kind == "point_finished":
            throughput = event.get("throughput_btps")
            rate = f"  {throughput:.3f} Btps" if throughput is not None else ""
            log.info(
                "  [%d/%d] %-32s %s  %.2fs%s",
                event["completed"], event["points"], event["label"],
                event["run_id"], event.get("seconds") or 0.0, rate,
            )
        elif kind == "point_failed":
            log.error("  FAILED %s: %s", event["label"], event["error"])
        elif kind == "sweep_finished":
            log.info(
                "sweep done: %d ok, %d failed, wall %.1fs",
                event["points"] - event["failed"], event["failed"],
                event["wall_seconds"],
            )

    progress = {
        "human": emit_human,
        "jsonl": lambda event: print(json.dumps(event, sort_keys=True)),
        "quiet": None,
    }[args.progress]
    stream = None
    if args.stream:
        from repro.obs.stream import open_stream

        stream = open_stream(args.stream)
    try:
        records = run_batch(
            points,
            store,
            jobs=args.jobs,
            workload_cache=args.workload_cache,
            progress=progress,
            stream=stream,
        )
    except SweepError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if stream is not None:
            stream.close()
    log.info(
        "ledger: %s (%d record(s) written)", store.ledger_path, len(records)
    )
    return 0


def _cmd_experiments_list(args) -> int:
    store = _resolve_store(args.store)
    filters = {}
    if args.topology is not None:
        filters["topology"] = args.topology
    if args.policy is not None:
        filters["policy"] = args.policy
    entries = store.select(kind=args.kind, **filters)
    if not entries:
        print(f"(no matching runs in {store.root})")
        return 0
    print(
        f"{'seq':>4}  {'run id':<24} {'kind':<6} {'topology':<12}"
        f" {'policy':<12} {'gpus':>4}  rev  headline"
    )
    for entry in entries:
        headline = ""
        for name in (
            "join.throughput_btps",
            "chaos.throughput_retention",
            "shuffle.throughput_gbps",
        ):
            if entry.get(name) is not None:
                headline = f"{name}={entry[name]:.4f}"
                break
        print(
            f"{entry['sequence']:>4}  {entry['run_id']:<24}"
            f" {entry.get('kind') or '?':<6}"
            f" {entry.get('topology') or '?':<12}"
            f" {entry.get('policy') or '?':<12}"
            f" {entry.get('num_gpus') or '?':>4}"
            f"  {entry.get('revision', 1):>3}  {headline}"
        )
    return 0


def _cmd_experiments_compare(args) -> int:
    from repro.bench.regression import DEFAULT_TOLERANCE
    from repro.experiments import StoreError, diff_records, render_compare

    store = _resolve_store(args.store)
    try:
        baseline = store.get(args.baseline_run)
        current = store.get(args.current_run)
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    tolerance = (
        args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    )
    result = diff_records(baseline, current, tolerance=tolerance)
    rendered = render_compare(baseline, current, result)
    print(rendered, end="")
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(rendered)
        print(f"wrote {args.out}")
    return 0 if result.ok else 1


def _cmd_experiments_report(args) -> int:
    from repro.experiments import render_trends

    store = _resolve_store(args.store)
    print(
        render_trends(
            store,
            metrics=args.metric,
            kind=args.kind,
            topology=args.topology,
        ),
        end="",
    )
    return 0


def _cmd_experiments_ingest(args) -> int:
    from repro.experiments import StoreError

    store = _resolve_store(args.store)
    code = 0
    for path in args.paths:
        try:
            record = store.ingest(path)
        except (StoreError, OSError, ValueError) as exc:
            print(f"cannot ingest {path}: {exc}", file=sys.stderr)
            code = 1
            continue
        print(f"ingested {path} -> {record.run_id} (rev {record.revision})")
    return code


def _cmd_bench(args) -> int:
    """Fan the figure suite out over a process pool; optionally gate."""
    from repro.bench import regression
    from repro.bench.runner import run_benchmarks

    try:
        bench = run_benchmarks(
            figures=args.figures,
            jobs=args.jobs,
            out_dir=args.out_dir,
            workload_cache=args.workload_cache,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    print(bench.render(), end="")
    print(f"manifest: {args.out_dir}/bench_run.json")
    ok = bench.ok
    if args.gate:
        path = args.baseline or regression.baseline_path()
        result = regression.run_gate(path)
        print()
        print(result.render(), end="")
        ok = ok and result.ok
    return 0 if ok else 1


def _cmd_figure(args) -> int:
    from repro.bench import figures
    from repro.bench.reporting import save_figure_result

    name = args.name.lower()
    if name not in figures.ALL_FIGURES:
        raise SystemExit(
            f"unknown figure {args.name!r}; have {sorted(figures.ALL_FIGURES)}"
        )
    result = figures.ALL_FIGURES[name]()
    print(result.to_markdown())
    if args.out:
        path = save_figure_result(result, args.out)
        print(f"\nsaved to {path}")
    return 0


def _cmd_top(args) -> int:
    """Render (or --follow) the live dashboard for a stream file."""
    from repro.obs.top import follow

    follow(
        args.path,
        interval=args.interval,
        iterations=None if args.follow else 1,
    )
    return 0


def _cmd_tpch(args) -> int:
    from repro.relational import (
        DPRJQueryEngine,
        MGJoinQueryEngine,
        OmnisciCpuEngine,
        OmnisciGpuEngine,
    )
    from repro.relational.tpch import QUERIES, generate_tpch, run_query

    machine = dgx1_topology()
    database = generate_tpch(scale_factor=args.real_scale_factor)
    scale = args.scale_factor / args.real_scale_factor
    engine_cls = {
        "mg-join": MGJoinQueryEngine,
        "dprj": DPRJQueryEngine,
        "omnisci-gpu": OmnisciGpuEngine,
        "omnisci-cpu": OmnisciCpuEngine,
    }[args.engine]
    engine = engine_cls(machine, logical_scale=scale)
    queries = sorted(QUERIES) if args.query == "all" else [args.query]
    for query in queries:
        outcome = run_query(query, engine, database)
        if outcome.is_na:
            print(f"{query:>4}: NA ({outcome.na_reason})")
        else:
            print(f"{query:>4}: {outcome.seconds:8.3f} s "
                  f"({outcome.table.num_rows} result rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
