"""Property-based chaos fuzzer: random fault plans, shrunk reproducers.

The fuzzer samples fault plans from a seeded grammar covering every
:class:`FaultKind`, runs each against a property oracle (by default:
"the faulted join still produces the healthy canonical match digest"),
and — when a plan breaks the property — *shrinks* it to a minimal
reproducer by dropping events and softening magnitudes/durations while
the failure persists.

Determinism contract: the plan sequence is a pure function of
``(seed, budget)``.  No wall clock, no global RNG — every draw comes
from a :class:`random.Random` seeded from :data:`FUZZ_SALT`, the fuzz
seed, and the plan name, so ``repro chaos fuzz --seed 8 --budget 25``
reproduces the same plans on any machine and interpreter.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.faults.plan import (
    CORRUPTION_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    _nvlink_pairs,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology.machine import MachineTopology

__all__ = [
    "FUZZ_SALT",
    "FuzzError",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz",
    "sample_plan",
    "shrink_plan",
]

#: Mixed into every plan RNG so fuzz streams never collide with the
#: preset-builder streams (which hash the same plan names).
FUZZ_SALT = zlib.crc32(b"chaos-fuzz")

#: Deterministic kind order for sampling (enum definition order).
_ALL_KINDS = tuple(FaultKind)

#: Floors below which shrinking stops softening a knob.
_MIN_DURATION = 1e-6
_MIN_CORRUPTION = 0.05


class FuzzError(RuntimeError):
    """The fuzzer itself failed (e.g. could not sample a valid plan)."""


def sample_plan(
    machine: "MachineTopology",
    horizon: float,
    seed: int,
    index: int,
    gpu_ids: "tuple[int, ...] | None" = None,
) -> FaultPlan:
    """Sample the ``index``-th plan of the ``seed`` fuzz stream.

    Plans carry 1-3 events over every fault kind (at most one
    ``gpu-crash``), scheduled in the first half of ``horizon`` so they
    land while the shuffle is still moving data.  Invalid combinations
    (permanent-fault conflicts) are resampled from the same RNG stream,
    so validity filtering never breaks determinism.
    """
    name = f"fuzz-{seed}-{index:03d}"
    rng = random.Random(FUZZ_SALT ^ seed ^ zlib.crc32(name.encode("utf-8")))
    participants = tuple(sorted(gpu_ids)) if gpu_ids else machine.gpu_ids
    pairs = _nvlink_pairs(machine, gpu_ids)
    for _ in range(32):
        events = []
        crashed = False
        for _ in range(rng.randint(1, 3)):
            kind = rng.choice(_ALL_KINDS)
            if kind is FaultKind.GPU_CRASH and crashed:
                kind = FaultKind.GPU_STRAGGLER
            events.append(_sample_event(kind, rng, horizon, participants, pairs))
            crashed = crashed or kind is FaultKind.GPU_CRASH
        try:
            return FaultPlan(
                name=name, events=tuple(events), seed=seed
            ).validate(machine, gpu_ids)
        except FaultPlanError:
            continue  # conflict (e.g. event after a crash); redraw
    raise FuzzError(
        f"could not sample a valid plan for {name!r} after 32 attempts"
    )


def _sample_event(
    kind: FaultKind,
    rng: random.Random,
    horizon: float,
    participants: tuple[int, ...],
    pairs: list[tuple[int, int]],
) -> FaultEvent:
    at = rng.uniform(0.0, 0.5 * horizon)
    if kind in (FaultKind.GPU_STRAGGLER, FaultKind.GPU_CRASH):
        gpu = rng.choice(participants)
        if kind is FaultKind.GPU_CRASH:
            return FaultEvent(kind=kind, at=at, gpu=gpu)
        return FaultEvent(
            kind=kind,
            at=at,
            gpu=gpu,
            duration=rng.uniform(0.2, 0.8) * horizon,
            magnitude=rng.uniform(1.5, 8.0),
        )
    src, dst = rng.choice(pairs)
    if kind is FaultKind.LINK_FAIL:
        return FaultEvent(kind=kind, at=at, src=src, dst=dst)
    if kind is FaultKind.LINK_DEGRADE:
        return FaultEvent(
            kind=kind,
            at=at,
            src=src,
            dst=dst,
            duration=rng.uniform(0.2, 0.8) * horizon,
            magnitude=rng.uniform(0.05, 0.9),
        )
    if kind is FaultKind.LINK_BLACKOUT:
        return FaultEvent(
            kind=kind,
            at=at,
            src=src,
            dst=dst,
            duration=rng.uniform(0.05, 0.4) * horizon,
        )
    assert kind in CORRUPTION_KINDS
    return FaultEvent(
        kind=kind,
        at=at,
        src=src,
        dst=dst,
        duration=rng.uniform(0.3, 0.9) * horizon,
        magnitude=rng.uniform(_MIN_CORRUPTION, 1.0),
    )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _soften(event: FaultEvent) -> FaultEvent | None:
    """One softening step toward a milder event; ``None`` at the floor.

    Magnitudes move halfway toward harmless before durations halve, so
    the reproducer pins down *how much* fault is needed, not just how
    long.
    """
    if event.kind is FaultKind.LINK_DEGRADE and event.magnitude < 0.95:
        return replace(event, magnitude=min(0.95, (event.magnitude + 1.0) / 2))
    if event.kind is FaultKind.GPU_STRAGGLER and event.magnitude > 1.1:
        return replace(event, magnitude=1.0 + (event.magnitude - 1.0) / 2)
    if event.kind in CORRUPTION_KINDS and event.magnitude > _MIN_CORRUPTION:
        return replace(
            event, magnitude=max(_MIN_CORRUPTION, event.magnitude / 2)
        )
    if event.duration is not None and event.duration > _MIN_DURATION:
        return replace(event, duration=event.duration / 2)
    return None


def shrink_plan(
    plan: FaultPlan,
    is_failing: Callable[[FaultPlan], bool],
    max_checks: int = 32,
) -> tuple[FaultPlan, int]:
    """Shrink ``plan`` while ``is_failing`` holds; returns (plan, checks).

    Greedy two-phase reduction: first drop whole events to a fixpoint,
    then soften magnitudes/durations to a fixpoint.  The oracle is
    called at most ``max_checks`` times, so a slow reproducer cannot
    stall the fuzz loop; the best plan found so far is returned when
    the budget runs out.
    """
    checks = 0

    def failing(candidate: FaultPlan) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        return is_failing(candidate)

    current = plan
    progress = True
    while progress and len(current.events) > 1 and checks < max_checks:
        progress = False
        for index in range(len(current.events)):
            events = current.events[:index] + current.events[index + 1 :]
            candidate = replace(current, events=events)
            if failing(candidate):
                current = candidate
                progress = True
                break
    progress = True
    while progress and checks < max_checks:
        progress = False
        for index, event in enumerate(current.events):
            softened = _soften(event)
            if softened is None:
                continue
            events = (
                current.events[:index]
                + (softened,)
                + current.events[index + 1 :]
            )
            candidate = replace(current, events=events)
            if failing(candidate):
                current = candidate
                progress = True
                break
    return current, checks


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzFailure:
    """One property violation: the sampled plan and its reproducer."""

    plan: FaultPlan
    reason: str
    shrunk: FaultPlan
    shrunk_reason: str
    shrink_checks: int

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "reason": self.reason,
            "shrunk": self.shrunk.to_dict(),
            "shrunk_reason": self.shrunk_reason,
            "shrink_checks": self.shrink_checks,
        }


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int
    budget: int
    plans_run: int
    failures: tuple[FuzzFailure, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "plans_run": self.plans_run,
            "failures": [failure.to_dict() for failure in self.failures],
            "ok": self.ok,
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"fuzz campaign  : seed {self.seed}, "
            f"{self.plans_run}/{self.budget} plan(s) run",
            f"verdict        : "
            f"{'OK' if self.ok else f'{len(self.failures)} FAILURE(S)'}",
        ]
        for failure in self.failures:
            events = ", ".join(
                e.kind.value for e in failure.shrunk.events
            )
            lines.append(
                f"  {failure.plan.name}: {failure.shrunk_reason} "
                f"(minimized to {len(failure.shrunk)} event(s): {events})"
            )
        return lines


def run_fuzz(
    machine: "MachineTopology",
    horizon: float,
    runner: Callable[[FaultPlan], "str | None"],
    *,
    seed: int = 0,
    budget: int = 25,
    gpu_ids: "tuple[int, ...] | None" = None,
    shrink_budget: int = 32,
    log: "Callable[[str], None] | None" = None,
) -> FuzzReport:
    """Fuzz ``budget`` plans against a property oracle.

    ``runner`` grades one plan and returns a failure reason (string) or
    ``None`` when the property held.  ``horizon`` is the healthy run's
    shuffle duration — the time base every sampled plan is scaled to.
    Failures are shrunk with at most ``shrink_budget`` extra oracle
    calls each.
    """
    failures: list[FuzzFailure] = []
    for index in range(budget):
        plan = sample_plan(machine, horizon, seed, index, gpu_ids)
        reason = runner(plan)
        if log is not None:
            verdict = "ok" if reason is None else f"FAIL ({reason})"
            log(f"[{index + 1}/{budget}] {plan.name}: {verdict}")
        if reason is None:
            continue
        last_reason = reason

        def is_failing(candidate: FaultPlan) -> bool:
            nonlocal last_reason
            result = runner(candidate)
            if result is not None:
                last_reason = result
            return result is not None

        shrunk, checks = shrink_plan(plan, is_failing, shrink_budget)
        if log is not None:
            log(
                f"  shrunk {plan.name} from {len(plan)} to "
                f"{len(shrunk)} event(s) in {checks} oracle call(s)"
            )
        failures.append(
            FuzzFailure(
                plan=plan,
                reason=reason,
                shrunk=shrunk,
                shrunk_reason=last_reason,
                shrink_checks=checks,
            )
        )
    return FuzzReport(
        seed=seed,
        budget=budget,
        plans_run=budget,
        failures=tuple(failures),
    )
